// Lazy Evaluation Evolving Subscriptions (LEES) — Sections IV-B and V-B.
//
// A subscription is split in two parts sharing its id: the non-evolving
// predicates go into the standard matcher (producing match set M1), while
// the evolving predicates enter the Lazy Evolution Matching Engine (LEME),
// which is evaluated on demand for every incoming publication (producing
// M2). A publication is forwarded towards subscriptions in M1 ∩ M2;
// single-part subscriptions (only static or only evolving predicates) are
// flagged and decided by their one engine alone.
//
// The LEME groups evolving parts by *destination* (next hop): once any
// subscription of a destination is known to match, evaluation for that
// destination stops, because the publication must be forwarded there
// regardless of further matches — the early-exit behaviour behind
// Figure 10(b).
//
// Evolving predicates are compiled at install time (attribute ids + flat
// expression programs), so the per-publication loop touches no strings and
// allocates nothing (see lazy_storage.hpp for the scratch discipline).
#pragma once

#include <vector>

#include "evolving/engine.hpp"
#include "evolving/lazy_storage.hpp"

namespace evps {

class LeesEngine final : public BrokerEngine {
 public:
  explicit LeesEngine(const EngineConfig& config) : BrokerEngine(config) {}

  /// Number of subscriptions with at least one evolving predicate.
  [[nodiscard]] std::size_t leme_size() const noexcept { return leme_.size(); }

  [[nodiscard]] std::size_t deduped_installs() const noexcept override {
    return BrokerEngine::deduped_installs() + lazy_dedup_.suppressed();
  }

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;

 private:
  struct NoExtra {};
  using Leme = LazyStorage<NoExtra>;

  /// True iff all compiled evolving predicates are satisfied by `pub` under
  /// `scope` (uses the shared eval stack).
  bool evolving_part_matches(const Leme::Part& part, const Publication& pub,
                             const EvalScope& scope);

  Leme leme_;
  /// Install-sharing over FULLY-evolving subscriptions: identical compiled
  /// predicates towards the same destination with the same epoch evaluate
  /// identically on every publication, so one LEME part stands in for the
  /// whole group. Split subscriptions never dedup (note_m1 is keyed by id).
  /// LEES-only: the CLEES/hybrid stores carry per-part cache state.
  DedupTable lazy_dedup_;
};

}  // namespace evps
