#include "matching/churn_matcher.hpp"

#include <algorithm>

namespace evps {

void ChurnMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  if (slot_of_.contains(id)) throw std::invalid_argument("duplicate subscription id " + id.str());

  // Deduplicate identical predicates (see CountingMatcher::add): keeps the
  // required hit count minimal and predicate_count() consistent across
  // matcher kinds.
  std::vector<Predicate> unique;
  unique.reserve(preds.size());
  for (const auto& p : preds) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) unique.push_back(p);
  }

  SubSlot sub;
  if (!free_slots_.empty()) {
    sub = free_slots_.back();
    free_slots_.pop_back();
  } else {
    sub = static_cast<SubSlot>(slots_.size());
    slots_.emplace_back();
    stamp_.push_back(0);
    counts_.push_back(0);
  }
  slot_of_.emplace(id, sub);
  auto& state = slots_[sub];
  state.id = id;
  state.preds = std::move(unique);
  state.locations.resize(state.preds.size());
  for (std::size_t i = 0; i < state.preds.size(); ++i) {
    index_predicate(sub, static_cast<RefSlot>(i), state.preds[i], state);
  }
  predicate_count_ += state.preds.size();
}

void ChurnMatcher::index_predicate(SubSlot sub, RefSlot slot, const Predicate& p,
                                   SlotState& state) {
  const AttrId attr = AttributeTable::instance().intern(p.attribute());
  if (attr >= buckets_.size()) buckets_.resize(attr + 1);
  auto& bucket = buckets_[attr];
  Location& loc = state.locations[slot];
  loc.attr = attr;
  const Value& c = p.constant();
  if (p.op() == RelOp::kEq && !c.is_string()) {
    loc.kind = Location::Kind::kEqNum;
    loc.num_key = *c.numeric();
    auto& list = bucket.eq_num[loc.num_key];
    loc.index = list.size();
    list.push_back(EqEntry{sub, slot});
  } else if (p.op() == RelOp::kEq) {
    loc.kind = Location::Kind::kEqStr;
    loc.str_key = c.as_string();
    auto& list = bucket.eq_str[loc.str_key];
    loc.index = list.size();
    list.push_back(EqEntry{sub, slot});
  } else {
    loc.kind = Location::Kind::kScan;
    loc.index = bucket.scan.size();
    bucket.scan.push_back(ScanEntry{p.op(), c, sub, slot});
  }
}

bool ChurnMatcher::remove(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  const SubSlot sub = it->second;
  auto& state = slots_[sub];
  // Unindex with the state left in place: a swap-erase may displace one of
  // *this* subscription's own not-yet-removed entries, and the patch-up must
  // then update its location record or the later unindex would erase a wrong
  // (or already-reused) position.
  for (const auto& loc : state.locations) unindex(loc);
  predicate_count_ -= state.preds.size();
  state.id = SubscriptionId::invalid();
  state.preds.clear();
  state.locations.clear();
  free_slots_.push_back(sub);
  slot_of_.erase(it);
  return true;
}

void ChurnMatcher::unindex(const Location& loc) {
  if (loc.attr >= buckets_.size()) return;
  auto& bucket = buckets_[loc.attr];

  // Swap-erase `list[loc.index]`, patching the displaced entry's location.
  const auto swap_erase = [&](auto& list) {
    if (loc.index >= list.size()) return;
    if (loc.index + 1 != list.size()) {
      list[loc.index] = std::move(list.back());
      const auto& moved = list[loc.index];
      slots_[moved.sub].locations[moved.ref].index = loc.index;
    }
    list.pop_back();
  };

  switch (loc.kind) {
    case Location::Kind::kEqNum: {
      const auto list_it = bucket.eq_num.find(loc.num_key);
      if (list_it == bucket.eq_num.end()) return;
      swap_erase(list_it->second);
      if (list_it->second.empty()) bucket.eq_num.erase(list_it);
      break;
    }
    case Location::Kind::kEqStr: {
      const auto list_it = bucket.eq_str.find(loc.str_key);
      if (list_it == bucket.eq_str.end()) return;
      swap_erase(list_it->second);
      if (list_it->second.empty()) bucket.eq_str.erase(list_it);
      break;
    }
    case Location::Kind::kScan:
      swap_erase(bucket.scan);
      break;
  }
}

void ChurnMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (slot_of_.empty() || pub.empty()) return;

  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  touched_.clear();

  const std::uint32_t epoch = epoch_;
  auto* const stamp = stamp_.data();
  auto* const counts = counts_.data();
  const auto hit = [&](SubSlot sub) {
    if (stamp[sub] != epoch) {
      stamp[sub] = epoch;
      counts[sub] = 1;
      touched_.push_back(sub);
    } else {
      ++counts[sub];
    }
  };

  const auto& ids = pub.attribute_ids();
  const auto& attrs = pub.attributes();
  for (std::size_t a = 0; a < ids.size(); ++a) {
    if (ids[a] >= buckets_.size()) continue;
    const auto& bucket = buckets_[ids[a]];
    const Value& value = attrs[a].second;
    if (const auto num = value.numeric()) {
      if (const auto eq = bucket.eq_num.find(*num); eq != bucket.eq_num.end()) {
        for (const auto& entry : eq->second) hit(entry.sub);
      }
    } else if (const auto eq = bucket.eq_str.find(value.as_string());
               eq != bucket.eq_str.end()) {
      for (const auto& entry : eq->second) hit(entry.sub);
    }
    for (const auto& entry : bucket.scan) {
      if (apply_rel_op(entry.op, value, entry.operand)) hit(entry.sub);
    }
  }

  const std::size_t first_new = out.size();
  for (const auto sub : touched_) {
    const auto& state = slots_[sub];
    if (counts[sub] == state.preds.size()) out.push_back(state.id);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end());
}

}  // namespace evps
