#include "matching/churn_matcher.hpp"

#include <algorithm>
#include <cmath>

namespace evps {

namespace {

/// pub_value OP bound over doubles. Plain IEEE comparisons are exactly the
/// content-based semantics for numeric pairs: when either side is NaN the
/// values are incomparable, so every operator is false except !=, which is
/// precisely how IEEE comparisons behave.
inline bool num_op_matches(RelOp op, double v, double bound) noexcept {
  switch (op) {
    case RelOp::kLt: return v < bound;
    case RelOp::kLe: return v <= bound;
    case RelOp::kGt: return v > bound;
    case RelOp::kGe: return v >= bound;
    case RelOp::kEq: return v == bound;
    case RelOp::kNe: return v != bound;
  }
  return false;
}

/// pub_string OP operand_string (ordered string comparisons and !=).
inline bool str_op_matches(RelOp op, const std::string& v, const std::string& operand) noexcept {
  const int c = v.compare(operand);
  switch (op) {
    case RelOp::kLt: return c < 0;
    case RelOp::kLe: return c <= 0;
    case RelOp::kGt: return c > 0;
    case RelOp::kGe: return c >= 0;
    case RelOp::kEq: return c == 0;
    case RelOp::kNe: return c != 0;
  }
  return false;
}

}  // namespace

void ChurnMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  if (slot_of_.contains(id)) throw std::invalid_argument("duplicate subscription id " + id.str());

  // Deduplicate identical predicates (see CountingMatcher::add): keeps the
  // required hit count minimal and predicate_count() consistent across
  // matcher kinds.
  std::vector<Predicate> unique;
  unique.reserve(preds.size());
  for (const auto& p : preds) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) unique.push_back(p);
  }

  SubSlot sub;
  if (!free_slots_.empty()) {
    sub = free_slots_.back();
    free_slots_.pop_back();
  } else {
    sub = static_cast<SubSlot>(slots_.size());
    slots_.emplace_back();
    stamp_.push_back(0);
    counts_.push_back(0);
  }
  slot_of_.emplace(id, sub);
  auto& state = slots_[sub];
  state.id = id;
  state.preds = std::move(unique);
  state.locations.resize(state.preds.size());
  for (std::size_t i = 0; i < state.preds.size(); ++i) {
    index_predicate(sub, static_cast<RefSlot>(i), state.preds[i], state);
  }
  predicate_count_ += state.preds.size();
}

void ChurnMatcher::index_predicate(SubSlot sub, RefSlot slot, const Predicate& p,
                                   SlotState& state) {
  const AttrId attr = AttributeTable::instance().intern(p.attribute());
  if (attr >= buckets_.size()) buckets_.resize(attr + 1);
  auto& bucket = buckets_[attr];
  Location& loc = state.locations[slot];
  loc.attr = attr;
  const Value& c = p.constant();
  // NaN equality keys bypass the hash map: std::equal_to<double> can never
  // find a NaN key again, so removal would leak the entry and leave a stale
  // back-reference able to corrupt a recycled slot's location table. The
  // scan path evaluates `pub == NaN` to false — the exact semantics.
  if (p.op() == RelOp::kEq && !c.is_string() && !std::isnan(*c.numeric())) {
    loc.kind = Location::Kind::kEqNum;
    loc.num_key = *c.numeric();
    auto& list = bucket.eq_num[loc.num_key];
    loc.index = list.size();
    list.push_back(EqEntry{sub, slot});
  } else if (p.op() == RelOp::kEq && c.is_string()) {
    loc.kind = Location::Kind::kEqStr;
    loc.str_key = c.as_string();
    auto& list = bucket.eq_str[loc.str_key];
    loc.index = list.size();
    list.push_back(EqEntry{sub, slot});
  } else if (!c.is_string()) {
    loc.kind = Location::Kind::kScanNum;
    loc.index = bucket.scan_ops.size();
    bucket.scan_ops.push_back(p.op());
    bucket.scan_bounds.push_back(*c.numeric());
    bucket.scan_refs.push_back(EqEntry{sub, slot});
  } else {
    loc.kind = Location::Kind::kScanStr;
    loc.index = bucket.scan_str.size();
    bucket.scan_str.push_back(StrScanEntry{p.op(), c.as_string(), sub, slot});
  }
}

bool ChurnMatcher::remove(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  const SubSlot sub = it->second;
  auto& state = slots_[sub];
  // Unindex with the state left in place: a swap-erase may displace one of
  // *this* subscription's own not-yet-removed entries, and the patch-up must
  // then update its location record or the later unindex would erase a wrong
  // (or already-reused) position.
  for (const auto& loc : state.locations) unindex(loc);
  predicate_count_ -= state.preds.size();
  state.id = SubscriptionId::invalid();
  state.preds.clear();
  state.locations.clear();
  free_slots_.push_back(sub);
  slot_of_.erase(it);
  return true;
}

void ChurnMatcher::unindex(const Location& loc) {
  if (loc.attr >= buckets_.size()) return;
  auto& bucket = buckets_[loc.attr];

  // Swap-erase `list[loc.index]`, patching the displaced entry's location.
  const auto swap_erase = [&](auto& list, auto&& location_of) {
    if (loc.index >= list.size()) return;
    if (loc.index + 1 != list.size()) {
      list[loc.index] = std::move(list.back());
      const auto& moved = list[loc.index];
      location_of(moved).index = loc.index;
    }
    list.pop_back();
  };
  const auto eq_location = [&](const EqEntry& e) -> Location& {
    return slots_[e.sub].locations[e.ref];
  };

  switch (loc.kind) {
    case Location::Kind::kEqNum: {
      const auto list_it = bucket.eq_num.find(loc.num_key);
      if (list_it == bucket.eq_num.end()) return;
      swap_erase(list_it->second, eq_location);
      if (list_it->second.empty()) bucket.eq_num.erase(list_it);
      break;
    }
    case Location::Kind::kEqStr: {
      const auto list_it = bucket.eq_str.find(loc.str_key);
      if (list_it == bucket.eq_str.end()) return;
      swap_erase(list_it->second, eq_location);
      if (list_it->second.empty()) bucket.eq_str.erase(list_it);
      break;
    }
    case Location::Kind::kScanNum: {
      // Swap-erase across the three parallel arrays; one patch-up.
      const std::size_t i = loc.index;
      if (i >= bucket.scan_ops.size()) return;
      const std::size_t last = bucket.scan_ops.size() - 1;
      if (i != last) {
        bucket.scan_ops[i] = bucket.scan_ops[last];
        bucket.scan_bounds[i] = bucket.scan_bounds[last];
        bucket.scan_refs[i] = bucket.scan_refs[last];
        eq_location(bucket.scan_refs[i]).index = i;
      }
      bucket.scan_ops.pop_back();
      bucket.scan_bounds.pop_back();
      bucket.scan_refs.pop_back();
      break;
    }
    case Location::Kind::kScanStr:
      swap_erase(bucket.scan_str, [&](const StrScanEntry& e) -> Location& {
        return slots_[e.sub].locations[e.ref];
      });
      break;
  }
}

std::size_t ChurnMatcher::indexed_entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& bucket : buckets_) {
    for (const auto& [key, list] : bucket.eq_num) n += list.size();
    for (const auto& [key, list] : bucket.eq_str) n += list.size();
    n += bucket.scan_ops.size() + bucket.scan_str.size();
  }
  return n;
}

void ChurnMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (slot_of_.empty() || pub.empty()) return;

  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  touched_.clear();

  const std::uint32_t epoch = epoch_;
  auto* const stamp = stamp_.data();
  auto* const counts = counts_.data();
  const auto hit = [&](SubSlot sub) {
    if (stamp[sub] != epoch) {
      stamp[sub] = epoch;
      counts[sub] = 1;
      touched_.push_back(sub);
    } else {
      ++counts[sub];
    }
  };

  const auto& ids = pub.attribute_ids();
  const auto& attrs = pub.attributes();
  for (std::size_t a = 0; a < ids.size(); ++a) {
    if (ids[a] >= buckets_.size()) continue;
    const auto& bucket = buckets_[ids[a]];
    const Value& value = attrs[a].second;
    if (const auto num = value.numeric()) {
      const double v = *num;
      if (const auto eq = bucket.eq_num.find(v); eq != bucket.eq_num.end()) {
        for (const auto& entry : eq->second) hit(entry.sub);
      }
      // SoA sweep over the numeric scan bounds (IEEE == content-based).
      const RelOp* const ops = bucket.scan_ops.data();
      const double* const bounds = bucket.scan_bounds.data();
      const EqEntry* const refs = bucket.scan_refs.data();
      const std::size_t n = bucket.scan_ops.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (num_op_matches(ops[i], v, bounds[i])) hit(refs[i].sub);
      }
      // String operands are incomparable with a numeric value: only kNe.
      for (const auto& entry : bucket.scan_str) {
        if (entry.op == RelOp::kNe) hit(entry.sub);
      }
    } else {
      const std::string& s = value.as_string();
      if (const auto eq = bucket.eq_str.find(s); eq != bucket.eq_str.end()) {
        for (const auto& entry : eq->second) hit(entry.sub);
      }
      // Numeric operands are incomparable with a string value: only kNe.
      const RelOp* const ops = bucket.scan_ops.data();
      const EqEntry* const refs = bucket.scan_refs.data();
      const std::size_t n = bucket.scan_ops.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (ops[i] == RelOp::kNe) hit(refs[i].sub);
      }
      for (const auto& entry : bucket.scan_str) {
        if (str_op_matches(entry.op, s, entry.operand)) hit(entry.sub);
      }
    }
  }

  const std::size_t first_new = out.size();
  for (const auto sub : touched_) {
    const auto& state = slots_[sub];
    if (counts[sub] == state.preds.size()) out.push_back(state.id);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end());
}

}  // namespace evps
