#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

namespace evps {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  const BrokerId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ExplicitValueIsValid) {
  const BrokerId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(SubscriptionId{1}, SubscriptionId{2});
  EXPECT_EQ(SubscriptionId{5}, SubscriptionId{5});
  EXPECT_NE(SubscriptionId{5}, SubscriptionId{6});
}

TEST(StrongId, StreamAndStr) {
  std::ostringstream os;
  os << ClientId{3};
  EXPECT_EQ(os.str(), "C3");
  EXPECT_EQ(SubscriptionId{9}.str(), "S9");
  EXPECT_EQ(BrokerId{1}.str(), "B1");
}

TEST(StrongId, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdGenerator, MonotonicAndDistinct) {
  IdGenerator<MessageId> gen;
  std::set<MessageId> seen;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(seen.insert(gen.next()).second);
  EXPECT_EQ(seen.begin()->value(), 0u);
}

TEST(IdGenerator, StartsAtGivenValue) {
  IdGenerator<MessageId> gen{10};
  EXPECT_EQ(gen.next().value(), 10u);
  EXPECT_EQ(gen.next().value(), 11u);
}

TEST(IdGenerator, Reset) {
  IdGenerator<MessageId> gen;
  (void)gen.next();
  gen.reset(5);
  EXPECT_EQ(gen.next().value(), 5u);
}

}  // namespace
}  // namespace evps
