#include "expr/program.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evps {

namespace {

struct Lowering {
  std::vector<ExprProgram::Insn> code;
  std::size_t depth = 0;
  std::size_t max_depth = 0;

  void emit(ExprProgram::Insn insn, std::size_t pops, std::size_t pushes) {
    code.push_back(insn);
    depth -= pops;
    depth += pushes;
    max_depth = std::max(max_depth, depth);
  }

  void lower(const Expr& expr) {
    using Insn = ExprProgram::Insn;
    using Op = ExprProgram::Op;
    std::visit(
        [&](const auto& n) {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, Expr::Const>) {
            emit(Insn{Op::kPushConst, 0, kInvalidVarId, n.value}, 0, 1);
          } else if constexpr (std::is_same_v<T, Expr::Var>) {
            emit(Insn{Op::kLoadVar, 0, VariableTable::instance().intern(n.name), 0.0}, 0, 1);
          } else if constexpr (std::is_same_v<T, Expr::Unary>) {
            lower(*n.operand);
            Op op = Op::kNeg;
            switch (n.op) {
              case UnaryOp::kNeg: op = Op::kNeg; break;
              case UnaryOp::kAbs: op = Op::kAbs; break;
              case UnaryOp::kFloor: op = Op::kFloor; break;
              case UnaryOp::kCeil: op = Op::kCeil; break;
              case UnaryOp::kSqrt: op = Op::kSqrt; break;
              case UnaryOp::kSin: op = Op::kSin; break;
              case UnaryOp::kCos: op = Op::kCos; break;
              case UnaryOp::kSign: op = Op::kSign; break;
            }
            emit(Insn{op, 0, kInvalidVarId, 0.0}, 1, 1);
          } else if constexpr (std::is_same_v<T, Expr::Binary>) {
            lower(*n.lhs);
            lower(*n.rhs);
            Op op = Op::kAdd;
            switch (n.op) {
              case BinaryOp::kAdd: op = Op::kAdd; break;
              case BinaryOp::kSub: op = Op::kSub; break;
              case BinaryOp::kMul: op = Op::kMul; break;
              case BinaryOp::kDiv: op = Op::kDiv; break;
              case BinaryOp::kMod: op = Op::kMod; break;
              case BinaryOp::kPow: op = Op::kPow; break;
            }
            emit(Insn{op, 0, kInvalidVarId, 0.0}, 2, 1);
          } else {
            for (const auto& a : n.args) lower(*a);
            const auto argc = static_cast<std::uint32_t>(n.args.size());
            switch (n.fn) {
              case CallFn::kMin:
                emit(Insn{Op::kMin, argc, kInvalidVarId, 0.0}, argc, 1);
                break;
              case CallFn::kMax:
                emit(Insn{Op::kMax, argc, kInvalidVarId, 0.0}, argc, 1);
                break;
              case CallFn::kClamp:
                emit(Insn{Op::kClamp, argc, kInvalidVarId, 0.0}, 3, 1);
                break;
              case CallFn::kStep:
                emit(Insn{Op::kStep, argc, kInvalidVarId, 0.0}, 1, 1);
                break;
            }
          }
        },
        expr.node());
  }
};

}  // namespace

ExprProgram ExprProgram::compile(const Expr& expr) {
  Lowering lowering;
  lowering.lower(expr);
  ExprProgram prog;
  prog.code_ = std::move(lowering.code);
  prog.code_.shrink_to_fit();
  prog.max_stack_ = lowering.max_depth;
  return prog;
}

ExprProgram ExprProgram::assemble(std::vector<Insn> code, std::size_t max_stack) {
  ExprProgram prog;
  prog.code_ = std::move(code);
  prog.max_stack_ = max_stack;
  return prog;
}

double ExprProgram::eval(const EvalScope& scope, std::vector<double>& stack) const {
  if (code_.empty()) throw std::logic_error("evaluating an empty ExprProgram");
  stack.clear();
  if (stack.capacity() < max_stack_) stack.reserve(max_stack_);
  for (const Insn& insn : code_) {
    switch (insn.op) {
      case Op::kPushConst:
        stack.push_back(insn.k);
        break;
      case Op::kLoadVar:
        stack.push_back(scope.lookup(insn.var));
        break;
      case Op::kNeg:
        stack.back() = -stack.back();
        break;
      case Op::kAbs:
        stack.back() = std::fabs(stack.back());
        break;
      case Op::kFloor:
        stack.back() = std::floor(stack.back());
        break;
      case Op::kCeil:
        stack.back() = std::ceil(stack.back());
        break;
      case Op::kSqrt:
        stack.back() = std::sqrt(stack.back());
        break;
      case Op::kSin:
        stack.back() = std::sin(stack.back());
        break;
      case Op::kCos:
        stack.back() = std::cos(stack.back());
        break;
      case Op::kSign: {
        const double x = stack.back();
        stack.back() = x < 0 ? -1.0 : (x > 0 ? 1.0 : 0.0);
        break;
      }
      case Op::kAdd: {
        const double b = stack.back();
        stack.pop_back();
        stack.back() += b;
        break;
      }
      case Op::kSub: {
        const double b = stack.back();
        stack.pop_back();
        stack.back() -= b;
        break;
      }
      case Op::kMul: {
        const double b = stack.back();
        stack.pop_back();
        stack.back() *= b;
        break;
      }
      case Op::kDiv: {
        const double b = stack.back();
        stack.pop_back();
        stack.back() /= b;
        break;
      }
      case Op::kMod: {
        const double b = stack.back();
        stack.pop_back();
        stack.back() = std::fmod(stack.back(), b);
        break;
      }
      case Op::kPow: {
        const double b = stack.back();
        stack.pop_back();
        stack.back() = std::pow(stack.back(), b);
        break;
      }
      case Op::kMin: {
        // Fold left like the tree walker: m = min(m, arg_i) in order.
        const std::size_t base = stack.size() - insn.argc;
        double m = stack[base];
        for (std::size_t i = 1; i < insn.argc; ++i) m = std::min(m, stack[base + i]);
        stack.resize(base);
        stack.push_back(m);
        break;
      }
      case Op::kMax: {
        const std::size_t base = stack.size() - insn.argc;
        double m = stack[base];
        for (std::size_t i = 1; i < insn.argc; ++i) m = std::max(m, stack[base + i]);
        stack.resize(base);
        stack.push_back(m);
        break;
      }
      case Op::kClamp: {
        const double hi = stack.back();
        stack.pop_back();
        const double lo = stack.back();
        stack.pop_back();
        stack.back() = std::min(std::max(stack.back(), lo), hi);
        break;
      }
      case Op::kStep:
        stack.back() = stack.back() < 0 ? 0.0 : 1.0;
        break;
    }
  }
  return stack.back();
}

std::vector<VarId> ExprProgram::variables() const {
  std::vector<VarId> out;
  for (const Insn& insn : code_) {
    if (insn.op == Op::kLoadVar) out.push_back(insn.var);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace evps
