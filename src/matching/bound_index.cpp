#include "matching/bound_index.hpp"

namespace evps {

std::size_t PagedBoundIndex::page_for(double bound, Slot slot) const noexcept {
  std::size_t lo = 0;
  std::size_t hi = pages_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (key_less(max_bound_[mid], max_slot_[mid], bound, slot)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // A key beyond every page max still lands in the last page.
  return lo < pages_.size() ? lo : pages_.size() - 1;
}

std::size_t PagedBoundIndex::lower_bound_in(const Page& page, double bound, Slot slot) noexcept {
  std::size_t lo = 0;
  std::size_t hi = page.bounds.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (key_less(page.bounds[mid], page.slots[mid], bound, slot)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void PagedBoundIndex::refresh_max(std::size_t p) {
  max_bound_[p] = pages_[p].bounds.back();
  max_slot_[p] = pages_[p].slots.back();
}

void PagedBoundIndex::split_page(std::size_t p) {
  Page& page = pages_[p];
  const std::size_t half = page.bounds.size() / 2;
  Page upper;
  upper.bounds.assign(page.bounds.begin() + static_cast<std::ptrdiff_t>(half),
                      page.bounds.end());
  upper.slots.assign(page.slots.begin() + static_cast<std::ptrdiff_t>(half), page.slots.end());
  page.bounds.resize(half);
  page.slots.resize(half);
  // The old max key moves with the upper half; the lower half gets a fresh
  // max. (`page` is invalidated by the inserts below — done mutating it.)
  pages_.insert(pages_.begin() + static_cast<std::ptrdiff_t>(p) + 1, std::move(upper));
  max_bound_.insert(max_bound_.begin() + static_cast<std::ptrdiff_t>(p) + 1, max_bound_[p]);
  max_slot_.insert(max_slot_.begin() + static_cast<std::ptrdiff_t>(p) + 1, max_slot_[p]);
  refresh_max(p);
}

void PagedBoundIndex::insert(double bound, Slot slot) {
  assert(!std::isnan(bound) && "NaN bounds must be quarantined by the caller");
  if (pages_.empty()) {
    Page page;
    page.bounds.push_back(bound);
    page.slots.push_back(slot);
    pages_.push_back(std::move(page));
    max_bound_.push_back(bound);
    max_slot_.push_back(slot);
    size_ = 1;
    return;
  }
  const std::size_t p = page_for(bound, slot);
  Page& page = pages_[p];
  const std::size_t i = lower_bound_in(page, bound, slot);
  page.bounds.insert(page.bounds.begin() + static_cast<std::ptrdiff_t>(i), bound);
  page.slots.insert(page.slots.begin() + static_cast<std::ptrdiff_t>(i), slot);
  ++size_;
  if (i + 1 == page.bounds.size()) refresh_max(p);
  if (page.bounds.size() > kPageCapacity) split_page(p);
}

bool PagedBoundIndex::erase(double bound, Slot slot) {
  if (pages_.empty()) return false;
  assert(!std::isnan(bound) && "NaN bounds must be quarantined by the caller");
  const std::size_t p = page_for(bound, slot);
  Page& page = pages_[p];
  const std::size_t i = lower_bound_in(page, bound, slot);
  // Equality through IEEE ==: exact for everything the index admits (no
  // NaN), and deliberately identifies -0.0 with 0.0 like the ordering does.
  if (i >= page.bounds.size() || page.bounds[i] != bound || page.slots[i] != slot) return false;
  page.bounds.erase(page.bounds.begin() + static_cast<std::ptrdiff_t>(i));
  page.slots.erase(page.slots.begin() + static_cast<std::ptrdiff_t>(i));
  --size_;
  if (page.bounds.empty()) {
    pages_.erase(pages_.begin() + static_cast<std::ptrdiff_t>(p));
    max_bound_.erase(max_bound_.begin() + static_cast<std::ptrdiff_t>(p));
    max_slot_.erase(max_slot_.begin() + static_cast<std::ptrdiff_t>(p));
  } else if (i == page.bounds.size()) {
    refresh_max(p);
  }
  return true;
}

void PagedBoundIndex::insert_batch(std::vector<Entry>&& entries) {
  if (entries.empty()) return;
  if (entries.size() == 1) {
    insert(entries[0].bound, entries[0].slot);
    return;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return key_less(a.bound, a.slot, b.bound, b.slot);
  });

  // Refill target below capacity so post-batch point inserts do not split
  // immediately.
  static constexpr std::size_t kFill = kPageCapacity * 3 / 4;
  const auto emit_chunks = [](std::vector<Page>& out, const std::vector<double>& bounds,
                              const std::vector<Slot>& slots) {
    for (std::size_t i = 0; i < bounds.size(); i += kFill) {
      const std::size_t n = std::min(kFill, bounds.size() - i);
      Page page;
      page.bounds.assign(bounds.begin() + static_cast<std::ptrdiff_t>(i),
                         bounds.begin() + static_cast<std::ptrdiff_t>(i + n));
      page.slots.assign(slots.begin() + static_cast<std::ptrdiff_t>(i),
                        slots.begin() + static_cast<std::ptrdiff_t>(i + n));
      out.push_back(std::move(page));
    }
  };

  std::vector<Page> out_pages;
  out_pages.reserve(pages_.size() + entries.size() / kFill + 1);
  std::vector<double> merged_bounds;
  std::vector<Slot> merged_slots;

  if (pages_.empty()) {
    merged_bounds.reserve(entries.size());
    merged_slots.reserve(entries.size());
    for (const Entry& e : entries) {
      assert(!std::isnan(e.bound) && "NaN bounds must be quarantined by the caller");
      merged_bounds.push_back(e.bound);
      merged_slots.push_back(e.slot);
    }
    emit_chunks(out_pages, merged_bounds, merged_slots);
  } else {
    std::size_t e = 0;  // next unmerged addition
    for (std::size_t p = 0; p < pages_.size(); ++p) {
      // Additions belonging to page p: keys up to the page max; the last
      // page absorbs everything beyond every max.
      std::size_t e_end = entries.size();
      if (p + 1 != pages_.size()) {
        e_end = e;
        while (e_end < entries.size() &&
               !key_less(max_bound_[p], max_slot_[p], entries[e_end].bound,
                         entries[e_end].slot)) {
          ++e_end;
        }
      }
      if (e_end == e) {
        out_pages.push_back(std::move(pages_[p]));  // untouched: moved, not copied
        continue;
      }
      const Page& page = pages_[p];
      merged_bounds.clear();
      merged_slots.clear();
      merged_bounds.reserve(page.bounds.size() + (e_end - e));
      merged_slots.reserve(merged_bounds.capacity());
      std::size_t i = 0;
      while (i < page.bounds.size() || e < e_end) {
        const bool take_entry =
            i >= page.bounds.size() ||
            (e < e_end &&
             key_less(entries[e].bound, entries[e].slot, page.bounds[i], page.slots[i]));
        if (take_entry) {
          assert(!std::isnan(entries[e].bound) && "NaN bounds must be quarantined");
          merged_bounds.push_back(entries[e].bound);
          merged_slots.push_back(entries[e].slot);
          ++e;
        } else {
          merged_bounds.push_back(page.bounds[i]);
          merged_slots.push_back(page.slots[i]);
          ++i;
        }
      }
      emit_chunks(out_pages, merged_bounds, merged_slots);
    }
  }

  pages_ = std::move(out_pages);
  max_bound_.clear();
  max_slot_.clear();
  max_bound_.reserve(pages_.size());
  max_slot_.reserve(pages_.size());
  for (const Page& page : pages_) {
    max_bound_.push_back(page.bounds.back());
    max_slot_.push_back(page.slots.back());
  }
  size_ += entries.size();
}

}  // namespace evps
