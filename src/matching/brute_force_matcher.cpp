#include "matching/brute_force_matcher.hpp"

namespace evps {

void BruteForceMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  Stored stored{preds, {}};
  stored.attr_ids.reserve(preds.size());
  for (const auto& p : preds) {
    stored.attr_ids.push_back(AttributeTable::instance().intern(p.attribute()));
  }
  const auto [it, inserted] = subs_.emplace(id, std::move(stored));
  if (!inserted) throw std::invalid_argument("duplicate subscription id " + id.str());
}

bool BruteForceMatcher::remove(SubscriptionId id) { return subs_.erase(id) > 0; }

void BruteForceMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  for (const auto& [id, stored] : subs_) {
    if (stored.preds.empty()) continue;
    bool ok = true;
    for (std::size_t i = 0; i < stored.preds.size(); ++i) {
      const Value* v = pub.get(stored.attr_ids[i]);
      if (v == nullptr || !stored.preds[i].matches(*v)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(id);
  }
}

}  // namespace evps
