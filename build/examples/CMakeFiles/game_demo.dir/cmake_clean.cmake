file(REMOVE_RECURSE
  "CMakeFiles/game_demo.dir/game_demo.cpp.o"
  "CMakeFiles/game_demo.dir/game_demo.cpp.o.d"
  "game_demo"
  "game_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
