#include "message/codec.hpp"

#include <charconv>
#include <unordered_set>

#include "common/string_util.hpp"
#include "expr/parser.hpp"

namespace evps {
namespace {

/// Try to interpret `text` as a literal constant (number or quoted string).
std::optional<Value> parse_literal(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text.front() == '\'') {
    if (text.size() < 2 || text.back() != '\'') {
      throw CodecError("unterminated string literal: " + std::string(text));
    }
    return Value{std::string(text.substr(1, text.size() - 2))};
  }
  {
    std::int64_t i = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), i);
    if (ec == std::errc{} && p == text.data() + text.size()) return Value{i};
  }
  {
    double d = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
    if (ec == std::errc{} && p == text.data() + text.size()) return Value{d};
  }
  return std::nullopt;
}

/// Find the relational operator in a predicate string; returns
/// (attribute, op, operand-text).
std::tuple<std::string_view, RelOp, std::string_view> split_predicate(std::string_view text) {
  // Scan for the first of <=, >=, !=, <>, <, >, =, == outside quotes.
  bool in_quote = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\'') in_quote = !in_quote;
    if (in_quote) continue;
    std::string_view op_text;
    if (c == '<' || c == '>' || c == '!' || c == '=') {
      if (i + 1 < text.size() && (text[i + 1] == '=' || (c == '<' && text[i + 1] == '>'))) {
        op_text = text.substr(i, 2);
      } else {
        op_text = text.substr(i, 1);
      }
      const auto op = parse_rel_op(op_text);
      if (!op.has_value()) throw CodecError("bad operator in predicate: " + std::string(text));
      const auto attr = trim(text.substr(0, i));
      const auto rest = trim(text.substr(i + op_text.size()));
      if (attr.empty()) throw CodecError("missing attribute in predicate: " + std::string(text));
      if (rest.empty()) throw CodecError("missing operand in predicate: " + std::string(text));
      return {attr, *op, rest};
    }
  }
  throw CodecError("no relational operator in predicate: " + std::string(text));
}

double parse_seconds(std::string_view text, std::string_view what) {
  double d = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    throw CodecError("bad " + std::string(what) + " value: " + std::string(text));
  }
  return d;
}

}  // namespace

std::string serialize(const Publication& pub) {
  std::string out;
  for (std::size_t i = 0; i < pub.attributes().size(); ++i) {
    if (i != 0) out += "; ";
    out += pub.attributes()[i].first;
    out += " = ";
    out += pub.attributes()[i].second.to_string();
  }
  return out;
}

Publication parse_publication(std::string_view text) {
  Publication pub;
  if (trim(text).empty()) return pub;
  for (const auto field : split_quoted(text, ';')) {
    const auto trimmed = trim(field);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw CodecError("publication attribute must be name = value: " + std::string(trimmed));
    }
    const auto name = trim(trimmed.substr(0, eq));
    const auto value_text = trim(trimmed.substr(eq + 1));
    if (name.empty()) throw CodecError("empty attribute name in: " + std::string(trimmed));
    pub.set(name, Value::parse(value_text));
  }
  return pub;
}

std::string serialize(const Predicate& pred) { return pred.to_string(); }

Predicate parse_predicate(std::string_view text) {
  const auto [attr, op, operand] = split_predicate(trim(text));
  if (const auto literal = parse_literal(operand)) {
    return Predicate{std::string(attr), op, *literal};
  }
  try {
    return Predicate{std::string(attr), op, parse_expr(operand)};
  } catch (const ParseError& e) {
    // Rebase the expression-relative offset onto this predicate's text
    // (operand is a view into it), keeping the offending token, so callers
    // can point a caret at the exact source column.
    const auto base = static_cast<std::size_t>(operand.data() - text.data());
    throw CodecError("bad predicate operand '" + std::string(operand) + "': " + e.what(),
                     base + e.offset(), e.token());
  }
}

std::string serialize(const Subscription& sub) {
  std::string out;
  const Subscription defaults;
  if (sub.mei() != defaults.mei()) {
    out += "[mei=" + std::to_string(sub.mei().count_seconds()) + "]";
  }
  if (sub.tt() != defaults.tt()) {
    out += "[tt=" + std::to_string(sub.tt().count_seconds()) + "]";
  }
  if (sub.validity() != defaults.validity()) {
    out += "[validity=" + std::to_string(sub.validity().count_seconds()) + "]";
  }
  if (!out.empty()) out += " ";
  for (std::size_t i = 0; i < sub.predicates().size(); ++i) {
    if (i != 0) out += "; ";
    out += sub.predicates()[i].to_string();
  }
  return out;
}

Subscription parse_subscription(std::string_view text) {
  Subscription sub;
  auto rest = trim(text);
  while (!rest.empty() && rest.front() == '[') {
    const auto close = rest.find(']');
    if (close == std::string_view::npos) throw CodecError("unterminated option bracket");
    const auto body = rest.substr(1, close - 1);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      throw CodecError("option must be key=value: " + std::string(body));
    }
    const auto key = trim(body.substr(0, eq));
    const auto value = trim(body.substr(eq + 1));
    if (key == "mei") {
      sub.set_mei(Duration::seconds(parse_seconds(value, key)));
    } else if (key == "tt") {
      sub.set_tt(Duration::seconds(parse_seconds(value, key)));
    } else if (key == "validity") {
      sub.set_validity(Duration::seconds(parse_seconds(value, key)));
    } else {
      throw CodecError("unknown subscription option: " + std::string(key));
    }
    rest = trim(rest.substr(close + 1));
  }
  if (rest.empty()) throw CodecError("subscription has no predicates");
  for (const auto field : split_quoted(rest, ';')) {
    const auto trimmed = trim(field);
    if (trimmed.empty()) continue;
    try {
      sub.add(parse_predicate(trimmed));
    } catch (const CodecError& e) {
      if (!e.has_location()) throw;
      // Rebase from predicate-relative to subscription-relative offset.
      const auto base = static_cast<std::size_t>(trimmed.data() - text.data());
      throw CodecError(e.what(), base + e.offset(), e.token());
    }
  }
  if (sub.predicates().empty()) throw CodecError("subscription has no predicates");
  return sub;
}

// --- publication batches ---------------------------------------------------

namespace {

constexpr std::string_view kBatchHeader = "pubs n=";
constexpr std::size_t kLenDigits = 8;  // fixed-width lowercase hex

/// Append `pub`'s text form (attributes only) directly into `out`; same
/// format as serialize(const Publication&) but without the temporary string.
void append_publication(const Publication& pub, std::string& out) {
  for (std::size_t i = 0; i < pub.attributes().size(); ++i) {
    if (i != 0) out += "; ";
    out += pub.attributes()[i].first;
    out += " = ";
    out += pub.attributes()[i].second.to_string();
  }
}

void append_u64(std::uint64_t v, std::string& out) {
  char buf[20];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

void append_i64(std::int64_t v, std::string& out) {
  char buf[21];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

/// Serialise one record into `arena`: the 8-hex length prefix is reserved
/// first and patched once the payload length is known — single pass, no
/// temporary buffer.
void append_record(const Publication& pub, std::string& arena) {
  const std::size_t len_pos = arena.size();
  arena.append(kLenDigits, '0');
  arena += " id=";
  append_u64(pub.id().value(), arena);
  arena += " pub=";
  append_u64(pub.publisher().value(), arena);
  arena += " t=";
  append_i64(pub.entry_time().micros(), arena);
  arena += '\n';
  const std::size_t payload_pos = arena.size();
  append_publication(pub, arena);
  const std::size_t payload_len = arena.size() - payload_pos;
  arena += '\n';
  if (payload_len >= kMaxBatchRecordBytes) {
    throw CodecError("publication payload exceeds batch record limit");
  }
  // Patch the reserved prefix in place (lowercase hex, fixed width).
  std::size_t v = payload_len;
  for (std::size_t i = 0; i < kLenDigits; ++i) {
    arena[len_pos + kLenDigits - 1 - i] = "0123456789abcdef"[v & 0xF];
    v >>= 4;
  }
}

void append_batch_header(std::size_t count, std::string& arena) {
  arena += kBatchHeader;
  append_u64(count, arena);
  arena += '\n';
}

[[noreturn]] void batch_fail(const std::string& message, std::size_t offset,
                             std::string_view token = {}) {
  throw CodecError(message, offset, std::string(token));
}

/// Parse an unsigned decimal field `key=<digits>` at `pos` within `text`,
/// advancing `pos` past it. Errors carry the offset of the field start.
std::uint64_t parse_field_u64(std::string_view text, std::size_t& pos, std::string_view key) {
  const std::size_t field_start = pos;
  if (text.substr(pos, key.size()) != key) {
    batch_fail("batch record: expected '" + std::string(key) + "'", field_start,
               text.substr(pos, key.size()));
  }
  pos += key.size();
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), v);
  if (ec != std::errc{} || p == text.data() + pos) {
    batch_fail("batch record: bad integer after '" + std::string(key) + "'", field_start);
  }
  pos = static_cast<std::size_t>(p - text.data());
  return v;
}

std::int64_t parse_field_i64(std::string_view text, std::size_t& pos, std::string_view key) {
  const std::size_t field_start = pos;
  if (text.substr(pos, key.size()) != key) {
    batch_fail("batch record: expected '" + std::string(key) + "'", field_start,
               text.substr(pos, key.size()));
  }
  pos += key.size();
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), v);
  if (ec != std::errc{} || p == text.data() + pos) {
    batch_fail("batch record: bad integer after '" + std::string(key) + "'", field_start);
  }
  pos = static_cast<std::size_t>(p - text.data());
  return v;
}

}  // namespace

void serialize_batch(std::span<const Publication* const> pubs, std::string& arena) {
  arena.clear();
  if (pubs.size() > kMaxBatchPublications) {
    throw CodecError("batch exceeds kMaxBatchPublications");
  }
  append_batch_header(pubs.size(), arena);
  for (const Publication* pub : pubs) append_record(*pub, arena);
}

void serialize_batch(std::span<const PublicationPtr> pubs, std::string& arena) {
  arena.clear();
  if (pubs.size() > kMaxBatchPublications) {
    throw CodecError("batch exceeds kMaxBatchPublications");
  }
  append_batch_header(pubs.size(), arena);
  for (const auto& pub : pubs) append_record(*pub, arena);
}

std::string serialize_batch(std::span<const Publication> pubs) {
  std::string arena;
  if (pubs.size() > kMaxBatchPublications) {
    throw CodecError("batch exceeds kMaxBatchPublications");
  }
  append_batch_header(pubs.size(), arena);
  for (const auto& pub : pubs) append_record(pub, arena);
  return arena;
}

std::size_t serialized_batch_size(std::span<const PublicationPtr> pubs) {
  // Reuse a thread-local arena so accounting is allocation-free at steady
  // state; exact by construction (delegates to the real serialiser).
  thread_local std::string arena;
  serialize_batch(pubs, arena);
  return arena.size();
}

std::vector<Publication> parse_publication_batch(std::string_view text) {
  std::size_t pos = 0;
  if (text.substr(0, kBatchHeader.size()) != kBatchHeader) {
    batch_fail("batch: missing 'pubs n=' header", 0, text.substr(0, kBatchHeader.size()));
  }
  pos = kBatchHeader.size();
  std::uint64_t count = 0;
  {
    auto [p, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), count);
    if (ec != std::errc{} || p == text.data() + pos) {
      batch_fail("batch: bad publication count", pos);
    }
    pos = static_cast<std::size_t>(p - text.data());
  }
  if (count > kMaxBatchPublications) batch_fail("batch: count exceeds limit", kBatchHeader.size());
  if (pos >= text.size() || text[pos] != '\n') batch_fail("batch: truncated header", pos);
  ++pos;

  std::vector<Publication> pubs;
  pubs.reserve(count);
  std::unordered_set<std::uint64_t> seen_ids;
  seen_ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t record_start = pos;
    if (text.size() - pos < kLenDigits + 1) batch_fail("batch: truncated record header", pos);
    std::size_t payload_len = 0;
    for (std::size_t d = 0; d < kLenDigits; ++d) {
      const char c = text[pos + d];
      std::size_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::size_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::size_t>(c - 'a') + 10;
      } else {
        batch_fail("batch record: bad hex length digit", pos + d, text.substr(pos + d, 1));
      }
      payload_len = (payload_len << 4) | digit;
    }
    if (payload_len >= kMaxBatchRecordBytes) {
      batch_fail("batch record: payload length exceeds limit", record_start);
    }
    pos += kLenDigits;
    const auto id = parse_field_u64(text, pos, " id=");
    const auto publisher = parse_field_u64(text, pos, " pub=");
    const auto entry_us = parse_field_i64(text, pos, " t=");
    if (pos >= text.size() || text[pos] != '\n') {
      batch_fail("batch record: truncated metadata line", pos);
    }
    ++pos;
    if (text.size() - pos < payload_len + 1) {
      batch_fail("batch record: payload overruns frame", record_start);
    }
    const auto payload = text.substr(pos, payload_len);
    pos += payload_len;
    if (text[pos] != '\n') batch_fail("batch record: payload length mismatch", pos);
    ++pos;
    // Reject duplicate valid ids — a frame carrying the same publication
    // twice is corrupt, not a bigger batch. Invalid (unset) ids may repeat:
    // ad-hoc publications are serialised before any id is assigned.
    if (id != MessageId::kInvalid && !seen_ids.insert(id).second) {
      batch_fail("batch record: duplicate publication id", record_start);
    }
    Publication pub;
    try {
      pub = parse_publication(payload);
    } catch (const CodecError& e) {
      const std::size_t base = static_cast<std::size_t>(payload.data() - text.data());
      batch_fail(std::string("batch record payload: ") + e.what(),
                 base + (e.has_location() ? e.offset() : 0), e.token());
    }
    pub.set_id(MessageId{id});
    pub.set_publisher(ClientId{publisher});
    pub.set_entry_time(SimTime::from_micros(entry_us));
    pubs.push_back(std::move(pub));
  }
  if (pos != text.size()) batch_fail("batch: trailing bytes after last record", pos);
  return pubs;
}

}  // namespace evps
