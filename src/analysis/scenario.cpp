#include "analysis/scenario.hpp"

#include <cctype>
#include <sstream>

#include "message/codec.hpp"

namespace evps {

namespace {

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.front())) != 0)) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.back())) != 0)) {
    s.remove_suffix(1);
  }
  return s;
}

ScenarioDirective error_directive(ScenarioDirective d, std::size_t offset, std::string token,
                                  std::string message) {
  d.kind = ScenarioDirective::Kind::kError;
  d.error_offset = offset;
  d.error_token = std::move(token);
  d.error_message = std::move(message);
  return d;
}

/// `var <name> [= <value>] in [<lo>, <hi>]`
ScenarioDirective parse_var(ScenarioDirective d) {
  std::istringstream in{d.body};
  std::string name;
  std::string tok;
  double value = 0;
  bool has_value = false;
  double lo = 0;
  double hi = 0;
  in >> name >> tok;
  if (tok == "=") {
    in >> value >> tok;
    has_value = true;
  }
  char lbracket = 0;
  char comma = 0;
  char rbracket = 0;
  in >> lbracket >> lo >> comma >> hi >> rbracket;
  if (name.empty() || tok != "in" || lbracket != '[' || comma != ',' || rbracket != ']' ||
      in.fail()) {
    return error_directive(std::move(d), 0, "",
                           "bad var directive (expected: var <name> [= <value>] in [<lo>, <hi>])");
  }
  d.kind = ScenarioDirective::Kind::kVar;
  d.var_name = std::move(name);
  d.var_has_value = has_value;
  d.var_value = value;
  d.var_lo = lo;
  d.var_hi = hi;
  return d;
}

ScenarioDirective parse_predicates(ScenarioDirective d, ScenarioDirective::Kind kind) {
  try {
    d.sub = parse_subscription(d.body);
    d.kind = kind;
    return d;
  } catch (const CodecError& e) {
    return error_directive(std::move(d), e.has_location() ? e.offset() : 0,
                           e.has_location() ? e.token() : "", e.what());
  }
}

}  // namespace

Scenario parse_scenario(std::string_view text) {
  Scenario scenario;
  int line_no = 0;
  bool done = text.empty();
  while (!done) {
    const std::size_t nl = text.find('\n');
    std::string_view raw;
    if (nl == std::string_view::npos) {
      raw = text;
      text = {};
      done = true;
    } else {
      raw = text.substr(0, nl);
      text = text.substr(nl + 1);
      done = text.empty();
    }
    ++line_no;
    const std::string_view rest = trim_view(raw);
    if (rest.empty() || rest.front() == '#') continue;
    const auto space = rest.find_first_of(" \t");
    const std::string_view directive = rest.substr(0, space);
    const std::string_view body =
        space == std::string_view::npos ? std::string_view{} : trim_view(rest.substr(space));

    ScenarioDirective d;
    d.line_no = line_no;
    d.line = std::string(raw);
    d.body = std::string(body);
    d.body_col = body.empty() ? raw.size() : static_cast<std::size_t>(body.data() - raw.data());
    if (directive == "var") {
      scenario.directives.push_back(parse_var(std::move(d)));
    } else if (directive == "adv") {
      scenario.directives.push_back(parse_predicates(std::move(d), ScenarioDirective::Kind::kAdv));
    } else if (directive == "sub") {
      scenario.directives.push_back(parse_predicates(std::move(d), ScenarioDirective::Kind::kSub));
    } else {
      scenario.directives.push_back(error_directive(
          std::move(d), 0, "",
          "unknown directive '" + std::string(directive) + "' (expected var, adv or sub)"));
    }
  }
  return scenario;
}

}  // namespace evps
