file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_routing.dir/test_overlay_routing.cpp.o"
  "CMakeFiles/test_overlay_routing.dir/test_overlay_routing.cpp.o.d"
  "test_overlay_routing"
  "test_overlay_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
