file(REMOVE_RECURSE
  "CMakeFiles/test_matcher.dir/test_matcher.cpp.o"
  "CMakeFiles/test_matcher.dir/test_matcher.cpp.o.d"
  "test_matcher"
  "test_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
