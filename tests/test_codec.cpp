#include "message/codec.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace evps {
namespace {

TEST(PublicationCodec, ParseBasic) {
  const Publication pub = parse_publication("x = 4; y = 3.5; action = 'pickup'");
  EXPECT_EQ(pub.size(), 3u);
  EXPECT_EQ(pub.get("x")->as_int(), 4);
  EXPECT_DOUBLE_EQ(pub.get("y")->as_double(), 3.5);
  EXPECT_EQ(pub.get("action")->as_string(), "pickup");
}

TEST(PublicationCodec, QuotedSemicolonPreserved) {
  const Publication pub = parse_publication("note = 'a;b'; x = 1");
  EXPECT_EQ(pub.get("note")->as_string(), "a;b");
  EXPECT_EQ(pub.get("x")->as_int(), 1);
}

TEST(PublicationCodec, EmptyInput) {
  EXPECT_TRUE(parse_publication("").empty());
  EXPECT_TRUE(parse_publication("   ").empty());
}

TEST(PublicationCodec, Errors) {
  EXPECT_THROW(parse_publication("novalue"), CodecError);
  EXPECT_THROW(parse_publication("= 3"), CodecError);
}

TEST(PublicationCodec, RoundTrip) {
  const Publication original =
      parse_publication("symbol = 'IBM'; price = 15.27; volume = 100");
  const Publication reparsed = parse_publication(serialize(original));
  EXPECT_EQ(original, reparsed);
}

TEST(PredicateCodec, StaticForms) {
  const Predicate p1 = parse_predicate("x < 3");
  EXPECT_FALSE(p1.is_evolving());
  EXPECT_EQ(p1.op(), RelOp::kLt);
  EXPECT_EQ(p1.constant().as_int(), 3);

  const Predicate p2 = parse_predicate("price >= 15.27");
  EXPECT_EQ(p2.op(), RelOp::kGe);
  EXPECT_DOUBLE_EQ(p2.constant().as_double(), 15.27);

  const Predicate p3 = parse_predicate("symbol = 'IBM'");
  EXPECT_EQ(p3.op(), RelOp::kEq);
  EXPECT_EQ(p3.constant().as_string(), "IBM");

  const Predicate p4 = parse_predicate("state != 'down'");
  EXPECT_EQ(p4.op(), RelOp::kNe);
}

TEST(PredicateCodec, EvolvingForms) {
  const Predicate p = parse_predicate("x >= (-3 + t) * v");
  EXPECT_TRUE(p.is_evolving());
  const MapEnv env{{"t", 1.0}, {"v", 0.5}};
  EXPECT_TRUE(p.matches(Value{0}, env));    // 0 >= -1
  EXPECT_FALSE(p.matches(Value{-2}, env));  // -2 >= -1 false
}

TEST(PredicateCodec, NegativeLiteralIsStatic) {
  const Predicate p = parse_predicate("x > -5");
  EXPECT_FALSE(p.is_evolving());
  EXPECT_EQ(p.constant().as_int(), -5);
}

TEST(PredicateCodec, Errors) {
  EXPECT_THROW(parse_predicate("x"), CodecError);
  EXPECT_THROW(parse_predicate("x <"), CodecError);
  EXPECT_THROW(parse_predicate("< 3"), CodecError);
  EXPECT_THROW(parse_predicate("x < 'unterminated"), CodecError);
  EXPECT_THROW(parse_predicate("x < )bad("), CodecError);
}

TEST(SubscriptionCodec, PredicatesOnly) {
  const Subscription sub = parse_subscription("x >= -3 + t; x <= 3 + t; y >= -2; y <= 2");
  EXPECT_EQ(sub.predicates().size(), 4u);
  EXPECT_TRUE(sub.is_evolving());
  EXPECT_FALSE(sub.is_fully_evolving());
  EXPECT_EQ(sub.mei(), Duration::seconds(1.0));  // defaults
}

TEST(SubscriptionCodec, Options) {
  const Subscription sub = parse_subscription("[mei=2][tt=0.5][validity=10] x >= t");
  EXPECT_EQ(sub.mei(), Duration::seconds(2.0));
  EXPECT_EQ(sub.tt(), Duration::seconds(0.5));
  EXPECT_EQ(sub.validity(), Duration::seconds(10.0));
  EXPECT_EQ(sub.predicates().size(), 1u);
}

TEST(SubscriptionCodec, Errors) {
  EXPECT_THROW(parse_subscription(""), CodecError);
  EXPECT_THROW(parse_subscription("[mei=2]"), CodecError);
  EXPECT_THROW(parse_subscription("[mei=abc] x > 1"), CodecError);
  EXPECT_THROW(parse_subscription("[unknown=1] x > 1"), CodecError);
  EXPECT_THROW(parse_subscription("[mei=1 x > 1"), CodecError);
  EXPECT_THROW(parse_subscription("[mei]x>1"), CodecError);
}

TEST(SubscriptionCodec, RoundTrip) {
  const auto texts = {
      "x >= -3 + t; x <= 3 + t; y >= -2 + t; y <= 2 + t",
      "[mei=0.500000][tt=2.000000] price >= (15 + t); symbol = 'STK042'",
      "[validity=60.000000] distance < maxDist * (maxBw - outgoingBw)",
  };
  for (const auto* text : texts) {
    const Subscription sub = parse_subscription(text);
    const Subscription reparsed = parse_subscription(serialize(sub));
    ASSERT_EQ(sub.predicates().size(), reparsed.predicates().size()) << text;
    for (std::size_t i = 0; i < sub.predicates().size(); ++i) {
      EXPECT_EQ(sub.predicates()[i], reparsed.predicates()[i]) << text;
    }
    EXPECT_EQ(sub.mei(), reparsed.mei());
    EXPECT_EQ(sub.tt(), reparsed.tt());
    EXPECT_EQ(sub.validity(), reparsed.validity());
  }
}

Publication stamped_pub(std::string_view text, std::uint64_t id, std::uint64_t publisher,
                        std::int64_t entry_us) {
  Publication pub = parse_publication(text);
  pub.set_id(MessageId{id});
  pub.set_publisher(ClientId{publisher});
  pub.set_entry_time(SimTime::from_micros(entry_us));
  return pub;
}

TEST(BatchCodec, RoundTripRestoresMetadata) {
  const std::vector<Publication> pubs = {
      stamped_pub("x = 4; y = 3.5; action = 'pickup'", 101, 7, 1234),
      stamped_pub("note = 'a;b\nnewline'; x = 1", 102, 8, 0),
      stamped_pub("price = 15.27; symbol = 'IBM'", 103, 7, -42),
      stamped_pub("", 104, 9, 99),  // empty payload is a valid publication
  };
  const std::string wire = serialize_batch(std::span<const Publication>(pubs));
  const std::vector<Publication> back = parse_publication_batch(wire);
  ASSERT_EQ(back.size(), pubs.size());
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    EXPECT_EQ(back[i], pubs[i]) << i;
    EXPECT_EQ(back[i].id(), pubs[i].id()) << i;
    EXPECT_EQ(back[i].publisher(), pubs[i].publisher()) << i;
    EXPECT_EQ(back[i].entry_time(), pubs[i].entry_time()) << i;
  }
}

TEST(BatchCodec, EmptyBatch) {
  const std::string wire = serialize_batch(std::span<const Publication>{});
  EXPECT_TRUE(parse_publication_batch(wire).empty());
}

TEST(BatchCodec, ArenaOverloadMatchesValueOverload) {
  const std::vector<Publication> pubs = {
      stamped_pub("x = 1", 1, 1, 10),
      stamped_pub("x = 2", 2, 1, 10),
  };
  std::vector<PublicationPtr> ptrs;
  for (const auto& p : pubs) ptrs.push_back(std::make_shared<const Publication>(p));
  std::string arena = "stale contents from a previous flush";
  serialize_batch(std::span<const PublicationPtr>(ptrs), arena);
  EXPECT_EQ(arena, serialize_batch(std::span<const Publication>(pubs)));
  EXPECT_EQ(serialized_batch_size(std::span<const PublicationPtr>(ptrs)), arena.size());
}

TEST(BatchCodec, UnsetIdsMayRepeat) {
  // Ad-hoc publications are serialised before any id is assigned; frames may
  // carry several of them even though VALID duplicate ids are rejected.
  const std::vector<Publication> pubs = {parse_publication("x = 1"), parse_publication("x = 2")};
  const std::vector<Publication> back =
      parse_publication_batch(serialize_batch(std::span<const Publication>(pubs)));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_FALSE(back[0].id().valid());
}

TEST(BatchCodec, OversizedBatchRejectedAtSerialize) {
  const std::vector<Publication> pubs(kMaxBatchPublications + 1);
  EXPECT_THROW((void)serialize_batch(std::span<const Publication>(pubs)), CodecError);
}

}  // namespace
}  // namespace evps
