#include "analysis/audit/auditor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analysis/covering.hpp"

namespace evps::audit {

const char* to_string(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kDeliveryCompleteness: return "delivery-completeness";
    case Invariant::kForest: return "covering-forest";
    case Invariant::kQuiescence: return "quiescence";
    case Invariant::kGhostState: return "ghost-state";
    case Invariant::kTopology: return "topology";
  }
  return "?";
}

bool AuditReport::has(Invariant inv) const noexcept { return count(inv) != 0; }

std::size_t AuditReport::count(Invariant inv) const noexcept {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.invariant == inv) ++n;
  }
  return n;
}

std::string AuditReport::format() const {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << (v.broker.empty() ? std::string("overlay") : v.broker) << ": " << to_string(v.invariant);
    if (v.sub.valid()) os << ": " << v.sub;
    os << ": " << v.message << "\n";
    for (const std::string& w : v.witness) os << "    witness: " << w << "\n";
  }
  os << "audit: " << brokers_audited << " broker(s), " << subscriptions_audited
     << " subscription(s), " << paths_checked << " path(s), " << witnesses_checked
     << " covering witness(es): " << violations.size() << " violation(s)\n";
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void AuditReport::to_json(std::ostream& os) const {
  os << "{\"clean\":" << (clean() ? "true" : "false") << ",\"brokers\":" << brokers_audited
     << ",\"subscriptions\":" << subscriptions_audited << ",\"paths\":" << paths_checked
     << ",\"witnesses\":" << witnesses_checked << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i != 0) os << ",";
    os << "{\"invariant\":\"" << to_string(v.invariant) << "\",\"broker\":\""
       << json_escape(v.broker) << "\",";
    if (v.sub.valid()) {
      os << "\"sub\":" << v.sub.value() << ",";
    } else {
      os << "\"sub\":null,";
    }
    os << "\"message\":\"" << json_escape(v.message) << "\",\"witness\":[";
    for (std::size_t j = 0; j < v.witness.size(); ++j) {
      if (j != 0) os << ",";
      os << "\"" << json_escape(v.witness[j]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
}

namespace {

/// Audit-side re-derivation of the static dedup equivalence: two fully-
/// static installs may share a matcher entry iff they have the same
/// destination and the same multiset of (attribute, op, bit-exact constant)
/// predicates — the exact injectivity contract of static_dedup_key (the
/// byte format differs; only the equivalence classes matter here).
std::string audit_static_key(const InstalledSub& e) {
  std::vector<std::string> parts;
  if (e.sub) {
    parts.reserve(e.sub->predicates().size());
    for (const Predicate& p : e.sub->predicates()) {
      std::string s = std::to_string(p.attr_id());
      s += '~';
      s += std::to_string(static_cast<int>(p.op()));
      s += '~';
      const Value& c = p.constant();
      if (c.is_string()) {
        s += 's';
        s += c.as_string();
      } else if (c.is_int()) {
        s += 'i';
        s += std::to_string(c.as_int());
      } else {
        std::uint64_t bits = 0;
        const double d = c.as_double();
        std::memcpy(&bits, &d, sizeof(bits));
        char buf[24];
        std::snprintf(buf, sizeof(buf), "d%" PRIx64, bits);
        s += buf;
      }
      parts.push_back(std::move(s));
    }
  }
  std::sort(parts.begin(), parts.end());
  std::string key = e.dest.str();
  for (const std::string& p : parts) {
    key += '|';
    key += p;
  }
  return key;
}

struct BrokerCtx {
  const BrokerState* st = nullptr;
  VariableRegistry registry;
  /// Installed subscriptions grouped by destination (witness lookup).
  std::unordered_map<NodeId, std::vector<const std::pair<const SubscriptionId, InstalledSub>*>>
      by_dest;
  std::map<SubscriptionId, const ForestNode*> forest;
};

class Audit {
 public:
  Audit(const OverlaySnapshot& snap, const AuditOptions& opts) : snap_(snap), opts_(opts) {}

  AuditReport run() {
    build();
    check_topology();
    for (std::size_t i = 0; i < ctx_.size(); ++i) {
      check_quiescence(i);
      check_routes(i);
      check_forest(i);
      check_ghost_state(i);
    }
    check_delivery();
    rep_.brokers_audited = ctx_.size();
    return std::move(rep_);
  }

 private:
  void add(Invariant inv, const BrokerState* b, SubscriptionId sub, std::string message,
           std::vector<std::string> witness = {}) {
    Violation v;
    v.invariant = inv;
    v.broker = b != nullptr ? b->name : "";
    v.sub = sub;
    v.message = std::move(message);
    v.witness = std::move(witness);
    rep_.violations.push_back(std::move(v));
  }

  void build() {
    // Merged declaration pool: declarations are broker-local contract
    // metadata, so a covering witness re-proved at broker X may rely on a
    // range only the declaring broker exported.
    std::vector<VariableState> merged;
    std::set<std::string> seen;
    for (const BrokerState& b : snap_.brokers) {
      for (const VariableState& v : b.variables) {
        if (v.declared && seen.insert(v.name).second) merged.push_back(v);
      }
    }
    ctx_.resize(snap_.brokers.size());
    cover_cache_.resize(snap_.brokers.size());
    for (std::size_t i = 0; i < snap_.brokers.size(); ++i) {
      const BrokerState& b = snap_.brokers[i];
      index_.emplace(b.node, i);
      BrokerCtx& c = ctx_[i];
      c.st = &b;
      c.registry = rebuild_registry(b, merged);
      for (const auto& entry : b.engine.installed) {
        c.by_dest[entry.second.dest].push_back(&entry);
      }
      for (const ForestNode& n : b.forest) c.forest.emplace(n.id, &n);
    }
  }

  // --- invariant 5 (substrate): overlay graph sanity -----------------------

  void check_topology() {
    // Union-find over broker links: asymmetric edges, edges to unknown
    // brokers and cycles all void the tree-routing argument every other
    // invariant rests on.
    std::vector<std::size_t> parent(ctx_.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const auto find = [&parent](std::size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (std::size_t i = 0; i < ctx_.size(); ++i) {
      const BrokerState& b = *ctx_[i].st;
      for (const NodeId n : b.broker_neighbors) {
        const auto it = index_.find(n);
        if (it == index_.end()) {
          add(Invariant::kTopology, &b, SubscriptionId::invalid(),
              "broker neighbour " + n.str() + " is not in the snapshot");
          continue;
        }
        const BrokerState& peer = *ctx_[it->second].st;
        if (std::find(peer.broker_neighbors.begin(), peer.broker_neighbors.end(), b.node) ==
            peer.broker_neighbors.end()) {
          add(Invariant::kTopology, &b, SubscriptionId::invalid(),
              "asymmetric link: " + peer.name + " does not list " + b.name + " as a neighbour");
        }
        if (it->second < i) continue;  // count each undirected edge once
        const std::size_t ra = find(i);
        const std::size_t rb = find(it->second);
        if (ra == rb) {
          add(Invariant::kTopology, &b, SubscriptionId::invalid(),
              "overlay cycle through link " + b.name + " - " + peer.name +
                  " (reverse-path routing requires a tree)");
        } else {
          parent[ra] = rb;
        }
      }
    }
  }

  // --- invariant 3: quiescence ---------------------------------------------

  void check_quiescence(std::size_t i) {
    if (!opts_.check_quiescence) return;
    const BrokerState& b = *ctx_[i].st;
    if (b.pending_match_batch != 0) {
      add(Invariant::kQuiescence, &b, SubscriptionId::invalid(),
          "stranded matcher-batch buffer: " + std::to_string(b.pending_match_batch) +
              " publication(s) awaiting a batched match past the barrier");
    }
    for (const PendingLink& p : b.pending_links) {
      if (p.pending == 0) continue;
      add(Invariant::kQuiescence, &b, SubscriptionId::invalid(),
          "stranded link-batch buffer towards " + p.dest.str() + ": " +
              std::to_string(p.pending) + " publication(s) never flushed");
    }
  }

  // --- routing-table sanity (feeds invariants 1 and 4) ---------------------

  void check_routes(std::size_t i) {
    const BrokerState& b = *ctx_[i].st;
    for (const RouteEntry& r : b.routes) {
      if (b.find_installed(r.id) == nullptr) {
        add(Invariant::kGhostState, &b, r.id,
            "routing-table entry for a subscription the engine does not have");
      }
      std::set<NodeId> seen;
      for (const NodeId f : r.forwards) {
        if (!seen.insert(f).second) {
          add(Invariant::kTopology, &b, r.id, "duplicate forward towards " + f.str());
        }
        if (std::find(b.broker_neighbors.begin(), b.broker_neighbors.end(), f) ==
            b.broker_neighbors.end()) {
          add(Invariant::kTopology, &b, r.id,
              "forward towards " + f.str() + ", which is not a broker neighbour");
        }
      }
    }
  }

  // --- invariant 2: covering-forest well-formedness ------------------------

  void check_forest(std::size_t i) {
    const BrokerCtx& c = ctx_[i];
    const BrokerState& b = *c.st;
    if (!b.covering_enabled) {
      if (!b.forest.empty()) {
        add(Invariant::kForest, &b, b.forest.front().id,
            "covering forest present although covering routing is off");
      }
      return;
    }
    for (const auto& [id, e] : b.engine.installed) {
      if (!c.forest.contains(id)) {
        add(Invariant::kForest, &b, id,
            "installed subscription missing from the covering forest (index/engine desync)");
      }
    }
    for (const ForestNode& n : b.forest) {
      const InstalledSub* inst = b.find_installed(n.id);
      if (inst == nullptr) {
        add(Invariant::kGhostState, &b, n.id,
            "covering-forest node does not trace back to a live subscription");
        continue;
      }
      if (!n.parent.valid()) {
        // Root: every child must point back and be childless (depth <= 1).
        for (const SubscriptionId child : n.children) {
          const auto cit = c.forest.find(child);
          if (cit == c.forest.end()) {
            add(Invariant::kForest, &b, n.id,
                "child " + child.str() + " is not in the forest");
            continue;
          }
          if (cit->second->parent != n.id) {
            add(Invariant::kForest, &b, child,
                "listed as a child of " + n.id.str() + " but its parent is " +
                    (cit->second->parent.valid() ? cit->second->parent.str() : "none"));
          }
        }
        continue;
      }
      // Child: parent exists, is a root (acyclicity + depth <= 1), lists it,
      // and provably covers it.
      if (n.parent == n.id) {
        add(Invariant::kForest, &b, n.id, "covering node is its own parent (cycle)");
        continue;
      }
      if (!n.children.empty()) {
        add(Invariant::kForest, &b, n.id,
            "covered child has children of its own (forest depth > 1)");
      }
      const auto pit = c.forest.find(n.parent);
      if (pit == c.forest.end()) {
        add(Invariant::kForest, &b, n.id,
            "orphaned covering child: parent " + n.parent.str() + " is not in the forest");
        continue;
      }
      const ForestNode& parent = *pit->second;
      if (parent.parent.valid()) {
        add(Invariant::kForest, &b, n.id,
            "parent " + n.parent.str() + " is itself covered (forest depth > 1)");
      }
      if (std::find(parent.children.begin(), parent.children.end(), n.id) ==
          parent.children.end()) {
        add(Invariant::kForest, &b, n.id,
            "parent " + n.parent.str() + " does not list it as a child");
      }
      if (opts_.check_covering_proofs) {
        const InstalledSub* pinst = b.find_installed(n.parent);
        if (pinst != nullptr && pinst->sub && inst->sub &&
            !covers_cached(i, n.parent, *pinst->sub, n.id, *inst->sub)) {
          add(Invariant::kForest, &b, n.id,
              "orphaned covering child: " + n.parent.str() +
                  " does not provably cover it under the final variable state",
              {"covers(" + n.parent.str() + ", " + n.id.str() + ") = unknown at " + b.name});
        }
      }
    }
  }

  // --- invariant 4: no ghost state / physical-footprint accounting ---------

  void check_ghost_state(std::size_t i) {
    const BrokerState& b = *ctx_[i].st;
    const EngineState& eng = b.engine;
    const bool lazy_kind = eng.kind == "LEES" || eng.kind == "CLEES" || eng.kind == "hybrid";

    // Dedup-group bookkeeping: members must be live, and each id may belong
    // to at most one group of its flavour.
    std::map<SubscriptionId, const DedupGroup*> static_group_of;
    std::map<SubscriptionId, const DedupGroup*> lazy_group_of;
    for (const DedupGroup& g : eng.dedup_groups) {
      if (g.members.empty()) {
        add(Invariant::kGhostState, &b, SubscriptionId::invalid(),
            "empty dedup group survives under key {" + g.key + "}");
        continue;
      }
      std::string recomputed;
      for (std::size_t m = 0; m < g.members.size(); ++m) {
        const SubscriptionId id = g.members[m];
        auto& group_of = g.lazy ? lazy_group_of : static_group_of;
        if (!group_of.emplace(id, &g).second) {
          add(Invariant::kGhostState, &b, id,
              "subscription belongs to more than one dedup group (refcount skew)");
        }
        const InstalledSub* inst = b.find_installed(id);
        if (inst == nullptr) {
          add(Invariant::kGhostState, &b, id,
              "dedup group member is not installed (refcount skew: removal left the group)");
          continue;
        }
        if (!g.lazy && inst->sub) {
          // All members of a static group must be interchangeable installs.
          const std::string key = audit_static_key(*inst);
          if (m == 0) {
            recomputed = key;
          } else if (key != recomputed) {
            add(Invariant::kGhostState, &b, id,
                "static dedup group mixes non-identical installs (canonical " +
                    g.members.front().str() + " would misroute this member)",
                {"group key {" + g.key + "}"});
          }
        }
        if (g.lazy && !inst->fully_evolving()) {
          add(Invariant::kGhostState, &b, id,
              "lazy dedup group contains a subscription with static predicates "
              "(split installs must never share)");
        }
      }
    }

    // Matcher footprint, both directions.
    std::set<SubscriptionId> matcher(eng.matcher_ids.begin(), eng.matcher_ids.end());
    if (matcher.size() != eng.matcher_ids.size()) {
      add(Invariant::kGhostState, &b, SubscriptionId::invalid(),
          "duplicate subscription id in the matcher");
    }
    std::set<SubscriptionId> lazy_ids;
    for (const LazyEntry& e : eng.lazy_entries) lazy_ids.insert(e.id);

    for (const SubscriptionId id : matcher) {
      if (b.find_installed(id) == nullptr) {
        add(Invariant::kGhostState, &b, id,
            "leaked matcher slot: physically installed but unknown to the engine");
      }
    }
    for (const LazyEntry& e : eng.lazy_entries) {
      const InstalledSub* inst = b.find_installed(e.id);
      if (inst == nullptr) {
        add(Invariant::kGhostState, &b, e.id,
            "leaked lazy-storage entry: evolving part with no live subscription");
      } else if (inst->dest != e.dest) {
        add(Invariant::kGhostState, &b, e.id,
            "lazy-storage entry filed under " + e.dest.str() +
                " but the subscription's destination is " + inst->dest.str());
      }
    }

    for (const auto& [id, inst] : eng.installed) {
      const bool fully_static = !inst.evolving();
      bool expect_matcher = false;
      bool expect_lazy = false;
      std::string role;
      if (fully_static) {
        const auto git = static_group_of.find(id);
        if (git != static_group_of.end()) {
          expect_matcher = git->second->members.front() == id;
          role = expect_matcher ? "canonical of its dedup group" : "deduped behind " +
                 git->second->members.front().str();
        } else if (eng.dedup_identical) {
          add(Invariant::kGhostState, &b, id,
              "fully-static subscription untracked by the dedup table "
              "(refcount skew: its install is unaccounted)");
          expect_matcher = matcher.contains(id);  // avoid a cascading report
        } else {
          expect_matcher = true;
        }
      } else if (eng.kind == "VES") {
        expect_matcher = true;  // materialised version under its own id
        role = "materialised VES version";
      } else if (eng.kind == "LEES") {
        if (inst.fully_evolving()) {
          const auto git = lazy_group_of.find(id);
          if (git != lazy_group_of.end()) {
            expect_lazy = git->second->members.front() == id;
            role = expect_lazy ? "canonical of its lazy dedup group" : "deduped behind " +
                   git->second->members.front().str();
          } else if (eng.dedup_identical) {
            add(Invariant::kGhostState, &b, id,
                "fully-evolving subscription untracked by the lazy dedup table "
                "(refcount skew)");
            expect_lazy = lazy_ids.contains(id);
          } else {
            expect_lazy = true;
          }
        } else {
          expect_matcher = true;  // split: static half under its own id
          expect_lazy = true;
          role = "split install";
        }
      } else if (lazy_kind) {  // CLEES / hybrid
        expect_matcher = inst.static_preds > 0;
        expect_lazy = true;
        role = "lazy store entry";
      } else {
        // static/parametric engine: evolving subscriptions are rejected at
        // install time, so one in the table is itself ghost state.
        add(Invariant::kGhostState, &b, id,
            "evolving subscription installed in a " + eng.kind + " engine");
        continue;
      }
      if (expect_matcher && !matcher.contains(id)) {
        add(Invariant::kGhostState, &b, id,
            "missing matcher install (" + (role.empty() ? "expected physical entry" : role) +
                "): the matcher can never produce this subscription");
      }
      if (!expect_matcher && matcher.contains(id)) {
        add(Invariant::kGhostState, &b, id,
            "unexpected matcher install (" + (role.empty() ? "should be absent" : role) +
                "): refcount skew or stale slot");
      }
      if (lazy_kind) {
        if (expect_lazy && !lazy_ids.contains(id)) {
          add(Invariant::kGhostState, &b, id,
              "missing lazy-storage entry: the evolving part can never be evaluated");
        }
        if (!expect_lazy && lazy_ids.contains(id)) {
          add(Invariant::kGhostState, &b, id,
              "unexpected lazy-storage entry (deduped member should share its canonical's)");
        }
      } else if (lazy_ids.contains(id)) {
        add(Invariant::kGhostState, &b, id,
            "lazy-storage entry in a " + eng.kind + " engine");
      }
    }
  }

  // --- invariant 1: delivery completeness ----------------------------------

  void check_delivery() {
    for (std::size_t h = 0; h < ctx_.size(); ++h) {
      const BrokerState& home = *ctx_[h].st;
      for (const auto& [id, inst] : home.engine.installed) {
        const bool local = !inst.dest_is_broker &&
                           std::find(home.client_neighbors.begin(), home.client_neighbors.end(),
                                     inst.dest) != home.client_neighbors.end();
        if (!local) continue;
        ++rep_.subscriptions_audited;
        audit_subscription(h, id, inst);
      }
    }
  }

  void audit_subscription(std::size_t home, SubscriptionId id, const InstalledSub& inst) {
    const std::vector<std::size_t> toward = next_hop_toward(home);
    std::set<std::pair<std::size_t, NodeId>> reported;  // (failing broker, next hop)
    for (std::size_t e = 0; e < ctx_.size(); ++e) {
      if (!is_entry(e, inst)) continue;
      ++rep_.paths_checked;
      std::vector<std::string> chain;
      std::size_t at = e;
      bool ok = true;
      while (at != home) {
        const std::size_t next = toward[at];
        if (next == kUnreachable) {
          add(Invariant::kDeliveryCompleteness, ctx_[at].st, id,
              "no overlay path from entry broker " + ctx_[e].st->name + " towards " +
                  ctx_[home].st->name,
              chain);
          ok = false;
          break;
        }
        if (!find_witness(at, next, id, inst, chain)) {
          if (reported.emplace(at, ctx_[next].st->node).second) {
            add(Invariant::kDeliveryCompleteness, ctx_[at].st, id,
                "black hole: a publication entering at " + ctx_[e].st->name +
                    " is never forwarded towards " + ctx_[next].st->name +
                    " (no installed subscription or covering witness points that way)",
                chain);
          }
          ok = false;
          break;
        }
        at = next;
      }
      if (!ok) continue;
      // Final hop: the home broker must deliver to the subscriber's client
      // link — that is the audited install itself, so the chain closes.
    }
  }

  [[nodiscard]] bool is_entry(std::size_t e, const InstalledSub& inst) const {
    const BrokerState& b = *ctx_[e].st;
    if (b.routing != "advertisement") return true;  // flooding: any client link
    for (const AdvertEntry& a : b.adverts) {
      const bool origin =
          std::find(b.client_neighbors.begin(), b.client_neighbors.end(), a.from) !=
          b.client_neighbors.end();
      if (!origin) continue;
      if (!a.adv || !inst.sub || a.adv->intersects(*inst.sub)) return true;
    }
    return false;
  }

  /// Some installed subscription at `at` with destination == broker `next`
  /// that is, or provably covers, the audited subscription.
  bool find_witness(std::size_t at, std::size_t next, SubscriptionId id,
                    const InstalledSub& inst, std::vector<std::string>& chain) {
    const BrokerCtx& c = ctx_[at];
    const NodeId next_node = ctx_[next].st->node;
    const auto it = c.by_dest.find(next_node);
    if (it != c.by_dest.end()) {
      for (const auto* entry : it->second) {
        if (entry->first == id) {
          chain.push_back(c.st->name + ": " + id.str() + " itself -> " + ctx_[next].st->name);
          return true;
        }
      }
      if (opts_.check_covering_proofs && inst.sub) {
        for (const auto* entry : it->second) {
          if (!entry->second.sub) continue;
          if (covers_cached(at, entry->first, *entry->second.sub, id, *inst.sub)) {
            chain.push_back(c.st->name + ": " + id.str() + " covered by " + entry->first.str() +
                            " -> " + ctx_[next].st->name);
            return true;
          }
        }
      } else if (!opts_.check_covering_proofs && !it->second.empty()) {
        // Structural-only pass: accept any correctly-pointed install.
        chain.push_back(c.st->name + ": structural witness " + it->second.front()->first.str() +
                        " -> " + ctx_[next].st->name);
        return true;
      }
    }
    return false;
  }

  bool covers_cached(std::size_t broker, SubscriptionId coverer_id, const Subscription& coverer,
                     SubscriptionId covered_id, const Subscription& covered) {
    auto& cache = cover_cache_[broker];
    const auto key = std::make_pair(coverer_id, covered_id);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    ++rep_.witnesses_checked;
    const bool ok = covers(coverer, covered, ctx_[broker].registry) == CoverVerdict::kCovers;
    cache.emplace(key, ok);
    return ok;
  }

  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

  /// next[i] = index of i's neighbour one hop closer to `home` (BFS over the
  /// broker tree), kUnreachable when disconnected. Cached per home.
  const std::vector<std::size_t>& next_hop_toward(std::size_t home) {
    auto [it, inserted] = toward_cache_.try_emplace(home);
    if (!inserted) return it->second;
    std::vector<std::size_t>& next = it->second;
    next.assign(ctx_.size(), kUnreachable);
    std::deque<std::size_t> queue{home};
    std::vector<bool> seen(ctx_.size(), false);
    seen[home] = true;
    while (!queue.empty()) {
      const std::size_t cur = queue.front();
      queue.pop_front();
      for (const NodeId n : ctx_[cur].st->broker_neighbors) {
        const auto nit = index_.find(n);
        if (nit == index_.end() || seen[nit->second]) continue;
        seen[nit->second] = true;
        next[nit->second] = cur;
        queue.push_back(nit->second);
      }
    }
    return next;
  }

  const OverlaySnapshot& snap_;
  const AuditOptions& opts_;
  AuditReport rep_;
  std::map<NodeId, std::size_t> index_;
  std::vector<BrokerCtx> ctx_;
  std::vector<std::map<std::pair<SubscriptionId, SubscriptionId>, bool>> cover_cache_;
  std::map<std::size_t, std::vector<std::size_t>> toward_cache_;
};

}  // namespace

AuditReport OverlayAuditor::audit(const OverlaySnapshot& snap) const {
  return Audit(snap, options_).run();
}

}  // namespace evps::audit
