file(REMOVE_RECURSE
  "CMakeFiles/fig10c_visibility.dir/bench/fig10c_visibility.cpp.o"
  "CMakeFiles/fig10c_visibility.dir/bench/fig10c_visibility.cpp.o.d"
  "bench/fig10c_visibility"
  "bench/fig10c_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
