#include "message/subscription.hpp"

namespace evps {

bool Subscription::is_evolving() const noexcept {
  for (const auto& p : predicates_) {
    if (p.is_evolving()) return true;
  }
  return false;
}

bool Subscription::is_fully_evolving() const noexcept {
  if (predicates_.empty()) return false;
  for (const auto& p : predicates_) {
    if (!p.is_evolving()) return false;
  }
  return true;
}

std::vector<Predicate> Subscription::static_predicates() const {
  std::vector<Predicate> out;
  for (const auto& p : predicates_) {
    if (!p.is_evolving()) out.push_back(p);
  }
  return out;
}

std::vector<Predicate> Subscription::evolving_predicates() const {
  std::vector<Predicate> out;
  for (const auto& p : predicates_) {
    if (p.is_evolving()) out.push_back(p);
  }
  return out;
}

std::set<std::string> Subscription::variables() const {
  std::set<std::string> out;
  for (const auto& p : predicates_) {
    if (p.is_evolving()) p.fun()->collect_variables(out);
  }
  return out;
}

bool Subscription::matches(const Publication& pub, const Env& env) const {
  if (predicates_.empty()) return false;
  for (const auto& p : predicates_) {
    const Value* v = pub.get(p.attr_id());
    if (v == nullptr || !p.matches(*v, env)) return false;
  }
  return true;
}

bool Subscription::matches(const Publication& pub) const {
  if (predicates_.empty()) return false;
  for (const auto& p : predicates_) {
    const Value* v = pub.get(p.attr_id());
    if (v == nullptr || !p.matches(*v)) return false;
  }
  return true;
}

Subscription Subscription::materialize(const Env& env) const {
  Subscription out = *this;
  out.predicates_.clear();
  out.predicates_.reserve(predicates_.size());
  for (const auto& p : predicates_) out.predicates_.push_back(p.materialize(env));
  return out;
}

std::string Subscription::to_string() const {
  std::string out = id_.str() + "@" + subscriber_.str() + " {";
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i != 0) out += "; ";
    out += predicates_[i].to_string();
  }
  out += "}";
  return out;
}

}  // namespace evps
