// High-frequency trading workload (Section VI-B, Figures 6 and 7).
//
// Three simulated stock markets, each modelled with three edge brokers and a
// core broker; the cores connect to one central broker (13 brokers total).
// Nine brokerage-firm publishers (one per edge broker) publish price and
// availability quotes for 500 stocks; up to 90 HFT client firms, uniformly
// distributed across the markets, each track 10 stocks with narrow price
// bands that are constantly re-centred on the firm's price prediction.
//
// The intended interest of a (client, slot) pair is a *piecewise-linear band
// trajectory*: at the start of each validity epoch the band centre snaps to
// the current model price of the slot's stock and then drifts linearly at
// the stock's drift rate. Evolving subscriptions express one epoch exactly
// (centre = c0 + drift * t); the baselines approximate it by re-centring the
// band on every change tick (resubscription: unsubscribe + subscribe,
// parametric: one update message).
//
// Substitutions vs. the paper (see DESIGN.md): the S&P 500 feed and activity
// trace are replaced by a seeded deterministic price model
// (base + drift*t + seasonal sine) and a seeded availability toggle.
#pragma once

#include <memory>
#include <vector>

#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/traffic.hpp"
#include "workloads/system_kind.hpp"

namespace evps {

struct HftConfig {
  SystemKind system = SystemKind::kLees;
  std::uint64_t seed = 42;

  std::size_t markets = 3;
  std::size_t edges_per_market = 3;
  std::size_t publishers = 9;
  std::size_t clients = 90;
  std::size_t stocks = 500;
  std::size_t stocks_per_client = 10;

  /// Publications per second per publisher (paper: 1000; scaled down by
  /// default so the accuracy experiments run quickly — the traffic metric is
  /// independent of the publication rate).
  double pub_rate = 50.0;

  /// Interest changes per minute per subscription (Figure 6: 30 and 12).
  double change_rate_per_min = 30.0;

  /// Evolving subscription lifetime; each is replaced (new sub + unsub of
  /// the old one) at this period. Paper: 60 s; Figure 6(c) uses 20 s.
  Duration validity = Duration::seconds(60.0);

  Duration mei = Duration::seconds(1.0);
  Duration tt = Duration::seconds(1.0);

  Duration client_latency = Duration::millis(2);
  Duration edge_core_latency = Duration::millis(5);
  Duration core_central_latency = Duration::millis(5);

  /// Delay the resubscription baseline waits between the unsubscribe and the
  /// new subscribe (the "slow unsubscription and subscription process
  /// involving several rounds of messaging", Section VI-B).
  Duration resub_settle = Duration::millis(10);

  /// Half-width of the tracked price band, in dollars.
  double band_half_width = 0.25;

  SimTime duration = SimTime::from_seconds(300.0);
  Duration traffic_interval = Duration::minutes(1.0);

  bool snapshot_consistency = false;

  // --- broker matrix knobs (sweep harness) ----------------------------------
  // Defaults reproduce the historical flooding, single-shard, unbatched
  // topology bit for bit; the sweep driver varies them to span the matrix.
  RoutingMode routing = RoutingMode::kFlooding;
  /// Matcher shards/threads inside each broker engine (0 = single shard).
  std::size_t matcher_threads = 0;
  /// Publication batch size inside each broker (1 = no batching).
  std::size_t batch_size = 1;
  /// Per-link outgoing batch size (0 = EVPS_LINK_BATCH env, default 1).
  std::size_t link_batch_size = 0;
};

class HftExperiment {
 public:
  explicit HftExperiment(const HftConfig& config);

  /// Build the deployment and run the full workload to config.duration.
  void run();

  [[nodiscard]] const TrafficProbe& traffic() const { return *traffic_probe_; }
  [[nodiscard]] DeliveryLog delivery_log() const { return collect_delivery_log(overlay_); }
  [[nodiscard]] Overlay& overlay() noexcept { return overlay_; }
  [[nodiscard]] const HftConfig& config() const noexcept { return cfg_; }

  /// Aggregate engine processing time across brokers (seconds).
  [[nodiscard]] double engine_seconds() const noexcept { return overlay_.total_engine_seconds(); }

  /// Deterministic model price of `stock` at time `t` (same in every run
  /// with the same seed).
  [[nodiscard]] double model_price(std::size_t stock, SimTime t) const;

  /// Intended band centre for a subscription slot at time `t` (the
  /// piecewise-linear trajectory every system approximates).
  [[nodiscard]] double intended_center(std::size_t client_index, std::size_t slot,
                                       SimTime t) const;

 private:
  struct StockModel {
    double base;
    double drift;      // $/s
    double amplitude;  // seasonal component
    double omega;
    double phase;
  };

  struct Slot {
    std::size_t stock = 0;
    SubscriptionId current_sub{};
  };

  struct Firm {
    PubSubClient* client = nullptr;
    std::vector<Slot> slots;
    Duration stagger = Duration::zero();
  };

  void build_stocks();
  void build_topology();
  void build_publishers();
  void build_subscribers();

  [[nodiscard]] SimTime epoch_start(const Firm& firm, SimTime t) const;

  /// Subscription predicates for `slot` with band centred per `system`.
  [[nodiscard]] Subscription make_evolving_subscription(const Firm& firm, std::size_t slot,
                                                        SimTime now) const;
  [[nodiscard]] Subscription make_static_subscription(const Firm& firm, std::size_t slot,
                                                      SimTime now) const;

  void schedule_epoch_replacements(std::size_t firm_index);
  void schedule_change_ticks(std::size_t firm_index);

  HftConfig cfg_;
  Simulator sim_;
  Overlay overlay_;
  Rng rng_;

  std::vector<StockModel> stocks_;
  std::vector<Broker*> edge_brokers_;  // one entry per edge, round-robin targets
  std::vector<PubSubClient*> publishers_;
  std::vector<Firm> firms_;
  std::unique_ptr<TrafficProbe> traffic_probe_;
  bool ran_ = false;
};

}  // namespace evps
