// Multi-broker overlay routing: subscription flooding, publication
// forwarding along reverse paths, unsubscription propagation,
// advertisement-based routing, variable propagation.
#include <gtest/gtest.h>

#include "broker/audit_hook.hpp"
#include "broker/overlay.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

BrokerConfig make_config(EngineKind kind, RoutingMode routing) {
  BrokerConfig cfg;
  cfg.engine.kind = kind;
  cfg.routing = routing;
  return cfg;
}

/// End-state invariant check: the settled overlay must audit clean
/// (delivery completeness, forest, quiescence, ghost state — DESIGN.md §15).
void expect_audit_clean(const Overlay& overlay) {
  try {
    audit::SimAuditHook(overlay).check();
  } catch (const audit::AuditFailure& failure) {
    ADD_FAILURE() << failure.what();
  }
}

struct LineOverlayTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  std::vector<Broker*> brokers;
  PubSubClient* subscriber = nullptr;
  PubSubClient* publisher = nullptr;

  void build(RoutingMode routing, EngineKind kind = EngineKind::kLees) {
    brokers = overlay.build_line(3, make_config(kind, routing), Duration::millis(5));
    subscriber = &overlay.add_client("sub");
    publisher = &overlay.add_client("pub");
    subscriber->connect(*brokers[0], Duration::millis(1));
    publisher->connect(*brokers[2], Duration::millis(1));
  }
};

TEST_F(LineOverlayTest, SubscriptionFloodsAllBrokers) {
  build(RoutingMode::kFlooding);
  subscriber->subscribe("x >= 0");
  sim.run_until(sec(1));
  for (auto* b : brokers) EXPECT_EQ(b->subscription_count(), 1u) << b->name();
  // Each broker received exactly one subscribe message.
  EXPECT_EQ(overlay.total_subscription_msgs(), 3u);
}

TEST_F(LineOverlayTest, PublicationRoutedAcrossOverlay) {
  build(RoutingMode::kFlooding);
  subscriber->subscribe("x >= 0; x <= 10");
  sim.run_until(sec(1));
  publisher->publish("x = 5");
  publisher->publish("x = 11");
  sim.run_until(sec(2));
  ASSERT_EQ(subscriber->deliveries().size(), 1u);
  EXPECT_EQ(subscriber->deliveries()[0].pub.get("x")->as_int(), 5);
  // Publication hop latency: 1ms + 5ms + 5ms + 1ms.
  EXPECT_EQ(subscriber->deliveries()[0].when, sec(1) + Duration::millis(12));
  expect_audit_clean(overlay);
}

TEST_F(LineOverlayTest, NonMatchingPublicationNotForwardedToSubscriberEdge) {
  build(RoutingMode::kFlooding);
  subscriber->subscribe("x >= 0; x <= 10");
  sim.run_until(sec(1));
  brokers[0]->reset_stats();
  publisher->publish("x = 999");
  sim.run_until(sec(2));
  // The entry broker drops it: no matching subscription path.
  EXPECT_EQ(brokers[0]->stats().publications, 0u);
}

TEST_F(LineOverlayTest, UnsubscribePropagates) {
  build(RoutingMode::kFlooding);
  const auto id = subscriber->subscribe("x >= 0");
  sim.run_until(sec(1));
  subscriber->unsubscribe(id);
  sim.run_until(sec(2));
  for (auto* b : brokers) EXPECT_EQ(b->subscription_count(), 0u) << b->name();
  publisher->publish("x = 1");
  sim.run_until(sec(3));
  EXPECT_TRUE(subscriber->deliveries().empty());
  // A full unsubscribe must leave zero ghost state anywhere in the overlay.
  expect_audit_clean(overlay);
}

TEST_F(LineOverlayTest, EvolvingSubscriptionEvaluatedPerBroker) {
  build(RoutingMode::kFlooding);
  subscriber->subscribe("x >= -3 + t; x <= 3 + t");
  sim.run_until(sec(2));
  publisher->publish("x = 4");  // at t~2, window [-1, 5]
  sim.run_until(sec(3));
  EXPECT_EQ(subscriber->deliveries().size(), 1u);
}

TEST_F(LineOverlayTest, VesEvolutionHappensOnEveryBroker) {
  build(RoutingMode::kFlooding, EngineKind::kVes);
  subscriber->subscribe("[mei=0.5] x <= 2 * t");
  sim.run_until(sec(3));
  for (auto* b : brokers) {
    EXPECT_GE(b->engine().costs().evolutions, 4u) << b->name();
  }
  publisher->publish("x = 4");  // bound ~6 at t=3
  sim.run_until(sec(4));
  EXPECT_EQ(subscriber->deliveries().size(), 1u);
  expect_audit_clean(overlay);
}

TEST_F(LineOverlayTest, VariableUpdateFloodsBrokers) {
  build(RoutingMode::kFlooding);
  brokers[2]->set_variable("v", 0.25);
  sim.run_until(sec(1));
  for (auto* b : brokers) EXPECT_EQ(b->variables().get("v"), 0.25) << b->name();
}

TEST_F(LineOverlayTest, ParametricUpdatePropagatesAlongSubscriptionPath) {
  build(RoutingMode::kFlooding, EngineKind::kParametric);
  const auto id = subscriber->subscribe("price >= 10; price <= 12");
  sim.run_until(sec(1));
  subscriber->update_subscription(id, {Value{20.0}, Value{22.0}});
  sim.run_until(sec(2));
  publisher->publish("price = 21");
  publisher->publish("price = 11");
  sim.run_until(sec(3));
  ASSERT_EQ(subscriber->deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(*subscriber->deliveries()[0].pub.get("price")->numeric(), 21.0);
  // Every broker saw 1 subscribe + 1 update.
  EXPECT_EQ(overlay.total_subscription_msgs(), 6u);
}

struct AdvertisementRoutingTest : ::testing::Test {
  // Star: core with three edges. Publisher on edge0 advertises; subscribers
  // sit on edge1/edge2.
  Simulator sim;
  Overlay overlay{sim};
  std::vector<Broker*> brokers;
  PubSubClient* publisher = nullptr;
  PubSubClient* matching_sub = nullptr;
  PubSubClient* disjoint_sub = nullptr;

  void SetUp() override {
    brokers = overlay.build_star(3, make_config(EngineKind::kLees, RoutingMode::kAdvertisement),
                                 Duration::millis(5));
    publisher = &overlay.add_client("pub");
    matching_sub = &overlay.add_client("match");
    disjoint_sub = &overlay.add_client("disjoint");
    publisher->connect(*brokers[1], Duration::millis(1));
    matching_sub->connect(*brokers[2], Duration::millis(1));
    disjoint_sub->connect(*brokers[3], Duration::millis(1));
  }
};

TEST_F(AdvertisementRoutingTest, SubscriptionOnlyForwardedTowardsIntersectingAdverts) {
  publisher->advertise({parse_predicate("price >= 0"), parse_predicate("price <= 100")});
  sim.run_until(sec(1));
  matching_sub->subscribe("price >= 50; price <= 60");
  disjoint_sub->subscribe("price >= 500; price <= 600");
  sim.run_until(sec(2));
  // The matching subscription reaches the publisher's edge broker; the
  // disjoint one stays on its own edge.
  EXPECT_EQ(brokers[1]->subscription_count(), 1u);
  EXPECT_EQ(brokers[2]->subscription_count(), 1u);  // matching sub local
  EXPECT_EQ(brokers[3]->subscription_count(), 1u);  // disjoint sub local only
  EXPECT_EQ(brokers[0]->subscription_count(), 1u);  // core holds the matching one

  publisher->publish("price = 55");
  sim.run_until(sec(3));
  EXPECT_EQ(matching_sub->deliveries().size(), 1u);
  EXPECT_TRUE(disjoint_sub->deliveries().empty());
  expect_audit_clean(overlay);
}

TEST_F(AdvertisementRoutingTest, AdvertisementArrivingAfterSubscriptionTriggersCatchUp) {
  matching_sub->subscribe("price >= 50; price <= 60");
  sim.run_until(sec(1));
  // No adverts yet: the subscription stays local.
  EXPECT_EQ(brokers[1]->subscription_count(), 0u);
  publisher->advertise({parse_predicate("price >= 0"), parse_predicate("price <= 100")});
  sim.run_until(sec(2));
  // Catch-up forwarding pushed the subscription towards the new advert.
  EXPECT_EQ(brokers[1]->subscription_count(), 1u);
  publisher->publish("price = 55");
  sim.run_until(sec(3));
  EXPECT_EQ(matching_sub->deliveries().size(), 1u);
}

TEST_F(AdvertisementRoutingTest, UnadvertiseRemovesState) {
  const auto adv = publisher->advertise({parse_predicate("price >= 0")});
  sim.run_until(sec(1));
  publisher->unadvertise(adv);
  sim.run_until(sec(2));
  // New subscriptions no longer forwarded anywhere.
  matching_sub->subscribe("price >= 1; price <= 2");
  sim.run_until(sec(3));
  EXPECT_EQ(brokers[1]->subscription_count(), 0u);
  EXPECT_EQ(brokers[0]->subscription_count(), 0u);
  expect_audit_clean(overlay);
}

TEST_F(AdvertisementRoutingTest, EvolvingSubscriptionsAlwaysForwardedConservatively) {
  publisher->advertise({parse_predicate("price >= 0"), parse_predicate("price <= 100")});
  sim.run_until(sec(1));
  // Evolving predicate currently outside the advertised range: still routed.
  matching_sub->subscribe("price >= 500 + t; price <= 510 + t");
  sim.run_until(sec(2));
  EXPECT_EQ(brokers[1]->subscription_count(), 1u);
}

}  // namespace
}  // namespace evps
