#include "expr/ast.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace evps {

double MapEnv::lookup(std::string_view name) const {
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) throw UnboundVariableError(name);
  return it->second;
}

bool MapEnv::has(std::string_view name) const { return bindings_.contains(name); }

std::string_view to_string(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kPow: return "^";
  }
  return "?";
}

std::string_view to_string(UnaryOp op) noexcept {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kAbs: return "abs";
    case UnaryOp::kFloor: return "floor";
    case UnaryOp::kCeil: return "ceil";
    case UnaryOp::kSqrt: return "sqrt";
    case UnaryOp::kSin: return "sin";
    case UnaryOp::kCos: return "cos";
    case UnaryOp::kSign: return "sign";
  }
  return "?";
}

std::string_view to_string(CallFn fn) noexcept {
  switch (fn) {
    case CallFn::kMin: return "min";
    case CallFn::kMax: return "max";
    case CallFn::kClamp: return "clamp";
    case CallFn::kStep: return "step";
  }
  return "?";
}

namespace {

bool node_is_constant(const Expr::Node& node) {
  return std::visit(
      [](const auto& n) -> bool {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Expr::Const>) {
          return true;
        } else if constexpr (std::is_same_v<T, Expr::Var>) {
          return false;
        } else if constexpr (std::is_same_v<T, Expr::Unary>) {
          return n.operand->is_constant();
        } else if constexpr (std::is_same_v<T, Expr::Binary>) {
          return n.lhs->is_constant() && n.rhs->is_constant();
        } else {
          for (const auto& a : n.args) {
            if (!a->is_constant()) return false;
          }
          return true;
        }
      },
      node);
}

std::size_t expected_arity_min(CallFn fn) {
  switch (fn) {
    case CallFn::kMin:
    case CallFn::kMax: return 1;
    case CallFn::kClamp: return 3;
    case CallFn::kStep: return 1;
  }
  return 0;
}

std::size_t expected_arity_max(CallFn fn) {
  switch (fn) {
    case CallFn::kMin:
    case CallFn::kMax: return SIZE_MAX;
    case CallFn::kClamp: return 3;
    case CallFn::kStep: return 1;
  }
  return 0;
}

}  // namespace

Expr::Expr(Node node) : node_(std::move(node)), const_(node_is_constant(node_)) {}

ExprPtr Expr::constant(double value) { return ExprPtr(new Expr(Const{value})); }

ExprPtr Expr::variable(std::string name) {
  if (name.empty()) throw std::invalid_argument("variable name must not be empty");
  return ExprPtr(new Expr(Var{std::move(name)}));
}

ExprPtr Expr::unary(UnaryOp op, ExprPtr operand) {
  if (!operand) throw std::invalid_argument("unary operand must not be null");
  return ExprPtr(new Expr(Unary{op, std::move(operand)}));
}

ExprPtr Expr::binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  if (!lhs || !rhs) throw std::invalid_argument("binary operands must not be null");
  return ExprPtr(new Expr(Binary{op, std::move(lhs), std::move(rhs)}));
}

ExprPtr Expr::call(CallFn fn, std::vector<ExprPtr> args) {
  if (args.size() < expected_arity_min(fn) || args.size() > expected_arity_max(fn)) {
    throw std::invalid_argument("wrong arity for builtin " + std::string(evps::to_string(fn)));
  }
  for (const auto& a : args) {
    if (!a) throw std::invalid_argument("call argument must not be null");
  }
  return ExprPtr(new Expr(Call{fn, std::move(args)}));
}

double Expr::eval(const Env& env) const {
  return std::visit(
      [&](const auto& n) -> double {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Const>) {
          return n.value;
        } else if constexpr (std::is_same_v<T, Var>) {
          return env.lookup(n.name);
        } else if constexpr (std::is_same_v<T, Unary>) {
          const double x = n.operand->eval(env);
          switch (n.op) {
            case UnaryOp::kNeg: return -x;
            case UnaryOp::kAbs: return std::fabs(x);
            case UnaryOp::kFloor: return std::floor(x);
            case UnaryOp::kCeil: return std::ceil(x);
            case UnaryOp::kSqrt: return std::sqrt(x);
            case UnaryOp::kSin: return std::sin(x);
            case UnaryOp::kCos: return std::cos(x);
            case UnaryOp::kSign: return x < 0 ? -1.0 : (x > 0 ? 1.0 : 0.0);
          }
          return 0;
        } else if constexpr (std::is_same_v<T, Binary>) {
          const double a = n.lhs->eval(env);
          const double b = n.rhs->eval(env);
          switch (n.op) {
            case BinaryOp::kAdd: return a + b;
            case BinaryOp::kSub: return a - b;
            case BinaryOp::kMul: return a * b;
            case BinaryOp::kDiv: return a / b;
            case BinaryOp::kMod: return std::fmod(a, b);
            case BinaryOp::kPow: return std::pow(a, b);
          }
          return 0;
        } else {
          switch (n.fn) {
            case CallFn::kMin: {
              double m = n.args.front()->eval(env);
              for (std::size_t i = 1; i < n.args.size(); ++i) m = std::min(m, n.args[i]->eval(env));
              return m;
            }
            case CallFn::kMax: {
              double m = n.args.front()->eval(env);
              for (std::size_t i = 1; i < n.args.size(); ++i) m = std::max(m, n.args[i]->eval(env));
              return m;
            }
            case CallFn::kClamp: {
              const double x = n.args[0]->eval(env);
              const double lo = n.args[1]->eval(env);
              const double hi = n.args[2]->eval(env);
              return std::min(std::max(x, lo), hi);
            }
            case CallFn::kStep: {
              return n.args[0]->eval(env) < 0 ? 0.0 : 1.0;
            }
          }
          return 0;
        }
      },
      node_);
}

void Expr::collect_variables(std::set<std::string>& out) const {
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Var>) {
          out.insert(n.name);
        } else if constexpr (std::is_same_v<T, Unary>) {
          n.operand->collect_variables(out);
        } else if constexpr (std::is_same_v<T, Binary>) {
          n.lhs->collect_variables(out);
          n.rhs->collect_variables(out);
        } else if constexpr (std::is_same_v<T, Call>) {
          for (const auto& a : n.args) a->collect_variables(out);
        }
      },
      node_);
}

bool Expr::equals(const Expr& other) const noexcept {
  if (node_.index() != other.node_.index()) return false;
  return std::visit(
      [&](const auto& a) -> bool {
        using T = std::decay_t<decltype(a)>;
        const auto& b = std::get<T>(other.node_);
        if constexpr (std::is_same_v<T, Const>) {
          return a.value == b.value;
        } else if constexpr (std::is_same_v<T, Var>) {
          return a.name == b.name;
        } else if constexpr (std::is_same_v<T, Unary>) {
          return a.op == b.op && a.operand->equals(*b.operand);
        } else if constexpr (std::is_same_v<T, Binary>) {
          return a.op == b.op && a.lhs->equals(*b.lhs) && a.rhs->equals(*b.rhs);
        } else {
          if (a.fn != b.fn || a.args.size() != b.args.size()) return false;
          for (std::size_t i = 0; i < a.args.size(); ++i) {
            if (!a.args[i]->equals(*b.args[i])) return false;
          }
          return true;
        }
      },
      node_);
}

std::string Expr::to_string() const {
  std::ostringstream os;
  os.precision(17);  // max_digits10: doubles survive the round-trip exactly
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Const>) {
          // Parenthesise negatives so precedence survives reparsing
          // (e.g. (-2) ^ t is not -(2 ^ t)).
          if (std::signbit(n.value)) {
            os << "(" << n.value << ")";
          } else {
            os << n.value;
          }
        } else if constexpr (std::is_same_v<T, Var>) {
          os << n.name;
        } else if constexpr (std::is_same_v<T, Unary>) {
          if (n.op == UnaryOp::kNeg) {
            os << "(-" << n.operand->to_string() << ")";
          } else {
            os << evps::to_string(n.op) << "(" << n.operand->to_string() << ")";
          }
        } else if constexpr (std::is_same_v<T, Binary>) {
          os << "(" << n.lhs->to_string() << " " << evps::to_string(n.op) << " "
             << n.rhs->to_string() << ")";
        } else {
          os << evps::to_string(n.fn) << "(";
          for (std::size_t i = 0; i < n.args.size(); ++i) {
            if (i != 0) os << ", ";
            os << n.args[i]->to_string();
          }
          os << ")";
        }
      },
      node_);
  return os.str();
}

}  // namespace evps
