# Empty compiler generated dependencies file for test_clees.
# This may be replaced when dependencies are built.
