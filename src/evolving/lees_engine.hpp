// Lazy Evaluation Evolving Subscriptions (LEES) — Sections IV-B and V-B.
//
// A subscription is split in two parts sharing its id: the non-evolving
// predicates go into the standard matcher (producing match set M1), while
// the evolving predicates enter the Lazy Evolution Matching Engine (LEME),
// which is evaluated on demand for every incoming publication (producing
// M2). A publication is forwarded towards subscriptions in M1 ∩ M2;
// single-part subscriptions (only static or only evolving predicates) are
// flagged and decided by their one engine alone.
//
// The LEME groups evolving parts by *destination* (next hop): once any
// subscription of a destination is known to match, evaluation for that
// destination stops, because the publication must be forwarded there
// regardless of further matches — the early-exit behaviour behind
// Figure 10(b).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "evolving/engine.hpp"

namespace evps {

class LeesEngine final : public BrokerEngine {
 public:
  explicit LeesEngine(const EngineConfig& config) : BrokerEngine(config) {}

  /// Number of subscriptions with at least one evolving predicate.
  [[nodiscard]] std::size_t leme_size() const noexcept { return evolving_count_; }

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;

 private:
  struct EvolvingPart {
    SubscriptionId id;
    SubscriptionPtr sub;  // carries epoch and metadata
    std::vector<Predicate> evolving_preds;
    bool has_static_part = false;
  };

  /// True iff all evolving predicates are satisfied by `pub` under `scope`.
  static bool evolving_part_matches(const EvolvingPart& part, const Publication& pub,
                                    const Env& scope);

  // LEME: evolving parts grouped per destination, deterministic order.
  std::map<NodeId, std::vector<EvolvingPart>> leme_;
  std::size_t evolving_count_ = 0;
};

}  // namespace evps
