#include "evolving/hybrid_engine.hpp"

#include <algorithm>

namespace evps {

std::size_t HybridEngine::versioned_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [dest, group] : storage_.groups()) {
    for (const auto& part : group.parts) {
      if (part.extra.mode == Mode::kVersioned) ++n;
    }
  }
  return n;
}

void HybridEngine::do_add(const Installed& entry, EngineHost& host) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_add_static(entry);
    return;
  }
  ensure_timer(host);
  const auto static_part = sub.static_predicates();
  auto part = storage_.make_part(entry.sub, !static_part.empty());
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  storage_.add(std::move(part), entry.dest);
}

void HybridEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_remove_static(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  storage_.remove(sub.id(), entry.dest);
}

void HybridEngine::ensure_timer(EngineHost& host) {
  timer_host_ = &host;
  if (timer_running_) return;
  timer_running_ = true;
  host.schedule(tick_period(), [this]() { on_tick(*timer_host_); });
}

void HybridEngine::on_tick(EngineHost& host) {
  // 1. Refresh versioned parts (the VES-like maintenance work).
  // 2. Re-classify every part from its probe count this window: versioned
  //    iff it was probed more often than it would be refreshed.
  const double window_s = tick_period().count_seconds();
  const double refreshes_per_window =
      window_s / std::max(1e-9, config_.default_mei.count_seconds());
  for (auto& [dest, group] : storage_.groups()) {
    for (auto& part : group.parts) {
      if (part.extra.mode == Mode::kVersioned) refresh(part, host);
      const auto probes = part.extra.probes_this_window;
      part.extra.probes_this_window = 0;
      const Mode wanted = static_cast<double>(probes) > refreshes_per_window
                              ? Mode::kVersioned
                              : Mode::kLazy;
      if (wanted == part.extra.mode) continue;
      part.extra.mode = wanted;
      if (wanted == Mode::kVersioned) {
        refresh(part, host);  // enter versioned mode with a fresh version
      } else {
        part.extra.version_expires = SimTime::zero();  // lazy mode re-evaluates
      }
    }
  }
  if (storage_.size() == 0) {
    timer_running_ = false;  // go quiescent until the next evolving add
    return;
  }
  host.schedule(tick_period(), [this]() { on_tick(*timer_host_); });
}

void HybridEngine::refresh(Storage::Part& part, EngineHost& host) {
  const ScopedTimer timer(costs_.maintenance);
  scope_.rebind(&host.variables(), host.now());
  scope_.set_epoch(part.sub->epoch());
  materialize_bounds(part.preds, scope_, eval_stack_, part.extra.bounds);
  ++costs_.evolutions;
}

void HybridEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                            EngineHost& host, std::vector<NodeId>& destinations) {
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  storage_.begin_match();
  for (const auto id : m1_) {
    if (storage_.note_m1(id)) continue;  // static half of a split subscription
    const Installed* entry = installed_entry(id);
    if (entry == nullptr) continue;
    destinations.push_back(entry->dest);
    storage_.mark_done(entry->dest);
  }

  const ScopedTimer timer(costs_.lazy_eval);
  const SimTime now = host.now();
  EvalScope& scope = publication_scope(pub, snapshot, host.variables(), now);
  for (auto& [dest, group] : storage_.groups()) {
    if (storage_.done(group)) continue;
    for (auto& part : group.parts) {
      if (part.has_static_part && !storage_.m1_hit(part)) continue;
      ++part.extra.probes_this_window;

      bool matched = false;
      if (snapshot != nullptr) {
        // Snapshot mode: evaluate at the entry instant, bypassing versions.
        ++costs_.lazy_evaluations;
        scope.set_epoch(part.sub->epoch());
        materialize_bounds(part.preds, scope, eval_stack_, snapshot_bounds_);
        matched = cached_bounds_match(part.preds, snapshot_bounds_, pub);
      } else if (part.extra.mode == Mode::kVersioned && !part.extra.bounds.empty()) {
        ++costs_.cache_hits;
        matched = cached_bounds_match(part.preds, part.extra.bounds, pub);
      } else if (now < part.extra.version_expires && !part.extra.bounds.empty()) {
        ++costs_.cache_hits;
        matched = cached_bounds_match(part.preds, part.extra.bounds, pub);
      } else {
        ++costs_.cache_misses;
        ++costs_.lazy_evaluations;
        scope.set_epoch(part.sub->epoch());
        materialize_bounds(part.preds, scope, eval_stack_, part.extra.bounds);
        part.extra.version_expires = now + effective_tt(*part.sub);
        matched = cached_bounds_match(part.preds, part.extra.bounds, pub);
      }
      if (matched) {
        destinations.push_back(dest);
        break;
      }
    }
  }
}

void HybridEngine::export_audit_state(audit::EngineState& out) const {
  BrokerEngine::export_audit_state(out);
  for (const auto& [dest, group] : storage_.groups()) {
    for (const Storage::Part& part : group.parts) {
      out.lazy_entries.push_back(audit::LazyEntry{part.id, dest});
    }
  }
}

}  // namespace evps
