#include "evolving/ves_engine.hpp"

#include <algorithm>

namespace evps {

VesEngine::~VesEngine() {
  if (listened_registry_ != nullptr) listened_registry_->remove_listener(listener_id_);
}

void VesEngine::do_add(const Installed& entry, EngineHost& host) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->add(sub.id(), sub.predicates());
    return;
  }
  ensure_listener(host);

  EvolvingState state;
  state.sub = entry.sub;
  state.vars = sub.variables();
  state.depends_on_time = state.vars.contains(std::string(kElapsedTimeVar));
  state.vars.erase(std::string(kElapsedTimeVar));
  state.overestimate = config_.overestimate_forwarding && entry.dest_is_broker;

  const SimTime now = host.now();
  auto& registry = host.variables();
  {
    // Initial version (Figure 3): evaluate the predicate functions with the
    // current evolution-variable values and insert into the matcher.
    const ScopedTimer timer(costs_.maintenance);
    matcher_->add(sub.id(), materialize_version(state, registry, now));
  }
  for (const auto& var : state.vars) state.seen_versions[var] = registry.version(var);
  evolving_.emplace(sub.id(), std::move(state));

  esq_.push(sub.id(), now + effective_mei(sub));
  arm_timer(host);
}

void VesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const SubscriptionId id = entry.sub->id();
  matcher_->remove(id);
  esq_.remove(id);
  ready_.erase(id);
  evolving_.erase(id);
}

void VesEngine::do_match(const Publication& pub, const VariableSnapshot* /*snapshot*/,
                         EngineHost& /*host*/, std::vector<NodeId>& destinations) {
  // VES matches against the currently stored versions only; piggybacked
  // snapshots cannot retroactively change the versions (Section V-D notes
  // snapshots "render VES ineffective"), so they are ignored here.
  std::vector<SubscriptionId> ids;
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, ids);
  }
  for (const auto id : ids) destinations.push_back(destination_of(id));
}

void VesEngine::ensure_listener(EngineHost& host) {
  auto& registry = host.variables();
  if (listened_registry_ == &registry) return;
  if (listened_registry_ != nullptr) listened_registry_->remove_listener(listener_id_);
  listened_registry_ = &registry;
  listener_id_ = registry.add_listener(
      [this, &host](const std::string& name, double /*value*/, SimTime /*when*/) {
        on_variable_changed(name, host);
      });
}

void VesEngine::arm_timer(EngineHost& host) {
  const auto next = esq_.next_due();
  if (!next.has_value()) return;
  if (timer_armed_ && armed_until_ <= *next) return;
  timer_armed_ = true;
  armed_until_ = *next;
  const Duration delay = *next - host.now();
  host.schedule(delay < Duration::zero() ? Duration::zero() : delay,
                [this, &host]() { on_timer(host); });
}

void VesEngine::on_timer(EngineHost& host) {
  timer_armed_ = false;
  armed_until_ = SimTime::max();
  std::vector<SubscriptionId> due;
  esq_.pop_due(host.now(), due);
  for (const auto id : due) {
    const auto it = evolving_.find(id);
    if (it == evolving_.end()) continue;  // concurrently unsubscribed
    if (needs_evolution(it->second, host.variables())) {
      evolve(id, it->second, host);
    } else {
      // Park until one of its variables changes (paper's ready list).
      ready_.insert(id);
    }
  }
  arm_timer(host);
}

void VesEngine::on_variable_changed(const std::string& name, EngineHost& host) {
  if (ready_.empty()) return;
  std::vector<SubscriptionId> to_evolve;
  for (const auto id : ready_) {
    const auto it = evolving_.find(id);
    if (it != evolving_.end() && it->second.vars.contains(name)) to_evolve.push_back(id);
  }
  for (const auto id : to_evolve) {
    ready_.erase(id);
    evolve(id, evolving_.at(id), host);
  }
  arm_timer(host);
}

bool VesEngine::needs_evolution(const EvolvingState& state,
                                const VariableRegistry& registry) const {
  if (state.depends_on_time) return true;  // continuous variables always change
  for (const auto& [var, seen] : state.seen_versions) {
    if (registry.version(var) != seen) return true;
  }
  // A variable that appeared after materialisation also counts as changed.
  for (const auto& var : state.vars) {
    if (!state.seen_versions.contains(var) && registry.has(var)) return true;
  }
  return false;
}

std::vector<Predicate> VesEngine::materialize_version(const EvolvingState& state,
                                                      const VariableRegistry& registry,
                                                      SimTime now) const {
  const auto& sub = *state.sub;
  if (!state.overestimate) return sub.materialize(sub.scope(&registry, now)).predicates();

  // Sample each predicate function across the upcoming MEI window and take
  // the loosest bound. Three samples cover linear and mildly curved
  // functions; discrete variables are piecewise-constant so their current
  // value holds across the window.
  const Duration mei = effective_mei(sub);
  const EvalScope scopes[3] = {sub.scope(&registry, now), sub.scope(&registry, now + mei / 2),
                               sub.scope(&registry, now + mei)};
  std::vector<Predicate> out;
  out.reserve(sub.predicates().size());
  for (const auto& p : sub.predicates()) {
    if (!p.is_evolving()) {
      out.push_back(p);
      continue;
    }
    double samples[3];
    for (int i = 0; i < 3; ++i) samples[i] = p.fun()->eval(scopes[i]);
    double bound = samples[0];
    switch (p.op()) {
      case RelOp::kLe:
      case RelOp::kLt:
        bound = std::max({samples[0], samples[1], samples[2]});
        break;
      case RelOp::kGe:
      case RelOp::kGt:
        bound = std::min({samples[0], samples[1], samples[2]});
        break;
      case RelOp::kEq:
      case RelOp::kNe:
        break;  // equality cannot be widened conservatively; keep exact
    }
    out.push_back(Predicate{p.attribute(), p.op(), Value{bound}});
  }
  return out;
}

void VesEngine::evolve(SubscriptionId id, EvolvingState& state, EngineHost& host) {
  auto& registry = host.variables();
  const SimTime now = host.now();
  {
    // Replace the stored version: the remove + insert against the matcher is
    // the dominant VES maintenance cost (Figure 9 discussion).
    const ScopedTimer timer(costs_.maintenance);
    const std::vector<Predicate> version = materialize_version(state, registry, now);
    matcher_->remove(id);
    matcher_->add(id, version);
  }
  ++costs_.evolutions;
  for (const auto& var : state.vars) state.seen_versions[var] = registry.version(var);
  esq_.push(id, now + effective_mei(*state.sub));
}

}  // namespace evps
