// Recursive-descent parser for the evolution expression language.
//
// Grammar (standard precedence; ^ is right-associative):
//   expr    := term (('+' | '-') term)*
//   term    := factor (('*' | '/' | '%') factor)*
//   factor  := '-' factor | power
//   power   := primary ('^' factor)?
//   primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//
// Builtin functions: abs, floor, ceil, sqrt, sin, cos, sign (unary);
// min, max (n-ary), clamp(x, lo, hi), step(x).
// Any other identifier is an evolution variable reference.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "expr/ast.hpp"

namespace evps {

/// Parse failure description carrying the byte offset *and* the offending
/// token, so tools (evps-lint) can print caret diagnostics pointing at the
/// exact source span instead of re-lexing the input.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t offset, std::string token = {})
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset),
        token_(std::move(token)) {}

  /// Byte offset of the offending token within the parsed text.
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

  /// Text of the offending token; empty when the failure is at end of input
  /// (e.g. a truncated expression).
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::size_t offset_;
  std::string token_;
};

/// Parse `text` into an expression tree. Throws ParseError on malformed
/// input. Constant subtrees are folded (e.g. "2*3 + t" stores 6 + t).
[[nodiscard]] ExprPtr parse_expr(std::string_view text);

/// Non-throwing variant; returns nullopt and fills `error` (if non-null)
/// on malformed input.
[[nodiscard]] std::optional<ExprPtr> try_parse_expr(std::string_view text,
                                                    std::string* error = nullptr);

}  // namespace evps
