#include "sim/stats.hpp"

#include <limits>
#include <stdexcept>

namespace evps {

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = summary_.count();
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      if (i < boundaries_.size()) return boundaries_[i];
      return summary_.max();
    }
  }
  return summary_.max();
}

}  // namespace evps
