file(REMOVE_RECURSE
  "CMakeFiles/evps_matching.dir/brute_force_matcher.cpp.o"
  "CMakeFiles/evps_matching.dir/brute_force_matcher.cpp.o.d"
  "CMakeFiles/evps_matching.dir/churn_matcher.cpp.o"
  "CMakeFiles/evps_matching.dir/churn_matcher.cpp.o.d"
  "CMakeFiles/evps_matching.dir/counting_matcher.cpp.o"
  "CMakeFiles/evps_matching.dir/counting_matcher.cpp.o.d"
  "libevps_matching.a"
  "libevps_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
