# Empty compiler generated dependencies file for test_ves.
# This may be replaced when dependencies are built.
