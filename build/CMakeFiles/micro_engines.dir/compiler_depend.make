# Empty compiler generated dependencies file for micro_engines.
# This may be replaced when dependencies are built.
