file(REMOVE_RECURSE
  "CMakeFiles/test_use_cases.dir/test_use_cases.cpp.o"
  "CMakeFiles/test_use_cases.dir/test_use_cases.cpp.o.d"
  "test_use_cases"
  "test_use_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_use_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
