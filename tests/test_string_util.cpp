#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitQuoted, SeparatorInsideQuotesIgnored) {
  const auto parts = split_quoted("name = 'a;b'; other = 1", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "name = 'a;b'");
  EXPECT_EQ(parts[1], " other = 1");
}

TEST(SplitQuoted, UnbalancedQuoteSwallowsRest) {
  const auto parts = split_quoted("a'x;y", ';');
  ASSERT_EQ(parts.size(), 1u);
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t x\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_FALSE(starts_with("abcdef", "bcd"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace evps
