// Mutation-testing suite for the overlay auditor (analysis/audit).
//
// Strategy: build a real overlay, let it settle, export a snapshot and
// assert the auditor finds it clean (zero false positives). Then seed each
// corruption class into a COPY of the snapshot — exactly the distributed-
// state bugs the auditor exists to catch — and assert the auditor flags
// that class (and no unrelated class, so diagnoses stay actionable):
//
//   * stale suppressed forward  -> delivery-completeness (the PR 4 re-cover
//                                  black hole, reproduced from a covering
//                                  overlay end state)
//   * orphaned covering child   -> covering-forest
//   * leaked matcher slot       -> ghost-state
//   * stranded batch buffer     -> quiescence
//   * refcount skew             -> ghost-state
//   * asymmetric / cyclic links -> topology
#include "broker/audit_hook.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace evps {
namespace {

using audit::AuditReport;
using audit::BrokerState;
using audit::Invariant;
using audit::OverlayAuditor;
using audit::OverlaySnapshot;

SimTime sec(double s) { return SimTime::from_seconds(s); }

BrokerConfig covering_config(EngineKind kind = EngineKind::kClees) {
  BrokerConfig cfg;
  cfg.engine.kind = kind;
  cfg.covering = true;
  return cfg;
}

/// The single invariant classes present in a report.
std::set<Invariant> classes_of(const AuditReport& report) {
  std::set<Invariant> out;
  for (const auto& v : report.violations) out.insert(v.invariant);
  return out;
}

bool flags_sub(const AuditReport& report, Invariant inv, SubscriptionId id) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const audit::Violation& v) { return v.invariant == inv && v.sub == id; });
}

BrokerState& broker_named(OverlaySnapshot& snap, const std::string& name) {
  for (BrokerState& b : snap.brokers) {
    if (b.name == name) return b;
  }
  throw std::logic_error("no broker named " + name);
}

/// Consistently delete every trace of `id` from one broker's state — the
/// well-formed way a subscription disappears, so removal alone introduces no
/// ghost-state noise and the surviving violations isolate the routing gap.
void erase_subscription(BrokerState& b, SubscriptionId id) {
  b.engine.installed.erase(id);
  std::erase(b.engine.matcher_ids, id);
  std::erase_if(b.engine.lazy_entries, [&](const audit::LazyEntry& e) { return e.id == id; });
  for (auto& g : b.engine.dedup_groups) std::erase(g.members, id);
  std::erase_if(b.engine.dedup_groups,
                [](const audit::DedupGroup& g) { return g.members.empty(); });
  std::erase_if(b.routes, [&](const audit::RouteEntry& r) { return r.id == id; });
  std::erase_if(b.forest, [&](const audit::ForestNode& n) { return n.id == id; });
  for (auto& n : b.forest) std::erase(n.children, id);
}

/// Covering star overlay: hub + 3 leaves, a wide root subscription R from a
/// client at leaf 1 and a narrow covered subscription S from a client at
/// leaf 0. At the hub, S's forward towards leaf 2 is suppressed citing R —
/// the exact shape whose staleness caused the PR 4 re-cover black hole.
struct CoveringStarTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  std::vector<Broker*> brokers;
  PubSubClient* sub_client = nullptr;    // at leaf 0: owns S
  PubSubClient* root_client = nullptr;   // at leaf 1: owns R
  SubscriptionId root_id;
  SubscriptionId covered_id;

  void build(EngineKind kind = EngineKind::kClees) {
    brokers = overlay.build_star(3, covering_config(kind), Duration::millis(5));
    root_client = &overlay.add_client("root_client");
    sub_client = &overlay.add_client("sub_client");
    root_client->connect(*brokers[2], Duration::millis(1));  // edge1
    sub_client->connect(*brokers[1], Duration::millis(1));   // edge0
    root_id = root_client->subscribe("x >= 0; x <= 500");
    sim.run_until(sec(1));
    covered_id = sub_client->subscribe("x >= 100; x <= 300");
    sim.run_until(sec(2));
  }
};

TEST_F(CoveringStarTest, CleanEndStateAuditsClean) {
  build();
  const AuditReport report = audit::audit_overlay(overlay);
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_EQ(report.brokers_audited, 4u);
  EXPECT_EQ(report.subscriptions_audited, 2u);
  // Covering actually suppressed something, or this fixture proves nothing.
  EXPECT_GT(report.witnesses_checked, 0u) << "no covering suppression in play";
}

// The PR 4 regression shape: the covered subscription's forward towards a
// direction was suppressed citing the root, and the root's state in that
// direction later vanished. Publications entering there black-hole.
TEST_F(CoveringStarTest, StaleSuppressedForwardIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Leaf 2 (edge2) never received S (suppressed at the hub citing R). Remove
  // R's state at edge2: a publication entering at edge2 in [100, 300] now
  // has no installed subscription pointing towards the hub.
  erase_subscription(broker_named(snap, "broker_edge2"), root_id);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kDeliveryCompleteness})
      << report.format();
  EXPECT_TRUE(flags_sub(report, Invariant::kDeliveryCompleteness, covered_id)) << report.format();
  // The diagnostic names the failing broker.
  bool named = false;
  for (const auto& v : report.violations) named |= v.broker == "broker_edge2";
  EXPECT_TRUE(named) << report.format();
}

TEST_F(CoveringStarTest, MisdirectedWitnessIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Keep R installed at edge2 but repoint its destination away from the hub
  // (a corrupt routing table): the witness no longer points the right way.
  BrokerState& edge2 = broker_named(snap, "broker_edge2");
  auto it = edge2.engine.installed.find(root_id);
  ASSERT_NE(it, edge2.engine.installed.end());
  it->second.dest = edge2.node;  // nonsense next hop
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(report.has(Invariant::kDeliveryCompleteness)) << report.format();
}

TEST_F(CoveringStarTest, OrphanedCoveringChildIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // At the hub the forest has R as root and S as its child. Detach the
  // parent: point S at an id that is not in the forest.
  BrokerState& hub = broker_named(snap, "broker_core");
  bool mutated = false;
  for (auto& n : hub.forest) {
    if (n.id == covered_id && n.parent.valid()) {
      n.parent = SubscriptionId{999999};
      mutated = true;
    }
    std::erase(n.children, covered_id);
  }
  ASSERT_TRUE(mutated) << "fixture expectation: S is a covered child at the hub\n"
                       << canonical_text(snap);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(flags_sub(report, Invariant::kForest, covered_id)) << report.format();
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kForest}) << report.format();
}

TEST_F(CoveringStarTest, UnprovableParentEdgeIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Invert the covering edge at the hub: claim the narrow S covers the wide
  // R. Structurally well-formed, semantically unprovable.
  BrokerState& hub = broker_named(snap, "broker_core");
  for (auto& n : hub.forest) {
    if (n.id == covered_id) {
      n.parent = SubscriptionId::invalid();
      n.children = {root_id};
    } else if (n.id == root_id) {
      n.parent = covered_id;
      n.children.clear();
    }
  }
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(flags_sub(report, Invariant::kForest, root_id)) << report.format();
}

TEST_F(CoveringStarTest, ForestEngineDesyncIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Drop S from the hub's forest while the engine still has it — the
  // release-build duplicate-add corruption class.
  BrokerState& hub = broker_named(snap, "broker_core");
  std::erase_if(hub.forest, [&](const audit::ForestNode& n) { return n.id == covered_id; });
  for (auto& n : hub.forest) std::erase(n.children, covered_id);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(flags_sub(report, Invariant::kForest, covered_id)) << report.format();
}

TEST_F(CoveringStarTest, LeakedMatcherSlotIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  BrokerState& hub = broker_named(snap, "broker_core");
  hub.engine.matcher_ids.push_back(SubscriptionId{424242});
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(flags_sub(report, Invariant::kGhostState, SubscriptionId{424242}))
      << report.format();
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kGhostState}) << report.format();
}

TEST_F(CoveringStarTest, MissingMatcherInstallIsFlagged) {
  build(EngineKind::kStatic);
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  BrokerState& hub = broker_named(snap, "broker_core");
  ASSERT_FALSE(hub.engine.matcher_ids.empty());
  std::erase(hub.engine.matcher_ids, root_id);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(flags_sub(report, Invariant::kGhostState, root_id)) << report.format();
}

TEST_F(CoveringStarTest, StrandedMatchBatchBufferIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  broker_named(snap, "broker_core").pending_match_batch = 3;
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kQuiescence}) << report.format();
  EXPECT_EQ(report.count(Invariant::kQuiescence), 1u);
}

TEST_F(CoveringStarTest, StrandedLinkBatchBufferIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  BrokerState& hub = broker_named(snap, "broker_core");
  hub.pending_links.push_back(audit::PendingLink{hub.broker_neighbors.front(), 2});
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kQuiescence}) << report.format();
  // Opting out of the quiescence check accepts mid-run buffers.
  audit::AuditOptions opts;
  opts.check_quiescence = false;
  EXPECT_TRUE(OverlayAuditor(opts).audit(snap).clean());
}

TEST_F(CoveringStarTest, AsymmetricLinkIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  BrokerState& edge2 = broker_named(snap, "broker_edge2");
  edge2.broker_neighbors.clear();
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(report.has(Invariant::kTopology)) << report.format();
}

TEST_F(CoveringStarTest, OverlayCycleIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Close a cycle: edge0 - edge1 become neighbours of each other.
  BrokerState& e0 = broker_named(snap, "broker_edge0");
  BrokerState& e1 = broker_named(snap, "broker_edge1");
  e0.broker_neighbors.push_back(e1.node);
  e1.broker_neighbors.push_back(e0.node);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(report.has(Invariant::kTopology)) << report.format();
}

// --- relational covering interplay -----------------------------------------

/// Same star shape as CoveringStarTest, but the covering edge is only
/// provable in the RELATIONAL domain: both subscriptions are moving zones
/// around a shared evolution variable, so their per-attribute inner shapes
/// are empty and the hub's suppression rests on the octagon proof. The
/// auditor must re-prove exactly that edge (a weaker auditor would flag the
/// clean overlay; a stronger-than-index auditor is fine).
struct RelationalStarTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  std::vector<Broker*> brokers;
  PubSubClient* sub_client = nullptr;
  PubSubClient* root_client = nullptr;
  SubscriptionId root_id;
  SubscriptionId covered_id;

  void build() {
    brokers = overlay.build_star(3, covering_config(), Duration::millis(5));
    for (Broker* b : brokers) b->variables().declare_range("ra_c", -100.0, 100.0);
    root_client = &overlay.add_client("root_client");
    sub_client = &overlay.add_client("sub_client");
    root_client->connect(*brokers[2], Duration::millis(1));
    sub_client->connect(*brokers[1], Duration::millis(1));
    brokers[0]->set_variable("ra_c", 10.0);
    sim.run_until(sec(0.5));
    root_id = root_client->subscribe("[tt=0.5] rax >= ra_c - 60; rax <= ra_c + 60");
    sim.run_until(sec(1));
    covered_id = sub_client->subscribe("[tt=0.5] rax >= ra_c - 30; rax <= ra_c + 30");
    sim.run_until(sec(2));
  }
};

TEST_F(RelationalStarTest, CleanRelationalSuppressionAuditsClean) {
  build();
  // Fixture sanity: the hub really did suppress via a relational proof.
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  BrokerState& hub = broker_named(snap, "broker_core");
  bool relational_edge = false;
  for (const auto& n : hub.forest) relational_edge |= (n.id == covered_id && n.parent == root_id);
  ASSERT_TRUE(relational_edge) << "fixture expectation: S covered by R at the hub\n"
                               << canonical_text(snap);
  const AuditReport report = audit::audit_overlay(overlay);
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_GT(report.witnesses_checked, 0u) << "no covering suppression in play";
}

TEST_F(RelationalStarTest, BogusRelationalParentEdgeIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Invert the relational edge: claim the narrow moving zone covers the wide
  // one. The octagon re-proof must fail on it.
  BrokerState& hub = broker_named(snap, "broker_core");
  for (auto& n : hub.forest) {
    if (n.id == covered_id) {
      n.parent = SubscriptionId::invalid();
      n.children = {root_id};
    } else if (n.id == root_id) {
      n.parent = covered_id;
      n.children.clear();
    }
  }
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(flags_sub(report, Invariant::kForest, root_id)) << report.format();
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kForest}) << report.format();
}

TEST_F(RelationalStarTest, StaleRelationallySuppressedForwardIsFlagged) {
  build();
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // S's forward towards edge2 was suppressed citing the relational coverer
  // R; erase R's state at edge2 and the suppression is a black hole.
  erase_subscription(broker_named(snap, "broker_edge2"), root_id);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kDeliveryCompleteness})
      << report.format();
  EXPECT_TRUE(flags_sub(report, Invariant::kDeliveryCompleteness, covered_id)) << report.format();
}

// --- refcount skew (dedup bookkeeping) -------------------------------------

struct DedupLineTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  std::vector<Broker*> brokers;
  PubSubClient* a = nullptr;
  PubSubClient* b = nullptr;
  SubscriptionId first;
  SubscriptionId second;

  void build(EngineKind kind) {
    BrokerConfig cfg;
    cfg.engine.kind = kind;
    brokers = overlay.build_line(2, cfg, Duration::millis(5));
    a = &overlay.add_client("a");
    b = &overlay.add_client("b");
    a->connect(*brokers[0], Duration::millis(1));
    b->connect(*brokers[0], Duration::millis(1));
    // Bit-identical predicates from two clients: one dedup group per broker
    // where both land with the same destination (broker1, forwarded hop).
    first = a->subscribe("x >= 0; x <= 10");
    second = b->subscribe("x >= 0; x <= 10");
    sim.run_until(sec(1));
  }
};

TEST_F(DedupLineTest, CleanDedupAuditsClean) {
  build(EngineKind::kStatic);
  const AuditReport report = audit::audit_overlay(overlay);
  EXPECT_TRUE(report.clean()) << report.format();
  // The far broker shares one physical install between the two ids.
  EXPECT_EQ(brokers[1]->engine().deduped_installs(), 1u);
}

TEST_F(DedupLineTest, UntrackedMemberRefcountSkewIsFlagged) {
  build(EngineKind::kStatic);
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // broker1: both subs arrive from broker0 and share one matcher entry.
  // Drop the non-canonical member from its group: the engine now has an
  // installed subscription whose refcount nobody holds.
  BrokerState& far = broker_named(snap, "broker1");
  bool mutated = false;
  for (auto& g : far.engine.dedup_groups) {
    if (g.members.size() == 2) {
      g.members.pop_back();
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated) << canonical_text(snap);
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kGhostState}) << report.format();
}

TEST_F(DedupLineTest, DeadMemberRefcountSkewIsFlagged) {
  build(EngineKind::kStatic);
  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  // Inverse skew: the group still references an id the engine dropped.
  BrokerState& far = broker_named(snap, "broker1");
  for (auto& g : far.engine.dedup_groups) {
    if (g.members.size() == 2) g.members.push_back(SubscriptionId{777777});
  }
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_TRUE(flags_sub(report, Invariant::kGhostState, SubscriptionId{777777}))
      << report.format();
}

TEST_F(DedupLineTest, LazyDedupSkewIsFlagged) {
  // LEES shares LEME parts between identical fully-evolving subscriptions.
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  brokers = overlay.build_line(2, cfg, Duration::millis(5));
  a = &overlay.add_client("a");
  a->connect(*brokers[0], Duration::millis(1));
  for (Broker* br : brokers) br->variables().declare_range("load", 0, 1);
  brokers[0]->set_variable("load", 0.5);
  sim.run_until(sec(0.5));
  first = a->subscribe("[tt=1] x <= 100 * load");
  second = a->subscribe("[tt=1] x <= 100 * load");
  sim.run_until(sec(1));

  OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  const AuditReport clean = OverlayAuditor().audit(snap);
  EXPECT_TRUE(clean.clean()) << clean.format();

  // Strand the canonical's lazy entry: the LEME evaluates a part whose
  // owner group no longer exists.
  BrokerState& home = broker_named(snap, "broker0");
  std::erase_if(home.engine.dedup_groups, [](const audit::DedupGroup& g) { return g.lazy; });
  const AuditReport report = OverlayAuditor().audit(snap);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(classes_of(report), std::set<Invariant>{Invariant::kGhostState}) << report.format();
}

// --- hook + report plumbing -------------------------------------------------

TEST(SimAuditHook, CleanOverlayPassesAndThrowsOnCorruption) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kClees;
  auto brokers = overlay.build_line(3, cfg, Duration::millis(5));
  PubSubClient& sub = overlay.add_client("sub");
  sub.connect(*brokers[0], Duration::millis(1));
  sub.subscribe("x >= 0");
  sim.run_until(sec(1));

  const audit::SimAuditHook hook(overlay);
  const AuditReport report = hook.check();  // must not throw
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.brokers_audited, 3u);

  AuditReport bad;
  bad.violations.push_back(audit::Violation{Invariant::kQuiescence, "broker0",
                                            SubscriptionId::invalid(), "stranded buffer", {}});
  const audit::AuditFailure failure(std::move(bad));
  EXPECT_NE(std::string(failure.what()).find("stranded buffer"), std::string::npos);
  EXPECT_EQ(failure.report().violations.size(), 1u);
}

TEST(AuditReport, JsonRendering) {
  AuditReport report;
  report.brokers_audited = 2;
  report.violations.push_back(audit::Violation{
      Invariant::kDeliveryCompleteness, "broker\"1", SubscriptionId{7}, "black hole",
      {"hop \"a\""}});
  std::ostringstream os;
  report.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"invariant\":\"delivery-completeness\""), std::string::npos);
  EXPECT_NE(json.find("\"sub\":7"), std::string::npos);
  EXPECT_NE(json.find("\\\"a\\\""), std::string::npos);  // witness escaping
}

}  // namespace
}  // namespace evps
