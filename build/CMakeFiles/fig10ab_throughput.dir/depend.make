# Empty dependencies file for fig10ab_throughput.
# This may be replaced when dependencies are built.
