#include "broker/overlay.hpp"

namespace evps {

std::vector<Broker*> Overlay::build_line(std::size_t n, const BrokerConfig& config,
                                         Duration latency, const std::string& prefix) {
  std::vector<Broker*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(&add_broker(prefix + std::to_string(i), config));
    if (i > 0) connect(*out[i - 1], *out[i], latency);
  }
  return out;
}

std::vector<Broker*> Overlay::build_star(std::size_t leaves, const BrokerConfig& config,
                                         Duration latency, const std::string& prefix) {
  std::vector<Broker*> out;
  out.reserve(leaves + 1);
  out.push_back(&add_broker(prefix + "_core", config));
  for (std::size_t i = 0; i < leaves; ++i) {
    out.push_back(&add_broker(prefix + "_edge" + std::to_string(i), config));
    connect(*out[0], *out.back(), latency);
  }
  return out;
}

}  // namespace evps
