file(REMOVE_RECURSE
  "CMakeFiles/test_hft.dir/test_hft.cpp.o"
  "CMakeFiles/test_hft.dir/test_hft.cpp.o.d"
  "test_hft"
  "test_hft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
