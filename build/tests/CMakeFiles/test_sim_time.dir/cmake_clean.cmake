file(REMOVE_RECURSE
  "CMakeFiles/test_sim_time.dir/test_sim_time.cpp.o"
  "CMakeFiles/test_sim_time.dir/test_sim_time.cpp.o.d"
  "test_sim_time"
  "test_sim_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
