file(REMOVE_RECURSE
  "libevps_broker.a"
)
