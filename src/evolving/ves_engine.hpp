// Versioned Evolving Subscriptions (VES) — Sections IV-A and V-A.
//
// Each evolving subscription is materialised into a non-evolving *version*
// kept in the standard matcher. Versions are refreshed autonomously:
//
//   * The ESQ orders subscriptions by their next scheduled evolution time
//     (install time + MEI).
//   * When a subscription becomes due, it evolves immediately if a variable
//     it depends on has changed since its current version was built — the
//     continuous variable `t` counts as always-changing. Otherwise it parks
//     in the ready list until one of its variables changes (the paper's
//     "list of subscriptions that are ready to evolve").
//   * Evolving = remove old version from the matcher, insert the freshly
//     evaluated one, reschedule at now + MEI. The cost of these matcher
//     operations is the VES maintenance overhead measured in Figures 8/9.
//
// Matching publications uses only the standard matcher (fast), which is why
// VES "has the advantage of not being affected by publications".
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "evolving/engine.hpp"
#include "evolving/esq.hpp"

namespace evps {

class VesEngine final : public BrokerEngine {
 public:
  explicit VesEngine(const EngineConfig& config) : BrokerEngine(config) {}
  ~VesEngine() override;

  /// Subscriptions currently parked awaiting a variable change.
  [[nodiscard]] std::size_t ready_count() const noexcept { return ready_.size(); }
  /// Live entries in the evolving subscription queue.
  [[nodiscard]] std::size_t queued_count() const noexcept { return esq_.size(); }

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;

 private:
  struct EvolvingState {
    SubscriptionPtr sub;
    std::set<std::string> vars;        // evolution variables referenced
    bool depends_on_time = false;      // references the continuous `t`
    /// Widen versions over the MEI window (forwarding-hop subscriptions
    /// under the overestimation extension, Section IV-A).
    bool overestimate = false;
    // Registry versions captured when the current version was materialised.
    std::map<std::string, std::uint64_t> seen_versions;
  };

  void ensure_listener(EngineHost& host);
  void arm_timer(EngineHost& host);
  void on_timer(EngineHost& host);
  void on_variable_changed(const std::string& name, EngineHost& host);

  /// True iff any depended-on variable changed since materialisation.
  [[nodiscard]] bool needs_evolution(const EvolvingState& state,
                                     const VariableRegistry& registry) const;

  /// Replace the matcher version with a fresh evaluation and reschedule.
  void evolve(SubscriptionId id, EvolvingState& state, EngineHost& host);

  /// Non-evolving version of the subscription at `now`; if the state asks
  /// for overestimation, range predicates are widened to the extreme the
  /// function reaches anywhere in [now, now + MEI].
  [[nodiscard]] std::vector<Predicate> materialize_version(const EvolvingState& state,
                                                           const VariableRegistry& registry,
                                                           SimTime now) const;

  EvolvingSubscriptionQueue esq_;
  std::unordered_map<SubscriptionId, EvolvingState> evolving_;
  /// Due subscriptions awaiting a change of one of their variables.
  std::set<SubscriptionId> ready_;
  VariableRegistry* listened_registry_ = nullptr;
  VariableRegistry::ListenerId listener_id_ = 0;
  SimTime armed_until_ = SimTime::max();
  bool timer_armed_ = false;
};

}  // namespace evps
