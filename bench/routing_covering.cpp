// Covering-based subscription routing: dissemination traffic and matcher
// population, off vs on.
//
// Two clustered-subscriber workloads run on an advertisement-mode star
// overlay (core + 4 edge brokers):
//
//   game — moving-interest zones: per edge broker, subscriber clusters pick
//     a hotspot; one wide zone per cluster covers a pile of narrower (and
//     evolving, load-scaled) zones from the same cluster.
//   hft  — price bands: wide desk-level band subscriptions covering nested
//     per-trader bands, plus exact duplicates (identical alert rules),
//     which also exercises the engines' identical-predicate dedup.
//   game_rotated — moving-centre zones in rotated coordinates: every zone
//     tracks a per-cluster centre *variable* (u/w boxes around rot_cu/rot_cw),
//     so the per-attribute inner shape of each coverer is empty and only the
//     relational (octagon) refinement can prove the covering. This workload
//     runs three ways — covering off, covering on with relational off, and
//     covering on with relational on — to isolate the relational delta.
//
// Each workload runs under identical message scripts, including an
// unsubscribe wave that removes ~20% of the coverers mid-run
// (uncover-on-remove re-dissemination). The runs must produce bit-identical
// client delivery logs (checked; the bench exits nonzero on divergence, so
// the bench-smoke ctest entry doubles as a regression test), while the
// covering run must need fewer subscription-dissemination messages and
// smaller matchers.
//
// Results are printed as tables and recorded in BENCH_routing.json
// (argv[1] overrides the output path).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "message/codec.hpp"
#include "metrics/covering_counters.hpp"
#include "metrics/report.hpp"

namespace {

using namespace evps;

constexpr int kEdges = 4;
constexpr int kClustersPerEdge = 3;
constexpr int kCoveredPerCluster = 6;

struct RunStats {
  std::uint64_t subscription_msgs = 0;
  std::uint64_t matcher_population = 0;
  std::uint64_t deduped_installs = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t demote_unsubscribes = 0;
  std::uint64_t resubscribes = 0;
  CoverStats pairs;
  /// Flattened delivery log for the off/on equivalence check.
  std::vector<std::string> delivery_log;
};

struct VarSpec {
  std::string name;
  double lo = 0;
  double hi = 0;
  double value = 0;
};

struct Workload {
  std::string name;
  std::string adv;                      // advertised publication space
  std::vector<VarSpec> vars;            // workload-specific declared variables
  std::vector<std::string> subs;        // subscription texts, cluster-ordered
  std::vector<std::size_t> unsub_wave;  // indices unsubscribed mid-run
  std::vector<std::string> pubs;        // publication texts
};

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Clustered game zones: per cluster one wide [c-60, c+60] x/y box covering
/// narrower static and load-scaled evolving zones around the same hotspot.
Workload make_game_workload() {
  Workload w;
  w.name = "game";
  w.adv = "x >= 0; x <= 1000; y >= 0; y <= 1000";
  Rng rng{2024};
  for (int e = 0; e < kEdges; ++e) {
    for (int c = 0; c < kClustersPerEdge; ++c) {
      const double cx = rng.uniform(100.0, 900.0);
      const double cy = rng.uniform(100.0, 900.0);
      std::vector<std::string> zones;
      for (int s = 0; s < kCoveredPerCluster; ++s) {
        const double r = rng.uniform(5.0, 40.0);
        const double ox = rng.uniform(-15.0, 15.0);
        const double oy = rng.uniform(-15.0, 15.0);
        if (rng.bernoulli(0.3)) {
          // Evolving zone: gz_load in [0, 1] keeps the envelope within the
          // wide box (max reach 40 + 15 < 60).
          zones.push_back("[tt=0.5] x >= " + fmt_num(cx + ox - r) + "; x <= " +
                          fmt_num(cx + ox) + " + " + fmt_num(r * 0.5) + " * gz_load; y >= " +
                          fmt_num(cy + oy - r) + "; y <= " + fmt_num(cy + oy + r));
        } else {
          zones.push_back("x >= " + fmt_num(cx + ox - r) + "; x <= " + fmt_num(cx + ox + r) +
                          "; y >= " + fmt_num(cy + oy - r) + "; y <= " + fmt_num(cy + oy + r));
        }
      }
      // Two narrow zones subscribe before the wide one: they start as roots
      // and are demoted (retracted upstream) when the coverer arrives.
      w.subs.push_back(zones[0]);
      w.subs.push_back(zones[1]);
      w.subs.push_back("x >= " + fmt_num(cx - 60) + "; x <= " + fmt_num(cx + 60) + "; y >= " +
                       fmt_num(cy - 60) + "; y <= " + fmt_num(cy + 60));
      const std::size_t coverer = w.subs.size() - 1;
      if (rng.bernoulli(0.25)) w.unsub_wave.push_back(coverer);
      for (int s = 2; s < kCoveredPerCluster; ++s) w.subs.push_back(zones[s]);
      // Publications aimed at the cluster so deliveries are non-trivial.
      for (int p = 0; p < 4; ++p) {
        w.pubs.push_back("x = " + fmt_num(cx + rng.uniform(-70.0, 70.0)) +
                         "; y = " + fmt_num(cy + rng.uniform(-70.0, 70.0)));
      }
    }
  }
  return w;
}

/// HFT price bands: desk-wide bands covering per-trader bands plus exact
/// duplicate alert rules (identical predicates, multiple subscribers).
Workload make_hft_workload() {
  Workload w;
  w.name = "hft";
  w.adv = "price >= 0; price <= 1000";
  Rng rng{7};
  for (int e = 0; e < kEdges; ++e) {
    for (int c = 0; c < kClustersPerEdge; ++c) {
      const double base = rng.uniform(50.0, 900.0);
      const std::string dup = "price >= " + fmt_num(base - 10) + "; price <= " +
                              fmt_num(base + 10);
      // The duplicate alert rules subscribe before the desk-wide band: the
      // first becomes a root, is demoted on the coverer's arrival, and both
      // exercise the engines' identical-predicate dedup.
      w.subs.push_back(dup);
      w.subs.push_back(dup);
      w.subs.push_back("price >= " + fmt_num(base - 40) + "; price <= " + fmt_num(base + 40));
      const std::size_t coverer = w.subs.size() - 1;
      if (rng.bernoulli(0.25)) w.unsub_wave.push_back(coverer);
      for (int s = 2; s < kCoveredPerCluster; ++s) {
        if (rng.bernoulli(0.3)) {
          // Volatility-scaled band: hf_vix in [0, 1] bounds the reach to 30.
          w.subs.push_back("[tt=0.5] price >= " + fmt_num(base - 20) + "; price <= " +
                           fmt_num(base) + " + 30 * hf_vix");
        } else {
          const double r = rng.uniform(5.0, 35.0);
          w.subs.push_back("price >= " + fmt_num(base - r) + "; price <= " + fmt_num(base + r));
        }
      }
      for (int p = 0; p < 4; ++p) {
        w.pubs.push_back("price = " + fmt_num(base + rng.uniform(-50.0, 50.0)));
      }
    }
  }
  return w;
}

/// `var + d` / `var - |d|` with a parser-friendly sign.
std::string shifted(const std::string& var, double d) {
  return d < 0 ? var + " - " + fmt_num(-d) : var + " + " + fmt_num(d);
}

/// Rotated-coordinate moving zones: every zone is a u/w box centred on the
/// cluster's centre variables (rot_cuK/rot_cwK), wide boxes (+-60) covering
/// narrower ones (reach <= 15 + 35 < 60). Because the centre variables range
/// over [100, 900], the coverers' per-attribute inner shapes are empty —
/// only the relational refinement can prove these coverings.
Workload make_rotated_workload() {
  Workload w;
  w.name = "game_rotated";
  w.adv = "u >= 0; u <= 2000; w >= -1000; w <= 1000";
  Rng rng{4091};
  for (int e = 0; e < kEdges; ++e) {
    for (int c = 0; c < kClustersPerEdge; ++c) {
      const int k = e * kClustersPerEdge + c;
      const std::string cu = "rot_cu" + std::to_string(k);
      const std::string cw = "rot_cw" + std::to_string(k);
      const double cuv = rng.uniform(150.0, 850.0);
      const double cwv = rng.uniform(-400.0, 400.0);
      w.vars.push_back({cu, 100.0, 900.0, cuv});
      w.vars.push_back({cw, -500.0, 500.0, cwv});
      std::vector<std::string> zones;
      for (int s = 0; s < kCoveredPerCluster; ++s) {
        const double r = rng.uniform(5.0, 35.0);
        const double ou = rng.uniform(-15.0, 15.0);
        const double ow = rng.uniform(-15.0, 15.0);
        zones.push_back("[tt=0.5] u >= " + shifted(cu, ou - r) + "; u <= " + shifted(cu, ou + r) +
                        "; w >= " + shifted(cw, ow - r) + "; w <= " + shifted(cw, ow + r));
      }
      w.subs.push_back(zones[0]);
      w.subs.push_back(zones[1]);
      w.subs.push_back("[tt=0.5] u >= " + shifted(cu, -60) + "; u <= " + shifted(cu, 60) +
                       "; w >= " + shifted(cw, -60) + "; w <= " + shifted(cw, 60));
      const std::size_t coverer = w.subs.size() - 1;
      if (rng.bernoulli(0.25)) w.unsub_wave.push_back(coverer);
      for (int s = 2; s < kCoveredPerCluster; ++s) w.subs.push_back(zones[s]);
      for (int p = 0; p < 4; ++p) {
        w.pubs.push_back("u = " + fmt_num(cuv + rng.uniform(-70.0, 70.0)) +
                         "; w = " + fmt_num(cwv + rng.uniform(-70.0, 70.0)));
      }
    }
  }
  return w;
}

RunStats run(const Workload& w, bool covering_on, bool relational_on = true) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.routing = RoutingMode::kAdvertisement;
  cfg.covering = covering_on;
  cfg.relational_covering = relational_on;
  auto brokers = overlay.build_star(kEdges, cfg, Duration::millis(5));
  for (auto* b : brokers) {
    b->variables().declare_range("gz_load", 0.0, 1.0);
    b->variables().declare_range("hf_vix", 0.0, 1.0);
    for (const VarSpec& v : w.vars) b->variables().declare_range(v.name, v.lo, v.hi);
  }
  brokers[0]->set_variable("gz_load", 0.5);
  brokers[0]->set_variable("hf_vix", 0.3);
  for (const VarSpec& v : w.vars) brokers[0]->set_variable(v.name, v.value);

  PubSubClient& publisher = overlay.add_client("pub");
  publisher.connect(*brokers[1], Duration::millis(1));

  std::vector<PubSubClient*> subscribers;
  std::vector<SubscriptionId> sub_ids(w.subs.size());
  const std::size_t per_edge = (w.subs.size() + kEdges - 1) / kEdges;
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    PubSubClient& c = overlay.add_client("sub" + std::to_string(i));
    // Cluster-ordered: consecutive subscriptions land on the same edge.
    c.connect(*brokers[1 + (i / per_edge) % kEdges], Duration::millis(1));
    subscribers.push_back(&c);
  }

  sim.after(Duration::zero(), [&] {
    publisher.advertise(parse_subscription(w.adv).predicates());
  });
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    sim.after(Duration::seconds(1.0 + 0.01 * static_cast<double>(i)),
              [&, i] { sub_ids[i] = subscribers[i]->subscribe(w.subs[i]); });
  }
  for (std::size_t i = 0; i < w.pubs.size(); ++i) {
    sim.after(Duration::seconds(4.0 + 0.05 * static_cast<double>(i)),
              [&, i] { publisher.publish(w.pubs[i]); });
  }
  // Unsubscribe wave: remove a fifth of the coverers (uncover-on-remove).
  for (std::size_t k = 0; k < w.unsub_wave.size(); ++k) {
    const std::size_t i = w.unsub_wave[k];
    sim.after(Duration::seconds(8.0 + 0.05 * static_cast<double>(k)),
              [&, i] { subscribers[i]->unsubscribe(sub_ids[i]); });
  }
  // Second publication round against the post-removal state.
  for (std::size_t i = 0; i < w.pubs.size(); ++i) {
    sim.after(Duration::seconds(10.0 + 0.05 * static_cast<double>(i)),
              [&, i] { publisher.publish(w.pubs[i]); });
  }
  sim.run_until(SimTime::from_seconds(20.0));

  RunStats r;
  for (const auto& b : overlay.brokers()) {
    r.subscription_msgs += b->stats().subscription_msgs;
    r.matcher_population += b->engine().matcher_population();
    r.deduped_installs += b->engine().deduped_installs();
    r.suppressed += b->covering_counters().suppressed_forwards;
    r.demote_unsubscribes += b->covering_counters().demote_unsubscribes;
    r.resubscribes += b->covering_counters().resubscribes;
    const CoverStats cs = b->covering_stats();
    r.pairs.pairs += cs.pairs;
    r.pairs.covered += cs.covered;
    r.pairs.unknown += cs.unknown;
    r.pairs.relational += cs.relational;
  }
  for (const PubSubClient* c : subscribers) {
    r.deliveries += c->deliveries().size();
    for (const auto& d : c->deliveries()) {
      r.delivery_log.push_back(c->name() + "@" + std::to_string(d.when.micros()) + ":" +
                               serialize(d.pub));
    }
  }
  return r;
}

double reduction_pct(const RunStats& base, const RunStats& opt) {
  return base.subscription_msgs == 0
             ? 0.0
             : 100.0 * (1.0 - static_cast<double>(opt.subscription_msgs) /
                                  static_cast<double>(base.subscription_msgs));
}

void json_on_stats(std::ostream& os, const RunStats& on) {
  os << "{\"subscription_msgs\":" << on.subscription_msgs
     << ",\"matcher_population\":" << on.matcher_population
     << ",\"deduped_installs\":" << on.deduped_installs << ",\"deliveries\":" << on.deliveries
     << ",\"suppressed_forwards\":" << on.suppressed
     << ",\"demote_unsubscribes\":" << on.demote_unsubscribes
     << ",\"resubscribes\":" << on.resubscribes << ",\"pairs_analyzed\":" << on.pairs.pairs
     << ",\"pairs_covered\":" << on.pairs.covered
     << ",\"pairs_relational\":" << on.pairs.relational << "}";
}

void json_off_stats(std::ostream& os, const RunStats& off) {
  os << "{\"subscription_msgs\":" << off.subscription_msgs
     << ",\"matcher_population\":" << off.matcher_population
     << ",\"deduped_installs\":" << off.deduped_installs << ",\"deliveries\":" << off.deliveries
     << "}";
}

void json_scenario(std::ostream& os, const std::string& name, const RunStats& off,
                   const RunStats& on) {
  os << "    {\"name\":\"" << name << "\",\"off\":";
  json_off_stats(os, off);
  os << ",\"on\":";
  json_on_stats(os, on);
  os << ",\"dissemination_reduction_pct\":" << reduction_pct(off, on) << "}";
}

/// Three-way rotated scenario: the relational delta is the difference
/// between covering-on-relational-off and covering-on-relational-on.
void json_rotated(std::ostream& os, const std::string& name, const RunStats& off,
                  const RunStats& per_attr, const RunStats& rel) {
  os << "    {\"name\":\"" << name << "\",\"off\":";
  json_off_stats(os, off);
  os << ",\"on_perattr\":";
  json_on_stats(os, per_attr);
  os << ",\"on_relational\":";
  json_on_stats(os, rel);
  os << ",\"dissemination_reduction_pct\":" << reduction_pct(off, rel)
     << ",\"relational_reduction_pct\":" << reduction_pct(per_attr, rel) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_routing.json";
  std::cout << "Covering-based subscription routing: dissemination and matcher population\n";

  bool diverged = false;
  std::ostringstream json;
  json << "{\n  \"overlay\": \"star, core + " << kEdges
       << " edges, advertisement routing, LEES\",\n  \"scenarios\": [\n";

  const Workload workloads[] = {make_game_workload(), make_hft_workload()};
  for (std::size_t wi = 0; wi < 2; ++wi) {
    const Workload& w = workloads[wi];
    const RunStats off = run(w, false);
    const RunStats on = run(w, true);

    print_banner(w.name + " workload (" + std::to_string(w.subs.size()) + " subscriptions, " +
                 std::to_string(w.unsub_wave.size()) + " coverers removed mid-run)");
    Table t{{"metric", "covering off", "covering on"}};
    t.add_row({"subscription msgs", std::to_string(off.subscription_msgs),
               std::to_string(on.subscription_msgs)});
    t.add_row({"matcher population", std::to_string(off.matcher_population),
               std::to_string(on.matcher_population)});
    t.add_row({"deduped installs", std::to_string(off.deduped_installs),
               std::to_string(on.deduped_installs)});
    t.add_row({"deliveries", std::to_string(off.deliveries), std::to_string(on.deliveries)});
    t.add_row({"suppressed forwards", "-", std::to_string(on.suppressed)});
    t.add_row({"demote unsubscribes", "-", std::to_string(on.demote_unsubscribes)});
    t.add_row({"resubscribes", "-", std::to_string(on.resubscribes)});
    t.add_row({"covering pairs (covered)", "-",
               std::to_string(on.pairs.pairs) + " (" + std::to_string(on.pairs.covered) + ")"});
    t.print();
    const double reduction =
        100.0 * (1.0 - static_cast<double>(on.subscription_msgs) /
                           static_cast<double>(off.subscription_msgs));
    std::cout << "dissemination reduction: " << Table::fmt(reduction, 1) << "%\n";

    if (off.delivery_log != on.delivery_log) {
      std::cerr << "ERROR: delivery logs diverge between covering off/on in " << w.name << "\n";
      diverged = true;
    }

    json_scenario(json, w.name, off, on);
    json << ",\n";
  }

  // Rotated moving-centre workload: three configurations isolate what the
  // relational refinement buys on top of per-attribute covering.
  {
    const Workload w = make_rotated_workload();
    const RunStats off = run(w, false);
    const RunStats per_attr = run(w, true, /*relational_on=*/false);
    const RunStats rel = run(w, true, /*relational_on=*/true);

    print_banner(w.name + " workload (" + std::to_string(w.subs.size()) + " subscriptions, " +
                 std::to_string(w.unsub_wave.size()) + " coverers removed mid-run)");
    Table t{{"metric", "covering off", "on, per-attr", "on, relational"}};
    t.add_row({"subscription msgs", std::to_string(off.subscription_msgs),
               std::to_string(per_attr.subscription_msgs), std::to_string(rel.subscription_msgs)});
    t.add_row({"matcher population", std::to_string(off.matcher_population),
               std::to_string(per_attr.matcher_population), std::to_string(rel.matcher_population)});
    t.add_row({"deliveries", std::to_string(off.deliveries), std::to_string(per_attr.deliveries),
               std::to_string(rel.deliveries)});
    t.add_row({"suppressed forwards", "-", std::to_string(per_attr.suppressed),
               std::to_string(rel.suppressed)});
    t.add_row({"covering pairs (covered)", "-",
               std::to_string(per_attr.pairs.pairs) + " (" +
                   std::to_string(per_attr.pairs.covered) + ")",
               std::to_string(rel.pairs.pairs) + " (" + std::to_string(rel.pairs.covered) + ")"});
    t.add_row({"relational proofs", "-", std::to_string(per_attr.pairs.relational),
               std::to_string(rel.pairs.relational)});
    t.print();
    std::cout << "dissemination reduction vs off: " << Table::fmt(reduction_pct(off, rel), 1)
              << "%  (relational vs per-attr: " << Table::fmt(reduction_pct(per_attr, rel), 1)
              << "%)\n";

    if (off.delivery_log != per_attr.delivery_log || off.delivery_log != rel.delivery_log) {
      std::cerr << "ERROR: delivery logs diverge across configurations in " << w.name << "\n";
      diverged = true;
    }
    // The workload exists to exercise the octagon: the relational run must
    // actually prove coverings the per-attribute run cannot.
    if (rel.pairs.relational == 0 || rel.suppressed <= per_attr.suppressed ||
        rel.subscription_msgs >= per_attr.subscription_msgs) {
      std::cerr << "ERROR: relational covering produced no routing benefit in " << w.name << "\n";
      diverged = true;
    }
    if (per_attr.pairs.relational != 0) {
      std::cerr << "ERROR: relational-off run reported relational proofs in " << w.name << "\n";
      diverged = true;
    }

    json_rotated(json, w.name, off, per_attr, rel);
    json << "\n";
  }
  json << "  ]\n}";

  // BENCH_routing.json is shared with the overlay_batch bench: each bench
  // owns one top-level section and preserves the other's.
  if (!write_json_section(out_path, "routing_covering", json.str())) {
    std::cerr << "ERROR: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << out_path << " (section routing_covering)\n";
  return diverged ? 1 : 0;
}
