// Per-verdict counters for the subscribe-time static analysis (see
// analysis/analyzer.hpp). Each broker owns one instance and bumps it in
// handle_subscribe; the experiment harness aggregates and prints them via
// print_analysis_report.
//
// Header-only and dependency-free on purpose: the broker includes this
// without linking evps_metrics (which itself links the broker).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace evps {

struct AnalysisCounters {
  /// Evolving subscriptions that went through analysis.
  std::uint64_t analyzed = 0;
  /// Rejected: a compiled predicate program failed verification.
  std::uint64_t rejected_malformed = 0;
  /// Rejected: provably unsatisfiable for every reachable variable state.
  std::uint64_t rejected_unsatisfiable = 0;
  /// Rejected: cross-attribute infeasibility proved in the octagon domain.
  std::uint64_t rejected_rel_unsatisfiable = 0;
  /// Installed as the folded static equivalent (lazy path skipped).
  std::uint64_t folded_constant = 0;
  /// Installed but flagged: provably disjoint from every advertisement.
  std::uint64_t flagged_uncovered = 0;
  /// Installed but flagged: a predicate is entailed by the others.
  std::uint64_t flagged_redundant = 0;

  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_malformed + rejected_unsatisfiable + rejected_rel_unsatisfiable;
  }

  void reset() noexcept { *this = AnalysisCounters{}; }
};

/// Print one row per broker plus a totals row (Table format).
class Broker;
void print_analysis_report(const std::vector<const Broker*>& brokers,
                           std::ostream& os);

}  // namespace evps
