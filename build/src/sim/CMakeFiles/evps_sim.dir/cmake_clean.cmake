file(REMOVE_RECURSE
  "CMakeFiles/evps_sim.dir/network.cpp.o"
  "CMakeFiles/evps_sim.dir/network.cpp.o.d"
  "CMakeFiles/evps_sim.dir/simulator.cpp.o"
  "CMakeFiles/evps_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/evps_sim.dir/stats.cpp.o"
  "CMakeFiles/evps_sim.dir/stats.cpp.o.d"
  "libevps_sim.a"
  "libevps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
