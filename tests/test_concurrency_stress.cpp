// Concurrency stress suite — the payload of the sanitize-thread (TSan) gate
// in scripts/check.sh.
//
// Functional assertions here are deliberately simple (sharded results must
// equal a K=1 twin's); the real verdict comes from ThreadSanitizer observing
// the interleavings: many matcher instances hammering the one shared
// ThreadPool, fork-join dispatches back to back, engine lazy phases fanning
// out one task per shard, and engine evolution ticks interleaved with
// batched matching.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "evolving/clees_engine.hpp"
#include "evolving/lees_engine.hpp"
#include "evolving/ves_engine.hpp"
#include "matching/sharded_matcher.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

const char* kAttributes[] = {"x", "y", "price", "volume"};

Predicate random_predicate(Rng& rng) {
  const auto* attr = kAttributes[rng.uniform_int(0, 3)];
  const auto op = static_cast<RelOp>(rng.uniform_int(0, 5));
  return Predicate{attr, op, Value{rng.uniform_int(-10, 10)}};
}

Publication random_publication(Rng& rng) {
  Publication pub;
  const auto n = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    pub.set(kAttributes[rng.uniform_int(0, 3)], Value{rng.uniform_int(-10, 10)});
  }
  return pub;
}

// Each thread owns a sharded matcher and a K=1 twin; all sharded instances
// contend for the one process-wide pool. Any data race in the job handshake
// (descriptor publication, index claiming, completion counting, counter
// recycling between jobs) shows up here under TSan.
TEST(ConcurrencyStress, ManyMatchersOneSharedPool) {
  constexpr int kThreads = 4;
  constexpr int kOps = 300;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &mismatches] {
      Rng rng{static_cast<std::uint64_t>(t) * 1000003 + 17};
      ShardedMatcher sharded{MatcherKind::kCounting, 4};
      ShardedMatcher reference{MatcherKind::kCounting, 1};
      std::vector<SubscriptionId> live;
      std::uint64_t next_id = 1;
      std::vector<SubscriptionId> expected, got;
      for (int op = 0; op < kOps; ++op) {
        const double roll = rng.uniform();
        if (roll < 0.3 || live.empty()) {
          const SubscriptionId id{next_id++};
          std::vector<Predicate> preds{random_predicate(rng)};
          sharded.add(id, preds);
          reference.add(id, preds);
          live.push_back(id);
        } else if (roll < 0.4) {
          const auto idx = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          sharded.remove(live[idx]);
          reference.remove(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
          const Publication pub = random_publication(rng);
          expected.clear();
          reference.match(pub, expected);
          got.clear();
          sharded.match(pub, got);
          if (got != expected) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Batched dispatch under contention: several threads repeatedly push whole
// publication batches through the pool at once while others do the same.
TEST(ConcurrencyStress, ConcurrentBatchDispatch) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 60;
  constexpr int kBatch = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &mismatches] {
      Rng rng{static_cast<std::uint64_t>(t) * 90001 + 3};
      ShardedMatcher m{MatcherKind::kCounting, 4};
      for (std::uint64_t id = 1; id <= 64; ++id) {
        m.add(SubscriptionId{id}, {random_predicate(rng)});
      }
      std::vector<Publication> pubs;
      std::vector<std::vector<SubscriptionId>> batch;
      std::vector<SubscriptionId> loop;
      for (int round = 0; round < kRounds; ++round) {
        pubs.clear();
        for (int i = 0; i < kBatch; ++i) pubs.push_back(random_publication(rng));
        m.match_batch(pubs, batch);
        for (int i = 0; i < kBatch; ++i) {
          loop.clear();
          m.match(pubs[static_cast<std::size_t>(i)], loop);
          if (batch[static_cast<std::size_t>(i)] != loop) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Regression for the per-shard LazyStorage split. The original LEES/CLEES
// layout kept ONE LazyStorage (epoch scratch: per-part done/m1 stamps and
// the per-destination settled marks) shared by the whole engine; the sharded
// lazy phase fans out one task per shard, so two pool threads would have
// stamped the same storage's scratch concurrently — a data race TSan flags
// on the old layout. The storage is now split per shard (same hash as the
// matcher shards) with mark_done broadcast before the fan-out, so each task
// touches only its own shard's state. K=1 twins prove the split changes no
// results.
TEST(ConcurrencyStress, LeesPerShardLazyStorage) {
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg4{.kind = EngineKind::kLees, .matcher_threads = 4};
  EngineConfig cfg1{.kind = EngineKind::kLees, .matcher_threads = 1};
  LeesEngine sharded{cfg4};
  LeesEngine reference{cfg1};
  ASSERT_EQ(sharded.shard_count(), 4u);

  // Fully evolving subscriptions spread over all shards, several per
  // destination (the destination-settled marks are the racy part), plus
  // split subs so the M1 phase and mark_done broadcast both run.
  for (std::uint64_t id = 1; id <= 32; ++id) {
    SubscriptionPtr sub;
    if (id % 4 == 0) {
      sub = make_sub(id, "y >= 0; x <= " + std::to_string(id % 8) + " + t");
    } else {
      sub = make_sub(id, "x >= " + std::to_string(id % 6) + " - t");
    }
    const NodeId dest{1 + id % 3};
    sharded.add(sub, dest, host);
    reference.add(sub, dest, host);
  }

  int mismatches = 0;
  for (int step = 0; step < 100; ++step) {
    sim.run_until(SimTime::from_seconds(0.05 * step));
    Publication pub;
    pub.set("x", Value{step % 11 - 5});
    if (step % 2 == 0) pub.set("y", Value{1});
    if (match(sharded, host, pub) != match(reference, host, pub)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
  // Both engines hold the same population even though one spreads it over
  // four storages.
  EXPECT_EQ(sharded.leme_size(), reference.leme_size());
}

TEST(ConcurrencyStress, CleesPerShardLazyStorage) {
  // Same shape for the cached engine: the TT cache lives inside the
  // per-shard storage, so parallel shard tasks refresh disjoint caches.
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg4{.kind = EngineKind::kClees, .matcher_threads = 4};
  EngineConfig cfg1{.kind = EngineKind::kClees, .matcher_threads = 1};
  CleesEngine sharded{cfg4};
  CleesEngine reference{cfg1};

  for (std::uint64_t id = 1; id <= 32; ++id) {
    auto sub = make_sub(id, "[tt=0.2] x <= " + std::to_string(id % 9) + " + t");
    const NodeId dest{1 + id % 3};
    sharded.add(sub, dest, host);
    reference.add(sub, dest, host);
  }

  int mismatches = 0;
  for (int step = 0; step < 100; ++step) {
    sim.run_until(SimTime::from_seconds(0.07 * step));
    Publication pub;
    pub.set("x", Value{step % 13 - 4});
    if (match(sharded, host, pub) != match(reference, host, pub)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

// Engine evolution interleaved with batched matching, several engines in
// flight at once. VES re-materialisation rewrites matcher shards from timer
// callbacks (same thread as the dispatching caller — the simulator thread),
// while other threads' engines are mid-dispatch on the shared pool.
TEST(ConcurrencyStress, EnginesEvolveWhileOthersMatch) {
  constexpr int kThreads = 3;
  constexpr int kSteps = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &mismatches] {
      Simulator sim;
      SimHost host{sim};
      EngineConfig cfg4{.kind = EngineKind::kVes, .matcher_threads = 4};
      EngineConfig cfg1{.kind = EngineKind::kVes, .matcher_threads = 1};
      VesEngine sharded{cfg4};
      VesEngine reference{cfg1};
      for (std::uint64_t id = 1; id <= 24; ++id) {
        auto sub = make_sub(id, "x <= " + std::to_string(id % 7) + " + 0.5 * t");
        sharded.add(sub, NodeId{1 + id % 4}, host);
        reference.add(sub, NodeId{1 + id % 4}, host);
      }
      Rng rng{static_cast<std::uint64_t>(t) * 7 + 5};
      std::vector<Publication> pubs;
      std::vector<std::vector<NodeId>> batch4, batch1;
      for (int step = 1; step <= kSteps; ++step) {
        // Advance time: VES evolution timers fire and re-materialise
        // versions inside the sharded matcher.
        sim.run_until(SimTime::from_seconds(0.25 * step));
        pubs.clear();
        for (int i = 0; i < 4; ++i) {
          Publication pub = random_publication(rng);
          pub.set_entry_time(sim.now());
          pubs.push_back(std::move(pub));
        }
        sharded.match_batch(pubs, nullptr, host, batch4);
        reference.match_batch(pubs, nullptr, host, batch1);
        for (std::size_t i = 0; i < pubs.size(); ++i) {
          if (batch4[i] != batch1[i]) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Lazy engines under the same cross-thread pressure: per-shard EvalScope and
// evaluation stacks are written by pool workers while neighbouring threads
// run their own fan-outs through the same pool.
TEST(ConcurrencyStress, ParallelLazyEnginesContendForPool) {
  constexpr int kThreads = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &mismatches] {
      Simulator sim;
      SimHost host{sim};
      EngineConfig cfg4{.kind = EngineKind::kLees, .matcher_threads = 4};
      EngineConfig cfg1{.kind = EngineKind::kLees, .matcher_threads = 1};
      LeesEngine sharded{cfg4};
      LeesEngine reference{cfg1};
      for (std::uint64_t id = 1; id <= 20; ++id) {
        auto sub = make_sub(id, "x >= " + std::to_string(id % 5) + " + 0.1 * t");
        sharded.add(sub, NodeId{1 + id % 2}, host);
        reference.add(sub, NodeId{1 + id % 2}, host);
      }
      for (int step = 0; step < 120; ++step) {
        sim.run_until(SimTime::from_seconds(0.02 * step + 0.01 * t));
        Publication pub;
        pub.set("x", Value{step % 9});
        if (match(sharded, host, pub) != match(reference, host, pub)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace evps
