// Reference matcher: linear scan over all stored subscriptions.
//
// Used as the correctness oracle in property tests and as the baseline in
// the matcher micro-benchmarks. Attribute names are interned once on add so
// the scan probes publications by AttrId instead of comparing strings.
#pragma once

#include <map>

#include "common/attribute_table.hpp"
#include "matching/matcher.hpp"

namespace evps {

class BruteForceMatcher final : public Matcher {
 public:
  using Matcher::match;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  [[nodiscard]] bool contains(SubscriptionId id) const override { return subs_.contains(id); }
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }
  void collect_ids(std::vector<SubscriptionId>& out) const override {
    for (const auto& [id, stored] : subs_) out.push_back(id);
  }

 private:
  struct Stored {
    std::vector<Predicate> preds;
    std::vector<AttrId> attr_ids;  // parallel to preds
  };

  std::map<SubscriptionId, Stored> subs_;
};

}  // namespace evps
