# Empty dependencies file for evps_matching.
# This may be replaced when dependencies are built.
