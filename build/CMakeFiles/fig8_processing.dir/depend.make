# Empty dependencies file for fig8_processing.
# This may be replaced when dependencies are built.
