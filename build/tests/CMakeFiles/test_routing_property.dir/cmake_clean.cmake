file(REMOVE_RECURSE
  "CMakeFiles/test_routing_property.dir/test_routing_property.cpp.o"
  "CMakeFiles/test_routing_property.dir/test_routing_property.cpp.o.d"
  "test_routing_property"
  "test_routing_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
