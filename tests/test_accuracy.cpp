#include "metrics/accuracy.hpp"

#include <gtest/gtest.h>

#include "message/codec.hpp"

namespace evps {
namespace {

DeliveryLog log_of(std::initializer_list<std::pair<std::uint64_t, std::vector<std::uint64_t>>>
                       entries) {
  DeliveryLog log;
  for (const auto& [client, pubs] : entries) {
    auto& set = log.delivered[ClientId{client}];
    for (const auto p : pubs) set.insert(MessageId{p});
  }
  return log;
}

TEST(Accuracy, PerfectMatch) {
  const auto truth = log_of({{1, {10, 11}}, {2, {12}}});
  const auto result = compare_logs(truth, truth);
  EXPECT_EQ(result.truth_deliveries, 3u);
  EXPECT_EQ(result.actual_deliveries, 3u);
  EXPECT_EQ(result.false_positives, 0u);
  EXPECT_EQ(result.false_negatives, 0u);
  EXPECT_EQ(result.errors(), 0u);
  EXPECT_DOUBLE_EQ(result.error_rate(), 0.0);
  EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
}

TEST(Accuracy, FalseNegatives) {
  const auto truth = log_of({{1, {10, 11, 12}}});
  const auto actual = log_of({{1, {10}}});
  const auto result = compare_logs(truth, actual);
  EXPECT_EQ(result.false_negatives, 2u);
  EXPECT_EQ(result.false_positives, 0u);
  EXPECT_NEAR(result.error_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Accuracy, FalsePositives) {
  const auto truth = log_of({{1, {10}}});
  const auto actual = log_of({{1, {10, 11, 12}}});
  const auto result = compare_logs(truth, actual);
  EXPECT_EQ(result.false_positives, 2u);
  EXPECT_EQ(result.false_negatives, 0u);
}

TEST(Accuracy, MissingClientCountsAllAsFalseNegatives) {
  const auto truth = log_of({{1, {10}}, {2, {11, 12}}});
  const auto actual = log_of({{1, {10}}});
  const auto result = compare_logs(truth, actual);
  EXPECT_EQ(result.false_negatives, 2u);
}

TEST(Accuracy, UnexpectedClientCountsAllAsFalsePositives) {
  const auto truth = log_of({{1, {10}}});
  const auto actual = log_of({{1, {10}}, {3, {20}}});
  const auto result = compare_logs(truth, actual);
  EXPECT_EQ(result.false_positives, 1u);
}

TEST(Accuracy, SamePublicationToDifferentClientIsError) {
  // Delivering pub 10 to the wrong client is both a FN (client 1) and an FP
  // (client 2).
  const auto truth = log_of({{1, {10}}});
  const auto actual = log_of({{2, {10}}});
  const auto result = compare_logs(truth, actual);
  EXPECT_EQ(result.false_negatives, 1u);
  EXPECT_EQ(result.false_positives, 1u);
  EXPECT_EQ(result.errors(), 2u);
}

TEST(Accuracy, EmptyTruth) {
  const auto result = compare_logs(DeliveryLog{}, log_of({{1, {10}}}));
  EXPECT_EQ(result.false_positives, 1u);
  EXPECT_DOUBLE_EQ(result.error_rate(), 0.0);  // undefined -> 0 by convention
  const auto empty = compare_logs(DeliveryLog{}, DeliveryLog{});
  EXPECT_EQ(empty.errors(), 0u);
}

TEST(Accuracy, AccuracyFloorsAtZero) {
  const auto truth = log_of({{1, {10}}});
  const auto actual = log_of({{2, {20, 21, 22}}});
  const auto result = compare_logs(truth, actual);
  EXPECT_DOUBLE_EQ(result.accuracy(), 0.0);
}

TEST(Accuracy, CollectFromOverlay) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  Broker& broker = overlay.add_broker("b", cfg);
  PubSubClient& sub = overlay.add_client("sub");
  PubSubClient& feed = overlay.add_client("feed");
  sub.connect(broker, Duration::zero());
  feed.connect(broker, Duration::zero());
  sub.subscribe("x >= 0");
  sim.run_until(SimTime::from_seconds(0.1));
  const auto p1 = feed.publish("x = 1");
  feed.publish("x = -1");
  const auto p2 = feed.publish("x = 2");
  sim.run_until(SimTime::from_seconds(1));

  const DeliveryLog log = collect_delivery_log(overlay);
  ASSERT_EQ(log.delivered.size(), 1u);
  const auto& set = log.delivered.at(sub.id());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(p1));
  EXPECT_TRUE(set.contains(p2));
  EXPECT_EQ(log.total(), 2u);
}

}  // namespace
}  // namespace evps
