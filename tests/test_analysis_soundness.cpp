// Soundness of subscribe-time analysis (analysis/analyzer.hpp), checked the
// only way abstract interpretation can be: against thousands of randomly
// generated subscriptions, every verdict must be consistent with concrete
// evaluation over sampled variable assignments and publication values.
//
//   * interval soundness — each evolving predicate's concretely evaluated
//     bound always lies in its derived interval;
//   * kUnsatisfiable / kAdUncovered — the subscription never matches any
//     sampled publication (>= 10k probes accumulate across seeds, the
//     uncovered ones probed with publications the advertisement covers);
//   * kConstant — the folded static subscription is bit-identical to lazy
//     evaluation and agrees with the original on every probe.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "expr/ast.hpp"
#include "message/advertisement.hpp"
#include "message/codec.hpp"
#include "message/predicate.hpp"
#include "message/publication.hpp"
#include "message/subscription.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

constexpr int kVarCount = 4;
const char* const kVarNames[] = {"as_v0", "as_v1", "as_v2", "as_v3"};
const char* const kAttrs[] = {"sx", "sy"};

struct VarDecl {
  double lo = 0;
  double hi = 0;
  bool bound = false;  // has a value in the registry
};

ExprPtr random_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.3)) {
    const int pick = static_cast<int>(rng.uniform_int(0, 3));
    if (pick == 0) return Expr::constant(rng.uniform(-8.0, 8.0));
    if (pick == 1) return Expr::variable("t");
    return Expr::variable(kVarNames[rng.uniform_int(0, kVarCount - 1)]);
  }
  switch (rng.uniform_int(0, 5)) {
    case 0:
    case 1:
      return Expr::binary(static_cast<BinaryOp>(rng.uniform_int(0, 5)),
                          random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 2:
      return Expr::unary(static_cast<UnaryOp>(rng.uniform_int(0, 7)),
                         random_expr(rng, depth - 1));
    case 3: {
      std::vector<ExprPtr> args;
      const int n = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < n; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(rng.bernoulli(0.5) ? CallFn::kMin : CallFn::kMax, std::move(args));
    }
    case 4: {
      std::vector<ExprPtr> args;
      for (int i = 0; i < 3; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(CallFn::kClamp, std::move(args));
    }
    default:
      return Expr::call(CallFn::kStep, {random_expr(rng, depth - 1)});
  }
}

RelOp random_op(Rng& rng) { return static_cast<RelOp>(rng.uniform_int(0, 5)); }

bool same_bits(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub || (std::isnan(a) && std::isnan(b));
}

bool matches_sub(const Subscription& sub, const Publication& pub, const EvalScope& scope) {
  for (const Predicate& pred : sub.predicates()) {
    const Value* v = pub.get(pred.attribute());
    if (v == nullptr || !pred.matches(*v, scope)) return false;
  }
  return true;
}

TEST(AnalysisSoundness, VerdictsHoldOverSampledAssignments) {
  std::uint64_t never_probes = 0;   // probes against unsat/uncovered subs
  std::uint64_t unsat_seeds = 0;
  std::uint64_t uncovered_seeds = 0;
  std::uint64_t constant_seeds = 0;
  std::uint64_t ok_seeds = 0;

  for (std::uint64_t seed = 1; seed <= 1200; ++seed) {
    Rng rng{seed};
    VariableRegistry reg;
    VarDecl decls[kVarCount];
    for (int i = 0; i < kVarCount; ++i) {
      decls[i].lo = rng.uniform(-10.0, 10.0);
      // Degenerate ranges pin the variable and drive kConstant verdicts.
      decls[i].hi = rng.bernoulli(0.3) ? decls[i].lo : decls[i].lo + rng.uniform(0.0, 10.0);
      reg.declare_range(kVarNames[i], decls[i].lo, decls[i].hi);
      decls[i].bound = rng.bernoulli(0.8);
      if (decls[i].bound) {
        reg.set(kVarNames[i], rng.uniform(decls[i].lo, decls[i].hi), SimTime::zero());
      }
    }

    // The advertised publication space: a static box over both attributes.
    Advertisement ad{MessageId{seed}, ClientId{1}, {}};
    double ad_lo[2];
    double ad_hi[2];
    for (int a = 0; a < 2; ++a) {
      ad_lo[a] = rng.uniform(-20.0, 10.0);
      ad_hi[a] = ad_lo[a] + rng.uniform(0.0, 15.0);
      ad.add(Predicate{kAttrs[a], RelOp::kGe, Value{ad_lo[a]}});
      ad.add(Predicate{kAttrs[a], RelOp::kLe, Value{ad_hi[a]}});
    }

    Subscription sub;
    sub.set_id(SubscriptionId{seed});
    const int npreds = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < npreds; ++i) {
      const char* attr = kAttrs[rng.uniform_int(0, 1)];
      if (rng.bernoulli(0.35)) {
        sub.add(Predicate{attr, random_op(rng), Value{rng.uniform(-20.0, 20.0)}});
      } else {
        sub.add(Predicate{attr, random_op(rng),
                          random_expr(rng, static_cast<int>(rng.uniform_int(1, 4)))});
      }
    }

    const auto analysis = analyze_subscription(sub, reg, {&ad});
    ASSERT_NE(analysis.verdict, Verdict::kMalformed) << "seed " << seed;
    switch (analysis.verdict) {
      case Verdict::kUnsatisfiable: ++unsat_seeds; break;
      case Verdict::kAdUncovered: ++uncovered_seeds; break;
      case Verdict::kConstant: ++constant_seeds; break;
      default: ++ok_seeds; break;
    }

    // Pre-compile evolving predicates once per seed.
    std::vector<int> evolving_index;  // predicate index -> compiled index
    std::vector<CompiledPredicate> compiled;
    for (std::size_t i = 0; i < sub.predicates().size(); ++i) {
      if (sub.predicates()[i].is_evolving()) {
        evolving_index.push_back(static_cast<int>(i));
        compiled.emplace_back(sub.predicates()[i]);
      }
    }

    const int rounds =
        (analysis.verdict == Verdict::kUnsatisfiable || analysis.verdict == Verdict::kAdUncovered)
            ? 10
            : 4;
    std::vector<double> stack;
    EvalScope scope;
    double clock = 0.0;
    for (int round = 0; round < rounds; ++round) {
      clock += 1.0;
      for (int i = 0; i < kVarCount; ++i) {
        if (decls[i].bound) {
          reg.set(kVarNames[i], rng.uniform(decls[i].lo, decls[i].hi), sec(clock));
        }
      }
      const SimTime now = sec(clock + rng.uniform());
      scope.rebind(&reg, now);
      scope.set_epoch(SimTime::zero());

      // Interval soundness + targeted probe values (the bounds themselves).
      std::vector<double> probe_values{rng.uniform(-30.0, 30.0), ad_lo[0], ad_hi[1]};
      for (std::size_t c = 0; c < compiled.size(); ++c) {
        bool unbound = false;
        const double b = compiled[c].bound(scope, stack, unbound);
        if (!unbound) {
          const auto& iv = analysis.predicates[evolving_index[c]].interval;
          ASSERT_TRUE(iv.admits(b))
              << "seed " << seed << ": bound " << b << " escapes [" << iv.lo << ", " << iv.hi
              << "] nan=" << iv.maybe_nan << " for "
              << sub.predicates()[evolving_index[c]].to_string();
          probe_values.push_back(b);
        }
      }

      for (const double px : probe_values) {
        for (const double py : probe_values) {
          Publication pub;
          pub.set(kAttrs[0], Value{px});
          pub.set(kAttrs[1], Value{py});
          const bool matched = matches_sub(sub, pub, scope);
          if (analysis.verdict == Verdict::kUnsatisfiable) {
            ++never_probes;
            ASSERT_FALSE(matched) << "seed " << seed << " matched unsat sub at t=" << clock;
          } else if (analysis.verdict == Verdict::kAdUncovered) {
            // Only publications inside the advertised space are promised to
            // never match.
            if (ad.covers(pub)) {
              ++never_probes;
              ASSERT_FALSE(matched)
                  << "seed " << seed << " matched ad-uncovered sub at t=" << clock;
            }
          } else if (analysis.verdict == Verdict::kConstant) {
            ASSERT_TRUE(analysis.folded.has_value());
            ASSERT_EQ(matched, matches_sub(*analysis.folded, pub, scope))
                << "seed " << seed << " fold diverges at t=" << clock;
          }
        }
        // Probes covered by the ad, for uncovered subscriptions.
        if (analysis.verdict == Verdict::kAdUncovered) {
          Publication pub;
          pub.set(kAttrs[0], Value{rng.uniform(ad_lo[0], ad_hi[0])});
          pub.set(kAttrs[1], Value{rng.uniform(ad_lo[1], ad_hi[1])});
          if (ad.covers(pub)) {
            ++never_probes;
            ASSERT_FALSE(matches_sub(sub, pub, scope)) << "seed " << seed;
          }
        }
      }

      // Bit-identical fold: each folded constant equals lazy evaluation.
      if (analysis.verdict == Verdict::kConstant) {
        for (std::size_t c = 0; c < compiled.size(); ++c) {
          bool unbound = false;
          const double lazy = compiled[c].bound(scope, stack, unbound);
          ASSERT_FALSE(unbound) << "seed " << seed;
          const auto& folded_pred = analysis.folded->predicates()[evolving_index[c]];
          ASSERT_FALSE(folded_pred.is_evolving());
          const auto folded_value = folded_pred.constant().numeric();
          ASSERT_TRUE(folded_value.has_value());
          ASSERT_TRUE(same_bits(*folded_value, lazy))
              << "seed " << seed << ": folded " << *folded_value << " vs lazy " << lazy;
        }
      }
    }
  }

  // The generator must exercise every verdict, and the never-match verdicts
  // must survive a substantial number of probes.
  EXPECT_GE(never_probes, 10000u);
  EXPECT_GE(unsat_seeds, 20u);
  EXPECT_GE(uncovered_seeds, 20u);
  EXPECT_GE(constant_seeds, 20u);
  EXPECT_GE(ok_seeds, 100u);
}

TEST(AnalysisSoundness, HandPickedVerdicts) {
  VariableRegistry reg;
  reg.declare_range("as_load", 0.0, 1.0);
  reg.set("as_load", 0.5, SimTime::zero());
  reg.declare_range("as_cap", 40.0, 40.0);
  reg.set("as_cap", 40.0, SimTime::zero());

  const auto analyze = [&](const char* text) {
    Subscription sub = parse_subscription(text);
    sub.set_id(SubscriptionId{1});
    return analyze_subscription(sub, reg, {});
  };

  // Bound tops out at 30 < required 50.
  const auto unsat = analyze("p <= 20 + 10 * as_load; p >= 50");
  EXPECT_EQ(unsat.verdict, Verdict::kUnsatisfiable);

  // Pinned variable: provably constant and folded to p <= 50.
  const auto constant = analyze("p <= 10 + as_cap");
  ASSERT_EQ(constant.verdict, Verdict::kConstant);
  ASSERT_TRUE(constant.folded.has_value());
  ASSERT_EQ(constant.folded->predicates().size(), 1u);
  EXPECT_FALSE(constant.folded->predicates()[0].is_evolving());
  ASSERT_TRUE(constant.folded->predicates()[0].constant().numeric().has_value());
  EXPECT_EQ(*constant.folded->predicates()[0].constant().numeric(), 50.0);

  // Plain drift with t: nothing to report.
  const auto ok = analyze("p >= -3 + t; p <= 3 + t");
  EXPECT_EQ(ok.verdict, Verdict::kOk);
  EXPECT_TRUE(ok.time_dependent);

  // Undeclared variable: bounds unknown, verdict stays kOk (never guess).
  const auto undeclared = analyze("p <= 20 + 10 * as_mystery; p >= 50");
  EXPECT_EQ(undeclared.verdict, Verdict::kOk);
}

}  // namespace
}  // namespace evps
