#include "expr/parser.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

double eval(std::string_view text, const MapEnv& env = MapEnv{}) {
  return parse_expr(text)->eval(env);
}

TEST(Parser, Numbers) {
  EXPECT_DOUBLE_EQ(eval("42"), 42.0);
  EXPECT_DOUBLE_EQ(eval("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(eval("0.125"), 0.125);
  EXPECT_DOUBLE_EQ(eval(".5"), 0.5);
}

TEST(Parser, Precedence) {
  EXPECT_DOUBLE_EQ(eval("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(eval("(2 + 3) * 4"), 20.0);
  EXPECT_DOUBLE_EQ(eval("10 - 4 - 3"), 3.0);    // left associative
  EXPECT_DOUBLE_EQ(eval("12 / 3 / 2"), 2.0);    // left associative
  EXPECT_DOUBLE_EQ(eval("2 ^ 3 ^ 2"), 512.0);   // right associative
  EXPECT_DOUBLE_EQ(eval("7 % 4"), 3.0);
  EXPECT_DOUBLE_EQ(eval("2 * 3 ^ 2"), 18.0);    // ^ binds tighter
}

TEST(Parser, UnaryMinus) {
  EXPECT_DOUBLE_EQ(eval("-5"), -5.0);
  EXPECT_DOUBLE_EQ(eval("--5"), 5.0);
  EXPECT_DOUBLE_EQ(eval("3 + -2"), 1.0);
  EXPECT_DOUBLE_EQ(eval("-2 ^ 2"), -4.0);  // -(2^2): conventional precedence
}

TEST(Parser, Variables) {
  const MapEnv env{{"t", 3.0}, {"v", 0.5}};
  EXPECT_DOUBLE_EQ(eval("2 * t", env), 6.0);
  EXPECT_DOUBLE_EQ(eval("(3 + t) * v", env), 3.0);
  EXPECT_DOUBLE_EQ(eval("t + t * v", env), 4.5);
}

TEST(Parser, PaperExampleSubscriptionBounds) {
  // Section III-C: { x >= (-3 + t) * v } at t = 1, v = 0.5.
  const MapEnv env{{"t", 1.0}, {"v", 0.5}};
  EXPECT_DOUBLE_EQ(eval("(-3 + t) * v", env), -1.0);
  EXPECT_DOUBLE_EQ(eval("(3 + t) * v", env), 2.0);
}

TEST(Parser, Functions) {
  const MapEnv env{{"x", -4.0}};
  EXPECT_DOUBLE_EQ(eval("abs(x)", env), 4.0);
  EXPECT_DOUBLE_EQ(eval("min(1, 2, -3)"), -3.0);
  EXPECT_DOUBLE_EQ(eval("max(1, 2, -3)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("clamp(x, -1, 1)", env), -1.0);
  EXPECT_DOUBLE_EQ(eval("step(x)", env), 0.0);
  EXPECT_DOUBLE_EQ(eval("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("floor(2.9)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("sign(-9)"), -1.0);
}

TEST(Parser, NestedCalls) {
  EXPECT_DOUBLE_EQ(eval("max(min(5, 3), 1 + 1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("abs(min(-2, 4)) * 3"), 6.0);
}

TEST(Parser, ConstantFolding) {
  EXPECT_TRUE(parse_expr("2 * 3 + 4")->is_constant());
  const auto folded = parse_expr("2 * 3 + t");
  // The constant subtree was folded: (6 + t).
  EXPECT_EQ(folded->to_string(), "(6 + t)");
}

TEST(Parser, WhitespaceInsensitive) {
  EXPECT_DOUBLE_EQ(eval("  1+ 2 \t*3 "), 7.0);
}

TEST(Parser, Errors) {
  EXPECT_THROW((void)parse_expr(""), ParseError);
  EXPECT_THROW((void)parse_expr("1 +"), ParseError);
  EXPECT_THROW((void)parse_expr("(1"), ParseError);
  EXPECT_THROW((void)parse_expr("1)"), ParseError);
  EXPECT_THROW((void)parse_expr("1 2"), ParseError);
  EXPECT_THROW((void)parse_expr("unknownfn(1)"), ParseError);
  EXPECT_THROW((void)parse_expr("min()"), ParseError);
  EXPECT_THROW((void)parse_expr("clamp(1, 2)"), ParseError);
  EXPECT_THROW((void)parse_expr("abs(1, 2)"), ParseError);
  EXPECT_THROW((void)parse_expr("$"), ParseError);
}

TEST(Parser, ErrorOffsetReported) {
  try {
    (void)parse_expr("1 + $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

// Regression: ParseError must carry the offending token alongside the
// offset, so tools can underline the exact source span (caret diagnostics)
// without re-lexing the input.
TEST(Parser, ErrorCarriesOffendingToken) {
  const auto fail = [](std::string_view text) {
    try {
      (void)parse_expr(text);
      ADD_FAILURE() << "expected ParseError for '" << text << "'";
      return ParseError{"", 0};
    } catch (const ParseError& e) {
      return e;
    }
  };

  const auto unexpected = fail("1 + $");
  EXPECT_EQ(unexpected.offset(), 4u);
  EXPECT_EQ(unexpected.token(), "$");

  const auto trailing = fail("1 2");
  EXPECT_EQ(trailing.offset(), 2u);
  EXPECT_EQ(trailing.token(), "2");

  const auto primary = fail("1 + * 2");
  EXPECT_EQ(primary.offset(), 4u);
  EXPECT_EQ(primary.token(), "*");

  const auto arity = fail("abs(1, 2)");
  EXPECT_EQ(arity.offset(), 0u);
  EXPECT_EQ(arity.token(), "abs");

  const auto nary = fail("3 + clamp(1, 2)");
  EXPECT_EQ(nary.offset(), 4u);
  EXPECT_EQ(nary.token(), "clamp");

  const auto unknown = fail("frobnicate(1)");
  EXPECT_EQ(unknown.offset(), 0u);
  EXPECT_EQ(unknown.token(), "frobnicate");

  const auto unclosed = fail("min(1, 2");
  EXPECT_EQ(unclosed.offset(), 8u);
  EXPECT_TRUE(unclosed.token().empty());  // failure at end of input

  // The token always occurs at the reported offset of the original text.
  const std::string_view text = "1 + (t * $)";
  const auto located = fail(text);
  ASSERT_FALSE(located.token().empty());
  EXPECT_EQ(text.substr(located.offset(), located.token().size()), located.token());
}

TEST(Parser, MalformedNumberCarriesLocation) {
  try {
    (void)parse_expr("2 + .");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_EQ(e.token(), ".");
  }
}

TEST(Parser, TryParseVariant) {
  std::string error;
  EXPECT_TRUE(try_parse_expr("1 + t", &error).has_value());
  EXPECT_FALSE(try_parse_expr("1 +", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(try_parse_expr("(((", nullptr).has_value());
}

class ParserRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTrip, ToStringReparsesToEqualTree) {
  const auto original = parse_expr(GetParam());
  const auto reparsed = parse_expr(original->to_string());
  EXPECT_TRUE(original->equals(*reparsed))
      << GetParam() << " -> " << original->to_string() << " -> " << reparsed->to_string();
}

INSTANTIATE_TEST_SUITE_P(Expressions, ParserRoundTrip,
                         ::testing::Values("1 + t", "(3 + t) * v", "-t",
                                           "min(t, v, 3)", "clamp(t, 0, 1)",
                                           "t ^ 2 + sqrt(v)", "abs(-t) % 3",
                                           "step(t - 5) * maxDist",
                                           "2 * t - 3 * v + 1"));

}  // namespace
}  // namespace evps
