// Virtual time used by the discrete-event simulator and by all
// evolution-variable computations.
//
// Time is an integer count of microseconds since the start of a run. Using a
// fixed-point integer representation (rather than floating point seconds)
// keeps event ordering exact and runs reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace evps {

class Duration;

/// A point in virtual time, microsecond resolution.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime from_micros(std::int64_t us) noexcept { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime from_millis(std::int64_t ms) noexcept { return SimTime{ms * 1000}; }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return us_; }
  [[nodiscard]] constexpr std::int64_t millis() const noexcept { return us_ / 1000; }
  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(us_) / 1e6; }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  constexpr SimTime& operator+=(Duration d) noexcept;
  constexpr SimTime& operator-=(Duration d) noexcept;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds() << "s";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

/// A span of virtual time, microsecond resolution. May be negative.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t us) noexcept { return Duration{us}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) noexcept { return Duration{ms * 1000}; }
  [[nodiscard]] static constexpr Duration seconds(double s) noexcept {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr Duration minutes(double m) noexcept { return seconds(m * 60.0); }
  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }

  [[nodiscard]] constexpr std::int64_t count_micros() const noexcept { return us_; }
  [[nodiscard]] constexpr double count_seconds() const noexcept { return static_cast<double>(us_) / 1e6; }

  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;

  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration{a.us_ - b.us_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) noexcept { return Duration{a.us_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return Duration{a.us_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) noexcept { return Duration{a.us_ / k}; }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.count_seconds() << "s";
  }

 private:
  constexpr explicit Duration(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

[[nodiscard]] constexpr SimTime operator+(SimTime t, Duration d) noexcept {
  return SimTime::from_micros(t.micros() + d.count_micros());
}
[[nodiscard]] constexpr SimTime operator-(SimTime t, Duration d) noexcept {
  return SimTime::from_micros(t.micros() - d.count_micros());
}
[[nodiscard]] constexpr Duration operator-(SimTime a, SimTime b) noexcept {
  return Duration::micros(a.micros() - b.micros());
}

constexpr SimTime& SimTime::operator+=(Duration d) noexcept {
  us_ += d.count_micros();
  return *this;
}
constexpr SimTime& SimTime::operator-=(Duration d) noexcept {
  us_ -= d.count_micros();
  return *this;
}

}  // namespace evps
