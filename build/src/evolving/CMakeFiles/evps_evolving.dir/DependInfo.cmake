
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evolving/clees_engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/clees_engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/clees_engine.cpp.o.d"
  "/root/repo/src/evolving/engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/engine.cpp.o.d"
  "/root/repo/src/evolving/esq.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/esq.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/esq.cpp.o.d"
  "/root/repo/src/evolving/hybrid_engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/hybrid_engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/hybrid_engine.cpp.o.d"
  "/root/repo/src/evolving/lees_engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/lees_engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/lees_engine.cpp.o.d"
  "/root/repo/src/evolving/parametric_engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/parametric_engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/parametric_engine.cpp.o.d"
  "/root/repo/src/evolving/static_engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/static_engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/static_engine.cpp.o.d"
  "/root/repo/src/evolving/ves_engine.cpp" "src/evolving/CMakeFiles/evps_evolving.dir/ves_engine.cpp.o" "gcc" "src/evolving/CMakeFiles/evps_evolving.dir/ves_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/evps_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/evps_message.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/evps_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/evps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
