// Routing-mode equivalence property: advertisement-based routing is an
// optimisation over flooding — on the same randomized workload both modes
// must produce exactly the same delivery log (the conservative
// advertisement intersection guarantees no false negatives), while the
// advertisement mode must not generate *more* subscription traffic.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct WorkloadResult {
  DeliveryLog log;
  std::uint64_t sub_msgs = 0;
  std::uint64_t pubs_forwarded = 0;
};

/// Star of 1 core + 4 edges; 4 publishers advertise disjoint-ish price
/// slices; 8 subscribers issue random static and evolving band
/// subscriptions, some replaced mid-run; publishers emit random quotes.
WorkloadResult run(RoutingMode routing, EngineKind engine, std::uint64_t seed) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = engine;
  cfg.routing = routing;
  auto brokers = overlay.build_star(4, cfg, Duration::millis(5));

  Rng rng{seed};
  std::vector<PubSubClient*> publishers;
  for (int p = 0; p < 4; ++p) {
    auto& client = overlay.add_client("pub" + std::to_string(p));
    client.connect(*brokers[static_cast<std::size_t>(1 + p)], Duration::millis(1));
    publishers.push_back(&client);
    // Advertise a 40-wide slice [25p, 25p + 40] (overlapping neighbours).
    client.advertise({Predicate{"price", RelOp::kGe, Value{25.0 * p}},
                      Predicate{"price", RelOp::kLe, Value{25.0 * p + 40.0}}});
  }
  std::vector<PubSubClient*> subscribers;
  for (int s = 0; s < 8; ++s) {
    auto& client = overlay.add_client("sub" + std::to_string(s));
    client.connect(*brokers[static_cast<std::size_t>(1 + s % 4)], Duration::millis(1));
    subscribers.push_back(&client);
  }

  // Random subscriptions: static bands, evolving (drifting) bands, and a
  // few mid-run replacements.
  for (auto* client : subscribers) {
    const int n_subs = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < n_subs; ++k) {
      const double lo = rng.uniform(0.0, 110.0);
      const double width = rng.uniform(2.0, 15.0);
      const bool evolving = rng.bernoulli(0.5);
      const double at = rng.uniform(0.0, 2.0);
      Subscription sub;
      if (evolving) {
        const double drift = rng.uniform(-3.0, 3.0);
        sub.add(Predicate{"price", RelOp::kGe,
                          Expr::add(Expr::constant(lo),
                                    Expr::mul(Expr::constant(drift), Expr::variable("t")))});
        sub.add(Predicate{"price", RelOp::kLe,
                          Expr::add(Expr::constant(lo + width),
                                    Expr::mul(Expr::constant(drift), Expr::variable("t")))});
      } else {
        sub.add(Predicate{"price", RelOp::kGe, Value{lo}});
        sub.add(Predicate{"price", RelOp::kLe, Value{lo + width}});
      }
      sim.at(sec(at), [client, sub = std::move(sub), &sim, &rng]() mutable {
        const auto id = client->subscribe(std::move(sub));
        (void)id;
        (void)sim;
        (void)rng;
      });
    }
  }

  // Quotes: every 20 ms each publisher emits a price within (and sometimes
  // outside) its advertised slice.
  for (std::size_t p = 0; p < publishers.size(); ++p) {
    auto pub_rng = std::make_shared<Rng>(rng.fork(100 + p));
    sim.every(sec(0.1) + Duration::millis(static_cast<std::int64_t>(p)), Duration::millis(20),
              sec(8), [client = publishers[p], pub_rng, p](SimTime) {
                Publication quote;
                // Stay inside the advertised space: publications outside a
                // publisher's advertisement are undefined under
                // advertisement routing (PADRES semantics).
                quote.set("price", pub_rng->uniform(25.0 * static_cast<double>(p),
                                                    25.0 * static_cast<double>(p) + 40.0));
                quote.set("seq", pub_rng->uniform_int(0, 1 << 20));
                client->publish(std::move(quote));
              });
  }

  sim.run_until(sec(9));
  WorkloadResult result;
  result.log = collect_delivery_log(overlay);
  for (const auto& b : overlay.brokers()) {
    result.sub_msgs += b->stats().subscription_msgs;
    result.pubs_forwarded += b->stats().pubs_forwarded;
  }
  return result;
}

class RoutingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingEquivalence, AdvertisementModeDeliversExactlyLikeFloodingWithLees) {
  // LEES evaluates exactly at each broker, so its decisions are a pure
  // function of (subscription present, time): both routing modes must
  // produce the identical delivery log.
  const std::uint64_t seed = GetParam();
  const WorkloadResult flooding = run(RoutingMode::kFlooding, EngineKind::kLees, seed);
  const WorkloadResult advertisement =
      run(RoutingMode::kAdvertisement, EngineKind::kLees, seed);

  ASSERT_GT(flooding.log.total(), 0u);
  EXPECT_EQ(advertisement.log.delivered, flooding.log.delivered);
  // The optimisation may only reduce control traffic, never add to it.
  EXPECT_LE(advertisement.sub_msgs, flooding.sub_msgs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingEquivalence, ::testing::Values(1, 2, 3, 7, 11));

class RoutingNearEquivalence
    : public ::testing::TestWithParam<std::pair<EngineKind, std::uint64_t>> {};

TEST_P(RoutingNearEquivalence, StatefulEnginesStayWithinTolerance) {
  // VES versions and CLEES caches are refreshed relative to install/probe
  // times, which legitimately shift by a few milliseconds between routing
  // modes; the delivery logs must still agree on all but boundary cases.
  const auto [engine, seed] = GetParam();
  const WorkloadResult flooding = run(RoutingMode::kFlooding, engine, seed);
  const WorkloadResult advertisement = run(RoutingMode::kAdvertisement, engine, seed);
  ASSERT_GT(flooding.log.total(), 0u);
  const AccuracyResult diff = compare_logs(flooding.log, advertisement.log);
  EXPECT_LT(diff.error_rate(), 0.02)
      << "flooding " << flooding.log.total() << " vs advertisement "
      << advertisement.log.total();
  EXPECT_LE(advertisement.sub_msgs, flooding.sub_msgs);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, RoutingNearEquivalence,
    ::testing::Values(std::make_pair(EngineKind::kClees, std::uint64_t{3}),
                      std::make_pair(EngineKind::kClees, std::uint64_t{4}),
                      std::make_pair(EngineKind::kVes, std::uint64_t{5}),
                      std::make_pair(EngineKind::kVes, std::uint64_t{6})),
    [](const auto& info) {
      return std::string(to_string(info.param.first)) + "_seed" +
             std::to_string(info.param.second);
    });

TEST(RoutingEquivalence, AdvertisementModeSavesSubscriptionTraffic) {
  // With clearly disjoint interests the advertisement mode must forward
  // strictly fewer subscription messages.
  const WorkloadResult flooding = run(RoutingMode::kFlooding, EngineKind::kLees, 42);
  const WorkloadResult advertisement = run(RoutingMode::kAdvertisement, EngineKind::kLees, 42);
  EXPECT_LT(advertisement.sub_msgs, flooding.sub_msgs);
}

}  // namespace
}  // namespace evps
