// Shared main() for the google-benchmark micro benches.
//
// Each bench records its results to a BENCH_*.json baseline in the working
// directory (google-benchmark's JSON schema) so successive PRs can diff
// matcher/engine throughput against the checked-in numbers. An explicit
// --benchmark_out on the command line overrides the default dump.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace evps_bench {

inline int run(int argc, char** argv, const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace evps_bench
