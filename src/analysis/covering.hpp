// Cross-subscription covering analysis over evolution envelopes.
//
// A subscription A *covers* a subscription B when every publication that
// matches B also matches A — for every reachable evolution-variable
// assignment (declared ranges, t >= 0) and at every future evaluation
// instant. Covering is what makes subscription aggregation sound: a broker
// that has already forwarded A upstream gains nothing from forwarding B in
// the same direction, because any publication routed towards B's region is
// already routed towards A's.
//
// The analysis is *relational*: instead of judging one subscription in
// isolation (analysis/analyzer.hpp), it compares the publication sets of two
// subscriptions. Each subscription is summarised per attribute as a
// ValueSet — the set of publication values admitted on that attribute — in
// two dual flavours built from the PR 3 interval machinery:
//
//   * outer shape  — an OVER-approximation: every value some reachable
//     variable assignment lets the predicate conjunction accept is in the
//     set. Evolving bounds contribute their full interval envelope
//     (eval_interval, outward 1-ulp rounding).
//   * inner shape  — an UNDER-approximation: every value in the set is
//     accepted for ALL reachable assignments. Evolving bounds contribute
//     only the side of their envelope that is guaranteed (e.g. x < f is
//     guaranteed only for x below the envelope minimum).
//
// A covers B is then decided structurally: every attribute A constrains must
// also be constrained by B (a predicate requires attribute presence), and on
// each such attribute outer(B) ⊆ inner(A). Anything the ValueSet domain
// cannot express exactly degrades in the sound direction — inner shrinks,
// outer grows — so the only verdicts are kCovers (proved) and kUnknown
// (not proved; includes genuine non-covering). Soundness contract: a
// kCovers verdict can never be violated by any publication/assignment;
// tests/test_covering_soundness.cpp validates this against brute-force
// sampling.
//
// The coverer's evolving predicates additionally fail closed on unbound
// variables, so a kCovers verdict requires every variable referenced by A
// (other than `t`) to be set in the registry at analysis time — registry
// histories are append-only, so a variable set once resolves at every later
// evaluation instant.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/interval.hpp"
#include "expr/variable_registry.hpp"
#include "message/subscription.hpp"

namespace evps {

/// Three-valued-in-spirit, two-valued-in-practice verdict: covering is
/// either proved or not claimed. (Proving *non*-covering would need its own
/// soundness argument; routing only ever acts on proved covering.)
enum class CoverVerdict : std::uint8_t { kCovers, kUnknown };

[[nodiscard]] std::string_view to_string(CoverVerdict v) noexcept;

/// The set of publication Values admitted on one attribute, in the
/// content-based comparison model: numeric values (int and double compared
/// in double space), the incomparable NaN, and strings. Supports exactly the
/// shapes predicate conjunctions produce: one numeric interval with open/
/// closed endpoints, finitely many excluded numeric points (from !=), and
/// none/one/all strings with finitely many exclusions.
struct ValueSet {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;
  /// A NaN publication value is admitted (incomparable: only != accepts it).
  bool nan = true;
  enum class Strings : std::uint8_t { kNone, kAll, kOne };
  Strings strings = Strings::kAll;
  std::string str;  // the single admitted string when strings == kOne
  /// Numeric points carved out of [lo, hi] (x != c). Unsorted, tiny.
  std::vector<double> excluded_nums;
  /// Strings carved out of kAll (x != 's').
  std::vector<std::string> excluded_strs;

  [[nodiscard]] static ValueSet universe() { return ValueSet{}; }
  [[nodiscard]] static ValueSet nothing() {
    ValueSet s;
    s.lo = 1.0;
    s.hi = 0.0;
    s.nan = false;
    s.strings = Strings::kNone;
    return s;
  }

  [[nodiscard]] bool numeric_empty() const noexcept {
    return lo > hi || (lo == hi && (lo_open || hi_open));
  }
  /// Admits no publication value at all.
  [[nodiscard]] bool empty() const noexcept {
    return numeric_empty() && !nan && strings == Strings::kNone;
  }
  /// Membership of a (non-NaN) numeric value, exclusions included.
  [[nodiscard]] bool admits_num(double v) const noexcept;
  [[nodiscard]] bool admits_string(const std::string& s) const;

  /// Set intersection (exact on this domain, up to redundant exclusions).
  void intersect(const ValueSet& other);
};

/// Is `outer` a subset of `inner`? Exact on the ValueSet domain; used with
/// an over-approximated outer and an under-approximated inner this implies
/// true set inclusion.
[[nodiscard]] bool subset_of(const ValueSet& outer, const ValueSet& inner);

/// Per-attribute ValueSet summary of a subscription's predicate conjunction.
/// Attributes without predicates are absent (any value, presence optional).
struct SubscriptionShape {
  std::map<AttrId, ValueSet> attrs;
};

/// OVER-approximate shape: for every reachable variable assignment, every
/// matching publication's value on each constrained attribute lies in the
/// attribute's set. Never fails; inexpressible predicates widen to the
/// universe of values.
[[nodiscard]] SubscriptionShape outer_shape(const Subscription& sub,
                                            const VariableRegistry& registry);

/// OVER-approximate satisfying set of one predicate in isolation;
/// outer_shape is the per-attribute intersection of these. Exposed for the
/// relational analysis (analysis/relational.hpp), which needs per-predicate
/// sets to exclude one predicate at a time.
[[nodiscard]] ValueSet outer_pred_set(const Predicate& pred, const VariableRegistry& registry);

/// UNDER-approximate shape: a publication whose value on every constrained
/// attribute lies in the attribute's set matches, for every reachable
/// assignment and future instant. Inexpressible or non-guaranteeable
/// predicates (unverifiable programs, unset variables, ambiguous envelopes)
/// shrink the set, possibly to empty.
[[nodiscard]] SubscriptionShape inner_shape(const Subscription& sub,
                                            const VariableRegistry& registry);

/// Decide covering from precomputed shapes (the CoveringIndex path: shapes
/// are built once per subscription and reused across pair checks).
/// `a_inner` must come from inner_shape(A), `b_outer` from outer_shape(B).
[[nodiscard]] CoverVerdict covers(const SubscriptionShape& a_inner,
                                  const SubscriptionShape& b_outer);

/// Convenience: does `a` cover `b` under `registry`'s declared ranges and
/// currently-set variables? Runs the per-attribute check and, when
/// `relational` is true (the default — the auditor's re-proofs must be at
/// least as strong as the index's), refines kUnknown through the octagon
/// domain (analysis/relational.hpp).
[[nodiscard]] CoverVerdict covers(const Subscription& a, const Subscription& b,
                                  const VariableRegistry& registry, bool relational);
[[nodiscard]] CoverVerdict covers(const Subscription& a, const Subscription& b,
                                  const VariableRegistry& registry);

/// Counters for the pair analysis (surfaced per broker via
/// metrics/covering_counters.hpp).
struct CoverStats {
  std::uint64_t pairs = 0;       ///< covering queries answered
  std::uint64_t covered = 0;     ///< kCovers verdicts
  std::uint64_t relational = 0;  ///< kCovers proved only by the octagon refinement
  std::uint64_t unknown = 0;     ///< kUnknown verdicts

  void reset() noexcept { *this = CoverStats{}; }
};

}  // namespace evps
