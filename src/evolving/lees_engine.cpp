#include "evolving/lees_engine.hpp"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.hpp"

namespace evps {
namespace {

/// Dedup key for a FULLY-evolving subscription towards `dest`: destination +
/// epoch + order-independent, bit-exact serialization of each compiled
/// predicate (opcode stream with operand bit patterns). Equal keys imply
/// bit-identical evaluation on every publication: same programs, same
/// operators, same `t` origin, same destination.
std::string lazy_dedup_key(NodeId dest, const Subscription& sub) {
  std::vector<std::string> parts;
  parts.reserve(sub.predicates().size());
  for (const auto& p : sub.predicates()) {
    std::string s = std::to_string(p.attr_id());
    s += '~';
    s += std::to_string(static_cast<int>(p.op()));
    const ExprProgram prog = ExprProgram::compile(*p.fun());
    for (const auto& insn : prog.code()) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &insn.k, sizeof(bits));
      s += '~';
      s += std::to_string(static_cast<int>(insn.op));
      s += ',';
      s += std::to_string(insn.argc);
      s += ',';
      s += std::to_string(insn.var);
      s += ',';
      s += std::to_string(bits);
    }
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  std::string key = std::to_string(dest.value());
  key += '@';
  key += std::to_string(sub.epoch().micros());
  for (const auto& part : parts) {
    key += '|';
    key += part;
  }
  return key;
}

}  // namespace

LeesEngine::LeesEngine(const EngineConfig& config) : BrokerEngine(config) {
  leme_.resize(shard_count());
  shard_scratch_.resize(shard_count());
}

void LeesEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_add_static(entry);
    return;
  }
  const auto static_part = sub.static_predicates();
  if (static_part.empty() && config_.dedup_identical) {
    // Fully-evolving: share one LEME part per identical group. The key is
    // built (and programs compiled) before any state changes, so compile
    // failures leave the engine untouched; the canonical install is undone
    // from the table if verification rejects it below.
    if (!lazy_dedup_.add(sub.id(), lazy_dedup_key(entry.dest, sub))) return;
    try {
      auto& leme = leme_for(sub.id());
      leme.add(leme.make_part(entry.sub, false), entry.dest);
    } catch (...) {
      lazy_dedup_.remove(sub.id());
      throw;
    }
    return;
  }
  auto& leme = leme_for(sub.id());
  auto part = leme.make_part(entry.sub, !static_part.empty());
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  leme.add(std::move(part), entry.dest);
}

void LeesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_remove_static(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  const DedupTable::RemoveAction action = lazy_dedup_.remove(sub.id());
  if (!action.tracked) {
    leme_for(sub.id()).remove(sub.id(), entry.dest);
    return;
  }
  if (!action.uninstall) return;  // a sharing member left; canonical stays
  leme_for(sub.id()).remove(sub.id(), entry.dest);
  if (action.reinstall.valid()) {
    const Installed* next = installed_entry(action.reinstall);
    if (next != nullptr) {
      // The surviving member lives in its own id's shard.
      auto& leme = leme_for(action.reinstall);
      leme.add(leme.make_part(next->sub, false), next->dest);
    }
  }
}

bool LeesEngine::evolving_part_matches(const Leme::Part& part, const Publication& pub,
                                       const EvalScope& scope, std::vector<double>& stack) {
  for (const auto& cp : part.preds) {
    const Value* v = pub.get(cp.attr());
    if (v == nullptr || !cp.matches(*v, scope, stack)) return false;
  }
  return true;
}

void LeesEngine::process_m1(const std::vector<SubscriptionId>& m1,
                            std::vector<NodeId>& destinations) {
  for (const auto id : m1) {
    if (leme_for(id).note_m1(id)) continue;  // static half of a split subscription
    const Installed* entry = installed_entry(id);
    if (entry == nullptr) continue;
    // Purely-static match: forward, and settle the destination's LEME group
    // in every shard (exact done-skip regardless of K).
    destinations.push_back(entry->dest);
    for (auto& leme : leme_) leme.mark_done(entry->dest);
  }
}

void LeesEngine::lazy_eval_phase(const Publication& pub, const VariableSnapshot* snapshot,
                                 const VariableRegistry& registry, SimTime now,
                                 std::vector<NodeId>& destinations) {
  auto task = [&](std::size_t s) {
    ShardScratch& sc = shard_scratch_[s];
    sc.dests.clear();
    const Leme& leme = leme_[s];
    if (leme.size() == 0) return;
    rebind_publication_scope(sc.scope, pub, snapshot, registry, now);
    for (const auto& [dest, group] : leme.groups()) {
      if (leme.done(group)) continue;
      for (const auto& part : group.parts) {
        if (part.has_static_part && !leme.m1_hit(part)) continue;
        ++sc.lazy_evaluations;
        sc.scope.set_epoch(part.sub->epoch());
        if (evolving_part_matches(part, pub, sc.scope, sc.stack)) {
          sc.dests.push_back(dest);
          break;  // early exit: this (shard, destination) is settled
        }
      }
    }
  };
  if (leme_.size() == 1) {
    task(0);
  } else {
    ThreadPool::shared().run_indexed(leme_.size(), task);
  }
  for (ShardScratch& sc : shard_scratch_) {
    destinations.insert(destinations.end(), sc.dests.begin(), sc.dests.end());
    costs_.lazy_evaluations += sc.lazy_evaluations;
    sc.lazy_evaluations = 0;
  }
}

void LeesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                          EngineHost& host, std::vector<NodeId>& destinations) {
  // M1: standard matcher over static parts and purely-static subscriptions
  // (parallel across shards inside the ShardedMatcher).
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  for (auto& leme : leme_) leme.begin_match();
  process_m1(m1_, destinations);

  // M2: on-demand evaluation of evolving parts, one worker per shard, with
  // early exit once a destination is known to need the publication.
  const ScopedTimer timer(costs_.lazy_eval);
  lazy_eval_phase(pub, snapshot, host.variables(), host.now(), destinations);
}

void LeesEngine::do_match_batch(std::span<const Publication* const> pubs,
                                const VariableSnapshot* snapshot, EngineHost& host,
                                std::vector<std::vector<NodeId>>& destinations) {
  // One pool dispatch covers the matcher phase of the whole batch; the lazy
  // phases then run per publication (each its own fan-out), preserving exact
  // equivalence with a do_match loop — including CLEES-style engines' cache
  // trajectories, since per-publication ordering is unchanged.
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match_batch(pubs, m1_batch_);
  }
  const VariableRegistry& registry = host.variables();
  const SimTime now = host.now();
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    for (auto& leme : leme_) leme.begin_match();
    process_m1(m1_batch_[i], destinations[i]);
    const ScopedTimer timer(costs_.lazy_eval);
    lazy_eval_phase(*pubs[i], snapshot, registry, now, destinations[i]);
  }
}

void LeesEngine::export_audit_state(audit::EngineState& out) const {
  BrokerEngine::export_audit_state(out);
  for (const Leme& leme : leme_) {
    for (const auto& [dest, group] : leme.groups()) {
      for (const Leme::Part& part : group.parts) {
        out.lazy_entries.push_back(audit::LazyEntry{part.id, dest});
      }
    }
  }
  lazy_dedup_.for_each_group([&out](const std::string& key,
                                    const std::vector<SubscriptionId>& members) {
    out.dedup_groups.push_back(audit::DedupGroup{key, members, /*lazy=*/true});
  });
}

}  // namespace evps
