// Advertisements describe the publication space of a publisher; with
// advertisement-based routing, subscriptions are only forwarded towards
// brokers hosting publishers whose advertisements intersect them
// (Section III-A).
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "message/predicate.hpp"
#include "message/publication.hpp"
#include "message/subscription.hpp"

namespace evps {

class Advertisement {
 public:
  Advertisement() = default;
  Advertisement(MessageId id, ClientId publisher, std::vector<Predicate> predicates)
      : id_(id), publisher_(publisher), predicates_(std::move(predicates)) {}

  [[nodiscard]] MessageId id() const noexcept { return id_; }
  void set_id(MessageId id) noexcept { id_ = id; }
  [[nodiscard]] ClientId publisher() const noexcept { return publisher_; }
  void set_publisher(ClientId c) noexcept { publisher_ = c; }

  [[nodiscard]] const std::vector<Predicate>& predicates() const noexcept { return predicates_; }
  Advertisement& add(Predicate p) {
    predicates_.push_back(std::move(p));
    return *this;
  }

  /// True iff `pub` lies within the advertised space. Attributes not
  /// constrained by the advertisement are unrestricted; attributes that are
  /// constrained must be present and satisfy the constraint.
  [[nodiscard]] bool covers(const Publication& pub) const;

  /// Conservative overlap test: can some publication covered by this
  /// advertisement match `sub`? Used for subscription forwarding decisions.
  /// Must never return false when a genuine overlap exists (no false
  /// negatives); may return true on non-overlap (extra forwarding is only a
  /// performance cost). Evolving predicates are treated as unconstrained.
  [[nodiscard]] bool intersects(const Subscription& sub) const;

  [[nodiscard]] std::string to_string() const;

 private:
  MessageId id_{};
  ClientId publisher_{};
  std::vector<Predicate> predicates_;
};

}  // namespace evps
