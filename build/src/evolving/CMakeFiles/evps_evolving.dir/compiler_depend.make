# Empty compiler generated dependencies file for evps_evolving.
# This may be replaced when dependencies are built.
