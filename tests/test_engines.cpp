// Base engine behaviour: static + parametric engines, generic update path,
// destination bookkeeping, cost accounting plumbing.
#include <gtest/gtest.h>

#include "evolving/parametric_engine.hpp"
#include "evolving/ves_engine.hpp"
#include "evolving/static_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

struct StaticEngineTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg{.kind = EngineKind::kStatic};
  StaticEngine engine{cfg};
};

TEST_F(StaticEngineTest, AddMatchRemove) {
  engine.add(make_sub(1, "x >= 0; x <= 10"), NodeId{100}, host);
  EXPECT_EQ(engine.size(), 1u);
  EXPECT_TRUE(engine.contains(SubscriptionId{1}));
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")),
            std::vector<NodeId>{NodeId{100}});
  EXPECT_TRUE(match(engine, host, parse_publication("x = 11")).empty());
  EXPECT_TRUE(engine.remove(SubscriptionId{1}, host));
  EXPECT_FALSE(engine.remove(SubscriptionId{1}, host));
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
}

TEST_F(StaticEngineTest, RejectsEvolvingSubscriptions) {
  EXPECT_THROW(engine.add(make_sub(1, "x >= 2 * t"), NodeId{1}, host), std::invalid_argument);
  EXPECT_EQ(engine.size(), 0u);  // rollback on failure
  EXPECT_FALSE(engine.contains(SubscriptionId{1}));
}

TEST_F(StaticEngineTest, NullAndDuplicateValidation) {
  EXPECT_THROW(engine.add(nullptr, NodeId{1}, host), std::invalid_argument);
  engine.add(make_sub(1, "x > 0"), NodeId{1}, host);
  EXPECT_THROW(engine.add(make_sub(1, "y > 0"), NodeId{2}, host), std::invalid_argument);
  auto no_id = std::make_shared<const Subscription>();
  EXPECT_THROW(engine.add(no_id, NodeId{1}, host), std::invalid_argument);
}

TEST_F(StaticEngineTest, DestinationsDeduplicated) {
  engine.add(make_sub(1, "x > 0"), NodeId{7}, host);
  engine.add(make_sub(2, "x > 1"), NodeId{7}, host);
  engine.add(make_sub(3, "x > 2"), NodeId{9}, host);
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")),
            (std::vector<NodeId>{NodeId{7}, NodeId{9}}));
}

TEST_F(StaticEngineTest, DestinationAndSubscriptionLookup) {
  const auto sub = make_sub(1, "x > 0");
  engine.add(sub, NodeId{3}, host);
  EXPECT_EQ(engine.destination_of(SubscriptionId{1}), NodeId{3});
  EXPECT_EQ(engine.subscription_of(SubscriptionId{1}), sub);
  EXPECT_EQ(engine.destination_of(SubscriptionId{2}), NodeId::invalid());
  EXPECT_EQ(engine.subscription_of(SubscriptionId{2}), nullptr);
}

TEST_F(StaticEngineTest, MatchCostRecorded) {
  engine.add(make_sub(1, "x > 0"), NodeId{1}, host);
  (void)match(engine, host, parse_publication("x = 1"));
  (void)match(engine, host, parse_publication("x = 2"));
  EXPECT_EQ(engine.costs().match.count(), 2u);
  engine.reset_costs();
  EXPECT_EQ(engine.costs().match.count(), 0u);
}

struct ParametricEngineTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg{.kind = EngineKind::kParametric};
  ParametricEngine engine{cfg};
};

TEST_F(ParametricEngineTest, UpdateReplacesOperandsPositionally) {
  engine.add(make_sub(1, "symbol = 'IBM'; price >= 10; price <= 12"), NodeId{5}, host);
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 11")).size(), 1u);

  // Shift the band to [20, 22]; the symbol predicate is untouched.
  EXPECT_TRUE(engine.update(SubscriptionId{1},
                            {std::nullopt, Value{20.0}, Value{22.0}}, host));
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'IBM'; price = 11")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 21")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'MSFT'; price = 21")).empty());
}

TEST_F(ParametricEngineTest, UpdateKeepsIdAndDestination) {
  engine.add(make_sub(1, "price >= 10"), NodeId{5}, host);
  EXPECT_TRUE(engine.update(SubscriptionId{1}, {Value{30.0}}, host));
  EXPECT_EQ(engine.destination_of(SubscriptionId{1}), NodeId{5});
  EXPECT_EQ(engine.size(), 1u);
  EXPECT_EQ(engine.subscription_of(SubscriptionId{1})->predicates()[0].constant().as_double(),
            30.0);
}

TEST_F(ParametricEngineTest, UpdateUnknownIdReturnsFalse) {
  EXPECT_FALSE(engine.update(SubscriptionId{404}, {Value{1}}, host));
}

TEST_F(ParametricEngineTest, UpdateTooManyValuesThrows) {
  engine.add(make_sub(1, "price >= 10"), NodeId{5}, host);
  EXPECT_THROW(engine.update(SubscriptionId{1}, {Value{1}, Value{2}}, host),
               std::invalid_argument);
}

TEST_F(ParametricEngineTest, UpdateCostChargedToMaintenance) {
  engine.add(make_sub(1, "price >= 10"), NodeId{5}, host);
  EXPECT_TRUE(engine.update(SubscriptionId{1}, {Value{20.0}}, host));
  EXPECT_TRUE(engine.update(SubscriptionId{1}, {Value{25.0}}, host));
  EXPECT_EQ(engine.costs().maintenance.count(), 2u);
}

TEST_F(ParametricEngineTest, PartialUpdateKeepsUnspecifiedOperands) {
  engine.add(make_sub(1, "price >= 10; price <= 12"), NodeId{5}, host);
  EXPECT_TRUE(engine.update(SubscriptionId{1}, {Value{11.0}}, host));  // only lower bound
  EXPECT_EQ(match(engine, host, parse_publication("price = 11.5")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("price = 12.5")).empty());
}

struct EvolvingUpdateTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
};

TEST_F(EvolvingUpdateTest, UpdateOnVesReplacesStaticOperandsAndKeepsEvolving) {
  // Parametric updates compose with evolving engines (Section II: "it is
  // possible to use our evolving framework in conjunction with parametric
  // subscriptions"): the update rewrites static operands positionally while
  // evolving predicates stay in place.
  EngineConfig cfg{.kind = EngineKind::kVes};
  VesEngine engine{cfg};
  engine.add(make_sub(1, "[mei=0.5] symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host);
  sim.run_until(SimTime::from_seconds(2.1));  // version: price <= ~12.1
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 11")).size(), 1u);

  // Re-target the static symbol predicate.
  EXPECT_TRUE(engine.update(SubscriptionId{1}, {Value{"MSFT"}}, host));
  sim.run_until(SimTime::from_seconds(2.2));
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'IBM'; price = 11")).empty());
  // The evolving price bound keeps evolving after the update. Note the
  // generic update reinstalls the subscription, so its epoch is preserved
  // from the original object; the bound continues from the same t.
  sim.run_until(SimTime::from_seconds(3.1));
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'MSFT'; price = 12.5")).size(), 1u);
  EXPECT_EQ(engine.queued_count(), 1u);  // still exactly one ESQ entry
}

TEST_F(EvolvingUpdateTest, UpdateOnLeesAndCleesKeepsLazyState) {
  for (const EngineKind kind : {EngineKind::kLees, EngineKind::kClees}) {
    EngineConfig cfg;
    cfg.kind = kind;
    const auto engine = make_engine(cfg);
    engine->add(make_sub(1, "[tt=0.000001] symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host);
    EXPECT_TRUE(engine->update(SubscriptionId{1}, {Value{"MSFT"}}, host));
    EXPECT_EQ(match(*engine, host, parse_publication("symbol = 'MSFT'; price = 5")).size(), 1u)
        << to_string(kind);
    EXPECT_TRUE(match(*engine, host, parse_publication("symbol = 'IBM'; price = 5")).empty())
        << to_string(kind);
    EXPECT_EQ(engine->size(), 1u);
  }
}

TEST(EngineFactory, CreatesAllKinds) {
  for (const EngineKind kind : {EngineKind::kStatic, EngineKind::kParametric, EngineKind::kVes,
                                EngineKind::kLees, EngineKind::kClees, EngineKind::kHybrid}) {
    EngineConfig cfg;
    cfg.kind = kind;
    const auto engine = make_engine(cfg);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->kind(), kind);
  }
}

TEST(EngineKindNames, Strings) {
  EXPECT_STREQ(to_string(EngineKind::kStatic), "static");
  EXPECT_STREQ(to_string(EngineKind::kVes), "VES");
  EXPECT_STREQ(to_string(EngineKind::kLees), "LEES");
  EXPECT_STREQ(to_string(EngineKind::kClees), "CLEES");
  EXPECT_STREQ(to_string(EngineKind::kParametric), "parametric");
}

}  // namespace
}  // namespace evps
