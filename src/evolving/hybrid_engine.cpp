#include "evolving/hybrid_engine.hpp"

#include <algorithm>
#include <unordered_set>

namespace evps {

std::size_t HybridEngine::versioned_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [dest, parts] : storage_) {
    for (const auto& part : parts) {
      if (part.mode == Mode::kVersioned) ++n;
    }
  }
  return n;
}

void HybridEngine::do_add(const Installed& entry, EngineHost& host) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->add(sub.id(), sub.predicates());
    return;
  }
  ensure_timer(host);
  auto static_part = sub.static_predicates();
  EvolvingPart part;
  part.id = sub.id();
  part.sub = entry.sub;
  part.evolving_preds = sub.evolving_predicates();
  part.has_static_part = !static_part.empty();
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  storage_[entry.dest].push_back(std::move(part));
  ++evolving_count_;
}

void HybridEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->remove(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  const auto it = storage_.find(entry.dest);
  if (it != storage_.end()) {
    auto& parts = it->second;
    const auto pos = std::find_if(parts.begin(), parts.end(),
                                  [&](const EvolvingPart& p) { return p.id == sub.id(); });
    if (pos != parts.end()) {
      parts.erase(pos);
      --evolving_count_;
    }
    if (parts.empty()) storage_.erase(it);
  }
}

void HybridEngine::ensure_timer(EngineHost& host) {
  timer_host_ = &host;
  if (timer_running_) return;
  timer_running_ = true;
  host.schedule(tick_period(), [this]() { on_tick(*timer_host_); });
}

void HybridEngine::on_tick(EngineHost& host) {
  // 1. Refresh versioned parts (the VES-like maintenance work).
  // 2. Re-classify every part from its probe count this window: versioned
  //    iff it was probed more often than it would be refreshed.
  const double window_s = tick_period().count_seconds();
  const double refreshes_per_window =
      window_s / std::max(1e-9, config_.default_mei.count_seconds());
  for (auto& [dest, parts] : storage_) {
    for (auto& part : parts) {
      if (part.mode == Mode::kVersioned) refresh(part, host);
      const auto probes = part.probes_this_window;
      part.probes_this_window = 0;
      const Mode wanted = static_cast<double>(probes) > refreshes_per_window
                              ? Mode::kVersioned
                              : Mode::kLazy;
      if (wanted == part.mode) continue;
      part.mode = wanted;
      if (wanted == Mode::kVersioned) {
        refresh(part, host);  // enter versioned mode with a fresh version
      } else {
        part.version_expires = SimTime::zero();  // lazy mode re-evaluates
      }
    }
  }
  if (evolving_count_ == 0) {
    timer_running_ = false;  // go quiescent until the next evolving add
    return;
  }
  host.schedule(tick_period(), [this]() { on_tick(*timer_host_); });
}

void HybridEngine::refresh(EvolvingPart& part, EngineHost& host) {
  const ScopedTimer timer(costs_.maintenance);
  const EvalScope scope = part.sub->scope(&host.variables(), host.now());
  part.version.clear();
  part.version.reserve(part.evolving_preds.size());
  for (const auto& p : part.evolving_preds) part.version.push_back(p.materialize(scope));
  ++costs_.evolutions;
}

bool HybridEngine::preds_match(const std::vector<Predicate>& preds, const Publication& pub) {
  for (const auto& p : preds) {
    const Value* v = pub.get(p.attribute());
    if (v == nullptr || !p.matches(*v)) return false;
  }
  return true;
}

void HybridEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                            EngineHost& host, std::vector<NodeId>& destinations) {
  std::vector<SubscriptionId> m1;
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1);
  }
  std::unordered_set<SubscriptionId> m1_set(m1.begin(), m1.end());

  std::unordered_set<NodeId> done;
  for (const auto id : m1) {
    const auto& entry = installed().at(id);
    if (!entry.sub->is_evolving()) {
      destinations.push_back(entry.dest);
      done.insert(entry.dest);
    }
  }

  const ScopedTimer timer(costs_.lazy_eval);
  const SimTime now = host.now();
  const auto& registry = host.variables();
  for (auto& [dest, parts] : storage_) {
    if (done.contains(dest)) continue;
    for (auto& part : parts) {
      if (part.has_static_part && !m1_set.contains(part.id)) continue;
      ++part.probes_this_window;

      bool matched = false;
      if (snapshot != nullptr) {
        // Snapshot mode: evaluate at the entry instant, bypassing versions.
        ++costs_.lazy_evaluations;
        const EvalScope scope = make_scope(*part.sub, now, snapshot, registry, pub.entry_time());
        std::vector<Predicate> version;
        version.reserve(part.evolving_preds.size());
        for (const auto& p : part.evolving_preds) version.push_back(p.materialize(scope));
        matched = preds_match(version, pub);
      } else if (part.mode == Mode::kVersioned && !part.version.empty()) {
        ++costs_.cache_hits;
        matched = preds_match(part.version, pub);
      } else if (now < part.version_expires && !part.version.empty()) {
        ++costs_.cache_hits;
        matched = preds_match(part.version, pub);
      } else {
        ++costs_.cache_misses;
        ++costs_.lazy_evaluations;
        const EvalScope scope = part.sub->scope(&registry, now);
        part.version.clear();
        part.version.reserve(part.evolving_preds.size());
        for (const auto& p : part.evolving_preds) part.version.push_back(p.materialize(scope));
        part.version_expires = now + effective_tt(*part.sub);
        matched = preds_match(part.version, pub);
      }
      if (matched) {
        destinations.push_back(dest);
        break;
      }
    }
  }
}

}  // namespace evps
