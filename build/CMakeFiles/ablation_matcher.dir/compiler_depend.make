# Empty compiler generated dependencies file for ablation_matcher.
# This may be replaced when dependencies are built.
