#include "expr/ast.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace evps {
namespace {

TEST(Expr, ConstantEval) {
  const MapEnv env;
  EXPECT_DOUBLE_EQ(Expr::constant(3.5)->eval(env), 3.5);
  EXPECT_TRUE(Expr::constant(1)->is_constant());
}

TEST(Expr, VariableEval) {
  const MapEnv env{{"t", 4.0}};
  EXPECT_DOUBLE_EQ(Expr::variable("t")->eval(env), 4.0);
  EXPECT_FALSE(Expr::variable("t")->is_constant());
}

TEST(Expr, UnboundVariableThrows) {
  const MapEnv env;
  EXPECT_THROW((void)Expr::variable("ghost")->eval(env), UnboundVariableError);
}

TEST(Expr, EmptyVariableNameRejected) {
  EXPECT_THROW(Expr::variable(""), std::invalid_argument);
}

TEST(Expr, BinaryArithmetic) {
  const MapEnv env{{"t", 2.0}};
  const auto t = Expr::variable("t");
  EXPECT_DOUBLE_EQ(Expr::add(Expr::constant(1), t)->eval(env), 3.0);
  EXPECT_DOUBLE_EQ(Expr::sub(Expr::constant(1), t)->eval(env), -1.0);
  EXPECT_DOUBLE_EQ(Expr::mul(Expr::constant(3), t)->eval(env), 6.0);
  EXPECT_DOUBLE_EQ(Expr::div(Expr::constant(5), t)->eval(env), 2.5);
  EXPECT_DOUBLE_EQ(Expr::binary(BinaryOp::kMod, Expr::constant(7), t)->eval(env), 1.0);
  EXPECT_DOUBLE_EQ(Expr::binary(BinaryOp::kPow, t, Expr::constant(10))->eval(env), 1024.0);
}

TEST(Expr, DivisionByZeroGivesInfinity) {
  const MapEnv env;
  const double r = Expr::div(Expr::constant(1), Expr::constant(0))->eval(env);
  EXPECT_TRUE(std::isinf(r));
}

TEST(Expr, UnaryFunctions) {
  const MapEnv env{{"x", -2.25}};
  const auto x = Expr::variable("x");
  EXPECT_DOUBLE_EQ(Expr::unary(UnaryOp::kNeg, x)->eval(env), 2.25);
  EXPECT_DOUBLE_EQ(Expr::unary(UnaryOp::kAbs, x)->eval(env), 2.25);
  EXPECT_DOUBLE_EQ(Expr::unary(UnaryOp::kFloor, x)->eval(env), -3.0);
  EXPECT_DOUBLE_EQ(Expr::unary(UnaryOp::kCeil, x)->eval(env), -2.0);
  EXPECT_DOUBLE_EQ(Expr::unary(UnaryOp::kSign, x)->eval(env), -1.0);
  EXPECT_DOUBLE_EQ(Expr::unary(UnaryOp::kSqrt, Expr::constant(9))->eval(env), 3.0);
  EXPECT_NEAR(Expr::unary(UnaryOp::kSin, Expr::constant(0))->eval(env), 0.0, 1e-12);
  EXPECT_NEAR(Expr::unary(UnaryOp::kCos, Expr::constant(0))->eval(env), 1.0, 1e-12);
}

TEST(Expr, Calls) {
  const MapEnv env{{"a", 5.0}, {"b", -3.0}};
  const auto a = Expr::variable("a");
  const auto b = Expr::variable("b");
  EXPECT_DOUBLE_EQ(Expr::call(CallFn::kMin, {a, b})->eval(env), -3.0);
  EXPECT_DOUBLE_EQ(Expr::call(CallFn::kMax, {a, b})->eval(env), 5.0);
  EXPECT_DOUBLE_EQ(
      Expr::call(CallFn::kClamp, {a, Expr::constant(0), Expr::constant(2)})->eval(env), 2.0);
  EXPECT_DOUBLE_EQ(Expr::call(CallFn::kStep, {b})->eval(env), 0.0);
  EXPECT_DOUBLE_EQ(Expr::call(CallFn::kStep, {a})->eval(env), 1.0);
}

TEST(Expr, CallArityChecked) {
  EXPECT_THROW(Expr::call(CallFn::kClamp, {Expr::constant(1)}), std::invalid_argument);
  EXPECT_THROW(Expr::call(CallFn::kStep, {Expr::constant(1), Expr::constant(2)}),
               std::invalid_argument);
  EXPECT_THROW(Expr::call(CallFn::kMin, {}), std::invalid_argument);
}

TEST(Expr, NullOperandsRejected) {
  EXPECT_THROW(Expr::unary(UnaryOp::kAbs, nullptr), std::invalid_argument);
  EXPECT_THROW(Expr::binary(BinaryOp::kAdd, Expr::constant(1), nullptr), std::invalid_argument);
}

TEST(Expr, VariableCollection) {
  const auto e = Expr::add(Expr::mul(Expr::variable("t"), Expr::constant(2)),
                           Expr::call(CallFn::kMax, {Expr::variable("v"), Expr::variable("t")}));
  const auto vars = e->variables();
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars.contains("t"));
  EXPECT_TRUE(vars.contains("v"));
}

TEST(Expr, ConstnessPropagates) {
  EXPECT_TRUE(Expr::add(Expr::constant(1), Expr::constant(2))->is_constant());
  EXPECT_FALSE(Expr::add(Expr::constant(1), Expr::variable("t"))->is_constant());
  EXPECT_TRUE(Expr::call(CallFn::kMin, {Expr::constant(1), Expr::constant(2)})->is_constant());
}

TEST(Expr, StructuralEquality) {
  const auto a = Expr::add(Expr::constant(1), Expr::variable("t"));
  const auto b = Expr::add(Expr::constant(1), Expr::variable("t"));
  const auto c = Expr::add(Expr::constant(2), Expr::variable("t"));
  const auto d = Expr::sub(Expr::constant(1), Expr::variable("t"));
  EXPECT_TRUE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
  EXPECT_FALSE(a->equals(*d));
  EXPECT_FALSE(a->equals(*Expr::constant(1)));
}

TEST(Expr, ToStringForms) {
  EXPECT_EQ(Expr::variable("t")->to_string(), "t");
  EXPECT_EQ(Expr::add(Expr::constant(1), Expr::variable("t"))->to_string(), "(1 + t)");
  EXPECT_EQ(Expr::unary(UnaryOp::kNeg, Expr::variable("x"))->to_string(), "(-x)");
  EXPECT_EQ(Expr::call(CallFn::kMin, {Expr::variable("a"), Expr::variable("b")})->to_string(),
            "min(a, b)");
}

TEST(MapEnv, SetAndHas) {
  MapEnv env;
  EXPECT_FALSE(env.has("x"));
  env.set("x", 1.0);
  EXPECT_TRUE(env.has("x"));
  EXPECT_DOUBLE_EQ(env.lookup("x"), 1.0);
  env.set("x", 2.0);  // overwrite
  EXPECT_DOUBLE_EQ(env.lookup("x"), 2.0);
}

}  // namespace
}  // namespace evps
