#include "expr/variable_registry.hpp"

#include <gtest/gtest.h>

#include "expr/parser.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

TEST(VariableRegistry, UnknownVariable) {
  const VariableRegistry reg;
  EXPECT_FALSE(reg.has("v"));
  EXPECT_FALSE(reg.get("v").has_value());
  EXPECT_FALSE(reg.get_at("v", sec(10)).has_value());
  EXPECT_EQ(reg.version("v"), 0u);
  EXPECT_FALSE(reg.last_change("v").has_value());
}

TEST(VariableRegistry, SetAndGet) {
  VariableRegistry reg;
  reg.set("v", 1.0, sec(0));
  EXPECT_TRUE(reg.has("v"));
  EXPECT_EQ(reg.get("v"), 1.0);
  EXPECT_EQ(reg.version("v"), 1u);
  EXPECT_EQ(reg.last_change("v"), sec(0));
}

TEST(VariableRegistry, HistoryLookup) {
  VariableRegistry reg;
  reg.set("v", 1.0, sec(0));
  reg.set("v", 0.8, sec(10));
  reg.set("v", 0.5, sec(20));
  EXPECT_FALSE(reg.get_at("v", sec(-1)).has_value());  // before first change
  EXPECT_EQ(reg.get_at("v", sec(0)), 1.0);
  EXPECT_EQ(reg.get_at("v", sec(9.999)), 1.0);
  EXPECT_EQ(reg.get_at("v", sec(10)), 0.8);
  EXPECT_EQ(reg.get_at("v", sec(15)), 0.8);
  EXPECT_EQ(reg.get_at("v", sec(100)), 0.5);
  EXPECT_EQ(reg.get("v"), 0.5);
  EXPECT_EQ(reg.version("v"), 3u);
}

TEST(VariableRegistry, SameInstantOverwrites) {
  VariableRegistry reg;
  reg.set("v", 1.0, sec(5));
  reg.set("v", 2.0, sec(5));
  EXPECT_EQ(reg.get("v"), 2.0);
  EXPECT_EQ(reg.get_at("v", sec(5)), 2.0);
}

TEST(VariableRegistry, OutOfOrderSetThrows) {
  VariableRegistry reg;
  reg.set("v", 1.0, sec(10));
  EXPECT_THROW(reg.set("v", 2.0, sec(5)), std::invalid_argument);
}

TEST(VariableRegistry, GlobalVersionCountsAllChanges) {
  VariableRegistry reg;
  EXPECT_EQ(reg.global_version(), 0u);
  reg.set("a", 1.0, sec(0));
  reg.set("b", 1.0, sec(0));
  reg.set("a", 2.0, sec(1));
  EXPECT_EQ(reg.global_version(), 3u);
}

TEST(VariableRegistry, Names) {
  VariableRegistry reg;
  reg.set("b", 1.0, sec(0));
  reg.set("a", 1.0, sec(0));
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // sorted
  EXPECT_EQ(names[1], "b");
}

TEST(VariableRegistry, ListenerFiresOnSet) {
  VariableRegistry reg;
  std::vector<std::pair<std::string, double>> seen;
  const auto id = reg.add_listener([&](VarId var, double value, SimTime) {
    seen.emplace_back(VariableTable::instance().name(var), value);
  });
  reg.set("v", 0.7, sec(1));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, "v");
  EXPECT_EQ(seen[0].second, 0.7);
  reg.remove_listener(id);
  reg.set("v", 0.6, sec(2));
  EXPECT_EQ(seen.size(), 1u);  // removed listener no longer fires
}

TEST(EvalScope, ElapsedTimeVariable) {
  const EvalScope scope{nullptr, sec(12), sec(10)};
  EXPECT_TRUE(scope.has("t"));
  EXPECT_DOUBLE_EQ(scope.lookup("t"), 2.0);
}

TEST(EvalScope, RegistryLookupAtNow) {
  VariableRegistry reg;
  reg.set("v", 1.0, sec(0));
  reg.set("v", 0.5, sec(10));
  const EvalScope early{&reg, sec(5), sec(0)};
  const EvalScope late{&reg, sec(15), sec(0)};
  EXPECT_DOUBLE_EQ(early.lookup("v"), 1.0);
  EXPECT_DOUBLE_EQ(late.lookup("v"), 0.5);
}

TEST(EvalScope, OverridesShadowEverything) {
  VariableRegistry reg;
  reg.set("v", 1.0, sec(0));
  EvalScope scope{&reg, sec(5), sec(0)};
  scope.bind("v", 0.25).bind("t", 100.0);
  EXPECT_DOUBLE_EQ(scope.lookup("v"), 0.25);
  EXPECT_DOUBLE_EQ(scope.lookup("t"), 100.0);  // even `t` can be pinned (snapshots)
}

TEST(EvalScope, UnboundThrows) {
  const EvalScope scope{nullptr, sec(1), sec(0)};
  EXPECT_FALSE(scope.has("v"));
  EXPECT_THROW((void)scope.lookup("v"), UnboundVariableError);
}

TEST(EvalScope, WorksWithParsedExpressions) {
  VariableRegistry reg;
  reg.set("v", 0.5, sec(0));
  const EvalScope scope{&reg, sec(1), sec(0)};
  // Paper example: (3 + t) * v at t=1, v=0.5.
  EXPECT_DOUBLE_EQ(parse_expr("(3 + t) * v")->eval(scope), 2.0);
}

}  // namespace
}  // namespace evps
