file(REMOVE_RECURSE
  "libevps_metrics.a"
)
