#!/usr/bin/env python3
"""Compare two evps-sweep result files at their recorded confidence intervals.

Reads the "sweep" section of two BENCH JSON files (metrics/report.hpp
sectioned shape) and, for every scenario/metric pair present in both with a
defined 95% CI, flags the delta in means as significant when

    |mean_a - mean_b| > sqrt(ci_a^2 + ci_b^2)

i.e. when the intervals' combined half-widths cannot explain the difference
(a conservative two-sample test built only from what the sweeps recorded —
no raw replica data needed). Metrics whose CI is undefined in either file
(fewer than two finite replica values) are reported but never flagged.

Exit codes: 0 no significant deltas, 1 at least one significant delta,
2 usage/IO error.  --selftest fabricates an identical and a shifted pair
internally and asserts both directions, so CI can verify the comparator
itself without golden files.
"""

import json
import math
import sys

METRICS = [
    "latency_mean_s",
    "latency_p99_s",
    "accuracy",
    "deliveries",
    "overlay_msgs",
    "msgs_per_delivery",
    "subscription_msgs",
]


def load_sweep(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"sweep_compare: cannot read {path}: {e}")
    sweep = doc.get("sweep")
    if not isinstance(sweep, dict) or "scenarios" not in sweep:
        raise SystemExit(f"sweep_compare: {path} has no \"sweep\" section")
    return sweep


def compare(sweep_a, sweep_b, name_a="a", name_b="b", out=sys.stdout):
    """Return the number of significant deltas; print one line per metric."""
    significant = 0
    scen_a, scen_b = sweep_a["scenarios"], sweep_b["scenarios"]
    shared = [s for s in scen_a if s in scen_b]
    if not shared:
        raise SystemExit("sweep_compare: no scenarios in common")
    for scenario in shared:
        for metric in METRICS:
            ma, mb = scen_a[scenario].get(metric), scen_b[scenario].get(metric)
            if ma is None or mb is None:
                continue
            mean_a, mean_b = ma["mean"], mb["mean"]
            ci_a, ci_b = ma.get("ci95"), mb.get("ci95")
            delta = abs(mean_a - mean_b)
            if ci_a is None or ci_b is None:
                verdict = "no-ci"
            else:
                bound = math.sqrt(ci_a * ci_a + ci_b * ci_b)
                if delta > bound:
                    verdict = "SIGNIFICANT"
                    significant += 1
                else:
                    verdict = "ok"
            print(
                f"{scenario}/{metric}: {name_a}={mean_a:.6g} {name_b}={mean_b:.6g} "
                f"delta={delta:.6g} -> {verdict}",
                file=out,
            )
    return significant


def selftest():
    base = {
        "scenarios": {
            "game": {
                m: {"mean": 100.0 + i, "ci95": 1.0} for i, m in enumerate(METRICS)
            }
        }
    }
    shifted = json.loads(json.dumps(base))
    shifted["scenarios"]["game"]["deliveries"]["mean"] += 10.0  # >> combined CI
    noise = json.loads(json.dumps(base))
    noise["scenarios"]["game"]["deliveries"]["mean"] += 0.5  # within combined CI
    no_ci = json.loads(json.dumps(shifted))
    no_ci["scenarios"]["game"]["deliveries"]["ci95"] = None

    import io

    sink = io.StringIO()
    assert compare(base, base, out=sink) == 0, "identical sweeps flagged"
    assert compare(base, noise, out=sink) == 0, "in-CI noise flagged"
    assert compare(base, shifted, out=sink) == 1, "injected shift missed"
    assert compare(base, no_ci, out=sink) == 0, "undefined CI flagged"
    print("sweep_compare selftest: ok")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        print(f"\nusage: {argv[0]} <a.json> <b.json> | --selftest", file=sys.stderr)
        return 2
    sweep_a, sweep_b = load_sweep(argv[1]), load_sweep(argv[2])
    significant = compare(sweep_a, sweep_b, name_a=argv[1], name_b=argv[2])
    if significant:
        print(f"sweep_compare: {significant} significant delta(s)")
        return 1
    print("sweep_compare: no significant deltas")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
