#include "message/publication.hpp"

#include <algorithm>

namespace evps {

Publication& Publication::set(std::string_view name, Value value) {
  const auto pos = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const Attribute& a, std::string_view n) { return a.first < n; });
  if (pos != attrs_.end() && pos->first == name) {
    pos->second = std::move(value);
  } else {
    const auto idx = static_cast<std::size_t>(pos - attrs_.begin());
    attrs_.emplace(pos, std::string(name), std::move(value));
    attr_ids_.insert(attr_ids_.begin() + static_cast<std::ptrdiff_t>(idx),
                     AttributeTable::instance().intern(name));
  }
  return *this;
}

const Value* Publication::get(std::string_view name) const noexcept {
  const auto pos = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const Attribute& a, std::string_view n) { return a.first < n; });
  if (pos != attrs_.end() && pos->first == name) return &pos->second;
  return nullptr;
}

std::string Publication::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i != 0) out += "; ";
    out += attrs_[i].first;
    out += " = ";
    out += attrs_[i].second.to_string();
  }
  out += "}";
  return out;
}

}  // namespace evps
