// Interval abstract domain for evolution expressions.
//
// The static analyzer (analysis/analyzer.hpp) decides subscribe-time verdicts
// — unsatisfiable, constant, advertisement-uncovered — by bounding the value
// each evolving predicate's function can take given declared evolution-
// variable ranges. This header provides the domain those bounds live in and
// an abstract interpreter over compiled `ExprProgram`s.
//
// An Interval over-approximates the set of doubles an expression can
// evaluate to: a closed numeric range [lo, hi] plus a `maybe_nan` flag
// (NaN is not ordered, so it cannot live inside the range). The numeric
// range may be empty (lo > hi) when the expression *always* evaluates to
// NaN — e.g. sqrt of a provably negative operand.
//
// Soundness contract: for every concrete evaluation of the program under
// variable values drawn from the supplied per-variable intervals, the result
// is either NaN (then maybe_nan is true) or a double inside [lo, hi].
// tests/test_analysis_soundness.cpp validates this against brute-force
// sampling. Two properties keep the verdicts trustworthy:
//
//   * Outward rounding — endpoint arithmetic on non-degenerate intervals is
//     widened by one ulp per operation, so floating-point rounding can never
//     move a reachable value outside the interval.
//   * Point exactness — when every operand interval is a single point, the
//     abstract operation performs the *same* double computation the
//     evaluator would, so a derived point interval is bit-identical to what
//     the lazy path computes (this is what makes constant folding safe).
#pragma once

#include <cmath>
#include <limits>

#include "common/variable_table.hpp"
#include "expr/program.hpp"

namespace evps {

struct Interval {
  /// Closed numeric range; lo > hi encodes "no numeric value is reachable"
  /// (the expression always evaluates to NaN).
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  /// Evaluation may produce NaN (0/0, sqrt of a negative, fmod by 0, ...).
  bool maybe_nan = false;

  [[nodiscard]] static Interval top() noexcept { return Interval{}; }
  /// Unknown variable: any double including NaN.
  [[nodiscard]] static Interval unknown() noexcept {
    Interval i;
    i.maybe_nan = true;
    return i;
  }
  [[nodiscard]] static Interval nan_only() noexcept {
    Interval i;
    i.lo = std::numeric_limits<double>::infinity();
    i.hi = -std::numeric_limits<double>::infinity();
    i.maybe_nan = true;
    return i;
  }
  /// Exact singleton. point(NaN) degenerates to nan_only().
  [[nodiscard]] static Interval point(double v) noexcept;
  [[nodiscard]] static Interval range(double lo, double hi) noexcept {
    Interval i;
    i.lo = lo;
    i.hi = hi;
    return i;
  }

  /// No numeric value reachable (always-NaN expression).
  [[nodiscard]] bool numeric_empty() const noexcept { return !(lo <= hi); }
  /// Exactly one reachable value and it is never NaN.
  [[nodiscard]] bool is_point() const noexcept { return lo == hi && !maybe_nan; }
  [[nodiscard]] bool contains(double v) const noexcept { return lo <= v && v <= hi; }
  /// Sound membership test for a concrete evaluation result.
  [[nodiscard]] bool admits(double v) const noexcept {
    return std::isnan(v) ? maybe_nan : contains(v);
  }

  /// Smallest interval containing both (union over-approximation).
  [[nodiscard]] Interval hull(const Interval& other) const noexcept;
};

/// Per-variable bounds supplied to the abstract interpreter. Unknown
/// variables (never declared) must map to Interval::unknown().
class VarBounds {
 public:
  virtual ~VarBounds() = default;
  [[nodiscard]] virtual Interval bounds(VarId var) const = 0;
};

// Abstract transfer functions, one per ExprProgram opcode. All are sound
// over-approximations of the corresponding evaluator step (including its NaN
// quirks: sign/step map NaN to 0/1, min/max folds skip NaN in non-leading
// operands). Exposed for direct unit testing.
[[nodiscard]] Interval iv_neg(const Interval& a) noexcept;
[[nodiscard]] Interval iv_abs(const Interval& a) noexcept;
[[nodiscard]] Interval iv_floor(const Interval& a) noexcept;
[[nodiscard]] Interval iv_ceil(const Interval& a) noexcept;
[[nodiscard]] Interval iv_sqrt(const Interval& a) noexcept;
[[nodiscard]] Interval iv_sin(const Interval& a) noexcept;
[[nodiscard]] Interval iv_cos(const Interval& a) noexcept;
[[nodiscard]] Interval iv_sign(const Interval& a) noexcept;
[[nodiscard]] Interval iv_step(const Interval& a) noexcept;
[[nodiscard]] Interval iv_add(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval iv_sub(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval iv_mul(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval iv_div(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval iv_mod(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval iv_pow(const Interval& a, const Interval& b) noexcept;
/// std::min(a, b) / std::max(a, b) with the evaluator's asymmetric NaN rule:
/// a leading NaN sticks, a trailing NaN is skipped.
[[nodiscard]] Interval iv_min2(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval iv_max2(const Interval& a, const Interval& b) noexcept;

/// Abstractly interpret `prog` with variables bounded by `vars`.
/// The program must already have passed verify_program (see
/// analysis/verifier.hpp); malformed programs throw std::logic_error.
[[nodiscard]] Interval eval_interval(const ExprProgram& prog, const VarBounds& vars);

}  // namespace evps
