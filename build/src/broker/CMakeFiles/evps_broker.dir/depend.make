# Empty dependencies file for evps_broker.
# This may be replaced when dependencies are built.
