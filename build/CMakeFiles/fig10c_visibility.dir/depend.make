# Empty dependencies file for fig10c_visibility.
# This may be replaced when dependencies are built.
