// Fuzz harness for the scenario front end (analysis/scenario.hpp) shared by
// evps-lint and evps-audit.
//
// Properties under test:
//   * parse_scenario never throws — malformed lines must surface as kError
//     directives, not exceptions (the subscription codec throws CodecError
//     internally; anything escaping is a front-end bug);
//   * the directive list is bounded by the line count (no directive
//     amplification);
//   * every error directive carries a caret location inside its own body.
#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "analysis/scenario.hpp"
#include "fuzz_driver.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const evps::Scenario scenario = evps::parse_scenario(text);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
  if (scenario.directives.size() > lines) std::abort();
  for (const evps::ScenarioDirective& d : scenario.directives) {
    if (d.line_no <= 0) std::abort();
    if (d.kind == evps::ScenarioDirective::Kind::kError &&
        d.body_col + d.error_offset > d.line.size()) {
      std::abort();
    }
  }
  return 0;
}
