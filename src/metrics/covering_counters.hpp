// Per-broker counters for covering-based subscription routing (see
// analysis/covering_index.hpp and BrokerConfig::covering). Pair-analysis
// counts (pairs / covered / unknown) live in the CoveringIndex's CoverStats;
// this struct tracks the message-traffic consequences the broker observed.
//
// Header-only and dependency-free on purpose: the broker includes this
// without linking evps_metrics (which itself links the broker).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace evps {

struct CoveringCounters {
  /// Subscribe forwards suppressed because a covering root already reaches
  /// the target neighbour (the paper metric: dissemination messages saved).
  std::uint64_t suppressed_forwards = 0;
  /// Unsubscribes sent to retract a former root that a newly arrived
  /// subscription now covers.
  std::uint64_t demote_unsubscribes = 0;
  /// Re-dissemination subscribes sent when a coverer's removal or update
  /// promoted covered subscriptions back to roots (uncover-on-remove), or
  /// when an updated subscription re-attached under a different root whose
  /// reach misses directions the old root served.
  std::uint64_t resubscribes = 0;

  /// Net subscription-dissemination messages avoided (can exceed the raw
  /// suppression count's complement: retractions and re-disseminations are
  /// traffic the optimisation itself emits).
  [[nodiscard]] std::int64_t net_saved() const noexcept {
    return static_cast<std::int64_t>(suppressed_forwards) -
           static_cast<std::int64_t>(demote_unsubscribes) -
           static_cast<std::int64_t>(resubscribes);
  }

  void reset() noexcept { *this = CoveringCounters{}; }
};

/// Print one row per broker plus a totals row: covering-pair verdicts from
/// each broker's CoveringIndex and the traffic counters above.
class Broker;
void print_covering_report(const std::vector<const Broker*>& brokers, std::ostream& os);

}  // namespace evps
