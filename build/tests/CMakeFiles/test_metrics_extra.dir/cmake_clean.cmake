file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_extra.dir/test_metrics_extra.cpp.o"
  "CMakeFiles/test_metrics_extra.dir/test_metrics_extra.cpp.o.d"
  "test_metrics_extra"
  "test_metrics_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
