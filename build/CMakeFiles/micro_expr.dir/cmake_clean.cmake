file(REMOVE_RECURSE
  "CMakeFiles/micro_expr.dir/bench/micro_expr.cpp.o"
  "CMakeFiles/micro_expr.dir/bench/micro_expr.cpp.o.d"
  "bench/micro_expr"
  "bench/micro_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
