file(REMOVE_RECURSE
  "CMakeFiles/evps_realtime.dir/realtime_host.cpp.o"
  "CMakeFiles/evps_realtime.dir/realtime_host.cpp.o.d"
  "libevps_realtime.a"
  "libevps_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
