// Quiesced whole-overlay state snapshots (DESIGN.md §15).
//
// A BrokerState is a passive, self-contained copy of everything one broker
// knows that bears on routing soundness: the routing table (per-subscription
// forward lists), the advertisement table, the covering forest, the engine's
// installed-subscription table plus its *physical* footprint (matcher slots,
// lazy-storage entries, dedup groups), the pending batch buffers, and the
// evolution-variable state the covering proofs were made under. An
// OverlaySnapshot is one BrokerState per broker, taken at a quiesce point
// (no messages in flight).
//
// The snapshot is the contract between the brokers and the OverlayAuditor
// (auditor.hpp): it deliberately contains no live pointers into broker
// internals, so auditing can never perturb the system, mutation tests can
// corrupt snapshots freely, and a snapshot can be serialised for offline
// analysis. Everything is normalised into a canonical order so re-exporting
// an unchanged overlay yields a bit-identical snapshot
// (tests/test_snapshot_export.cpp).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "expr/variable_registry.hpp"
#include "message/advertisement.hpp"
#include "message/subscription.hpp"

namespace evps::audit {

/// One engine-installed subscription (BrokerEngine's bookkeeping view).
struct InstalledSub {
  SubscriptionPtr sub;
  NodeId dest;                  ///< next hop (client or neighbour broker)
  bool dest_is_broker = false;  ///< forwarding hop (vs. local delivery)
  /// Predicate split, pre-derived so the auditor's accounting model does not
  /// re-classify: engines route installs by these exact counts.
  std::size_t static_preds = 0;
  std::size_t evolving_preds = 0;

  [[nodiscard]] bool evolving() const noexcept { return evolving_preds > 0; }
  [[nodiscard]] bool fully_evolving() const noexcept {
    return evolving_preds > 0 && static_preds == 0;
  }
};

/// One refcounted install-sharing group (DedupTable). `members` preserves
/// the table's order: the FIRST member is the canonical id — the one
/// physically installed in the matcher / lazy storage.
struct DedupGroup {
  std::string key;
  std::vector<SubscriptionId> members;
  /// True for LEES's fully-evolving-part sharing (lazy_dedup_); false for
  /// the static-predicate groups every engine keeps.
  bool lazy = false;
};

/// One evolving part held in a lazy store (LEES LEME / CLEES storage /
/// hybrid adaptive store), keyed by owning subscription and destination.
struct LazyEntry {
  SubscriptionId id;
  NodeId dest;
};

/// The engine's logical table plus its physical footprint.
struct EngineState {
  std::string kind;             ///< to_string(EngineKind)
  bool dedup_identical = true;  ///< EngineConfig::dedup_identical
  std::map<SubscriptionId, InstalledSub> installed;
  /// Ids physically present in the (sharded) matcher, ascending.
  std::vector<SubscriptionId> matcher_ids;
  /// Evolving parts physically present in the lazy stores.
  std::vector<LazyEntry> lazy_entries;
  /// Install-sharing groups (static for every engine, plus LEES lazy).
  std::vector<DedupGroup> dedup_groups;
};

/// One covering-forest entry. An invalid parent marks a root.
struct ForestNode {
  SubscriptionId id;
  SubscriptionId parent = SubscriptionId::invalid();
  std::vector<SubscriptionId> children;  ///< non-empty for roots only
};

/// Routing-table row: the broker neighbours `id` was forwarded to.
struct RouteEntry {
  SubscriptionId id;
  std::vector<NodeId> forwards;
};

/// Advertisement-table row with the neighbour it arrived from (`from` is a
/// client neighbour exactly at the advertisement's origin broker).
struct AdvertEntry {
  MessageId id;
  std::shared_ptr<const Advertisement> adv;
  NodeId from;
};

/// A link-batcher slot with buffered publications (quiescence violations:
/// at a barrier every slot must be empty, so only non-empty slots export).
struct PendingLink {
  NodeId dest;
  std::size_t pending = 0;
};

/// Evolution-variable state the broker's covering/analysis verdicts were
/// made under: declared range and latest value (both optional).
struct VariableState {
  std::string name;
  bool declared = false;
  double lo = 0.0;
  double hi = 0.0;
  bool has_value = false;
  double value = 0.0;
};

struct BrokerState {
  std::string name;
  NodeId node;
  std::string routing;  ///< "flooding" | "advertisement"
  bool covering_enabled = false;
  std::vector<NodeId> broker_neighbors;
  std::vector<NodeId> client_neighbors;
  std::vector<RouteEntry> routes;
  std::vector<AdvertEntry> adverts;
  std::vector<ForestNode> forest;
  EngineState engine;
  /// Publications buffered for a batched engine match (BrokerConfig::
  /// batch_size); zero at any quiesce point.
  std::size_t pending_match_batch = 0;
  std::vector<PendingLink> pending_links;
  std::vector<VariableState> variables;

  [[nodiscard]] const InstalledSub* find_installed(SubscriptionId id) const {
    const auto it = engine.installed.find(id);
    return it == engine.installed.end() ? nullptr : &it->second;
  }
};

struct OverlaySnapshot {
  std::vector<BrokerState> brokers;

  /// Sort every container into canonical order (brokers by node id, routes/
  /// forest/adverts/variables by key, forward lists ascending). Dedup-group
  /// member order is preserved — the canonical member must stay first.
  void normalize();

  [[nodiscard]] const BrokerState* find(NodeId node) const;
};

/// Deterministic text rendering of a normalised snapshot: two exports of an
/// unchanged overlay compare equal as strings. Also the debugging view.
[[nodiscard]] std::string canonical_text(const OverlaySnapshot& snap);

/// Reconstruct a broker-local VariableRegistry from exported variable state
/// (declared ranges first, then values at t=0). `extra_declarations` lets
/// the auditor merge declarations from other brokers for variables this
/// broker never declared locally (declarations are broker-local contract
/// metadata, but covering witnesses may need a peer's contract); a merged
/// declaration that contradicts a local value is skipped, never applied.
[[nodiscard]] VariableRegistry rebuild_registry(
    const BrokerState& broker, const std::vector<VariableState>& extra_declarations = {});

}  // namespace evps::audit
