// Delivery latency metric, the broker load-monitor variable
// (Section III-C overload self-protection), the shard/batch counters, and
// the NaN/inf guards of the Summary/Histogram accumulators.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "broker/overlay.hpp"
#include "message/codec.hpp"
#include "metrics/latency.hpp"
#include "metrics/shard_counters.hpp"
#include "sim/stats.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

TEST(Latency, SingleHopLatencyIsSubscriberLink) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  Broker& broker = overlay.add_broker("b", cfg);
  auto& sub = overlay.add_client("sub");
  auto& feed = overlay.add_client("feed");
  sub.connect(broker, Duration::millis(7));
  feed.connect(broker, Duration::millis(2));
  sub.subscribe("x >= 0");
  sim.run_until(sec(0.1));
  feed.publish("x = 1");
  feed.publish("x = 2");
  sim.run_until(sec(1));

  const Summary latency = collect_delivery_latency(overlay);
  ASSERT_EQ(latency.count(), 2u);
  // Entry time is stamped at the broker; only the subscriber link remains.
  EXPECT_NEAR(latency.mean(), 0.007, 1e-9);
  EXPECT_NEAR(latency.min(), 0.007, 1e-9);
  EXPECT_NEAR(latency.max(), 0.007, 1e-9);
}

TEST(Latency, MultiHopAccumulates) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  auto brokers = overlay.build_line(3, cfg, Duration::millis(10));
  auto& sub = overlay.add_client("sub");
  auto& feed = overlay.add_client("feed");
  sub.connect(*brokers[0], Duration::millis(1));
  feed.connect(*brokers[2], Duration::millis(1));
  sub.subscribe("x >= 0");
  sim.run_until(sec(0.5));
  feed.publish("x = 1");
  sim.run_until(sec(1));

  const Summary latency = collect_delivery_latency(overlay);
  ASSERT_EQ(latency.count(), 1u);
  // Two inter-broker hops (10 ms each) plus the subscriber link (1 ms).
  EXPECT_NEAR(latency.mean(), 0.021, 1e-9);
}

TEST(Latency, PerClientBreakdown) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  Broker& broker = overlay.add_broker("b", cfg);
  auto& near = overlay.add_client("near");
  auto& far = overlay.add_client("far");
  auto& feed = overlay.add_client("feed");
  near.connect(broker, Duration::millis(1));
  far.connect(broker, Duration::millis(20));
  feed.connect(broker, Duration::zero());
  near.subscribe("x >= 0");
  far.subscribe("x >= 0");
  sim.run_until(sec(0.5));
  feed.publish("x = 1");
  sim.run_until(sec(1));

  const auto per_client = collect_delivery_latency_per_client(overlay);
  ASSERT_EQ(per_client.size(), 2u);
  EXPECT_NEAR(per_client.at(near.id()).mean(), 0.001, 1e-9);
  EXPECT_NEAR(per_client.at(far.id()).mean(), 0.020, 1e-9);
  EXPECT_FALSE(per_client.contains(feed.id()));
}

TEST(Latency, EmptyOverlay) {
  Simulator sim;
  Overlay overlay{sim};
  EXPECT_EQ(collect_delivery_latency(overlay).count(), 0u);
  EXPECT_TRUE(collect_delivery_latency_per_client(overlay).empty());
}

struct LoadMonitorTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  Broker* broker = nullptr;
  PubSubClient* sub = nullptr;
  PubSubClient* feed = nullptr;

  void SetUp() override {
    cfg.engine.kind = EngineKind::kLees;
    broker = &overlay.add_broker("b", cfg);
    sub = &overlay.add_client("sub");
    feed = &overlay.add_client("feed");
    sub->connect(*broker, Duration::millis(1));
    feed->connect(*broker, Duration::millis(1));
  }
};

TEST_F(LoadMonitorTest, TracksOutgoingRate) {
  broker->enable_load_monitor("outRate", Duration::seconds(1.0), sec(10));
  sub->subscribe("x >= 0");
  // 50 matching pubs/s for 3 seconds.
  sim.every(sec(0.5), Duration::millis(20), sec(3.5), [&](SimTime) { feed->publish("x = 1"); });
  sim.run_until(sec(2.5));
  const auto mid = broker->variables().get("outRate");
  ASSERT_TRUE(mid.has_value());
  EXPECT_NEAR(*mid, 50.0, 10.0);
  sim.run_until(sec(6));
  EXPECT_NEAR(*broker->variables().get("outRate"), 0.0, 1.0);  // quiet again
}

TEST_F(LoadMonitorTest, SelfThrottlingSubscription) {
  // Section III-C: match everything up to maxDist when idle, nothing at
  // full load: distance < maxDist * (1 - outRate / maxRate).
  broker->enable_load_monitor("outRate", Duration::seconds(1.0), sec(30));
  sub->subscribe("distance < 100 * (1 - outRate / 100)");
  sim.run_until(sec(0.1));

  // Idle: outRate = 0 -> threshold 100.
  feed->publish("distance = 50");
  sim.run_until(sec(0.9));
  EXPECT_EQ(sub->deliveries().size(), 1u);

  // Saturate: ~200 deliveries/s pushes outRate beyond 100 -> threshold < 0,
  // so the subscription throttles itself during the flood windows.
  sim.every(sec(1), Duration::millis(5), sec(4), [&](SimTime) {
    feed->publish("distance = 1");
  });
  sim.run_until(sec(5));  // flood over, trailing deliveries settled
  const std::size_t during_load = sub->deliveries().size();
  // The flood produced ~600 publications; self-throttling must have dropped
  // a large share of them (every window after the monitor saw the spike).
  EXPECT_LT(during_load, 450u);
  EXPECT_GT(during_load, 50u);

  // Load has decayed: the probe publication is delivered again.
  sim.run_until(sec(5.2));
  feed->publish("distance = 50");
  sim.run_until(sec(6));
  EXPECT_EQ(sub->deliveries().size(), during_load + 1);
}

TEST(LoadMonitorLifetime, DestroyedBrokerCancelsItsMonitor) {
  // Regression: the monitor callback captures the broker by raw pointer; a
  // broker destroyed before `until` used to leave a dangling recurring
  // callback in the simulator queue.
  Simulator sim;
  Network net{sim};
  {
    Broker doomed{"doomed", net, BrokerConfig{}};
    doomed.enable_load_monitor("outRate", Duration::seconds(1.0), sec(100));
    sim.run_until(sec(2.5));  // fires while alive
    EXPECT_TRUE(doomed.variables().get("outRate").has_value());
  }
  // ~97 occurrences were still due; they must all be dead now.
  sim.run_all();
  EXPECT_EQ(sim.now(), sec(3));  // only the already-queued (no-op) event remained
}

TEST(ShardCounters, BatchAccountingAndReport) {
  BatchCounters counters;
  EXPECT_EQ(counters.mean_batch(), 0.0);
  counters.record(4, 10e-6);
  counters.record(8, 30e-6);
  EXPECT_EQ(counters.batches, 2u);
  EXPECT_EQ(counters.batched_publications, 12u);
  EXPECT_EQ(counters.max_batch, 8u);
  EXPECT_DOUBLE_EQ(counters.mean_batch(), 6.0);
  EXPECT_NEAR(counters.batch_seconds.mean(), 20e-6, 1e-12);

  const std::string report = format_shard_report({10, 30}, counters);
  EXPECT_NE(report.find("matcher shards: 2 (40 subscriptions)"), std::string::npos);
  EXPECT_NE(report.find("shard 0: 10 (25%)"), std::string::npos);
  EXPECT_NE(report.find("batches: 2 (12 publications, mean 6/batch, max 8)"), std::string::npos);
  EXPECT_NE(report.find("batch latency"), std::string::npos);

  counters.reset();
  EXPECT_EQ(counters.batches, 0u);
  EXPECT_EQ(counters.batch_seconds.count(), 0u);
}

TEST(ShardCounters, EngineExposesOccupancyAndBatchCounters) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.engine.matcher_threads = 4;
  cfg.batch_size = 4;
  Broker& broker = overlay.add_broker("b", cfg);
  auto& sub = overlay.add_client("sub");
  auto& feed = overlay.add_client("feed");
  sub.connect(broker, Duration::millis(1));
  feed.connect(broker, Duration::millis(1));
  sub.subscribe("x >= 0");
  sub.subscribe("y >= 0");
  sim.run_until(sec(0.1));
  for (int i = 0; i < 6; ++i) feed.publish("x = " + std::to_string(i));
  sim.run_all();

  const auto occupancy = broker.engine().shard_occupancy();
  ASSERT_EQ(occupancy.size(), 4u);
  std::size_t total = 0;
  for (std::size_t s : occupancy) total += s;
  EXPECT_EQ(total, 2u);
  // All six snapshot-free publications went through the batch path.
  const auto& batches = broker.engine().batch_counters();
  EXPECT_GT(batches.batches, 0u);
  EXPECT_EQ(batches.batched_publications, 6u);
  EXPECT_LE(batches.max_batch, 4u);
  EXPECT_EQ(sub.deliveries().size(), 6u);
}

TEST(LoadMonitorLifetime, ReturnedHandleCancelsEarly) {
  Simulator sim;
  Network net{sim};
  Broker broker{"b", net, BrokerConfig{}};
  auto handle = broker.enable_load_monitor("outRate", Duration::seconds(1.0), sec(100));
  EXPECT_TRUE(handle.active());
  sim.run_until(sec(1.5));
  handle.cancel();
  sim.run_all();
  EXPECT_LT(sim.now(), sec(3));  // no further occurrences were scheduled
}

TEST(SummaryGuard, EmptyAndSingleSample) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  s.record(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);  // undefined below two samples
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryGuard, NonFiniteSamplesAreRejectedNotAbsorbed) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Summary s;
  s.record(1.0);
  s.record(kNaN);
  s.record(kInf);
  s.record(-kInf);
  s.record(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.rejected(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_TRUE(std::isfinite(s.variance()));

  Summary other;
  other.record(kNaN);
  s.merge(other);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.rejected(), 4u);  // merge carries the rejection count
}

TEST(HistogramGuard, NonFiniteSamplesTouchNoBucket) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  Histogram h{{1.0, 2.0}};
  h.record(kNaN);
  h.record(std::numeric_limits<double>::infinity());
  for (const std::uint64_t c : h.counts()) EXPECT_EQ(c, 0u);
  EXPECT_EQ(h.summary().count(), 0u);
  EXPECT_EQ(h.summary().rejected(), 2u);

  h.record(0.5);
  h.record(kNaN);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.summary().count(), 1u);
  EXPECT_EQ(h.summary().rejected(), 3u);
  EXPECT_DOUBLE_EQ(h.summary().mean(), 0.5);
}

TEST(SummaryGuard, LatencyAccumulatorSurvivesCorruptSample) {
  // The delivery-latency collector runs on Summary; a poisoned sample must
  // not wipe the aggregate (the statistical-testing hardening contract).
  Summary latency;
  latency.record(0.002);
  latency.record(std::numeric_limits<double>::quiet_NaN());
  latency.record(0.004);
  EXPECT_EQ(latency.count(), 2u);
  EXPECT_EQ(latency.rejected(), 1u);
  EXPECT_DOUBLE_EQ(latency.mean(), 0.003);
}

}  // namespace
}  // namespace evps
