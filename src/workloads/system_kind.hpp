// The five systems compared in the paper's evaluation plus the centralised
// ground-truth configuration (Section VI).
#pragma once

#include "evolving/engine.hpp"

namespace evps {

enum class SystemKind {
  kResub,       // baseline: unsubscribe + subscribe per interest change
  kParametric,  // baseline [12]: one update message per interest change
  kVes,
  kLees,
  kClees,
  /// Adaptive VES/CLEES hybrid (the paper's Section IV-C future work).
  kHybrid,
  /// Centralised instantaneous configuration used to produce the
  /// ground-truth delivery log (single broker, zero latency, lazy exact
  /// evaluation).
  kGroundTruth,
};

[[nodiscard]] constexpr const char* to_string(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kResub: return "resub";
    case SystemKind::kParametric: return "parametric";
    case SystemKind::kVes: return "VES";
    case SystemKind::kLees: return "LEES";
    case SystemKind::kClees: return "CLEES";
    case SystemKind::kHybrid: return "hybrid";
    case SystemKind::kGroundTruth: return "ground-truth";
  }
  return "?";
}

[[nodiscard]] constexpr EngineKind engine_kind_for(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kResub: return EngineKind::kStatic;
    case SystemKind::kParametric: return EngineKind::kParametric;
    case SystemKind::kVes: return EngineKind::kVes;
    case SystemKind::kLees: return EngineKind::kLees;
    case SystemKind::kClees: return EngineKind::kClees;
    case SystemKind::kHybrid: return EngineKind::kHybrid;
    case SystemKind::kGroundTruth: return EngineKind::kLees;
  }
  return EngineKind::kStatic;
}

/// Clients of evolving systems install evolving subscriptions; baseline
/// clients install static subscriptions they keep adjusting.
[[nodiscard]] constexpr bool uses_evolving_subscriptions(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kResub:
    case SystemKind::kParametric: return false;
    default: return true;
  }
}

[[nodiscard]] constexpr bool is_centralized(SystemKind kind) noexcept {
  return kind == SystemKind::kGroundTruth;
}

}  // namespace evps
