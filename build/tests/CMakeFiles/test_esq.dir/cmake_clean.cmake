file(REMOVE_RECURSE
  "CMakeFiles/test_esq.dir/test_esq.cpp.o"
  "CMakeFiles/test_esq.dir/test_esq.cpp.o.d"
  "test_esq"
  "test_esq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
