file(REMOVE_RECURSE
  "CMakeFiles/test_value.dir/test_value.cpp.o"
  "CMakeFiles/test_value.dir/test_value.cpp.o.d"
  "test_value"
  "test_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
