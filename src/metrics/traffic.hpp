// Subscription message traffic over time (Section VI-A1, Figures 6(a)-(c)).
//
// Samples the cumulative per-broker subscription-related message counters at
// a fixed interval and reports, per interval, the average number of
// subscription messages received per broker — the paper's primary metric
// ("average number of subscription-related messages per minute received by
// any broker in the system").
#pragma once

#include <string>
#include <vector>

#include "broker/overlay.hpp"
#include "metrics/link_counters.hpp"
#include "sim/simulator.hpp"

namespace evps {

/// Sum of every broker's LinkBatchCounters — the overlay-wide batching view
/// (messages vs. events carried, flush causes, fill histogram, bytes).
[[nodiscard]] LinkBatchCounters aggregate_link_counters(const Overlay& overlay);

/// Human-readable batching report for the aggregate.
[[nodiscard]] std::string format_link_report(const LinkBatchCounters& counters);

class TrafficProbe {
 public:
  /// Start sampling `overlay` every `interval`, from `interval` to `until`.
  /// Must be created before the simulation runs past `interval`.
  TrafficProbe(Overlay& overlay, Duration interval, SimTime until);

  /// One value per completed interval: subscription messages received during
  /// the interval, averaged over brokers.
  [[nodiscard]] const std::vector<double>& per_interval_per_broker() const noexcept {
    return samples_;
  }

  /// Mean over all completed intervals.
  [[nodiscard]] double mean() const noexcept;

  [[nodiscard]] Duration interval() const noexcept { return interval_; }

 private:
  Overlay& overlay_;
  Duration interval_;
  std::uint64_t last_total_ = 0;
  std::vector<double> samples_;
};

}  // namespace evps
