// Figure 8 (a)-(d): broker processing time for handling evolutions in the
// MMOG use case, across workload settings.
//
// Metric (Section VI-A3): for VES, the time spent updating subscription
// versions; for LEES/CLEES, the on-demand evaluation overhead. Panels:
//   (a) baseline: processing time vs number of subscriptions
//   (b) publication rate x2      -> LEES/CLEES grow, VES unaffected
//   (c) 50/50 evolving/static    -> LEES improves, VES unaffected
//   (d) evolution rate x2 (MEI/2)-> VES grows, LEES/CLEES unaffected
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/game.hpp"

namespace {

using namespace evps;

struct Variant {
  const char* name;
  double pub_rate_factor = 1.0;
  double evolving_fraction = 1.0;
  double mei_factor = 1.0;
};

double processing_ms(SystemKind system, std::size_t characters, const Variant& variant) {
  GameConfig cfg;
  cfg.system = system;
  cfg.seed = 7;
  cfg.characters = characters;
  cfg.clients = 100;
  cfg.pub_rate = 200.0 * variant.pub_rate_factor;
  cfg.evolving_fraction = variant.evolving_fraction;
  cfg.mei = Duration::seconds(1.0 * variant.mei_factor);
  cfg.tt = Duration::seconds(1.0);
  cfg.duration = SimTime::from_seconds(20.0);
  GameExperiment exp(cfg);
  exp.run();
  const EngineCosts& costs = exp.engine_costs();
  return (costs.maintenance.sum() + costs.lazy_eval.sum()) * 1000.0;
}

void panel(const char* title, const Variant& variant,
           std::initializer_list<unsigned> sizes = {250u, 500u, 1000u, 2000u}) {
  print_banner(title);
  Table t{{"subscriptions", "VES (ms)", "LEES (ms)", "CLEES (ms)"}};
  for (const std::size_t n : sizes) {
    t.add_row({std::to_string(n),
               Table::fmt(processing_ms(SystemKind::kVes, n, variant), 1),
               Table::fmt(processing_ms(SystemKind::kLees, n, variant), 1),
               Table::fmt(processing_ms(SystemKind::kClees, n, variant), 1)});
  }
  t.print();
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 8: game-broker processing time (20 s window)\n";
  panel("Figure 8(a): baseline (200 pubs/s, all evolving, MEI/TT = 1 s)", {"baseline"},
        {250u, 500u, 1000u, 2000u, 4000u, 8000u});
  panel("Figure 8(b): publication rate x2 (400 pubs/s)", {"pubx2", 2.0, 1.0, 1.0});
  panel("Figure 8(c): 50/50 evolving/static subscriptions", {"split", 1.0, 0.5, 1.0});
  panel("Figure 8(d): evolution rate x2 (MEI = 0.5 s)", {"meix2", 1.0, 1.0, 0.5});
  std::cout << "\npaper shapes: CLEES best at high sub counts; VES grows with total subs\n"
               "and with evolution rate but is unaffected by pubs; LEES/CLEES grow with\n"
               "pub rate; only LEES benefits from the 50/50 split.\n";
  return 0;
}
