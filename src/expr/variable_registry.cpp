#include "expr/variable_registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evps {

void VariableRegistry::set(VarId var, double value, SimTime when) {
  if (var == kInvalidVarId) throw std::invalid_argument("cannot set an invalid VarId");
  if (var < ranges_.size() && ranges_[var].declared &&
      !(ranges_[var].lo <= value && value <= ranges_[var].hi)) {
    throw std::invalid_argument("value for variable '" + VariableTable::instance().name(var) +
                                "' violates its declared range");
  }
  if (var >= vars_.size()) vars_.resize(var + 1);
  auto& changes = vars_[var].changes;
  if (!changes.empty() && when < changes.back().first) {
    throw std::invalid_argument("variable '" + VariableTable::instance().name(var) +
                                "' history must be appended in time order");
  }
  if (!changes.empty() && when == changes.back().first) {
    changes.back().second = value;  // same-instant overwrite
  } else {
    changes.emplace_back(when, value);
  }
  ++global_version_;
  for (auto& [id, listener] : listeners_) {
    listener(var, value, when);
  }
}

std::optional<double> VariableRegistry::get(VarId var) const noexcept {
  if (var >= vars_.size() || vars_[var].changes.empty()) return std::nullopt;
  return vars_[var].changes.back().second;
}

std::optional<double> VariableRegistry::get_at(VarId var, SimTime when) const noexcept {
  if (var >= vars_.size() || vars_[var].changes.empty()) return std::nullopt;
  const auto& changes = vars_[var].changes;
  // Last change with time <= when.
  auto pos = std::upper_bound(changes.begin(), changes.end(), when,
                              [](SimTime t, const auto& entry) { return t < entry.first; });
  if (pos == changes.begin()) return std::nullopt;  // variable did not exist yet
  return std::prev(pos)->second;
}

std::optional<SimTime> VariableRegistry::last_change(VarId var) const noexcept {
  if (var >= vars_.size() || vars_[var].changes.empty()) return std::nullopt;
  return vars_[var].changes.back().first;
}

std::vector<std::string> VariableRegistry::names() const {
  std::vector<std::string> out;
  for (VarId var = 0; var < vars_.size(); ++var) {
    if (!vars_[var].changes.empty()) out.push_back(VariableTable::instance().name(var));
  }
  return out;
}

std::vector<VarId> VariableRegistry::ids() const {
  std::vector<VarId> out;
  for (VarId var = 0; var < vars_.size(); ++var) {
    if (!vars_[var].changes.empty()) out.push_back(var);
  }
  return out;
}

std::vector<VarId> VariableRegistry::declared_ids() const {
  std::vector<VarId> out;
  for (VarId var = 0; var < ranges_.size(); ++var) {
    if (ranges_[var].declared) out.push_back(var);
  }
  return out;
}

void VariableRegistry::for_each_latest(const std::function<void(VarId, double)>& fn) const {
  for (VarId var = 0; var < vars_.size(); ++var) {
    if (!vars_[var].changes.empty()) fn(var, vars_[var].changes.back().second);
  }
}

void VariableRegistry::declare_range(VarId var, double lo, double hi) {
  if (var == kInvalidVarId) throw std::invalid_argument("cannot declare an invalid VarId");
  if (!std::isfinite(lo) || !std::isfinite(hi) || lo > hi) {
    throw std::invalid_argument("declared range for variable '" +
                                VariableTable::instance().name(var) +
                                "' must be a finite interval with lo <= hi");
  }
  if (var < vars_.size()) {
    for (const auto& change : vars_[var].changes) {
      if (!(lo <= change.second && change.second <= hi)) {
        throw std::invalid_argument("declared range for variable '" +
                                    VariableTable::instance().name(var) +
                                    "' excludes an already-recorded value");
      }
    }
  }
  if (var >= ranges_.size()) ranges_.resize(var + 1);
  ranges_[var] = Range{lo, hi, true};
}

std::optional<std::pair<double, double>> VariableRegistry::declared_range(
    VarId var) const noexcept {
  if (var >= ranges_.size() || !ranges_[var].declared) return std::nullopt;
  return std::make_pair(ranges_[var].lo, ranges_[var].hi);
}

VariableRegistry::ListenerId VariableRegistry::add_listener(Listener listener) {
  const ListenerId id = next_listener_++;
  listeners_.emplace(id, std::move(listener));
  return id;
}

void VariableRegistry::remove_listener(ListenerId id) { listeners_.erase(id); }

EvalScope& EvalScope::bind(VarId var, double value) {
  if (var >= override_stamp_.size()) {
    // First sight of a new variable universe size: grow to the full table so
    // subsequent binds never reallocate.
    const std::size_t n = std::max<std::size_t>(var + 1, VariableTable::instance().size());
    override_val_.resize(n, 0.0);
    override_stamp_.resize(n, 0);
  }
  override_val_[var] = value;
  override_stamp_[var] = stamp_;
  return *this;
}

double EvalScope::lookup(VarId var) const {
  double v = 0;
  if (override_at(var, v)) return v;
  if (var == elapsed_time_var_id()) return (now_ - epoch_).count_seconds();
  if (registry_ != nullptr) {
    if (const auto r = registry_->get_at(var, now_)) return *r;
  }
  throw UnboundVariableError(var == kInvalidVarId ? std::string_view{"<invalid>"}
                                                  : VariableTable::instance().name(var));
}

bool EvalScope::has(VarId var) const noexcept {
  double v = 0;
  if (override_at(var, v)) return true;
  if (var == elapsed_time_var_id()) return true;
  return registry_ != nullptr && registry_->get_at(var, now_).has_value();
}

double EvalScope::lookup(std::string_view name) const {
  const VarId var = VariableTable::instance().find(name);
  if (var != kInvalidVarId) return lookup(var);
  // Never-interned names can still be the reserved `t` (interning is lazy).
  if (name == kElapsedTimeVar) return (now_ - epoch_).count_seconds();
  throw UnboundVariableError(name);
}

bool EvalScope::has(std::string_view name) const {
  const VarId var = VariableTable::instance().find(name);
  if (var != kInvalidVarId) return has(var);
  return name == kElapsedTimeVar;
}

}  // namespace evps
