// MMOG workload: integration checks of the Section VI-C/VI-D experiment
// harness (scaled down for test speed).
#include <gtest/gtest.h>

#include "workloads/game.hpp"

namespace evps {
namespace {

GameConfig small_config(SystemKind system) {
  GameConfig cfg;
  cfg.system = system;
  cfg.seed = 7;
  cfg.characters = 40;
  cfg.clients = 10;
  cfg.pub_rate = 50.0;
  cfg.duration = SimTime::from_seconds(25.0);
  return cfg;
}

TEST(Game, SingleBrokerDeployment) {
  GameExperiment exp(small_config(SystemKind::kClees));
  exp.run();
  EXPECT_EQ(exp.overlay().brokers().size(), 1u);
  // event source + 10 players.
  EXPECT_EQ(exp.overlay().clients().size(), 11u);
  EXPECT_EQ(exp.server().subscription_count(), 40u);
}

TEST(Game, CharactersStayInsideWorld) {
  GameExperiment exp(small_config(SystemKind::kLees));
  exp.run();
  for (std::size_t i = 0; i < exp.config().characters; ++i) {
    const auto [x, y] = exp.character_position(i, exp.config().duration);
    EXPECT_LE(std::abs(x), exp.config().world_half * 1.01) << i;
    EXPECT_LE(std::abs(y), exp.config().world_half * 1.01) << i;
  }
}

TEST(Game, DeliveriesHappenAndAreSampled) {
  GameExperiment exp(small_config(SystemKind::kLees));
  exp.run();
  EXPECT_GT(exp.delivery_log().total(), 0u);
  const auto& series = exp.deliveries_per_second();
  ASSERT_EQ(series.size(), 25u);
  std::uint64_t total = 0;
  for (const auto s : series) total += s;
  EXPECT_GT(total, 0u);
}

TEST(Game, DeterministicAcrossRuns) {
  GameExperiment a(small_config(SystemKind::kClees));
  GameExperiment b(small_config(SystemKind::kClees));
  a.run();
  b.run();
  EXPECT_EQ(a.delivery_log().delivered, b.delivery_log().delivered);
  EXPECT_EQ(a.subscription_msgs(), b.subscription_msgs());
}

TEST(Game, VesCostsAreMaintenanceDriven) {
  GameExperiment exp(small_config(SystemKind::kVes));
  exp.run();
  const auto& costs = exp.engine_costs();
  EXPECT_GT(costs.evolutions, 0u);
  EXPECT_GT(costs.maintenance.sum(), 0.0);
  EXPECT_EQ(costs.lazy_evaluations, 0u);
}

TEST(Game, LeesCostsArePublicationDriven) {
  GameExperiment exp(small_config(SystemKind::kLees));
  exp.run();
  const auto& costs = exp.engine_costs();
  EXPECT_EQ(costs.evolutions, 0u);
  EXPECT_GT(costs.lazy_evaluations, 0u);
}

TEST(Game, CleesCacheAbsorbsEvaluations) {
  GameExperiment exp(small_config(SystemKind::kClees));
  exp.run();
  const auto& costs = exp.engine_costs();
  EXPECT_GT(costs.cache_hits, 0u);
  EXPECT_GT(costs.cache_misses, 0u);
  // With pub rate >> 1/TT most probes hit the cache.
  EXPECT_GT(costs.cache_hits, costs.cache_misses);
}

TEST(Game, StaticFractionReducesLemeLoad) {
  auto cfg = small_config(SystemKind::kLees);
  cfg.evolving_fraction = 0.5;
  GameExperiment exp(cfg);
  exp.run();
  GameExperiment full(small_config(SystemKind::kLees));
  full.run();
  // Half the characters never enter the LEME.
  EXPECT_LT(exp.engine_costs().lazy_evaluations, full.engine_costs().lazy_evaluations);
  EXPECT_EQ(exp.server().subscription_count(), 40u);  // all still subscribed
}

TEST(Game, BaselineSendsManyMoreSubscriptionMessages) {
  GameExperiment evolving(small_config(SystemKind::kClees));
  GameExperiment baseline(small_config(SystemKind::kResub));
  evolving.run();
  baseline.run();
  // Paper Section VI-D: baseline clients send ~10x more subscription
  // messages (1 s resubscription vs 10 s replacement).
  EXPECT_GT(baseline.subscription_msgs(), evolving.subscription_msgs() * 5);
}

TEST(Game, VisibilityScheduleShape) {
  auto cfg = small_config(SystemKind::kClees);
  cfg.use_visibility = true;
  cfg.duration = SimTime::from_seconds(100.0);
  GameExperiment exp(cfg);
  EXPECT_DOUBLE_EQ(exp.visibility_at(SimTime::zero()), 1.0);
  EXPECT_DOUBLE_EQ(exp.visibility_at(SimTime::from_seconds(50)), 0.5);   // middle
  EXPECT_NEAR(exp.visibility_at(SimTime::from_seconds(79.9)), 1.0, 0.02);  // recovered
  EXPECT_DOUBLE_EQ(exp.visibility_at(SimTime::from_seconds(90)), 0.5);   // final drop
  EXPECT_DOUBLE_EQ(exp.visibility_at(SimTime::from_seconds(100)), 0.5);
}

TEST(Game, VisibilityReducesMatchVolume) {
  // Compare deliveries in the full-visibility phase start vs the 50% middle.
  // Uniform background events and one character per client so that the
  // match volume tracks the covered area (self-hotspot events and
  // per-client dedup would otherwise mask the v^2 shrinkage).
  auto cfg = small_config(SystemKind::kLees);
  cfg.use_visibility = true;
  cfg.characters = 60;
  cfg.clients = 60;
  cfg.hotspot_fraction = 0.0;
  cfg.pub_rate = 400.0;
  cfg.duration = SimTime::from_seconds(60.0);
  GameExperiment exp(cfg);
  exp.run();
  const auto& series = exp.deliveries_per_second();
  ASSERT_EQ(series.size(), 60u);
  double early = 0, middle = 0;
  for (int i = 1; i < 9; ++i) early += static_cast<double>(series[static_cast<std::size_t>(i)]);
  for (int i = 27; i < 35; ++i) middle += static_cast<double>(series[static_cast<std::size_t>(i)]);
  // Visibility ~1.0 early vs ~0.5-0.6 around the middle: area shrinks to
  // ~25-35%, so match volume must drop markedly.
  EXPECT_LT(middle, early * 0.7);
  EXPECT_GT(early, 0.0);
}

TEST(Game, EvolvingTracksVisibilityBlackoutButBaselineDoesNot) {
  auto make = [](SystemKind system) {
    auto cfg = small_config(system);
    cfg.use_visibility = true;
    cfg.characters = 60;
    cfg.clients = 60;
    cfg.hotspot_fraction = 0.0;
    cfg.pub_rate = 400.0;
    cfg.duration = SimTime::from_seconds(80.0);
    cfg.blackout_tail = Duration::seconds(30.0);
    return cfg;
  };
  GameExperiment evolving(make(SystemKind::kLees));
  GameExperiment baseline(make(SystemKind::kResub));
  evolving.run();
  baseline.run();

  const auto tail_sum = [](const std::vector<std::uint64_t>& s, std::size_t from,
                           std::size_t to) {
    double total = 0;
    for (std::size_t i = from; i < to && i < s.size(); ++i) {
      total += static_cast<double>(s[i]);
    }
    return total;
  };
  // Final-drop window (last ~15 s, visibility 0.5, blackout active).
  const double evolving_tail = tail_sum(evolving.deliveries_per_second(), 66, 80);
  const double baseline_tail = tail_sum(baseline.deliveries_per_second(), 66, 80);
  // Mid-recovery window (visibility near 1.0 for both).
  const double evolving_peak = tail_sum(evolving.deliveries_per_second(), 40, 50);
  const double baseline_peak = tail_sum(baseline.deliveries_per_second(), 40, 50);
  ASSERT_GT(evolving_peak, 0.0);
  ASSERT_GT(baseline_peak, 0.0);
  // Evolving subscriptions shrink with the (server-side) visibility drop;
  // the baseline keeps matching at its stale ~100% visibility area.
  const double evolving_ratio = evolving_tail / evolving_peak;
  const double baseline_ratio = baseline_tail / baseline_peak;
  EXPECT_LT(evolving_ratio, baseline_ratio * 0.8);
}

}  // namespace
}  // namespace evps
