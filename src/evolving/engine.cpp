#include "evolving/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "evolving/clees_engine.hpp"
#include "evolving/hybrid_engine.hpp"
#include "evolving/lees_engine.hpp"
#include "evolving/parametric_engine.hpp"
#include "evolving/static_engine.hpp"
#include "evolving/ves_engine.hpp"

namespace evps {

const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kStatic: return "static";
    case EngineKind::kParametric: return "parametric";
    case EngineKind::kVes: return "VES";
    case EngineKind::kLees: return "LEES";
    case EngineKind::kClees: return "CLEES";
    case EngineKind::kHybrid: return "hybrid";
  }
  return "?";
}

bool DedupTable::add(SubscriptionId id, std::string key) {
  auto& members = groups_[key];
  members.push_back(id);
  key_of_.emplace(id, std::move(key));
  return members.size() == 1;
}

DedupTable::RemoveAction DedupTable::remove(SubscriptionId id) {
  RemoveAction action;
  const auto kit = key_of_.find(id);
  if (kit == key_of_.end()) return action;
  action.tracked = true;
  const auto git = groups_.find(kit->second);
  auto& members = git->second;
  if (members.front() == id) {
    action.uninstall = true;
    members.erase(members.begin());
    if (!members.empty()) action.reinstall = members.front();
  } else {
    members.erase(std::remove(members.begin(), members.end(), id), members.end());
  }
  if (members.empty()) groups_.erase(git);
  key_of_.erase(kit);
  return action;
}

std::string static_dedup_key(NodeId dest, const std::vector<Predicate>& preds) {
  std::vector<std::string> parts;
  parts.reserve(preds.size());
  for (const auto& p : preds) {
    std::string s = std::to_string(p.attr_id());
    s += '~';
    s += std::to_string(static_cast<int>(p.op()));
    s += '~';
    const Value& c = p.constant();
    if (c.is_string()) {
      s += 's';
      s += std::to_string(c.as_string().size());
      s += ':';
      s += c.as_string();
    } else if (c.is_int()) {
      s += 'i';
      s += std::to_string(c.as_int());
    } else {
      // Bit pattern: exactness matters (distinct doubles, incl. -0.0 vs 0.0
      // and NaN payloads, must not collide onto one key).
      std::uint64_t bits = 0;
      const double d = *c.numeric();
      std::memcpy(&bits, &d, sizeof(bits));
      s += 'd';
      s += std::to_string(bits);
    }
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  std::string key = std::to_string(dest.value());
  for (const auto& part : parts) {
    key += '|';
    key += part;
  }
  return key;
}

BrokerEngine::BrokerEngine(const EngineConfig& config) : config_(config) {
  auto sharded = std::make_unique<ShardedMatcher>(config.matcher, config.matcher_threads);
  sharded_ = sharded.get();
  matcher_ = std::move(sharded);
}

void BrokerEngine::add(const SubscriptionPtr& sub, NodeId dest, EngineHost& host,
                       bool dest_is_broker) {
  if (!sub) throw std::invalid_argument("cannot install a null subscription");
  if (!sub->id().valid()) throw std::invalid_argument("subscription must carry a valid id");
  const auto [it, inserted] = subs_.emplace(sub->id(), Installed{sub, dest, dest_is_broker});
  if (!inserted) throw std::invalid_argument("duplicate subscription id " + sub->id().str());
  try {
    do_add(it->second, host);
  } catch (...) {
    subs_.erase(it);
    throw;
  }
}

bool BrokerEngine::remove(SubscriptionId id, EngineHost& host) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  do_remove(it->second, host);
  subs_.erase(it);
  return true;
}

bool BrokerEngine::update(SubscriptionId id, const std::vector<std::optional<Value>>& new_values,
                          EngineHost& host) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  const ScopedTimer timer(costs_.maintenance);

  const Installed old_entry = it->second;
  const auto& old_sub = *old_entry.sub;
  if (new_values.size() > old_sub.predicates().size()) {
    throw std::invalid_argument("update carries more values than predicates");
  }
  // Rebuild predicates with replaced operands.
  std::vector<Predicate> preds;
  preds.reserve(old_sub.predicates().size());
  for (std::size_t i = 0; i < old_sub.predicates().size(); ++i) {
    const auto& p = old_sub.predicates()[i];
    if (i < new_values.size() && new_values[i].has_value()) {
      preds.push_back(Predicate{p.attribute(), p.op(), *new_values[i]});
    } else {
      preds.push_back(p);
    }
  }
  Subscription rebuilt{old_sub.id(), old_sub.subscriber(), std::move(preds)};
  rebuilt.set_mei(old_sub.mei());
  rebuilt.set_tt(old_sub.tt());
  rebuilt.set_validity(old_sub.validity());
  rebuilt.set_epoch(old_sub.epoch());

  do_remove(old_entry, host);
  it->second.sub = std::make_shared<const Subscription>(std::move(rebuilt));
  do_add(it->second, host);
  return true;
}

void BrokerEngine::match(const Publication& pub, const VariableSnapshot* snapshot,
                         EngineHost& host, std::vector<NodeId>& destinations) {
  do_match(pub, snapshot, host, destinations);
  std::sort(destinations.begin(), destinations.end());
  destinations.erase(std::unique(destinations.begin(), destinations.end()), destinations.end());
}

void BrokerEngine::match_batch(std::span<const Publication> pubs,
                               const VariableSnapshot* snapshot, EngineHost& host,
                               std::vector<std::vector<NodeId>>& destinations) {
  ptr_scratch_.clear();
  ptr_scratch_.reserve(pubs.size());
  for (const auto& pub : pubs) ptr_scratch_.push_back(&pub);
  match_batch(std::span<const Publication* const>(ptr_scratch_), snapshot, host, destinations);
}

void BrokerEngine::match_batch(std::span<const Publication* const> pubs,
                               const VariableSnapshot* snapshot, EngineHost& host,
                               std::vector<std::vector<NodeId>>& destinations) {
  if (pubs.empty()) return;
  const auto start = std::chrono::steady_clock::now();
  if (destinations.size() < pubs.size()) destinations.resize(pubs.size());
  for (std::size_t i = 0; i < pubs.size(); ++i) destinations[i].clear();
  do_match_batch(pubs, snapshot, host, destinations);
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    auto& dests = destinations[i];
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  }
  const auto end = std::chrono::steady_clock::now();
  batch_counters_.record(pubs.size(), std::chrono::duration<double>(end - start).count());
}

void BrokerEngine::do_match_batch(std::span<const Publication* const> pubs,
                                  const VariableSnapshot* snapshot, EngineHost& host,
                                  std::vector<std::vector<NodeId>>& destinations) {
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    do_match(*pubs[i], snapshot, host, destinations[i]);
  }
}

void BrokerEngine::matcher_only_match_batch(std::span<const Publication* const> pubs,
                                            std::vector<std::vector<NodeId>>& destinations) {
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match_batch(pubs, m1_batch_);
  }
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    for (const auto id : m1_batch_[i]) {
      const Installed* entry = installed_entry(id);
      if (entry != nullptr) destinations[i].push_back(entry->dest);
    }
  }
}

NodeId BrokerEngine::destination_of(SubscriptionId id) const noexcept {
  const auto it = subs_.find(id);
  return it == subs_.end() ? NodeId::invalid() : it->second.dest;
}

SubscriptionPtr BrokerEngine::subscription_of(SubscriptionId id) const noexcept {
  const auto it = subs_.find(id);
  return it == subs_.end() ? nullptr : it->second.sub;
}

void BrokerEngine::export_audit_state(audit::EngineState& out) const {
  out.kind = to_string(config_.kind);
  out.dedup_identical = config_.dedup_identical;
  for (const auto& [id, entry] : subs_) {
    audit::InstalledSub e;
    e.sub = entry.sub;
    e.dest = entry.dest;
    e.dest_is_broker = entry.dest_is_broker;
    if (entry.sub) {
      for (const Predicate& p : entry.sub->predicates()) {
        if (p.is_evolving()) {
          ++e.evolving_preds;
        } else {
          ++e.static_preds;
        }
      }
    }
    out.installed.emplace(id, std::move(e));
  }
  matcher_->collect_ids(out.matcher_ids);
  static_dedup_.for_each_group([&out](const std::string& key,
                                      const std::vector<SubscriptionId>& members) {
    out.dedup_groups.push_back(audit::DedupGroup{key, members, /*lazy=*/false});
  });
}

EvalScope& BrokerEngine::publication_scope(const Publication& pub,
                                           const VariableSnapshot* snapshot,
                                           const VariableRegistry& registry, SimTime now) {
  rebind_publication_scope(scope_, pub, snapshot, registry, now);
  return scope_;
}

void BrokerEngine::rebind_publication_scope(EvalScope& scope, const Publication& pub,
                                            const VariableSnapshot* snapshot,
                                            const VariableRegistry& registry, SimTime now) {
  if (snapshot != nullptr) {
    // Snapshot consistency (Section V-D): evaluate as if at the entry-point
    // broker at the instant the publication entered the system.
    scope.rebind(&registry, pub.entry_time());
    for (const auto& [var, value] : *snapshot) scope.bind(var, value);
  } else {
    scope.rebind(&registry, now);
  }
}

const BrokerEngine::Installed* BrokerEngine::installed_entry(SubscriptionId id) const noexcept {
  const auto it = subs_.find(id);
  assert(it != subs_.end() && "matcher returned an id with no installed subscription");
  return it == subs_.end() ? nullptr : &it->second;
}

void BrokerEngine::matcher_add_static(const Installed& entry) {
  const auto& sub = *entry.sub;
  assert(!sub.is_evolving());
  if (!config_.dedup_identical) {
    matcher_->add(sub.id(), sub.predicates());
    return;
  }
  if (static_dedup_.add(sub.id(), static_dedup_key(entry.dest, sub.predicates()))) {
    matcher_->add(sub.id(), sub.predicates());
  }
}

void BrokerEngine::matcher_remove_static(SubscriptionId id) {
  const DedupTable::RemoveAction action = static_dedup_.remove(id);
  if (!action.tracked) {
    matcher_->remove(id);
    return;
  }
  if (!action.uninstall) return;  // a sharing member left; canonical stays
  matcher_->remove(id);
  if (action.reinstall.valid()) {
    // The canonical id left but the group survives: reinstall under a
    // surviving member so the matcher keeps resolving to a live id.
    const Installed* entry = installed_entry(action.reinstall);
    if (entry != nullptr) matcher_->add(action.reinstall, entry->sub->predicates());
  }
}

Duration BrokerEngine::effective_mei(const Subscription& sub) const noexcept {
  return sub.mei() > Duration::zero() ? sub.mei() : config_.default_mei;
}

Duration BrokerEngine::effective_tt(const Subscription& sub) const noexcept {
  return sub.tt() > Duration::zero() ? sub.tt() : config_.default_tt;
}

BrokerEnginePtr make_engine(const EngineConfig& config) {
  switch (config.kind) {
    case EngineKind::kStatic: return std::make_unique<StaticEngine>(config);
    case EngineKind::kParametric: return std::make_unique<ParametricEngine>(config);
    case EngineKind::kVes: return std::make_unique<VesEngine>(config);
    case EngineKind::kLees: return std::make_unique<LeesEngine>(config);
    case EngineKind::kClees: return std::make_unique<CleesEngine>(config);
    case EngineKind::kHybrid: return std::make_unique<HybridEngine>(config);
  }
  throw std::invalid_argument("unknown engine kind");
}

}  // namespace evps
