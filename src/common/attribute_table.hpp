// Process-wide attribute-name interning.
//
// Content-based matching touches attribute names on every publication and
// every indexed predicate. Interning each distinct name once into a dense
// `AttrId` lets the hot paths replace string-keyed map lookups with flat
// vector indexing: publications cache the ids of their attributes when they
// are built, and every matcher keys its per-attribute index by AttrId.
//
// The table only ever grows (attribute universes are small and stable — the
// paper's workloads use a handful of names), so ids are valid for the life
// of the process and can be stored freely in index structures.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace evps {

/// Dense interned attribute id. Sequential from 0 in interning order.
using AttrId = std::uint32_t;

inline constexpr AttrId kInvalidAttrId = ~AttrId{0};

class AttributeTable {
 public:
  /// The process-wide table shared by publications and all matchers.
  [[nodiscard]] static AttributeTable& instance();

  AttributeTable() = default;
  AttributeTable(const AttributeTable&) = delete;
  AttributeTable& operator=(const AttributeTable&) = delete;

  /// Id of `name`, interning it on first sight. Thread-safe.
  [[nodiscard]] AttrId intern(std::string_view name);

  /// Id of `name`, or kInvalidAttrId if it has never been interned.
  [[nodiscard]] AttrId find(std::string_view name) const;

  /// Name of an interned id. `id` must come from this table.
  [[nodiscard]] const std::string& name(AttrId id) const;

  /// Number of distinct names interned so far.
  [[nodiscard]] std::size_t size() const;

 private:
  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, AttrId, StringHash, std::equal_to<>> ids_;
  std::deque<std::string> names_;  // stable addresses; index == AttrId
};

}  // namespace evps
