// Subscriptions: conjunctions of (possibly evolving) predicates, plus the
// evolution-control metadata from Section IV:
//   * MEI — minimum evaluation interval (VES): minimum lifetime of each
//     materialised version.
//   * TT — time threshold (CLEES): validity of a cached lazy version.
//   * validity — optional lifetime after which the client replaces the
//     subscription entirely (the workloads in Section VI replace evolving
//     subscriptions every 10 s / 60 s).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "expr/variable_registry.hpp"
#include "message/predicate.hpp"
#include "message/publication.hpp"

namespace evps {

class Subscription {
 public:
  Subscription() = default;
  Subscription(SubscriptionId id, ClientId subscriber, std::vector<Predicate> predicates)
      : id_(id), subscriber_(subscriber), predicates_(std::move(predicates)) {}

  [[nodiscard]] SubscriptionId id() const noexcept { return id_; }
  void set_id(SubscriptionId id) noexcept { id_ = id; }

  [[nodiscard]] ClientId subscriber() const noexcept { return subscriber_; }
  void set_subscriber(ClientId c) noexcept { subscriber_ = c; }

  [[nodiscard]] const std::vector<Predicate>& predicates() const noexcept { return predicates_; }
  Subscription& add(Predicate p) {
    predicates_.push_back(std::move(p));
    return *this;
  }

  /// True iff at least one predicate is evolving.
  [[nodiscard]] bool is_evolving() const noexcept;
  /// True iff every predicate is evolving (Section V-B "subscriptions that
  /// contain only evolving ... predicates").
  [[nodiscard]] bool is_fully_evolving() const noexcept;

  [[nodiscard]] std::vector<Predicate> static_predicates() const;
  [[nodiscard]] std::vector<Predicate> evolving_predicates() const;

  /// All evolution variables referenced by any predicate.
  [[nodiscard]] std::set<std::string> variables() const;

  // --- evolution metadata -------------------------------------------------
  [[nodiscard]] Duration mei() const noexcept { return mei_; }
  Subscription& set_mei(Duration d) noexcept {
    mei_ = d;
    return *this;
  }

  [[nodiscard]] Duration tt() const noexcept { return tt_; }
  Subscription& set_tt(Duration d) noexcept {
    tt_ = d;
    return *this;
  }

  /// Zero duration means "no expiry".
  [[nodiscard]] Duration validity() const noexcept { return validity_; }
  Subscription& set_validity(Duration d) noexcept {
    validity_ = d;
    return *this;
  }

  /// Epoch: the instant `t` reads as 0 ("t is initialized to 0 at the time
  /// of subscription"). Stamped once when the subscription enters the
  /// system and carried to every broker.
  [[nodiscard]] SimTime epoch() const noexcept { return epoch_; }
  Subscription& set_epoch(SimTime t) noexcept {
    epoch_ = t;
    return *this;
  }

  // --- evaluation ----------------------------------------------------------
  /// Full conjunctive match: every predicate's attribute must be present in
  /// the publication and satisfied. Evolving predicates evaluate under `env`.
  [[nodiscard]] bool matches(const Publication& pub, const Env& env) const;

  /// Static-only fast path; requires !is_evolving().
  [[nodiscard]] bool matches(const Publication& pub) const;

  /// Non-evolving version of this subscription under `env` (VES/CLEES).
  /// Metadata (id, subscriber, epoch, mei/tt/validity) is preserved.
  [[nodiscard]] Subscription materialize(const Env& env) const;

  /// Convenience: evaluation scope for this subscription at time `now`.
  [[nodiscard]] EvalScope scope(const VariableRegistry* registry, SimTime now) const noexcept {
    return EvalScope{registry, now, epoch_};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  SubscriptionId id_{};
  ClientId subscriber_{};
  std::vector<Predicate> predicates_;
  Duration mei_ = Duration::seconds(1.0);
  Duration tt_ = Duration::seconds(1.0);
  Duration validity_ = Duration::zero();
  SimTime epoch_{};
};

using SubscriptionPtr = std::shared_ptr<const Subscription>;

}  // namespace evps
