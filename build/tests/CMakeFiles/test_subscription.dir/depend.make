# Empty dependencies file for test_subscription.
# This may be replaced when dependencies are built.
