#include "workloads/game.hpp"

#include <cmath>
#include <numbers>

namespace evps {

GameExperiment::GameExperiment(const GameConfig& config)
    : cfg_(config), overlay_(sim_), rng_(config.seed) {
  if (cfg_.clients == 0 || cfg_.characters == 0) {
    throw std::invalid_argument("game needs at least one client and one character");
  }
}

double GameExperiment::visibility_at(SimTime t) const {
  const double total = cfg_.duration.seconds();
  const double tail = std::min(20.0, total / 4.0);
  const double s = std::min(std::max(t.seconds(), 0.0), total);
  if (s >= total - tail) return 0.5;  // final drop
  const double half = total / 2.0;
  if (s <= half) {
    return 1.0 - 0.5 * (s / half);  // 100% -> 50%
  }
  const double recover_span = (total - tail) - half;
  if (recover_span <= 0) return 0.5;
  return 0.5 + 0.5 * ((s - half) / recover_span);  // 50% -> 100%
}

std::pair<double, double> GameExperiment::character_position(std::size_t i, SimTime t) const {
  const Character& ch = characters_.at(i);
  const double dt = (t - ch.epoch).count_seconds();
  return {ch.x + ch.dx * dt, ch.y + ch.dy * dt};
}

void GameExperiment::pick_direction(Character& ch) {
  // Choose a direction whose epoch-end position stays inside the world.
  const double horizon = cfg_.move_epoch.count_seconds();
  for (int attempt = 0; attempt < 32; ++attempt) {
    const double angle = ch.rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double dx = std::cos(angle) * ch.speed;
    const double dy = std::sin(angle) * ch.speed;
    const double ex = ch.x + dx * horizon;
    const double ey = ch.y + dy * horizon;
    if (std::abs(ex) < cfg_.world_half && std::abs(ey) < cfg_.world_half) {
      ch.dx = dx;
      ch.dy = dy;
      return;
    }
  }
  // Pathological corner: head straight back to the origin.
  const double norm = std::hypot(ch.x, ch.y);
  ch.dx = norm > 0 ? -ch.x / norm * ch.speed : ch.speed;
  ch.dy = norm > 0 ? -ch.y / norm * ch.speed : 0.0;
}

Subscription GameExperiment::make_evolving_subscription(const Character& ch,
                                                        SimTime /*now*/) const {
  // Bound form: x in [x0 + dx*t -/+ hw * v], y analogous. Without the
  // visibility experiment the v factor is dropped (v == 1).
  const auto moving = [&](double origin, double velocity) {
    return Expr::add(Expr::constant(origin),
                     Expr::mul(Expr::constant(velocity), Expr::variable("t")));
  };
  const auto bound = [&](double origin, double velocity, double half_extent, bool lower) {
    ExprPtr extent = cfg_.use_visibility
                         ? Expr::mul(Expr::constant(half_extent), Expr::variable("v"))
                         : Expr::constant(half_extent);
    return lower ? Expr::sub(moving(origin, velocity), std::move(extent))
                 : Expr::add(moving(origin, velocity), std::move(extent));
  };
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, bound(ch.x, ch.dx, cfg_.half_width, true)});
  sub.add(Predicate{"x", RelOp::kLe, bound(ch.x, ch.dx, cfg_.half_width, false)});
  sub.add(Predicate{"y", RelOp::kGe, bound(ch.y, ch.dy, cfg_.half_height, true)});
  sub.add(Predicate{"y", RelOp::kLe, bound(ch.y, ch.dy, cfg_.half_height, false)});
  sub.set_mei(cfg_.mei);
  sub.set_tt(cfg_.tt);
  sub.set_validity(cfg_.move_epoch);
  return sub;
}

Subscription GameExperiment::make_static_subscription(const Character& ch, SimTime now,
                                                      double visibility) const {
  const auto [x, y] = character_position(static_cast<std::size_t>(&ch - characters_.data()), now);
  const double v = cfg_.use_visibility ? visibility : 1.0;
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, Value{x - cfg_.half_width * v}});
  sub.add(Predicate{"x", RelOp::kLe, Value{x + cfg_.half_width * v}});
  sub.add(Predicate{"y", RelOp::kGe, Value{y - cfg_.half_height * v}});
  sub.add(Predicate{"y", RelOp::kLe, Value{y + cfg_.half_height * v}});
  return sub;
}

void GameExperiment::start_epoch(std::size_t char_index, SimTime now) {
  Character& ch = characters_[char_index];
  // Advance to the current position, then choose a new direction.
  const auto [x, y] = character_position(char_index, now);
  ch.x = x;
  ch.y = y;
  ch.epoch = now;
  pick_direction(ch);

  Owner& owner = owners_[ch.owner];
  if (uses_evolving_subscriptions(cfg_.system)) {
    if (ch.evolving) {
      const SubscriptionId fresh = owner.client->subscribe(make_evolving_subscription(ch, now));
      if (ch.current_sub.valid()) owner.client->unsubscribe(ch.current_sub);
      ch.current_sub = fresh;
    } else if (!ch.current_sub.valid()) {
      // Static characters subscribe once and keep their subscription.
      ch.current_sub = owner.client->subscribe(make_static_subscription(ch, now, 1.0));
    }
  } else if (!ch.current_sub.valid()) {
    // Baseline systems install here; subsequent tracking happens on the
    // resubscription/update ticks.
    ch.current_sub =
        owner.client->subscribe(make_static_subscription(ch, now, owner.known_visibility));
  }
}

void GameExperiment::build() {
  BrokerConfig broker_cfg;
  broker_cfg.engine.kind = engine_kind_for(cfg_.system);
  broker_cfg.engine.matcher = cfg_.matcher;
  broker_cfg.engine.default_mei = cfg_.mei;
  broker_cfg.engine.default_tt = cfg_.tt;
  broker_cfg.engine.matcher_threads = cfg_.matcher_threads;
  broker_cfg.batch_size = cfg_.batch_size;
  broker_cfg.link_batch_size = cfg_.link_batch_size;
  server_ = &overlay_.add_broker("gameserver", broker_cfg);

  // The event feed is generated by the game server itself: zero latency so
  // the publication entry instant is identical in every system variant.
  event_source_ = &overlay_.add_client("gameevents");
  event_source_->connect(*server_, Duration::zero());

  const Duration link = is_centralized(cfg_.system) ? Duration::zero() : cfg_.client_latency;
  owners_.resize(cfg_.clients);
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    auto& client = overlay_.add_client("player" + std::to_string(c));
    client.connect(*server_, link);
    owners_[c].client = &client;

    const std::size_t owner_index = c;
    client.on_delivery = [this, owner_index](const Publication& pub, SimTime) {
      if (const Value* v = pub.get("weather")) {
        if (const auto value = v->numeric()) owners_[owner_index].known_visibility = *value;
      }
      if (pub.has("x")) ++event_deliveries_;
    };
    if (cfg_.use_visibility && !uses_evolving_subscriptions(cfg_.system)) {
      // Baseline clients must be told the visibility explicitly.
      Subscription weather;
      weather.add(Predicate{"weather", RelOp::kGe, Value{0.0}});
      client.subscribe(std::move(weather));
    }
  }

  characters_.resize(cfg_.characters);
  for (std::size_t i = 0; i < cfg_.characters; ++i) {
    Character& ch = characters_[i];
    ch.owner = i % cfg_.clients;
    ch.rng = rng_.fork(100 + i);
    ch.speed = ch.rng.uniform(cfg_.speed_min, cfg_.speed_max);
    ch.x = ch.rng.uniform(-cfg_.world_half * 0.8, cfg_.world_half * 0.8);
    ch.y = ch.rng.uniform(-cfg_.world_half * 0.8, cfg_.world_half * 0.8);
    // Spread the evolving/static split evenly across any character count:
    // character i is evolving iff the cumulative quota crosses an integer.
    ch.evolving = std::floor(static_cast<double>(i + 1) * cfg_.evolving_fraction) >
                  std::floor(static_cast<double>(i) * cfg_.evolving_fraction);

    // Movement epochs: all characters re-plan every move_epoch, like the
    // paper's "all characters chose independently one direction ... for 10s".
    sim_.at(SimTime::zero(), [this, i]() { start_epoch(i, sim_.now()); });
    sim_.every(SimTime::zero() + cfg_.move_epoch, cfg_.move_epoch, cfg_.duration,
               [this, i](SimTime now) { start_epoch(i, now); });
  }

  // Baseline tracking ticks.
  if (!uses_evolving_subscriptions(cfg_.system)) {
    sim_.every(SimTime::zero() + cfg_.resub_interval, cfg_.resub_interval, cfg_.duration,
               [this](SimTime now) {
                 for (std::size_t i = 0; i < characters_.size(); ++i) {
                   Character& ch = characters_[i];
                   if (!ch.current_sub.valid()) continue;
                   Owner& owner = owners_[ch.owner];
                   if (cfg_.system == SystemKind::kParametric) {
                     const auto [x, y] = character_position(i, now);
                     const double v =
                         cfg_.use_visibility ? owner.known_visibility : 1.0;
                     owner.client->update_subscription(
                         ch.current_sub,
                         {Value{x - cfg_.half_width * v}, Value{x + cfg_.half_width * v},
                          Value{y - cfg_.half_height * v}, Value{y + cfg_.half_height * v}});
                   } else {
                     owner.client->unsubscribe(ch.current_sub);
                     ch.current_sub = owner.client->subscribe(
                         make_static_subscription(ch, now, owner.known_visibility));
                   }
                 }
               });
  }

  schedule_publications();
  if (cfg_.use_visibility) schedule_visibility();
  schedule_delivery_sampler();
}

void GameExperiment::schedule_publications() {
  if (cfg_.pub_rate <= 0) return;
  const Duration period = Duration::seconds(1.0 / cfg_.pub_rate);
  auto pub_rng = std::make_shared<Rng>(rng_.fork(0xeef));
  sim_.every(SimTime::zero() + period, period, cfg_.duration, [this, pub_rng](SimTime now) {
    double x = 0, y = 0;
    if (pub_rng->bernoulli(cfg_.hotspot_fraction)) {
      const auto idx = static_cast<std::size_t>(
          pub_rng->uniform_int(0, static_cast<std::int64_t>(characters_.size()) - 1));
      const auto [cx, cy] = character_position(idx, now);
      x = cx + pub_rng->uniform(-1.0, 1.0);
      y = cy + pub_rng->uniform(-1.0, 1.0);
    } else {
      x = pub_rng->uniform(-cfg_.world_half, cfg_.world_half);
      y = pub_rng->uniform(-cfg_.world_half, cfg_.world_half);
    }
    Publication pub;
    pub.set("x", x);
    pub.set("y", y);
    pub.set("action", pub_rng->bernoulli(0.5) ? "move" : "pickup");
    event_source_->publish(std::move(pub));
  });
}

void GameExperiment::schedule_visibility() {
  sim_.every(SimTime::zero(), cfg_.visibility_step, cfg_.duration, [this](SimTime now) {
    const double v = visibility_at(now);
    server_->set_variable("v", v);
    // Weather notifications to clients, except during the blackout tail.
    if (now + cfg_.blackout_tail < cfg_.duration) {
      Publication weather;
      weather.set("weather", v);
      event_source_->publish(std::move(weather));
    }
  });
}

void GameExperiment::schedule_delivery_sampler() {
  const Duration second = Duration::seconds(1.0);
  sim_.every(SimTime::zero() + second, second, cfg_.duration + Duration::micros(1),
             [this](SimTime) {
               deliveries_per_second_.push_back(event_deliveries_ - last_delivery_total_);
               last_delivery_total_ = event_deliveries_;
             });
}

void GameExperiment::run() {
  if (ran_) throw std::logic_error("GameExperiment::run may only be called once");
  ran_ = true;
  // Seed the visibility variable so evolving subscriptions can evaluate `v`
  // from the very first publication.
  build();
  if (cfg_.use_visibility) server_->set_variable_local("v", 1.0);
  sim_.run_until(cfg_.duration);
}

}  // namespace evps
