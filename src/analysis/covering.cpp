#include "analysis/covering.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/analyzer.hpp"
#include "analysis/relational.hpp"
#include "analysis/verifier.hpp"
#include "expr/program.hpp"

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Largest magnitude at which every int64 converts to double exactly AND no
/// two distinct int64s collide on the same double (2^53). Beyond it, int/int
/// comparisons (exact) and double-space comparisons can disagree, so the
/// ValueSet domain stops being faithful.
constexpr double kMaxExactInt = 9007199254740992.0;

enum class Approx : std::uint8_t { kOuter, kInner };

ValueSet numeric_only(double lo, bool lo_open, double hi, bool hi_open) {
  ValueSet s;
  s.lo = lo;
  s.lo_open = lo_open;
  s.hi = hi;
  s.hi_open = hi_open;
  s.nan = false;
  s.strings = ValueSet::Strings::kNone;
  return s;
}

/// Exact satisfying set of a static predicate, except for the cases the
/// domain cannot express: lexicographic string comparisons and integer
/// constants beyond 2^53 degrade per `approx` (outer widens, inner empties).
ValueSet static_pred_set(RelOp op, const Value& c, Approx approx) {
  if (c.is_string()) {
    switch (op) {
      case RelOp::kEq: {
        ValueSet s = ValueSet::nothing();
        s.strings = ValueSet::Strings::kOne;
        s.str = c.as_string();
        return s;
      }
      case RelOp::kNe: {
        // Numerics and NaN are incomparable with a string: != holds.
        ValueSet s = ValueSet::universe();
        s.excluded_strs.push_back(c.as_string());
        return s;
      }
      default: {
        // Lexicographic range over strings: satisfied only by strings.
        if (approx == Approx::kInner) return ValueSet::nothing();
        ValueSet s = ValueSet::nothing();
        s.strings = ValueSet::Strings::kAll;
        return s;
      }
    }
  }
  const double d = *c.numeric();
  if (std::isnan(d)) {
    // NaN constant: incomparable with everything.
    return op == RelOp::kNe ? ValueSet::universe() : ValueSet::nothing();
  }
  if (c.is_int() && !(std::abs(d) <= kMaxExactInt)) {
    if (approx == Approx::kInner) return ValueSet::nothing();
    const double down = std::nextafter(d, -kInf);
    const double up = std::nextafter(d, kInf);
    switch (op) {
      case RelOp::kLt:
      case RelOp::kLe: return numeric_only(-kInf, false, up, false);
      case RelOp::kGt:
      case RelOp::kGe: return numeric_only(down, false, kInf, false);
      case RelOp::kEq: return numeric_only(down, false, up, false);
      case RelOp::kNe: return ValueSet::universe();
    }
  }
  switch (op) {
    case RelOp::kLt: return numeric_only(-kInf, false, d, /*hi_open=*/true);
    case RelOp::kLe: return numeric_only(-kInf, false, d, /*hi_open=*/false);
    case RelOp::kGt: return numeric_only(d, /*lo_open=*/true, kInf, false);
    case RelOp::kGe: return numeric_only(d, /*lo_open=*/false, kInf, false);
    case RelOp::kEq: return numeric_only(d, false, d, false);
    case RelOp::kNe: {
      ValueSet s = ValueSet::universe();
      s.excluded_nums.push_back(d);
      return s;
    }
  }
  return ValueSet::universe();
}

/// Values that can satisfy `pub OP f` for SOME bound f in the envelope
/// (over-approximation; a bound that evaluates to NaN or hits an unbound
/// variable satisfies nothing except !=, which the formulas absorb).
ValueSet evolving_outer_set(RelOp op, const Interval& iv) {
  switch (op) {
    case RelOp::kLt: return numeric_only(-kInf, false, iv.hi, /*hi_open=*/true);
    case RelOp::kLe: return numeric_only(-kInf, false, iv.hi, /*hi_open=*/false);
    case RelOp::kGt: return numeric_only(iv.lo, /*lo_open=*/true, kInf, false);
    case RelOp::kGe: return numeric_only(iv.lo, /*lo_open=*/false, kInf, false);
    case RelOp::kEq: return numeric_only(iv.lo, false, iv.hi, false);
    case RelOp::kNe: {
      // Incomparables (strings, NaN publication values, NaN bounds) all
      // satisfy !=; a numeric value fails only against itself, which is
      // certain only when the bound is a provable single point.
      ValueSet s = ValueSet::universe();
      if (iv.is_point()) s.excluded_nums.push_back(iv.lo);
      return s;
    }
  }
  return ValueSet::universe();
}

/// Values GUARANTEED to satisfy `pub OP f` for EVERY bound f in the envelope
/// (under-approximation). A maybe-NaN bound can fail every comparison except
/// !=, so it empties all other operators.
ValueSet evolving_inner_set(RelOp op, const Interval& iv) {
  if (op == RelOp::kNe) {
    if (iv.numeric_empty()) return ValueSet::universe();  // always-NaN bound: != always holds
    ValueSet s = ValueSet::universe();
    if (iv.is_point()) {
      s.excluded_nums.push_back(iv.lo);
    } else {
      // Cannot carve [lo, hi] out of the numeric line: keep only the
      // incomparables, which satisfy != against any bound.
      s.lo = 1.0;
      s.hi = 0.0;
    }
    return s;
  }
  if (iv.maybe_nan) return ValueSet::nothing();
  switch (op) {
    case RelOp::kLt: return numeric_only(-kInf, false, iv.lo, /*hi_open=*/true);
    case RelOp::kLe: return numeric_only(-kInf, false, iv.lo, /*hi_open=*/false);
    case RelOp::kGt: return numeric_only(iv.hi, /*lo_open=*/true, kInf, false);
    case RelOp::kGe: return numeric_only(iv.hi, /*lo_open=*/false, kInf, false);
    case RelOp::kEq:
      return iv.is_point() ? numeric_only(iv.lo, false, iv.lo, false) : ValueSet::nothing();
    case RelOp::kNe: break;  // handled above
  }
  return ValueSet::nothing();
}

ValueSet pred_set(const Predicate& pred, const VariableRegistry& registry, Approx approx) {
  if (!pred.is_evolving()) return static_pred_set(pred.op(), pred.constant(), approx);
  ValueSet set = approx == Approx::kOuter ? ValueSet::universe() : ValueSet::nothing();
  try {
    const ExprProgram prog = ExprProgram::compile(*pred.fun());
    if (verify_program(prog).ok) {
      bool guaranteed = true;
      if (approx == Approx::kInner) {
        // The coverer must never fail closed: every referenced variable
        // (other than `t`) must already be set — registry histories are
        // append-only, so it then resolves at every later instant.
        for (const VarId var : prog.variables()) {
          if (var != elapsed_time_var_id() && !registry.get(var).has_value()) {
            guaranteed = false;
            break;
          }
        }
      }
      if (guaranteed) {
        const RegistryVarBounds bounds(registry);
        const Interval iv = eval_interval(prog, bounds);
        set = approx == Approx::kOuter ? evolving_outer_set(pred.op(), iv)
                                       : evolving_inner_set(pred.op(), iv);
      }
    }
  } catch (const std::exception&) {
    // Uncompilable/unverifiable function: keep the degraded default.
  }
  return set;
}

SubscriptionShape build_shape(const Subscription& sub, const VariableRegistry& registry,
                              Approx approx) {
  SubscriptionShape shape;
  for (const Predicate& pred : sub.predicates()) {
    ValueSet set = pred_set(pred, registry, approx);
    const auto [it, inserted] = shape.attrs.try_emplace(pred.attr_id(), std::move(set));
    if (!inserted) it->second.intersect(set);
  }
  return shape;
}

}  // namespace

std::string_view to_string(CoverVerdict v) noexcept {
  switch (v) {
    case CoverVerdict::kCovers: return "covers";
    case CoverVerdict::kUnknown: return "unknown";
  }
  return "?";
}

bool ValueSet::admits_num(double v) const noexcept {
  if (std::isnan(v)) return false;
  if (v < lo || (v == lo && lo_open)) return false;
  if (v > hi || (v == hi && hi_open)) return false;
  return std::find(excluded_nums.begin(), excluded_nums.end(), v) == excluded_nums.end();
}

bool ValueSet::admits_string(const std::string& s) const {
  switch (strings) {
    case Strings::kNone: return false;
    case Strings::kOne: return s == str;
    case Strings::kAll:
      return std::find(excluded_strs.begin(), excluded_strs.end(), s) == excluded_strs.end();
  }
  return false;
}

void ValueSet::intersect(const ValueSet& other) {
  // Strings first: the kOne case consults this set's current exclusions.
  if (strings == Strings::kAll) {
    switch (other.strings) {
      case Strings::kNone:
        strings = Strings::kNone;
        break;
      case Strings::kOne:
        strings = admits_string(other.str) ? Strings::kOne : Strings::kNone;
        str = other.str;
        break;
      case Strings::kAll:
        for (const auto& s : other.excluded_strs) {
          if (std::find(excluded_strs.begin(), excluded_strs.end(), s) == excluded_strs.end()) {
            excluded_strs.push_back(s);
          }
        }
        break;
    }
  } else if (strings == Strings::kOne && !other.admits_string(str)) {
    strings = Strings::kNone;
  }
  if (strings != Strings::kAll) excluded_strs.clear();
  if (strings != Strings::kOne) str.clear();

  if (other.lo > lo || (other.lo == lo && other.lo_open && !lo_open)) {
    lo = other.lo;
    lo_open = other.lo_open;
  }
  if (other.hi < hi || (other.hi == hi && other.hi_open && !hi_open)) {
    hi = other.hi;
    hi_open = other.hi_open;
  }
  nan = nan && other.nan;
  for (const double v : other.excluded_nums) {
    if (std::find(excluded_nums.begin(), excluded_nums.end(), v) == excluded_nums.end()) {
      excluded_nums.push_back(v);
    }
  }
  if (numeric_empty()) excluded_nums.clear();
}

bool subset_of(const ValueSet& outer, const ValueSet& inner) {
  if (outer.nan && !inner.nan) return false;

  switch (outer.strings) {
    case ValueSet::Strings::kNone: break;
    case ValueSet::Strings::kOne:
      if (!inner.admits_string(outer.str)) return false;
      break;
    case ValueSet::Strings::kAll:
      // Outer admits infinitely many strings even after finite exclusions;
      // inner must admit all strings modulo exclusions outer also makes.
      if (inner.strings != ValueSet::Strings::kAll) return false;
      for (const auto& s : inner.excluded_strs) {
        if (outer.admits_string(s)) return false;
      }
      break;
  }

  if (!outer.numeric_empty()) {
    if (outer.lo < inner.lo || outer.hi > inner.hi) return false;
    // Equal endpoint where inner is open and outer closed: the endpoint
    // itself must be unreachable in outer (via its own exclusions).
    if (outer.lo == inner.lo && inner.lo_open && !outer.lo_open && outer.admits_num(outer.lo)) {
      return false;
    }
    if (outer.hi == inner.hi && inner.hi_open && !outer.hi_open && outer.admits_num(outer.hi)) {
      return false;
    }
    for (const double v : inner.excluded_nums) {
      if (outer.admits_num(v)) return false;
    }
  }
  return true;
}

SubscriptionShape outer_shape(const Subscription& sub, const VariableRegistry& registry) {
  return build_shape(sub, registry, Approx::kOuter);
}

ValueSet outer_pred_set(const Predicate& pred, const VariableRegistry& registry) {
  return pred_set(pred, registry, Approx::kOuter);
}

SubscriptionShape inner_shape(const Subscription& sub, const VariableRegistry& registry) {
  return build_shape(sub, registry, Approx::kInner);
}

CoverVerdict covers(const SubscriptionShape& a_inner, const SubscriptionShape& b_outer) {
  for (const auto& [attr, inner] : a_inner.attrs) {
    const auto it = b_outer.attrs.find(attr);
    // B does not force this attribute to be present: a publication without
    // it can match B but never A.
    if (it == b_outer.attrs.end()) return CoverVerdict::kUnknown;
    if (!subset_of(it->second, inner)) return CoverVerdict::kUnknown;
  }
  return CoverVerdict::kCovers;
}

CoverVerdict covers(const Subscription& a, const Subscription& b,
                    const VariableRegistry& registry, bool relational) {
  const SubscriptionShape a_inner = inner_shape(a, registry);
  const SubscriptionShape b_outer = outer_shape(b, registry);
  const CoverVerdict v = covers(a_inner, b_outer);
  if (v == CoverVerdict::kCovers || !relational) return v;
  return covers_relational(a_inner, relational_shape(a, registry), b_outer,
                           relational_shape(b, registry));
}

CoverVerdict covers(const Subscription& a, const Subscription& b,
                    const VariableRegistry& registry) {
  return covers(a, b, registry, /*relational=*/true);
}

}  // namespace evps
