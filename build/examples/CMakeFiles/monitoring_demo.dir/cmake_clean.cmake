file(REMOVE_RECURSE
  "CMakeFiles/monitoring_demo.dir/monitoring_demo.cpp.o"
  "CMakeFiles/monitoring_demo.dir/monitoring_demo.cpp.o.d"
  "monitoring_demo"
  "monitoring_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
