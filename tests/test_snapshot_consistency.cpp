// Snapshot-consistency extension (Section V-D): piggybacking the entry
// broker's variable values onto publications makes LEES/CLEES evaluate as if
// centralised, eliminating staleness across a laggy overlay.
#include <gtest/gtest.h>

#include "broker/overlay.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct SnapshotTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};

  /// Two brokers with a slow link; the variable update reaches the far
  /// broker late, so evaluations there are stale unless snapshots are used.
  std::pair<PubSubClient*, PubSubClient*> build(EngineKind kind, bool snapshots) {
    BrokerConfig cfg;
    cfg.engine.kind = kind;
    cfg.snapshot_consistency = snapshots;
    Broker& entry = overlay.add_broker("entry", cfg);
    Broker& far = overlay.add_broker("far", cfg);
    overlay.connect(entry, far, Duration::millis(500));  // slow inter-broker link
    auto& feed = overlay.add_client("feed");
    auto& sub = overlay.add_client("sub");
    feed.connect(entry, Duration::zero());
    sub.connect(far, Duration::zero());
    return {&feed, &sub};
  }
};

TEST_F(SnapshotTest, VariableUpdateAndPublicationShareLinkFifo) {
  auto [feed, sub] = build(EngineKind::kLees, /*snapshots=*/false);
  sub->subscribe("x <= 10 * v");
  overlay.brokers()[0]->set_variable("v", 0.1);
  sim.run_until(sec(2));  // both brokers have v = 0.1

  // Raise v at the entry broker and publish right after: the update message
  // precedes the publication on the same link (FIFO), so the far broker has
  // already applied v = 1.0 when the publication arrives.
  overlay.brokers()[0]->set_variable("v", 1.0);
  feed->publish("x = 5");  // entry: 5 <= 10 -> match, forwards
  sim.run_until(sec(4));
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(SnapshotTest, SnapshotsRestoreEntryTimeSemantics) {
  auto [feed, sub] = build(EngineKind::kLees, /*snapshots=*/true);
  sub->subscribe("x <= 10 * v");
  overlay.brokers()[0]->set_variable("v", 1.0);
  sim.run_until(sec(2));

  // Local-only change at the far broker (divergent state): without
  // snapshots the far broker would evaluate x<=1 and drop the publication.
  overlay.brokers()[1]->set_variable_local("v", 0.1);
  feed->publish("x = 5");
  sim.run_until(sec(4));
  // With snapshots the entry broker's v=1.0 rides along: delivered.
  ASSERT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(SnapshotTest, WithoutSnapshotsDivergentStateDrops) {
  auto [feed, sub] = build(EngineKind::kLees, /*snapshots=*/false);
  sub->subscribe("x <= 10 * v");
  overlay.brokers()[0]->set_variable("v", 1.0);
  sim.run_until(sec(2));
  overlay.brokers()[1]->set_variable_local("v", 0.1);
  feed->publish("x = 5");
  sim.run_until(sec(4));
  EXPECT_TRUE(sub->deliveries().empty());  // far broker's stale local value wins
}

TEST_F(SnapshotTest, SnapshotsWorkWithClees) {
  auto [feed, sub] = build(EngineKind::kClees, /*snapshots=*/true);
  sub->subscribe("[tt=100] x <= 10 * v");
  overlay.brokers()[0]->set_variable("v", 1.0);
  sim.run_until(sec(2));
  overlay.brokers()[1]->set_variable_local("v", 0.1);
  feed->publish("x = 5");
  sim.run_until(sec(4));
  ASSERT_EQ(sub->deliveries().size(), 1u);  // snapshot bypasses the cache
}

TEST_F(SnapshotTest, ElapsedTimeAnchoredAtEntry) {
  auto [feed, sub] = build(EngineKind::kLees, /*snapshots=*/true);
  // Window [t-0.1, t+0.1] around elapsed time: tight enough that the 500 ms
  // link delay alone would miss without snapshot anchoring.
  sub->subscribe("x >= t - 0.1; x <= t + 0.1");
  sim.run_until(sec(2));
  feed->publish("x = 2.0");  // entry time ~2.0 (zero-latency client link)
  sim.run_until(sec(4));
  // With snapshots, the far broker evaluates at the entry time (t=2.0), so
  // x=2.0 falls inside [1.9, 2.1] even though it arrives at t=2.5.
  ASSERT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(SnapshotTest, WithoutSnapshotsElapsedTimeDriftsAcrossHops) {
  auto [feed, sub] = build(EngineKind::kLees, /*snapshots=*/false);
  sub->subscribe("x >= t - 0.1; x <= t + 0.1");
  sim.run_until(sec(2));
  feed->publish("x = 2.0");
  sim.run_until(sec(4));
  // The far broker evaluates at arrival (t=2.5): x=2.0 outside [2.4, 2.6].
  EXPECT_TRUE(sub->deliveries().empty());
}

}  // namespace
}  // namespace evps
