// Randomized round-trip properties for the text codec and expression
// printer: serialise -> parse must reproduce structurally equal objects.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "expr/parser.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

ExprPtr random_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.3)) {
    if (rng.bernoulli(0.5)) {
      // Constants kept integral-ish so printing is exact.
      return Expr::constant(static_cast<double>(rng.uniform_int(-1000, 1000)) / 4.0);
    }
    const char* names[] = {"t", "v", "mode", "outgoingBw", "stockLevel"};
    return Expr::variable(names[rng.uniform_int(0, 4)]);
  }
  switch (rng.uniform_int(0, 3)) {
    case 0: {
      const auto op = static_cast<BinaryOp>(rng.uniform_int(0, 5));
      return Expr::binary(op, random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    }
    case 1: {
      const auto op = static_cast<UnaryOp>(rng.uniform_int(0, 7));
      return Expr::unary(op, random_expr(rng, depth - 1));
    }
    case 2: {
      const auto fn = rng.bernoulli(0.5) ? CallFn::kMin : CallFn::kMax;
      std::vector<ExprPtr> args;
      const auto n = rng.uniform_int(1, 3);
      for (int i = 0; i < n; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(fn, std::move(args));
    }
    default:
      return Expr::call(CallFn::kClamp, {random_expr(rng, depth - 1),
                                         random_expr(rng, depth - 1),
                                         random_expr(rng, depth - 1)});
  }
}

Value random_value(Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return Value{rng.uniform_int(-100000, 100000)};
    case 1: return Value{static_cast<double>(rng.uniform_int(-100000, 100000)) / 8.0};
    default: {
      std::string s;
      const auto len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
      }
      return Value{std::move(s)};
    }
  }
}

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, ExpressionPrintParse) {
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    const ExprPtr original = random_expr(rng, 4);
    // Constant folding in the parser may simplify constant subtrees, so
    // compare by evaluation under a fixed environment instead of structure
    // when the tree contains constants; structural equality must hold for
    // the reparse of the reparse (a fixpoint).
    const ExprPtr once = parse_expr(original->to_string());
    const ExprPtr twice = parse_expr(once->to_string());
    ASSERT_TRUE(once->equals(*twice)) << original->to_string();

    const MapEnv env{{"t", 1.25}, {"v", 0.5}, {"mode", 1.0}, {"outgoingBw", 0.25},
                     {"stockLevel", 0.75}};
    const double a = original->eval(env);
    const double b = once->eval(env);
    if (std::isnan(a)) {
      ASSERT_TRUE(std::isnan(b)) << original->to_string();
    } else if (std::isfinite(a)) {
      ASSERT_NEAR(a, b, std::abs(a) * 1e-9 + 1e-9) << original->to_string();
    } else {
      ASSERT_EQ(a, b) << original->to_string();
    }
  }
}

TEST_P(CodecRoundTrip, PublicationSerializeParse) {
  Rng rng{GetParam() ^ 0xabcdef};
  for (int i = 0; i < 200; ++i) {
    Publication pub;
    const auto n = rng.uniform_int(0, 6);
    for (int a = 0; a < n; ++a) {
      pub.set("attr" + std::to_string(rng.uniform_int(0, 9)), random_value(rng));
    }
    const Publication reparsed = parse_publication(serialize(pub));
    ASSERT_EQ(reparsed, pub) << serialize(pub);
    // Type preservation, not just value equality.
    for (const auto& [name, value] : pub.attributes()) {
      const Value* r = reparsed.get(name);
      ASSERT_NE(r, nullptr);
      ASSERT_EQ(r->is_string(), value.is_string()) << serialize(pub);
      ASSERT_EQ(r->is_int(), value.is_int()) << serialize(pub);
    }
  }
}

TEST_P(CodecRoundTrip, SubscriptionSerializeParse) {
  Rng rng{GetParam() ^ 0x5eed5};
  for (int i = 0; i < 100; ++i) {
    Subscription sub;
    const auto n = rng.uniform_int(1, 5);
    for (int k = 0; k < n; ++k) {
      const auto op = static_cast<RelOp>(rng.uniform_int(0, 5));
      const std::string attr = "a" + std::to_string(rng.uniform_int(0, 5));
      if (rng.bernoulli(0.4)) {
        sub.add(Predicate{attr, op, random_expr(rng, 3)});
      } else {
        sub.add(Predicate{attr, op, random_value(rng)});
      }
    }
    sub.set_mei(Duration::millis(rng.uniform_int(1, 5000)));
    sub.set_tt(Duration::millis(rng.uniform_int(1, 5000)));
    sub.set_validity(Duration::millis(rng.uniform_int(0, 60000)));

    const Subscription once = parse_subscription(serialize(sub));
    const Subscription twice = parse_subscription(serialize(once));
    ASSERT_EQ(once.predicates().size(), sub.predicates().size()) << serialize(sub);
    // Predicate fixpoint (constant folding may alter the first parse).
    for (std::size_t k = 0; k < once.predicates().size(); ++k) {
      ASSERT_EQ(once.predicates()[k], twice.predicates()[k]) << serialize(sub);
      ASSERT_EQ(once.predicates()[k].attribute(), sub.predicates()[k].attribute());
      ASSERT_EQ(once.predicates()[k].op(), sub.predicates()[k].op());
    }
    // Durations round-trip through the option brackets (microsecond fuzz
    // from decimal printing is acceptable: compare at millisecond grain).
    EXPECT_NEAR(once.mei().count_seconds(), sub.mei().count_seconds(), 1e-3);
    EXPECT_NEAR(once.tt().count_seconds(), sub.tt().count_seconds(), 1e-3);
    EXPECT_NEAR(once.validity().count_seconds(), sub.validity().count_seconds(), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace evps
