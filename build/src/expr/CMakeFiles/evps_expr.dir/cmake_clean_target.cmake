file(REMOVE_RECURSE
  "libevps_expr.a"
)
