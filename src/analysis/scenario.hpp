// Scenario-file front end shared by evps-lint, evps-audit and the fuzz
// harnesses.
//
// A scenario is a line-oriented description of variables, advertisements
// and subscriptions ('#' starts a comment):
//
//   var <name> in [<lo>, <hi>]               declare an evolution-variable range
//   var <name> = <value> in [<lo>, <hi>]     ... and set its current value
//   adv <pred> [; <pred>]...                 an advertisement (codec predicates)
//   sub <subscription>                       a subscription (codec text language)
//
// parse_scenario is purely syntactic: it tokenises every line into a
// ScenarioDirective and never touches a VariableRegistry or analyzer, so
// callers keep full control over *semantic* order-sensitivity (evps-lint
// analyzes each sub against only the vars/ads that appeared above it) and
// the parser is safe to fuzz in isolation. Lines that fail to parse become
// kError directives carrying the codec's caret location instead of
// aborting the whole file.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "message/subscription.hpp"

namespace evps {

struct ScenarioDirective {
  enum class Kind : std::uint8_t { kVar, kAdv, kSub, kError };

  Kind kind = Kind::kError;
  int line_no = 0;        ///< 1-based source line
  std::string line;       ///< full source text (caret diagnostics)
  std::size_t body_col = 0;  ///< column where the directive body starts
  std::string body;       ///< directive body as written

  // kVar
  std::string var_name;
  bool var_has_value = false;
  double var_value = 0.0;
  double var_lo = 0.0;
  double var_hi = 0.0;

  // kAdv / kSub — the parsed predicate list lives in `sub` for both (the
  // advertisement grammar reuses the subscription predicate grammar).
  Subscription sub;

  // kError — offset is relative to `body` (column body_col + error_offset).
  std::size_t error_offset = 0;
  std::string error_token;
  std::string error_message;
};

struct Scenario {
  std::vector<ScenarioDirective> directives;
};

/// Parse scenario text. Never throws; malformed lines surface as kError
/// directives in source order, interleaved with the well-formed ones.
[[nodiscard]] Scenario parse_scenario(std::string_view text);

}  // namespace evps
