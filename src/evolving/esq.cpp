#include "evolving/esq.hpp"

namespace evps {

void EvolvingSubscriptionQueue::push(SubscriptionId id, SimTime due) {
  const std::uint64_t gen = next_generation_++;
  live_[id] = gen;  // invalidates any previous entry for this id
  heap_.push(Entry{due, gen, id});
}

bool EvolvingSubscriptionQueue::remove(SubscriptionId id) { return live_.erase(id) > 0; }

void EvolvingSubscriptionQueue::drop_stale() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    const auto it = live_.find(top.id);
    if (it != live_.end() && it->second == top.generation) return;
    heap_.pop();
  }
}

std::optional<SimTime> EvolvingSubscriptionQueue::next_due() const {
  drop_stale();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().due;
}

void EvolvingSubscriptionQueue::pop_due(SimTime now, std::vector<SubscriptionId>& out) {
  for (;;) {
    drop_stale();
    if (heap_.empty() || heap_.top().due > now) return;
    const Entry top = heap_.top();
    heap_.pop();
    live_.erase(top.id);
    out.push_back(top.id);
  }
}

}  // namespace evps
