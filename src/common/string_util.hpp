// Small string helpers shared across the message codec and workload parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace evps {

/// Split `text` on `sep`, honouring single-quoted segments (a separator
/// inside '...' does not split). Empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split_quoted(std::string_view text, char sep);

/// Plain split on a separator character. Empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace evps
