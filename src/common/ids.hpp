// Strongly-typed identifiers used across the system.
//
// Every entity in the pub/sub network (brokers, clients, subscriptions,
// messages) is identified by a distinct ID type so that, e.g., a
// SubscriptionId cannot be accidentally passed where a BrokerId is expected.
#pragma once

#include <atomic>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace evps {

/// CRTP-free strong ID wrapper. `Tag` makes each instantiation a distinct
/// type; the underlying representation is a 64-bit integer.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(std::uint64_t v) noexcept : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

  [[nodiscard]] std::string str() const {
    return std::string(Tag::prefix()) + std::to_string(value_);
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  static constexpr StrongId invalid() noexcept { return StrongId{kInvalid}; }

 private:
  std::uint64_t value_ = kInvalid;
};

struct BrokerTag { static constexpr const char* prefix() { return "B"; } };
struct ClientTag { static constexpr const char* prefix() { return "C"; } };
struct SubscriptionTag { static constexpr const char* prefix() { return "S"; } };
struct MessageTag { static constexpr const char* prefix() { return "M"; } };
struct NodeTag { static constexpr const char* prefix() { return "N"; } };

using BrokerId = StrongId<BrokerTag>;
using ClientId = StrongId<ClientTag>;
using SubscriptionId = StrongId<SubscriptionTag>;
using MessageId = StrongId<MessageTag>;
/// Simulator-level node id (a broker or a client endpoint).
using NodeId = StrongId<NodeTag>;

/// Thread-safe monotonically increasing ID source.
template <typename Id>
class IdGenerator {
 public:
  constexpr IdGenerator() noexcept = default;
  constexpr explicit IdGenerator(std::uint64_t first) noexcept : next_(first) {}

  [[nodiscard]] Id next() noexcept { return Id{next_.fetch_add(1, std::memory_order_relaxed)}; }

  void reset(std::uint64_t first = 0) noexcept { next_.store(first, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace evps

namespace std {
template <typename Tag>
struct hash<evps::StrongId<Tag>> {
  size_t operator()(evps::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
