file(REMOVE_RECURSE
  "CMakeFiles/test_clees.dir/test_clees.cpp.o"
  "CMakeFiles/test_clees.dir/test_clees.cpp.o.d"
  "test_clees"
  "test_clees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
