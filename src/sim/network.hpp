// Simulated network: nodes connected by point-to-point links with latency.
//
// Messages sent over a link are delivered to the destination node's
// on_message handler after the link latency elapses. Delivery order per link
// is FIFO (equal-latency messages keep send order via the simulator's stable
// event ordering).
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "message/messages.hpp"
#include "sim/simulator.hpp"

namespace evps {

/// Anything attachable to the network: brokers and client endpoints.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;

  virtual void on_message(const Envelope& env) = 0;

  [[nodiscard]] NodeId node_id() const noexcept { return node_id_; }
  [[nodiscard]] virtual std::string name() const { return node_id_.str(); }

 private:
  friend class Network;
  NodeId node_id_{};
};

class Network {
 public:
  /// Observes every message at delivery time (metrics taps).
  using Tap = std::function<void(const Envelope&, SimTime delivered_at)>;

  explicit Network(Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a node. The node must outlive the network. Returns its id.
  NodeId attach(NetworkNode& node);

  /// Create a bidirectional link with symmetric latency. Re-connecting an
  /// existing pair updates the latency.
  void connect(NodeId a, NodeId b, Duration latency);

  [[nodiscard]] bool connected(NodeId a, NodeId b) const noexcept;
  [[nodiscard]] Duration latency(NodeId a, NodeId b) const;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

  /// Send `msg` from `from` to `to`; the nodes must be linked. Returns the
  /// assigned message id. Delivery is scheduled after the link latency.
  MessageId send(NodeId from, NodeId to, Message msg);

  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  Simulator& sim_;
  std::vector<NetworkNode*> nodes_;
  std::map<std::pair<NodeId, NodeId>, Duration> links_;
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
  std::vector<Tap> taps_;
  IdGenerator<MessageId> message_ids_;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace evps
