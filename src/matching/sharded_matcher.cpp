#include "matching/sharded_matcher.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/thread_pool.hpp"

namespace evps {

std::size_t default_matcher_shards() {
  static const std::size_t cached = [] {
    // Read once before any worker thread exists; nothing in-process calls
    // setenv, so the lone getenv is benign.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("EVPS_MATCHER_THREADS");
    if (env == nullptr || *env == '\0') return std::size_t{1};
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || v < 1) return std::size_t{1};
    return std::min<std::size_t>(static_cast<std::size_t>(v), 64);
  }();
  return cached;
}

ShardedMatcher::ShardedMatcher(MatcherKind kind, std::size_t shards) {
  if (shards == 0) shards = default_matcher_shards();
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) shards_.push_back(make_matcher(kind));
  scratch_.resize(shards);
}

std::size_t ShardedMatcher::shard_of(SubscriptionId id, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  // fmix64 finaliser (MurmurHash3): full avalanche, so sequential ids — the
  // common allocation pattern — spread uniformly instead of striping.
  std::uint64_t x = id.value();
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x % shards);
}

void ShardedMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  shards_[shard_of(id)]->add(id, preds);
}

void ShardedMatcher::add_batch(std::vector<MatcherBatchEntry> batch) {
  if (shards_.size() == 1) {
    shards_[0]->add_batch(std::move(batch));
    return;
  }
  // Redistribute by ownership (entries moved, not copied) so each shard gets
  // one bulk merge over its own subset.
  std::vector<std::vector<MatcherBatchEntry>> per_shard(shards_.size());
  for (auto& entry : batch) per_shard[shard_of(entry.id)].push_back(std::move(entry));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!per_shard[s].empty()) shards_[s]->add_batch(std::move(per_shard[s]));
  }
}

bool ShardedMatcher::remove(SubscriptionId id) { return shards_[shard_of(id)]->remove(id); }

bool ShardedMatcher::contains(SubscriptionId id) const {
  return shards_[shard_of(id)]->contains(id);
}

std::size_t ShardedMatcher::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->size();
  return total;
}

std::vector<std::size_t> ShardedMatcher::shard_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& s : shards_) sizes.push_back(s->size());
  return sizes;
}

void ShardedMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (shards_.size() == 1) {
    shards_[0]->match(pub, out);
    return;
  }
  auto task = [&](std::size_t s) {
    auto& hits = scratch_[s].hits;
    if (hits.empty()) hits.resize(1);
    hits[0].clear();
    shards_[s]->match(pub, hits[0]);
  };
  ThreadPool::shared().run_indexed(shards_.size(), task);

  // Deterministic merge: concatenate the per-shard ascending runs and sort
  // the appended region. The result is the ascending-id union — identical to
  // a single unsharded matcher's output for any K and any schedule.
  const std::size_t base = out.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& hits = scratch_[s].hits[0];
    out.insert(out.end(), hits.begin(), hits.end());
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
}

void ShardedMatcher::match_batch(std::span<const Publication* const> pubs,
                                 std::vector<std::vector<SubscriptionId>>& out) const {
  if (out.size() < pubs.size()) out.resize(pubs.size());
  if (shards_.size() == 1) {
    shards_[0]->match_batch(pubs, out);
    return;
  }
  // One fork/join for the whole batch: task s matches every publication
  // against shard s into per-(shard, publication) scratch.
  auto task = [&](std::size_t s) {
    auto& hits = scratch_[s].hits;
    if (hits.size() < pubs.size()) hits.resize(pubs.size());
    const Matcher& shard = *shards_[s];
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      hits[i].clear();
      shard.match(*pubs[i], hits[i]);
    }
  };
  ThreadPool::shared().run_indexed(shards_.size(), task);

  for (std::size_t i = 0; i < pubs.size(); ++i) {
    auto& merged = out[i];
    merged.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& hits = scratch_[s].hits[i];
      merged.insert(merged.end(), hits.begin(), hits.end());
    }
    std::sort(merged.begin(), merged.end());
  }
}

}  // namespace evps
