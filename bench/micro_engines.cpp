// Micro-benchmarks: per-publication match cost and per-evolution maintenance
// cost of the three evolving engine designs.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "evolving/engine.hpp"
#include "evolving/ves_engine.hpp"
#include "gbench_main.hpp"

namespace {

using namespace evps;

class BenchHost final : public EngineHost {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  void schedule(Duration delay, std::function<void()> fn) override {
    timers_.emplace_back(now_ + delay, std::move(fn));
  }
  [[nodiscard]] VariableRegistry& variables() override { return registry_; }

  void advance_to(SimTime t) {
    now_ = t;
    for (std::size_t i = 0; i < timers_.size(); ++i) {
      if (timers_[i].first <= now_) {
        auto fn = std::move(timers_[i].second);
        timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        fn();
      }
    }
  }

 private:
  SimTime now_ = SimTime::zero();
  VariableRegistry registry_;
  std::vector<std::pair<SimTime, std::function<void()>>> timers_;
};

SubscriptionPtr aoi_subscription(std::uint64_t id, Rng& rng) {
  const double x = rng.uniform(-100.0, 100.0);
  const double y = rng.uniform(-100.0, 100.0);
  const double dx = rng.uniform(-2, 2);
  const double dy = rng.uniform(-2, 2);
  const auto moving = [](double origin, double velocity) {
    return Expr::add(Expr::constant(origin),
                     Expr::mul(Expr::constant(velocity), Expr::variable("t")));
  };
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, Expr::sub(moving(x, dx), Expr::constant(3.0))});
  sub.add(Predicate{"x", RelOp::kLe, Expr::add(moving(x, dx), Expr::constant(3.0))});
  sub.add(Predicate{"y", RelOp::kGe, Expr::sub(moving(y, dy), Expr::constant(2.0))});
  sub.add(Predicate{"y", RelOp::kLe, Expr::add(moving(y, dy), Expr::constant(2.0))});
  sub.set_id(SubscriptionId{id});
  sub.set_epoch(SimTime::zero());
  sub.set_mei(Duration::seconds(3600));  // timer noise off for match benches
  sub.set_tt(Duration::seconds(1));
  return std::make_shared<const Subscription>(std::move(sub));
}

void engine_match_bench(benchmark::State& state, EngineKind kind) {
  BenchHost host;
  EngineConfig cfg;
  cfg.kind = kind;
  const auto engine = make_engine(cfg);
  Rng rng{7};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    engine->add(aoi_subscription(i + 1, rng), NodeId{i % 100}, host);
  }
  std::vector<NodeId> dests;
  std::int64_t tick = 0;
  for (auto _ : state) {
    host.advance_to(SimTime::from_micros(tick += 100));
    Publication pub;
    pub.set("x", rng.uniform(-100.0, 100.0));
    pub.set("y", rng.uniform(-100.0, 100.0));
    dests.clear();
    engine->match(pub, nullptr, host, dests);
    benchmark::DoNotOptimize(dests.size());
  }
}

void BM_VesMatch(benchmark::State& state) { engine_match_bench(state, EngineKind::kVes); }
void BM_LeesMatch(benchmark::State& state) { engine_match_bench(state, EngineKind::kLees); }
void BM_CleesMatch(benchmark::State& state) { engine_match_bench(state, EngineKind::kClees); }
BENCHMARK(BM_VesMatch)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);
BENCHMARK(BM_LeesMatch)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);
BENCHMARK(BM_CleesMatch)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);

void engine_sharded_match_bench(benchmark::State& state, EngineKind kind) {
  // Args: {subscriptions, matcher shards}. Same workload as the plain match
  // bench; K=1 is bit-identical to it, higher K adds the fork/join (and, on
  // hosts with free cores, the parallel-section win).
  BenchHost host;
  EngineConfig cfg;
  cfg.kind = kind;
  cfg.matcher_threads = static_cast<std::size_t>(state.range(1));
  const auto engine = make_engine(cfg);
  Rng rng{7};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    engine->add(aoi_subscription(i + 1, rng), NodeId{i % 100}, host);
  }
  std::vector<NodeId> dests;
  std::int64_t tick = 0;
  for (auto _ : state) {
    host.advance_to(SimTime::from_micros(tick += 100));
    Publication pub;
    pub.set("x", rng.uniform(-100.0, 100.0));
    pub.set("y", rng.uniform(-100.0, 100.0));
    dests.clear();
    engine->match(pub, nullptr, host, dests);
    benchmark::DoNotOptimize(dests.size());
  }
}

void BM_VesShardedMatch(benchmark::State& state) {
  engine_sharded_match_bench(state, EngineKind::kVes);
}
void BM_LeesShardedMatch(benchmark::State& state) {
  engine_sharded_match_bench(state, EngineKind::kLees);
}
void BM_CleesShardedMatch(benchmark::State& state) {
  engine_sharded_match_bench(state, EngineKind::kClees);
}
BENCHMARK(BM_VesShardedMatch)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});
BENCHMARK(BM_LeesShardedMatch)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});
BENCHMARK(BM_CleesShardedMatch)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});

void engine_batch_match_bench(benchmark::State& state, EngineKind kind) {
  // Args: {subscriptions, matcher shards, batch size}. One engine-level
  // match_batch() per iteration; items processed = publications.
  BenchHost host;
  EngineConfig cfg;
  cfg.kind = kind;
  cfg.matcher_threads = static_cast<std::size_t>(state.range(1));
  const auto engine = make_engine(cfg);
  Rng rng{7};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    engine->add(aoi_subscription(i + 1, rng), NodeId{i % 100}, host);
  }
  const auto batch = static_cast<std::size_t>(state.range(2));
  std::vector<Publication> pubs(batch);
  std::vector<std::vector<NodeId>> dests;
  std::int64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    host.advance_to(SimTime::from_micros(tick += 100));
    for (auto& pub : pubs) {
      pub = Publication{};
      pub.set("x", rng.uniform(-100.0, 100.0));
      pub.set("y", rng.uniform(-100.0, 100.0));
      pub.set_entry_time(host.now());
    }
    state.ResumeTiming();
    engine->match_batch(pubs, nullptr, host, dests);
    benchmark::DoNotOptimize(dests.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}

void BM_VesMatchBatch(benchmark::State& state) {
  engine_batch_match_bench(state, EngineKind::kVes);
}
void BM_LeesMatchBatch(benchmark::State& state) {
  engine_batch_match_bench(state, EngineKind::kLees);
}
BENCHMARK(BM_VesMatchBatch)
    ->Args({10000, 4, 1})
    ->Args({10000, 4, 8})
    ->Args({10000, 4, 32})
    ->Args({10000, 1, 8});
BENCHMARK(BM_LeesMatchBatch)
    ->Args({10000, 4, 1})
    ->Args({10000, 4, 8})
    ->Args({10000, 4, 32})
    ->Args({10000, 1, 8});

void BM_VesEvolutionRound(benchmark::State& state) {
  // One full evolution round (every subscription re-materialised) with the
  // matcher holding `n` subscriptions — the Figure 9 maintenance cost.
  BenchHost host;
  EngineConfig cfg;
  cfg.kind = EngineKind::kVes;
  VesEngine engine{cfg};
  Rng rng{9};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    auto sub = aoi_subscription(i + 1, rng);
    auto mutable_sub = std::make_shared<Subscription>(*sub);
    mutable_sub->set_mei(Duration::seconds(1));
    engine.add(std::shared_ptr<const Subscription>(std::move(mutable_sub)), NodeId{i % 100},
               host);
  }
  std::int64_t seconds = 0;
  for (auto _ : state) {
    host.advance_to(SimTime::from_seconds(static_cast<double>(++seconds)));
    benchmark::DoNotOptimize(engine.costs().evolutions);
  }
  state.counters["evolutions"] = static_cast<double>(engine.costs().evolutions);
}
BENCHMARK(BM_VesEvolutionRound)->Arg(100)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return evps_bench::run(argc, argv, "BENCH_engines.json"); }
