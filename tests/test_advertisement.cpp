#include "message/advertisement.hpp"

#include <gtest/gtest.h>

#include "expr/parser.hpp"

namespace evps {
namespace {

Advertisement price_advert(double lo, double hi, const char* symbol = nullptr) {
  Advertisement adv{MessageId{1}, ClientId{1}, {}};
  if (symbol != nullptr) adv.add(Predicate{"symbol", RelOp::kEq, Value{symbol}});
  adv.add(Predicate{"price", RelOp::kGe, Value{lo}});
  adv.add(Predicate{"price", RelOp::kLe, Value{hi}});
  return adv;
}

Subscription price_sub(double lo, double hi, const char* symbol = nullptr) {
  Subscription sub;
  if (symbol != nullptr) sub.add(Predicate{"symbol", RelOp::kEq, Value{symbol}});
  sub.add(Predicate{"price", RelOp::kGe, Value{lo}});
  sub.add(Predicate{"price", RelOp::kLe, Value{hi}});
  return sub;
}

TEST(Advertisement, CoversRequiresAdvertisedAttributes) {
  const Advertisement adv = price_advert(10, 20, "IBM");
  Publication in_range{{"symbol", Value{"IBM"}}, {"price", Value{15.0}}};
  Publication out_of_range{{"symbol", Value{"IBM"}}, {"price", Value{25.0}}};
  Publication missing_price{{"symbol", Value{"IBM"}}};
  EXPECT_TRUE(adv.covers(in_range));
  EXPECT_FALSE(adv.covers(out_of_range));
  EXPECT_FALSE(adv.covers(missing_price));
}

TEST(Advertisement, CoversIgnoresExtraPubAttributes) {
  const Advertisement adv = price_advert(10, 20);
  Publication pub{{"price", Value{12.0}}, {"volume", Value{1000}}};
  EXPECT_TRUE(adv.covers(pub));
}

TEST(Advertisement, IntersectsOverlappingRanges) {
  const Advertisement adv = price_advert(10, 20);
  EXPECT_TRUE(adv.intersects(price_sub(15, 25)));
  EXPECT_TRUE(adv.intersects(price_sub(20, 30)));   // touching at closed bound
  EXPECT_FALSE(adv.intersects(price_sub(21, 30)));  // disjoint
  EXPECT_FALSE(adv.intersects(price_sub(1, 9)));
}

TEST(Advertisement, IntersectsOpenBoundary) {
  Advertisement adv{MessageId{1}, ClientId{1}, {}};
  adv.add(Predicate{"price", RelOp::kLt, Value{10}});
  Subscription sub;
  sub.add(Predicate{"price", RelOp::kGe, Value{10}});
  EXPECT_FALSE(adv.intersects(sub));  // (.., 10) vs [10, ..) do not meet
  Subscription sub2;
  sub2.add(Predicate{"price", RelOp::kGt, Value{9}});
  EXPECT_TRUE(adv.intersects(sub2));  // (9, 10) non-empty
}

TEST(Advertisement, StringEqualityDisjointness) {
  const Advertisement adv = price_advert(0, 100, "IBM");
  EXPECT_TRUE(adv.intersects(price_sub(10, 20, "IBM")));
  EXPECT_FALSE(adv.intersects(price_sub(10, 20, "MSFT")));
  // Subscription without a symbol constraint still intersects.
  EXPECT_TRUE(adv.intersects(price_sub(10, 20)));
}

TEST(Advertisement, UnrelatedAttributesCannotDisjoin) {
  const Advertisement adv = price_advert(10, 20);
  Subscription sub;
  sub.add(Predicate{"volume", RelOp::kGt, Value{1'000'000}});
  EXPECT_TRUE(adv.intersects(sub));  // conservative: no common attribute
}

TEST(Advertisement, EvolvingPredicatesAreUnconstrained) {
  const Advertisement adv = price_advert(10, 20);
  Subscription sub;
  sub.add(Predicate{"price", RelOp::kGe, parse_expr("1000 + t")});  // evolving
  // Even though the function currently evaluates outside the advert range,
  // evolving predicates are conservatively treated as unconstrained.
  EXPECT_TRUE(adv.intersects(sub));
}

TEST(Advertisement, EqualityPointIntersection) {
  const Advertisement adv = price_advert(10, 20);
  Subscription sub;
  sub.add(Predicate{"price", RelOp::kEq, Value{15.0}});
  EXPECT_TRUE(adv.intersects(sub));
  Subscription sub2;
  sub2.add(Predicate{"price", RelOp::kEq, Value{35.0}});
  EXPECT_FALSE(adv.intersects(sub2));
}

TEST(Advertisement, NeverFalseNegativeOnRandomRanges) {
  // Property: whenever a publication satisfies both advert and subscription,
  // intersects() must be true.
  for (int lo = 0; lo < 20; ++lo) {
    for (int len = 0; len < 10; ++len) {
      const Advertisement adv = price_advert(lo, lo + len);
      for (int slo = 0; slo < 25; ++slo) {
        const Subscription sub = price_sub(slo, slo + 3);
        for (int p = std::max(lo, slo); p <= std::min(lo + len, slo + 3); ++p) {
          Publication pub{{"price", Value{p}}};
          if (adv.covers(pub) && sub.matches(pub)) {
            ASSERT_TRUE(adv.intersects(sub)) << lo << "+" << len << " vs " << slo;
          }
        }
      }
    }
  }
}

TEST(Advertisement, ToString) {
  const Advertisement adv = price_advert(1, 2, "X");
  const auto s = adv.to_string();
  EXPECT_NE(s.find("adv{"), std::string::npos);
  EXPECT_NE(s.find("price >= 1"), std::string::npos);
}

}  // namespace
}  // namespace evps
