// The paper's application-domain scenarios (Section III-C), including its
// exact worked examples.
#include <gtest/gtest.h>

#include "broker/overlay.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

BrokerConfig lees_config() {
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  return cfg;
}

struct UseCaseTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  Broker& broker = overlay.add_broker("b", lees_config());
  PubSubClient& subscriber = overlay.add_client("subscriber");
  PubSubClient& publisher = overlay.add_client("publisher");

  void SetUp() override {
    // Zero-latency links: the paper's examples are stated in exact time.
    subscriber.connect(broker, Duration::zero());
    publisher.connect(broker, Duration::zero());
  }
};

TEST_F(UseCaseTest, GameExampleTimeOnly) {
  // Section III-C1: { x >= -3+t, x <= 3+t, y >= -2+t, y <= 2+t }; the apple
  // pickup at (4,3) "sent at the same time as the subscription ... does not
  // match it. But if it is sent one or two seconds after ... it will match."
  subscriber.subscribe("x >= -3 + t; x <= 3 + t; y >= -2 + t; y <= 2 + t");
  sim.run_until(sec(0));
  sim.run_all(100);  // deliver the subscription at t=0

  const auto publish_pickup = [&] {
    publisher.publish("x = 4; y = 3; action = 'pickup'; object = 'apple'");
  };
  publish_pickup();  // t = 0: no match
  sim.run_until(sec(1));
  publish_pickup();  // t = 1: all predicates true (paper's worked example)
  sim.run_until(sec(2));
  publish_pickup();  // t = 2: y <= 2+t still holds (3 <= 4)
  sim.run_until(sec(6));
  publish_pickup();  // t = 6: window has moved past the apple
  sim.run_all(1000);

  ASSERT_EQ(subscriber.deliveries().size(), 2u);
  EXPECT_EQ(subscriber.deliveries()[0].when, sec(1));
  EXPECT_EQ(subscriber.deliveries()[1].when, sec(2));
}

TEST_F(UseCaseTest, GameExampleWithVisibility) {
  // Section III-C1 continued: predicates scaled by visibility v. The paper
  // evaluates { 2 >= (-3+1)*0.5, 2 <= (3+1)*0.5, 1.5 >= ... } at t=1,
  // v=0.5 — a publication at (2, 1.5) matches the shrunken window.
  broker.set_variable("v", 0.5);
  subscriber.subscribe(
      "x >= (-3 + t) * v; x <= (3 + t) * v; y >= (-2 + t) * v; y <= (2 + t) * v");
  sim.run_until(sec(1));
  publisher.publish("x = 2; y = 1.5");
  sim.run_all(1000);
  ASSERT_EQ(subscriber.deliveries().size(), 1u);

  // With full visibility at t=1 the same point also matches ([-2,4]x[-1,3]).
  broker.set_variable("v", 1.0);
  publisher.publish("x = 2; y = 1.5");
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 2u);

  // But with v=0.25 at t=1 the window is [-0.5,1]x[-0.25,0.75]: no match.
  broker.set_variable("v", 0.25);
  publisher.publish("x = 2; y = 1.5");
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 2u);
}

TEST_F(UseCaseTest, WarehouseMinimumSalePrice) {
  // Section III-C2 (predictive trading / warehouse): the minimum sale price
  // is adjusted dynamically from the stock level — "when the warehouse is
  // close to empty, the minimum sale price" rises. Threshold expressed over
  // the broker-side stockLevel variable (0..1): minPrice = 100 - 50*stock.
  broker.set_variable("stockLevel", 1.0);  // full warehouse: accept >= 50
  subscriber.subscribe("bid >= 100 - 50 * stockLevel; item = 'widget'");
  sim.run_until(sec(0.001));

  publisher.publish("item = 'widget'; bid = 60");
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 1u);  // 60 >= 50

  broker.set_variable("stockLevel", 0.1);  // nearly empty: accept >= 95
  publisher.publish("item = 'widget'; bid = 60");
  publisher.publish("item = 'widget'; bid = 97");
  sim.run_all(1000);
  ASSERT_EQ(subscriber.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(*subscriber.deliveries()[1].pub.get("bid")->numeric(), 97.0);
}

TEST_F(UseCaseTest, MonitoringModes) {
  // Section III-C: monitoring nodes "match important publications when in
  // critical mode, no publications when in standard mode, and a sample of
  // publications when in diagnosis mode".
  broker.set_variable("mode", 0.0);  // standard
  subscriber.subscribe(
      "sev >= 1000 * step(0.5 - mode) + 8 * step(1.5 - mode) * step(mode - 0.5)");
  sim.run_until(sec(0.001));

  const auto emit = [&] {
    for (const int sev : {2, 8, 10}) {
      Publication p;
      p.set("sev", sev);
      publisher.publish(std::move(p));
    }
    sim.run_all(1000);
  };
  emit();  // standard: nothing
  EXPECT_EQ(subscriber.deliveries().size(), 0u);

  broker.set_variable("mode", 1.0);  // diagnosis: sev >= 8
  emit();
  EXPECT_EQ(subscriber.deliveries().size(), 2u);

  broker.set_variable("mode", 2.0);  // critical: everything
  emit();
  EXPECT_EQ(subscriber.deliveries().size(), 5u);
}

TEST_F(UseCaseTest, BrokerOverloadSelfProtectionExpression) {
  // Section III-C: "an evolving subscription of the form
  // (distance < maxDist * (maxBw - outgoingBw)) matches all publications up
  // to maxDist when there is no load, and no publications at all when the
  // system is fully loaded." (Normalised: bandwidth fraction 0..1.)
  broker.set_variable("outgoingBw", 0.0);
  broker.set_variable("maxDist", 100.0);
  subscriber.subscribe("distance < maxDist * (1 - outgoingBw)");
  sim.run_until(sec(0.001));

  publisher.publish("distance = 99");
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 1u);  // idle: up to maxDist

  broker.set_variable("outgoingBw", 1.0);  // fully loaded
  publisher.publish("distance = 0.5");
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 1u);  // nothing matches

  broker.set_variable("outgoingBw", 0.5);  // half load: up to 50
  publisher.publish("distance = 30");
  publisher.publish("distance = 70");
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 2u);
}

TEST_F(UseCaseTest, PredictiveStockTradingBand) {
  // Predictive stock trading (Sections I, III-C): a narrow band around an
  // extrapolated price path.
  subscriber.subscribe("symbol = 'ACME'; price >= 15.00 + 0.02 * t; price <= 15.10 + 0.02 * t");
  sim.run_until(sec(0.001));

  publisher.publish("symbol = 'ACME'; price = 15.05");  // t~0: in [15.00,15.10]
  publisher.publish("symbol = 'ACME'; price = 15.25");  // t~0: out
  sim.run_until(sec(10));
  publisher.publish("symbol = 'ACME'; price = 15.25");  // t=10: in [15.20,15.30]
  publisher.publish("symbol = 'OTHR'; price = 15.25");  // wrong symbol
  sim.run_all(1000);
  EXPECT_EQ(subscriber.deliveries().size(), 2u);
}

}  // namespace
}  // namespace evps
