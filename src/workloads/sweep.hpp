// Monte-Carlo capacity-planning sweep: many independently seeded replicas of
// one scenario, run in parallel, aggregated into distributions with
// confidence intervals.
//
// A *replica* is one complete simulated deployment — the scenario workload
// plus its centralised zero-latency ground-truth twin built from the same
// seed — reduced to a handful of scalar metrics (latency mean/p50/p90/p99
// via a per-replica Greenwald–Khanna sketch, delivered-event accuracy
// against the twin, overlay traffic, subscription control traffic) and a
// delivery-log fingerprint. Replica metrics are a pure function of
// (scenario options, seed): each replica owns its Simulator, Overlay and
// RNGs, worker threads only ever write their own results slot, and the
// aggregation is a sequential fold in replica-index order — so a sweep is
// bit-identical for any worker count and across repeated runs, which
// tests/test_sweep_determinism.cpp pins.
//
// Replica seeds are derived from the root seed with a splitmix64 finalizer
// over an affine index stream; the map index -> seed is injective, so no two
// replicas of a sweep can collide (tests/test_seed_hygiene.cpp checks 10k).
//
// Aggregation uses the independent-replications method: each metric's
// replica values form an i.i.d. sample, summarised by exact quantiles (the
// replica vector is small enough to sort) and a batch-means 95 % CI
// (stats/confidence.hpp). The GK sketch is only used *within* one replica,
// where its tight single-stream rank bound applies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/online_stats.hpp"
#include "workloads/game.hpp"
#include "workloads/hft.hpp"
#include "workloads/system_kind.hpp"

namespace evps {

/// Seed of replica `index` under root seed `root`. Injective in `index` for
/// any fixed root (affine stream through a bijective mixer), so a sweep
/// never runs two replicas with the same seed.
[[nodiscard]] std::uint64_t derive_replica_seed(std::uint64_t root, std::size_t index) noexcept;

enum class SweepScenario {
  kGame,         ///< single-broker MMOG workload (workloads/game.hpp)
  kHft,          ///< 13-broker HFT tree (workloads/hft.hpp)
  kGameRotated,  ///< star overlay, rotated-coordinate moving zones, covering on
};

[[nodiscard]] constexpr const char* to_string(SweepScenario s) noexcept {
  switch (s) {
    case SweepScenario::kGame: return "game";
    case SweepScenario::kHft: return "hft";
    case SweepScenario::kGameRotated: return "game_rotated";
  }
  return "?";
}

[[nodiscard]] std::optional<SweepScenario> parse_sweep_scenario(std::string_view name) noexcept;

struct SweepOptions {
  SweepScenario scenario = SweepScenario::kGame;
  std::size_t replicas = 200;
  std::uint64_t root_seed = 1;
  /// Total concurrency: 1 runs every replica inline on the caller; W > 1
  /// uses a ThreadPool with W - 1 workers plus the caller.
  std::size_t workers = 1;

  // Engine / broker matrix.
  SystemKind system = SystemKind::kLees;
  MatcherKind matcher = MatcherKind::kCounting;
  /// HFT inter-broker routing (game has one broker; game_rotated always
  /// routes by advertisement because covering needs it).
  RoutingMode routing = RoutingMode::kFlooding;
  std::size_t matcher_threads = 0;
  std::size_t batch_size = 1;
  /// Per-link batching. 0 is resolved to 1 by run_sweep() so results never
  /// depend on the EVPS_LINK_BATCH environment override.
  std::size_t link_batch_size = 0;

  /// Multiplies the scenario's population (characters / clients / clusters).
  double scale = 1.0;
  /// Rank-error fraction of the per-replica latency sketch.
  double latency_eps = 0.005;
};

/// Everything one replica reduces to. Bit-identical for equal
/// (options, seed) regardless of which thread ran it.
struct ReplicaMetrics {
  std::uint64_t seed = 0;

  std::uint64_t deliveries = 0;
  std::uint64_t truth_deliveries = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  /// 1 - (fp + fn) / truth, floored at 0 (metrics/accuracy.hpp).
  double accuracy = 1.0;

  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;
  std::uint64_t latency_samples = 0;
  std::uint64_t latency_rejected = 0;

  /// Total overlay messages (links between nodes, control + data).
  std::uint64_t overlay_msgs = 0;
  double msgs_per_delivery = 0.0;
  /// Subscription-related messages received across brokers.
  std::uint64_t subscription_msgs = 0;

  /// FNV-1a over every client's delivery records in client order — the
  /// bit-determinism witness the tests compare.
  std::uint64_t fingerprint = 0;

  bool operator==(const ReplicaMetrics&) const = default;
};

/// Cross-replica view of one scalar metric: moments, batch-means 95 % CI and
/// exact (sorted) quantiles over the replica values.
struct MetricSummary {
  OnlineStats stats;
  ConfidenceInterval ci;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Summarise `values` (replica-index order): fold moments, batch-means CI,
/// exact nearest-rank quantiles.
[[nodiscard]] MetricSummary summarize_metric(std::span<const double> values);

struct SweepResult {
  SweepOptions options;
  std::vector<ReplicaMetrics> replicas;

  MetricSummary latency_mean;
  MetricSummary latency_p99;
  MetricSummary accuracy;
  MetricSummary deliveries;
  MetricSummary overlay_msgs;
  MetricSummary msgs_per_delivery;
  MetricSummary subscription_msgs;
};

/// Run one replica of `options.scenario` with `seed`: the scenario run plus
/// its ground-truth twin, reduced to ReplicaMetrics. Thread-safe and
/// deterministic in (options, seed).
[[nodiscard]] ReplicaMetrics run_replica(const SweepOptions& options, std::uint64_t seed);

/// Run the full sweep. Replica 0 runs inline first (interning the complete
/// attribute/variable universe in a fixed order before worker threads
/// start); the rest are distributed over the pool. Aggregates are folded in
/// replica-index order, so the result is bit-identical for any worker count.
[[nodiscard]] SweepResult run_sweep(const SweepOptions& options);

}  // namespace evps
