// Deterministic pseudo-random number generation.
//
// All experiment randomness flows through Rng instances seeded explicitly by
// the workload configuration, so that every run is exactly reproducible
// (required for the paper's false-positive/false-negative accounting, which
// compares against a ground-truth run of "the same deterministic workload").
#pragma once

#include <cstdint>
#include <limits>

namespace evps {

/// splitmix64 — used to expand a single seed into stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    for (auto& word : s_) word = splitmix64(seed);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Debiased multiply-shift (Lemire). span==0 means the full 64-bit range.
    if (span == 0) return static_cast<std::int64_t>((*this)());
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t floor = (0 - span) % span;
      while (l < floor) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// True with probability p.
  [[nodiscard]] constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream; deterministic in (state, salt).
  [[nodiscard]] constexpr Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t st = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng{splitmix64(st)};
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace evps
