file(REMOVE_RECURSE
  "CMakeFiles/evps_evolving.dir/clees_engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/clees_engine.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/engine.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/esq.cpp.o"
  "CMakeFiles/evps_evolving.dir/esq.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/hybrid_engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/hybrid_engine.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/lees_engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/lees_engine.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/parametric_engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/parametric_engine.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/static_engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/static_engine.cpp.o.d"
  "CMakeFiles/evps_evolving.dir/ves_engine.cpp.o"
  "CMakeFiles/evps_evolving.dir/ves_engine.cpp.o.d"
  "libevps_evolving.a"
  "libevps_evolving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_evolving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
