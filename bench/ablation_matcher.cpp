// Ablation: matcher implementation under VES maintenance load.
//
// The paper notes evolving subscriptions are "best paired with a matching
// engine optimized for a high rate of subscriptions and unsubscriptions"
// (Section II, citing [10]): VES replaces one matcher entry per evolution,
// so the matcher's insert/remove cost dominates its maintenance overhead.
// This driver re-runs the Figure 8(a)/9 style VES workload with:
//   * the counting matcher (sorted bound lists: fast match, O(n) updates)
//   * the churn matcher (unordered buckets: O(1) updates, linear-ish match)
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/game.hpp"

namespace {

using namespace evps;

struct Cost {
  double maintenance_ms;
  double match_ms;
};

Cost ves_cost(MatcherKind matcher, std::size_t characters) {
  GameConfig cfg;
  cfg.system = SystemKind::kVes;
  cfg.seed = 7;
  cfg.characters = characters;
  cfg.clients = 100;
  cfg.pub_rate = 200.0;
  cfg.matcher = matcher;
  cfg.duration = SimTime::from_seconds(20.0);
  GameExperiment exp(cfg);
  exp.run();
  const auto& costs = exp.engine_costs();
  return Cost{costs.maintenance.sum() * 1000.0, costs.match.sum() * 1000.0};
}

}  // namespace

int main() {
  std::cout << "Ablation: VES maintenance vs matcher implementation\n"
               "(moving AoI subscriptions, 200 pubs/s, 20 s window, ms)\n";
  Table t{{"subscriptions", "counting: maint", "counting: match", "churn: maint",
           "churn: match"}};
  for (const std::size_t n : {500u, 1000u, 2000u, 4000u}) {
    const Cost counting = ves_cost(MatcherKind::kCounting, n);
    const Cost churn = ves_cost(MatcherKind::kChurn, n);
    t.add_row({std::to_string(n), Table::fmt(counting.maintenance_ms, 1),
               Table::fmt(counting.match_ms, 1), Table::fmt(churn.maintenance_ms, 1),
               Table::fmt(churn.match_ms, 1)});
  }
  t.print();
  std::cout << "\nreading the table: the churn matcher flattens the VES maintenance\n"
               "growth (the [10] pairing the paper recommends) at the price of a\n"
               "higher per-publication match cost — the right trade exactly when the\n"
               "evolution rate dominates the publication rate.\n";
  return 0;
}
