// Flat compiled form of evolution expressions.
//
// Tree-walking `Expr::eval` chases shared_ptr nodes and resolves every
// variable by name — fine for the oracle, too slow for the per-publication
// lazy-evaluation hot path (LEES/CLEES, paper Fig. 8). `ExprProgram` lowers
// an `Expr` once, at subscription install time, into a contiguous postfix
// instruction vector with variable operands pre-resolved to interned
// `VarId`s. Evaluation is a single linear walk over the buffer with a small
// caller-owned value stack: integer loads, no pointer chasing, no hashing,
// and no heap allocation in steady state (the stack is reused across calls
// and its required depth is precomputed by the compiler).
//
// The tree walker stays authoritative: compiled evaluation must agree with
// `Expr::eval` bit-for-bit on the same scope, including unbound-variable
// error behaviour (see tests/test_expr_compile.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/variable_table.hpp"
#include "expr/ast.hpp"
#include "expr/variable_registry.hpp"

namespace evps {

class ExprProgram {
 public:
  /// Stack-machine opcodes. Nullary pushes carry an immediate; n-ary ops pop
  /// their operands and push one result.
  enum class Op : std::uint8_t {
    kPushConst,  // push imm.k
    kLoadVar,    // push scope.lookup(imm.var)
    // Unary (pop 1, push 1).
    kNeg, kAbs, kFloor, kCeil, kSqrt, kSin, kCos, kSign,
    // Binary (pop 2, push 1).
    kAdd, kSub, kMul, kDiv, kMod, kPow,
    // Calls: kMin/kMax fold imm.argc operands; kClamp pops 3; kStep pops 1.
    kMin, kMax, kClamp, kStep,
  };

  struct Insn {
    Op op = Op::kPushConst;
    std::uint32_t argc = 0;  // kMin/kMax operand count
    VarId var = kInvalidVarId;
    double k = 0.0;
  };

  ExprProgram() = default;

  /// Lower `expr` into a flat program. Variables are interned now, so
  /// evaluation never sees a name.
  [[nodiscard]] static ExprProgram compile(const Expr& expr);
  [[nodiscard]] static ExprProgram compile(const ExprPtr& expr) { return compile(*expr); }

  /// Build a program from raw instructions without any checking. For tests
  /// and tools that need to construct malformed programs on purpose; real
  /// code paths go through compile() + verify_program (analysis/verifier.hpp)
  /// before evaluating.
  [[nodiscard]] static ExprProgram assemble(std::vector<Insn> code, std::size_t max_stack);

  /// Evaluate against `scope` using `stack` as scratch (cleared on entry;
  /// grown to max_stack() once, then reused allocation-free). Throws
  /// UnboundVariableError exactly when the tree walker would.
  double eval(const EvalScope& scope, std::vector<double>& stack) const;

  /// Convenience for cold paths and tests: owns a transient stack.
  [[nodiscard]] double eval(const EvalScope& scope) const {
    std::vector<double> stack;
    return eval(scope, stack);
  }

  [[nodiscard]] bool empty() const noexcept { return code_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return code_.size(); }
  /// Deepest value-stack use of any prefix of the program.
  [[nodiscard]] std::size_t max_stack() const noexcept { return max_stack_; }
  [[nodiscard]] const std::vector<Insn>& code() const noexcept { return code_; }

  /// Distinct variables referenced, ascending (no duplicates).
  [[nodiscard]] std::vector<VarId> variables() const;

 private:
  std::vector<Insn> code_;
  std::size_t max_stack_ = 0;
};

}  // namespace evps
