#include "broker/audit_hook.hpp"

namespace evps::audit {

OverlaySnapshot snapshot_overlay(const Overlay& overlay) {
  OverlaySnapshot snap;
  snap.brokers.reserve(overlay.brokers().size());
  for (const auto& broker : overlay.brokers()) {
    snap.brokers.push_back(broker->export_snapshot());
  }
  snap.normalize();
  return snap;
}

AuditReport audit_overlay(const Overlay& overlay, AuditOptions options) {
  return OverlayAuditor(options).audit(snapshot_overlay(overlay));
}

}  // namespace evps::audit
