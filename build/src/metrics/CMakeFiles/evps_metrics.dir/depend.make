# Empty dependencies file for evps_metrics.
# This may be replaced when dependencies are built.
