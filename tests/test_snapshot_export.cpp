// Snapshot-export round-trip tests (analysis/audit snapshots).
//
// For every engine kind x line/star topology x link-batch setting, build an
// overlay, drive it through variable updates, subscriptions and a burst of
// publications, settle, and assert:
//   * re-exporting the unchanged overlay yields a bit-identical canonical
//     text (export is deterministic and side-effect free),
//   * normalize() is idempotent,
//   * the snapshot audits clean on every combination (zero false positives),
//     which in particular proves every link-batch buffer drained.
#include "broker/audit_hook.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace evps {
namespace {

using audit::AuditReport;
using audit::OverlaySnapshot;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct Combo {
  EngineKind kind;
  bool star;
  std::size_t link_batch;
  bool covering;
};

std::string describe(const Combo& c) {
  return std::string(to_string(c.kind)) + (c.star ? "/star" : "/line") + "/batch=" +
         std::to_string(c.link_batch) + (c.covering ? "/covering" : "");
}

bool supports_evolving(EngineKind kind) {
  return kind != EngineKind::kStatic && kind != EngineKind::kParametric;
}

/// Build, drive and settle one overlay; return its quiesced snapshot.
OverlaySnapshot drive(Simulator& sim, Overlay& overlay, const Combo& c) {
  BrokerConfig config;
  config.engine.kind = c.kind;
  config.covering = c.covering;
  config.link_batch_size = c.link_batch;
  std::vector<Broker*> brokers = c.star
                                     ? overlay.build_star(3, config, Duration::millis(2))
                                     : overlay.build_line(4, config, Duration::millis(2));
  for (Broker* b : brokers) b->variables().declare_range("v", 0, 100);
  brokers.front()->set_variable("v", 7);

  PubSubClient& publisher = overlay.add_client("publisher");
  publisher.connect(*brokers.front(), Duration::millis(1));
  PubSubClient& near_sub = overlay.add_client("near_sub");
  near_sub.connect(*brokers.front(), Duration::millis(1));
  PubSubClient& far_sub = overlay.add_client("far_sub");
  far_sub.connect(*brokers.back(), Duration::millis(1));

  near_sub.subscribe("x >= 0; x <= 50");
  far_sub.subscribe("x >= 10; x <= 40");  // covered by the near sub's filter
  if (supports_evolving(c.kind)) {
    far_sub.subscribe("[tt=1] x <= 2 * v");
  }
  sim.run_until(sec(1));
  for (int i = 0; i < 10; ++i) {
    publisher.publish("x = " + std::to_string(i * 5));
  }
  sim.run_until(sec(3));
  return audit::snapshot_overlay(overlay);
}

TEST(SnapshotExport, StableAndCleanAcrossEnginesTopologiesAndBatching) {
  const EngineKind kinds[] = {EngineKind::kStatic, EngineKind::kParametric, EngineKind::kVes,
                              EngineKind::kLees,   EngineKind::kClees,      EngineKind::kHybrid};
  for (const EngineKind kind : kinds) {
    for (const bool star : {false, true}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
        const Combo combo{kind, star, batch, /*covering=*/kind == EngineKind::kClees};
        SCOPED_TRACE(describe(combo));
        Simulator sim;
        Overlay overlay{sim};
        const OverlaySnapshot snap = drive(sim, overlay, combo);
        const std::string first = audit::canonical_text(snap);

        // Re-export of the unchanged overlay is bit-identical.
        const OverlaySnapshot again = audit::snapshot_overlay(overlay);
        EXPECT_EQ(first, audit::canonical_text(again));

        // normalize() is idempotent on an already-normalized snapshot.
        OverlaySnapshot renorm = snap;
        renorm.normalize();
        EXPECT_EQ(first, audit::canonical_text(renorm));

        // Zero false positives: the quiesced end state holds every invariant
        // (in particular, batched links drained).
        const AuditReport report = audit::OverlayAuditor().audit(snap);
        EXPECT_TRUE(report.clean()) << report.format();
        EXPECT_EQ(report.brokers_audited, overlay.brokers().size());
      }
    }
  }
}

TEST(SnapshotExport, SnapshotIsPassive) {
  // Mutating a snapshot must never perturb the overlay it came from.
  Simulator sim;
  Overlay overlay{sim};
  const Combo combo{EngineKind::kClees, /*star=*/false, /*link_batch=*/1, /*covering=*/true};
  OverlaySnapshot snap = drive(sim, overlay, combo);
  const std::string before = audit::canonical_text(audit::snapshot_overlay(overlay));
  snap.brokers.clear();
  EXPECT_EQ(before, audit::canonical_text(audit::snapshot_overlay(overlay)));
}

TEST(SnapshotExport, ExportNamesEveryBroker) {
  Simulator sim;
  Overlay overlay{sim};
  const Combo combo{EngineKind::kLees, /*star=*/true, /*link_batch=*/4, /*covering=*/false};
  const OverlaySnapshot snap = drive(sim, overlay, combo);
  ASSERT_EQ(snap.brokers.size(), 4u);
  for (const audit::BrokerState& b : snap.brokers) {
    EXPECT_FALSE(b.name.empty());
    EXPECT_TRUE(b.node.valid());
    EXPECT_NE(snap.find(b.node), nullptr);
  }
}

}  // namespace
}  // namespace evps
