// Human-readable text codec for publications, predicates and subscriptions.
//
// This is the client-facing subscription language:
//
//   publication:  "x = 4; y = 3; action = 'pickup'"
//   subscription: "[mei=1][tt=0.5][validity=10] x >= -3 + t; x <= 3 + t"
//
// Bracketed options (seconds, double) are optional and may appear in any
// order. A predicate operand that parses fully as a number or quoted string
// becomes a static constant; anything else is parsed as an evolution
// expression (see expr/parser.hpp).
#pragma once

#include <string>
#include <string_view>

#include "message/predicate.hpp"
#include "message/publication.hpp"
#include "message/subscription.hpp"

namespace evps {

class CodecError : public std::runtime_error {
 public:
  /// offset() when no source location is known.
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  using std::runtime_error::runtime_error;

  /// Failure at a known byte offset within the parsed text, with the
  /// offending token (propagated from ParseError for caret diagnostics).
  CodecError(const std::string& message, std::size_t offset, std::string token)
      : std::runtime_error(message), offset_(offset), token_(std::move(token)) {}

  [[nodiscard]] bool has_location() const noexcept { return offset_ != kNoOffset; }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::size_t offset_ = kNoOffset;
  std::string token_;
};

[[nodiscard]] std::string serialize(const Publication& pub);
[[nodiscard]] Publication parse_publication(std::string_view text);

[[nodiscard]] std::string serialize(const Predicate& pred);
[[nodiscard]] Predicate parse_predicate(std::string_view text);

/// Serialises options (only non-default ones) followed by predicates.
[[nodiscard]] std::string serialize(const Subscription& sub);
[[nodiscard]] Subscription parse_subscription(std::string_view text);

}  // namespace evps
