#include "analysis/analyzer.hpp"

#include <cmath>
#include <limits>
#include <map>

#include "analysis/relational.hpp"

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Over-approximation of the set of publication Values that can satisfy the
/// conjunction of all predicates on one attribute, choosing each evolving
/// predicate's *loosest* bound independently. A superset of the true
/// satisfying set, so an empty set proves unsatisfiability; mirrors the
/// AttrConstraint logic Advertisement::intersects uses for forwarding.
struct AttrSat {
  double lo = -kInf;
  double hi = kInf;
  bool lo_open = false;
  bool hi_open = false;
  bool has_eq_string = false;
  std::string eq_string;
  /// Some predicate can only be satisfied by a numeric value (numeric or
  /// NaN bound with any operator except !=: strings are incomparable).
  bool numeric_required = false;
  /// Some predicate can only be satisfied by a string value.
  bool string_required = false;
  bool never = false;

  void tighten_lo(double v, bool open) noexcept {
    if (v > lo || (v == lo && open && !lo_open)) {
      lo = v;
      lo_open = open;
    }
  }
  void tighten_hi(double v, bool open) noexcept {
    if (v < hi || (v == hi && open && !hi_open)) {
      hi = v;
      hi_open = open;
    }
  }
  [[nodiscard]] bool range_feasible() const noexcept {
    if (lo < hi) return true;
    return lo == hi && !lo_open && !hi_open;
  }
  void require_string(const std::string* eq) {
    string_required = true;
    if (eq != nullptr) {
      if (has_eq_string && eq_string != *eq) {
        never = true;
      } else {
        has_eq_string = true;
        eq_string = *eq;
      }
    }
  }
  /// No Value satisfies the conjunction.
  [[nodiscard]] bool empty() const noexcept {
    return never || (string_required && numeric_required) ||
           (numeric_required && !range_feasible());
  }
};

/// Fold `pred`'s loosest satisfying set (bound anywhere in `bound_interval`)
/// into `sat`. For static predicates pass the exact point/string constant.
void apply_numeric_bound(AttrSat& sat, RelOp op, const Interval& bound_interval) {
  if (op == RelOp::kNe) {
    // x != b excludes at most one value per bound — over-approximate as
    // unconstrained. A definitely-NaN bound even matches strings.
    return;
  }
  // All other operators are false for string publication values (string vs
  // numeric/NaN is incomparable).
  sat.numeric_required = true;
  if (bound_interval.numeric_empty()) {
    // Bound is always NaN: incomparable with every numeric value too.
    sat.never = true;
    return;
  }
  switch (op) {
    case RelOp::kLt: sat.tighten_hi(bound_interval.hi, /*open=*/true); break;
    case RelOp::kLe: sat.tighten_hi(bound_interval.hi, /*open=*/false); break;
    case RelOp::kGt: sat.tighten_lo(bound_interval.lo, /*open=*/true); break;
    case RelOp::kGe: sat.tighten_lo(bound_interval.lo, /*open=*/false); break;
    case RelOp::kEq:
      sat.tighten_lo(bound_interval.lo, /*open=*/false);
      sat.tighten_hi(bound_interval.hi, /*open=*/false);
      break;
    case RelOp::kNe: break;  // handled above
  }
}

void apply_static(AttrSat& sat, const Predicate& pred) {
  const Value& c = pred.constant();
  if (c.is_string()) {
    if (pred.op() == RelOp::kNe) return;  // matches all numerics and almost all strings
    // Lexicographic operators constrain strings only; track just the type
    // (and the exact string for equality).
    sat.require_string(pred.op() == RelOp::kEq ? &c.as_string() : nullptr);
    return;
  }
  apply_numeric_bound(sat, pred.op(), Interval::point(*c.numeric()));
}

/// Can a single publication Value satisfy both conjunctions? (Used for
/// advertisement coverage: `a` from the subscription, `b` from an ad.)
bool disjoint(const AttrSat& a, const AttrSat& b) noexcept {
  if (a.never || b.never) return true;
  bool strings_possible = !a.numeric_required && !b.numeric_required &&
                          !(a.has_eq_string && b.has_eq_string && a.eq_string != b.eq_string);
  bool numerics_possible = !a.string_required && !b.string_required;
  if (numerics_possible) {
    AttrSat merged = a;
    merged.tighten_lo(b.lo, b.lo_open);
    merged.tighten_hi(b.hi, b.hi_open);
    numerics_possible = merged.range_feasible();
  }
  return !strings_possible && !numerics_possible;
}

/// Attribute constraints an advertisement imposes (evolving ad predicates
/// are unconstrained, mirroring Advertisement::intersects).
std::map<AttrId, AttrSat> ad_constraints(const Advertisement& ad) {
  std::map<AttrId, AttrSat> out;
  for (const Predicate& pred : ad.predicates()) {
    if (pred.is_evolving()) continue;
    apply_static(out[pred.attr_id()], pred);
  }
  return out;
}

}  // namespace

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kConstant: return "constant";
    case Verdict::kAdUncovered: return "ad-uncovered";
    case Verdict::kUnsatisfiable: return "unsatisfiable";
    case Verdict::kMalformed: return "malformed";
    case Verdict::kRelUnsatisfiable: return "relationally-unsatisfiable";
    case Verdict::kRelRedundant: return "relationally-redundant";
  }
  return "?";
}

Interval RegistryVarBounds::bounds(VarId var) const {
  if (var == elapsed_time_var_id()) return Interval::range(0.0, kInf);
  if (const auto range = registry_->declared_range(var)) {
    return Interval::range(range->first, range->second);
  }
  return Interval::unknown();
}

SubscriptionAnalysis analyze_subscription(const Subscription& sub,
                                          const VariableRegistry& registry,
                                          const std::vector<const Advertisement*>& ads) {
  SubscriptionAnalysis out;
  out.predicates.reserve(sub.predicates().size());
  const RegistryVarBounds bounds(registry);

  std::map<AttrId, AttrSat> sat;
  bool all_evolving_constant = true;
  bool any_evolving = false;
  // Folding replaces lazy evaluation with a static predicate, so it is only
  // valid when lazy evaluation cannot fail closed: every referenced variable
  // must resolve at every future evaluation instant. `t` always resolves;
  // registry variables resolve from their first change onwards, so a value
  // in effect at the subscription epoch stays in effect forever after.
  bool foldable_vars = true;

  for (const Predicate& pred : sub.predicates()) {
    PredicateAnalysis pa;
    pa.evolving = pred.is_evolving();
    if (!pa.evolving) {
      apply_static(sat[pred.attr_id()], pred);
      out.predicates.push_back(pa);
      continue;
    }
    any_evolving = true;
    const ExprProgram prog = ExprProgram::compile(*pred.fun());
    if (const VerifyResult vr = verify_program(prog); !vr.ok) {
      out.verdict = Verdict::kMalformed;
      out.diagnostic = "predicate '" + pred.to_string() + "': " + vr.message;
      out.predicates.push_back(pa);
      return out;
    }
    pa.interval = eval_interval(prog, bounds);
    for (const VarId var : prog.variables()) {
      if (var == elapsed_time_var_id()) {
        pa.time_dependent = true;
      } else if (!registry.get_at(var, sub.epoch()).has_value()) {
        foldable_vars = false;
      }
    }
    out.time_dependent = out.time_dependent || pa.time_dependent;
    all_evolving_constant = all_evolving_constant && pa.constant_bound();
    apply_numeric_bound(sat[pred.attr_id()], pred.op(), pa.interval);
    out.predicates.push_back(pa);
  }
  out.constant_bounds = any_evolving && all_evolving_constant;

  for (const auto& [attr, attr_sat] : sat) {
    if (attr_sat.empty()) {
      out.verdict = Verdict::kUnsatisfiable;
      out.diagnostic = "no value of attribute '" + AttributeTable::instance().name(attr) +
                       "' can satisfy all its predicates";
      return out;
    }
  }

  // Cross-attribute infeasibility the per-attribute sets cannot see (the
  // octagon only gains over them when evolving bounds relate attributes
  // through shared variables, so skip the work for static subscriptions).
  if (any_evolving && relational_shape(sub, registry).rel_unsat) {
    out.verdict = Verdict::kRelUnsatisfiable;
    out.diagnostic =
        "predicate conjunction is infeasible across attributes for every "
        "reachable variable assignment (octagon domain)";
    return out;
  }

  if (!ads.empty()) {
    bool covered = false;
    for (const Advertisement* ad : ads) {
      const auto ad_sat = ad_constraints(*ad);
      bool overlap = true;
      for (const auto& [attr, constraint] : ad_sat) {
        const auto it = sat.find(attr);
        if (it != sat.end() && disjoint(it->second, constraint)) {
          overlap = false;
          break;
        }
      }
      if (overlap) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      out.verdict = Verdict::kAdUncovered;
      out.diagnostic = "provably disjoint from all " + std::to_string(ads.size()) +
                       " known advertisement(s)";
      return out;
    }
  }

  if (out.constant_bounds && foldable_vars) {
    Subscription folded(sub.id(), sub.subscriber(), {});
    folded.set_mei(sub.mei()).set_tt(sub.tt()).set_validity(sub.validity()).set_epoch(sub.epoch());
    bool fold_ok = true;
    for (const Predicate& pred : sub.predicates()) {
      if (!pred.is_evolving()) {
        folded.add(pred);
        continue;
      }
      const std::size_t index = static_cast<std::size_t>(&pred - sub.predicates().data());
      const double v = out.predicates[index].interval.lo;
      // Non-finite constants do not round-trip through the codec as static
      // Values (see Predicate's evolving constructor); keep those lazy.
      if (!std::isfinite(v)) {
        fold_ok = false;
        break;
      }
      folded.add(Predicate(pred.attribute(), pred.op(), Value{v}));
    }
    if (fold_ok) {
      out.verdict = Verdict::kConstant;
      out.diagnostic = "every evolving bound is provably constant";
      out.folded = std::move(folded);
    }
  }

  if (out.verdict == Verdict::kOk && any_evolving) {
    const int redundant = find_redundant_predicate(sub, registry);
    if (redundant >= 0) {
      out.verdict = Verdict::kRelRedundant;
      out.redundant_predicate = redundant;
      out.diagnostic =
          "predicate '" + sub.predicates()[static_cast<std::size_t>(redundant)].to_string() +
          "' is entailed by the other predicates";
    }
  }
  return out;
}

}  // namespace evps
