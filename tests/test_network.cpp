#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

/// Records everything it receives.
class RecorderNode final : public NetworkNode {
 public:
  void on_message(const Envelope& env) override { received.push_back(env); }
  std::vector<Envelope> received;
};

struct NetworkTest : ::testing::Test {
  Simulator sim;
  Network net{sim};
  RecorderNode a, b, c;

  void SetUp() override {
    net.attach(a);
    net.attach(b);
    net.attach(c);
  }
};

TEST_F(NetworkTest, AttachAssignsSequentialIds) {
  EXPECT_EQ(a.node_id(), NodeId{0});
  EXPECT_EQ(b.node_id(), NodeId{1});
  EXPECT_EQ(c.node_id(), NodeId{2});
  EXPECT_EQ(net.node_count(), 3u);
}

TEST_F(NetworkTest, ConnectAndQuery) {
  net.connect(a.node_id(), b.node_id(), Duration::millis(5));
  EXPECT_TRUE(net.connected(a.node_id(), b.node_id()));
  EXPECT_TRUE(net.connected(b.node_id(), a.node_id()));  // symmetric
  EXPECT_FALSE(net.connected(a.node_id(), c.node_id()));
  EXPECT_EQ(net.latency(a.node_id(), b.node_id()), Duration::millis(5));
  EXPECT_THROW((void)net.latency(a.node_id(), c.node_id()), std::invalid_argument);
}

TEST_F(NetworkTest, ConnectValidation) {
  EXPECT_THROW(net.connect(a.node_id(), a.node_id(), Duration::zero()), std::invalid_argument);
  EXPECT_THROW(net.connect(a.node_id(), NodeId{99}, Duration::zero()), std::invalid_argument);
  EXPECT_THROW(net.connect(a.node_id(), b.node_id(), Duration::micros(-1)),
               std::invalid_argument);
}

TEST_F(NetworkTest, ReconnectUpdatesLatencyWithoutDuplicatingNeighbors) {
  net.connect(a.node_id(), b.node_id(), Duration::millis(5));
  net.connect(a.node_id(), b.node_id(), Duration::millis(9));
  EXPECT_EQ(net.latency(a.node_id(), b.node_id()), Duration::millis(9));
  EXPECT_EQ(net.neighbors(a.node_id()).size(), 1u);
}

TEST_F(NetworkTest, Neighbors) {
  net.connect(a.node_id(), b.node_id(), Duration::zero());
  net.connect(a.node_id(), c.node_id(), Duration::zero());
  const auto n = net.neighbors(a.node_id());
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(net.neighbors(b.node_id()).size(), 1u);
}

TEST_F(NetworkTest, DeliveryAfterLatency) {
  net.connect(a.node_id(), b.node_id(), Duration::millis(5));
  net.send(a.node_id(), b.node_id(), VarUpdateMsg{"v", 1.0});
  EXPECT_TRUE(b.received.empty());
  sim.run_until(sec(0.004));
  EXPECT_TRUE(b.received.empty());
  sim.run_until(sec(0.006));
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, a.node_id());
  EXPECT_EQ(b.received[0].to, b.node_id());
  EXPECT_TRUE(std::holds_alternative<VarUpdateMsg>(b.received[0].msg));
}

TEST_F(NetworkTest, SendBetweenUnlinkedNodesThrows) {
  EXPECT_THROW(net.send(a.node_id(), c.node_id(), VarUpdateMsg{"v", 1.0}),
               std::invalid_argument);
}

TEST_F(NetworkTest, FifoPerLink) {
  net.connect(a.node_id(), b.node_id(), Duration::millis(5));
  for (int i = 0; i < 10; ++i) {
    net.send(a.node_id(), b.node_id(), VarUpdateMsg{"seq", static_cast<double>(i)});
  }
  sim.run_all();
  ASSERT_EQ(b.received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::get<VarUpdateMsg>(b.received[static_cast<std::size_t>(i)].msg).value,
              static_cast<double>(i));
  }
}

TEST_F(NetworkTest, MessageIdsUniqueAndCounted) {
  net.connect(a.node_id(), b.node_id(), Duration::zero());
  const auto m1 = net.send(a.node_id(), b.node_id(), VarUpdateMsg{"v", 1.0});
  const auto m2 = net.send(a.node_id(), b.node_id(), VarUpdateMsg{"v", 2.0});
  EXPECT_NE(m1, m2);
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST_F(NetworkTest, TapObservesDeliveries) {
  net.connect(a.node_id(), b.node_id(), Duration::millis(3));
  std::vector<std::pair<NodeId, SimTime>> taps;
  net.add_tap([&](const Envelope& env, SimTime at) { taps.emplace_back(env.to, at); });
  net.send(a.node_id(), b.node_id(), VarUpdateMsg{"v", 1.0});
  sim.run_all();
  ASSERT_EQ(taps.size(), 1u);
  EXPECT_EQ(taps[0].first, b.node_id());
  EXPECT_EQ(taps[0].second, sec(0.003));
}

TEST_F(NetworkTest, ZeroLatencyDeliversInSameInstant) {
  net.connect(a.node_id(), b.node_id(), Duration::zero());
  net.send(a.node_id(), b.node_id(), VarUpdateMsg{"v", 1.0});
  sim.run_all();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

}  // namespace
}  // namespace evps
