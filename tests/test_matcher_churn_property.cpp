// Churn property suite: randomized add/remove/match sequences with heavy
// subscription-id reuse, duplicate identical predicates, equal bounds shared
// across subscriptions, mixed string/numeric attributes, and IEEE specials
// (NaN, ±inf, −0.0) in both operands and values. The indexed matchers must
// agree exactly with the brute-force oracle throughout, and removing every
// subscription must leave the indexes physically empty (predicate_count()
// and indexed_entry_count() both 0) — the regression surface for the
// duplicate-predicate index leak in CountingMatcher::remove, the swap-erase
// self-displacement leak in ChurnMatcher::remove, and the NaN unindexing
// leaks in both.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"
#include "matching/counting_matcher.hpp"

namespace evps {
namespace {

const char* kAttributes[] = {"x", "y", "price", "symbol"};

// A deliberately tiny value domain so different subscriptions frequently
// share the exact same bound (stressing equal_range removal) and duplicate
// predicates arise even before we inject them explicitly.
Value small_value(Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return Value{rng.uniform_int(-2, 2)};
    case 1: return Value{static_cast<double>(rng.uniform_int(-2, 2)) / 2.0};
    case 2:
      // IEEE specials, in the same tiny-domain spirit: repeated NaN bounds
      // collide constantly, stressing the quarantine and bit-class removal.
      switch (rng.uniform_int(0, 3)) {
        case 0: return Value{std::numeric_limits<double>::quiet_NaN()};
        case 1: return Value{std::numeric_limits<double>::infinity()};
        case 2: return Value{-std::numeric_limits<double>::infinity()};
        default: return Value{-0.0};
      }
    default: return Value{std::string(1, static_cast<char>('a' + rng.uniform_int(0, 2)))};
  }
}

Predicate small_predicate(Rng& rng) {
  const auto* attr = kAttributes[rng.uniform_int(0, 3)];
  const auto op = static_cast<RelOp>(rng.uniform_int(0, 5));
  return Predicate{attr, op, small_value(rng)};
}

std::vector<Predicate> random_preds(Rng& rng) {
  std::vector<Predicate> preds;
  const auto n = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < n; ++i) preds.push_back(small_predicate(rng));
  // Inject exact duplicates of already-chosen predicates half of the time.
  while (rng.uniform() < 0.5) {
    preds.push_back(preds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(preds.size()) - 1))]);
  }
  return preds;
}

Publication random_publication(Rng& rng) {
  Publication pub;
  const auto n = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    pub.set(kAttributes[rng.uniform_int(0, 3)], small_value(rng));
  }
  return pub;
}

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, IndexedMatchersAgreeWithOracleUnderChurn) {
  Rng rng{GetParam()};
  BruteForceMatcher oracle;
  CountingMatcher counting;
  ChurnMatcher churn;

  // A small id pool forces constant remove/re-add of the same ids with fresh
  // predicate sets: any entry leaked by a remove shows up as a false
  // positive (or index corruption) for the re-added subscription.
  constexpr std::uint64_t kPoolSize = 30;
  for (int op = 0; op < 3000; ++op) {
    const SubscriptionId id{1 + static_cast<std::uint64_t>(rng.uniform_int(0, kPoolSize - 1))};
    const double roll = rng.uniform();
    if (!oracle.contains(id)) {
      const auto preds = random_preds(rng);
      oracle.add(id, preds);
      counting.add(id, preds);
      churn.add(id, preds);
    } else if (roll < 0.5) {
      EXPECT_TRUE(oracle.remove(id));
      EXPECT_TRUE(counting.remove(id));
      EXPECT_TRUE(churn.remove(id));
    }
    if (roll >= 0.25) {
      const Publication pub = random_publication(rng);
      const auto expected = oracle.match(pub);
      ASSERT_EQ(counting.match(pub), expected)
          << "pub " << pub.to_string() << " seed " << GetParam() << " op " << op;
      ASSERT_EQ(churn.match(pub), expected)
          << "pub " << pub.to_string() << " seed " << GetParam() << " op " << op;
    }
    ASSERT_EQ(counting.size(), oracle.size());
    ASSERT_EQ(churn.size(), oracle.size());
  }

  // Drain completely: the indexes must be empty, not merely unreachable.
  for (std::uint64_t i = 1; i <= kPoolSize; ++i) {
    const SubscriptionId id{i};
    const bool present = oracle.contains(id);
    EXPECT_EQ(counting.remove(id), present);
    EXPECT_EQ(churn.remove(id), present);
    oracle.remove(id);
  }
  EXPECT_EQ(counting.size(), 0u);
  EXPECT_EQ(churn.size(), 0u);
  EXPECT_EQ(counting.predicate_count(), 0u);
  EXPECT_EQ(churn.predicate_count(), 0u);
  EXPECT_EQ(counting.indexed_entry_count(), 0u);
  EXPECT_EQ(churn.indexed_entry_count(), 0u);
  EXPECT_TRUE(counting.match(random_publication(rng)).empty());
  EXPECT_TRUE(churn.match(random_publication(rng)).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u, 977u, 31337u));

TEST(CountingMatcherLeak, DuplicatePredicateRemoveDoesNotLeak) {
  // Regression: `add` used to index each duplicate copy while `remove`
  // erased only one occurrence, so a removed-then-readded id inherited a
  // stale index entry and matched publications it should not.
  CountingMatcher m;
  BruteForceMatcher oracle;
  const std::vector<Predicate> dup{
      Predicate{"x", RelOp::kGe, Value{5}},
      Predicate{"x", RelOp::kGe, Value{5}},
  };
  m.add(SubscriptionId{1}, dup);
  oracle.add(SubscriptionId{1}, dup);
  EXPECT_EQ(m.match(Publication{{"x", Value{7}}}), oracle.match(Publication{{"x", Value{7}}}));

  EXPECT_TRUE(m.remove(SubscriptionId{1}));
  EXPECT_EQ(m.predicate_count(), 0u);

  // Re-add the same id with an unrelated predicate; a leaked "x >= 5" entry
  // would now produce a false positive on x-only publications.
  m.add(SubscriptionId{1}, {Predicate{"y", RelOp::kEq, Value{1}}});
  EXPECT_TRUE(m.match(Publication{{"x", Value{7}}}).empty());
  EXPECT_EQ(m.match(Publication{{"y", Value{1}}}),
            std::vector<SubscriptionId>{SubscriptionId{1}});
}

TEST(CountingMatcherLeak, DuplicatesAcrossOperatorClasses) {
  // Duplicates in every index class: equality (num + str), !=, ordered
  // string scan, and sorted bounds.
  CountingMatcher m;
  const std::vector<Predicate> preds{
      Predicate{"a", RelOp::kEq, Value{3}},      Predicate{"a", RelOp::kEq, Value{3}},
      Predicate{"s", RelOp::kEq, Value{"v"}},    Predicate{"s", RelOp::kEq, Value{"v"}},
      Predicate{"n", RelOp::kNe, Value{0}},      Predicate{"n", RelOp::kNe, Value{0}},
      Predicate{"t", RelOp::kLt, Value{"m"}},    Predicate{"t", RelOp::kLt, Value{"m"}},
      Predicate{"b", RelOp::kLe, Value{9}},      Predicate{"b", RelOp::kLe, Value{9}},
  };
  m.add(SubscriptionId{7}, preds);
  EXPECT_EQ(m.predicate_count(), 5u);  // deduplicated on add
  const Publication hitting{
      {"a", Value{3}}, {"s", Value{"v"}}, {"n", Value{1}}, {"t", Value{"c"}}, {"b", Value{4}}};
  EXPECT_EQ(m.match(hitting), std::vector<SubscriptionId>{SubscriptionId{7}});
  EXPECT_TRUE(m.remove(SubscriptionId{7}));
  EXPECT_EQ(m.predicate_count(), 0u);
  EXPECT_TRUE(m.match(hitting).empty());
}

TEST(ChurnMatcherLeak, SelfDisplacedEntryIsPatchedDuringRemove) {
  // Regression: removing a subscription whose predicates share one scan
  // bucket used to leave a stale entry behind when the swap-erase displaced
  // one of the subscription's *own* remaining entries (the patch-up skipped
  // ids already detached from the subscription table).
  ChurnMatcher m;
  m.add(SubscriptionId{1}, {Predicate{"x", RelOp::kGt, Value{0}},
                            Predicate{"x", RelOp::kGt, Value{5}}});
  EXPECT_TRUE(m.remove(SubscriptionId{1}));
  EXPECT_EQ(m.predicate_count(), 0u);

  // Re-add the same id with an unrelated predicate; a leaked scan entry
  // would hit the recycled slot and fabricate a match.
  m.add(SubscriptionId{1}, {Predicate{"y", RelOp::kEq, Value{1}}});
  EXPECT_TRUE(m.match(Publication{{"x", Value{10}}}).empty());
  EXPECT_EQ(m.match(Publication{{"y", Value{1}}}),
            std::vector<SubscriptionId>{SubscriptionId{1}});
}

}  // namespace
}  // namespace evps
