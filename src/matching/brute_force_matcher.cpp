#include "matching/brute_force_matcher.hpp"

namespace evps {

void BruteForceMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  const auto [it, inserted] = subs_.emplace(id, preds);
  if (!inserted) throw std::invalid_argument("duplicate subscription id " + id.str());
}

bool BruteForceMatcher::remove(SubscriptionId id) { return subs_.erase(id) > 0; }

void BruteForceMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  for (const auto& [id, preds] : subs_) {
    if (preds.empty()) continue;
    bool ok = true;
    for (const auto& p : preds) {
      const Value* v = pub.get(p.attribute());
      if (v == nullptr || !p.matches(*v)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(id);
  }
}

}  // namespace evps
