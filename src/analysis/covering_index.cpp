#include "analysis/covering_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace evps {
namespace {

void erase_value(std::vector<SubscriptionId>& v, SubscriptionId id) {
  v.erase(std::remove(v.begin(), v.end(), id), v.end());
}

}  // namespace

bool CoveringIndex::check_covers(const Entry& coverer, const Entry& coveree) {
  ++stats_.pairs;
  CoverVerdict v = covers(coverer.inner, coveree.outer);
  if (v != CoverVerdict::kCovers && relational_) {
    v = covers_relational(coverer.inner, coverer.rel, coveree.outer, coveree.rel);
    if (v == CoverVerdict::kCovers) ++stats_.relational;
  }
  if (v == CoverVerdict::kCovers) {
    ++stats_.covered;
    return true;
  }
  ++stats_.unknown;
  return false;
}

SubscriptionId CoveringIndex::find_coverer(const Entry& e) {
  // An unconstrained root matches every publication.
  for (const SubscriptionId root : unconstrained_roots_) {
    if (check_covers(entries_.at(root), e)) return root;
  }
  // A constrained coverer's attrs are a subset of e's, so it sits in the
  // bucket of each of its own attrs — all of which e's shape also has.
  // Scanning e's buckets visits it at least once; `tried` dedupes.
  std::vector<SubscriptionId> tried;
  for (const auto& [attr, set] : e.outer.attrs) {
    (void)set;
    const auto bucket = roots_by_attr_.find(attr);
    if (bucket == roots_by_attr_.end()) continue;
    for (const SubscriptionId root : bucket->second) {
      if (std::find(tried.begin(), tried.end(), root) != tried.end()) continue;
      tried.push_back(root);
      if (check_covers(entries_.at(root), e)) return root;
    }
  }
  return SubscriptionId::invalid();
}

void CoveringIndex::bucket_insert(SubscriptionId id, const Entry& e) {
  if (e.inner.attrs.empty() && e.outer.attrs.empty()) {
    unconstrained_roots_.push_back(id);
    return;
  }
  for (const auto& [attr, set] : e.outer.attrs) {
    (void)set;
    roots_by_attr_[attr].push_back(id);
  }
}

void CoveringIndex::bucket_erase(SubscriptionId id, const Entry& e) {
  if (e.inner.attrs.empty() && e.outer.attrs.empty()) {
    erase_value(unconstrained_roots_, id);
    return;
  }
  for (const auto& [attr, set] : e.outer.attrs) {
    (void)set;
    const auto bucket = roots_by_attr_.find(attr);
    if (bucket == roots_by_attr_.end()) continue;
    erase_value(bucket->second, id);
    if (bucket->second.empty()) roots_by_attr_.erase(bucket);
  }
}

CoveringIndex::AddResult CoveringIndex::add(const Subscription& sub,
                                            const VariableRegistry& registry) {
  if (contains(sub.id())) {
    // A debug-only assert is not enough: a release-build duplicate would
    // rewire other entries' parent/children links before the final emplace
    // silently no-ops, corrupting the forest.
    throw std::invalid_argument("CoveringIndex::add: duplicate subscription id");
  }
  Entry e;
  e.inner = inner_shape(sub, registry);
  e.outer = outer_shape(sub, registry);
  if (relational_) e.rel = relational_shape(sub, registry);

  AddResult result;
  result.parent = find_coverer(e);
  if (result.parent.valid()) {
    e.parent = result.parent;
    entries_.at(result.parent).children.push_back(sub.id());
    entries_.emplace(sub.id(), std::move(e));
    return result;
  }

  // New root: demote every existing root it covers. A constrained coverer's
  // attrs all appear in the coveree's shape, so covered roots sit in the
  // first-attr bucket; an unconstrained new root must scan everything.
  std::vector<SubscriptionId> candidates;
  if (e.inner.attrs.empty()) {
    candidates = unconstrained_roots_;
    for (const auto& [attr, bucket] : roots_by_attr_) {
      (void)attr;
      for (const SubscriptionId id : bucket) {
        if (std::find(candidates.begin(), candidates.end(), id) == candidates.end()) {
          candidates.push_back(id);
        }
      }
    }
  } else {
    const auto bucket = roots_by_attr_.find(e.inner.attrs.begin()->first);
    if (bucket != roots_by_attr_.end()) candidates = bucket->second;
  }
  for (const SubscriptionId root_id : candidates) {
    Entry& root = entries_.at(root_id);
    if (!check_covers(e, root)) continue;
    // Demote: the root and (by transitivity) its whole covering set move
    // under the new root. Only the former root itself changes routing
    // status — its children were suppressed before and stay suppressed.
    bucket_erase(root_id, root);
    --root_count_;
    for (const SubscriptionId child : root.children) {
      entries_.at(child).parent = sub.id();
      e.children.push_back(child);
    }
    root.children.clear();
    root.parent = sub.id();
    e.children.push_back(root_id);
    result.demoted.push_back(root_id);
  }

  bucket_insert(sub.id(), e);
  ++root_count_;
  entries_.emplace(sub.id(), std::move(e));
  return result;
}

CoveringIndex::RemoveResult CoveringIndex::remove(SubscriptionId id) {
  RemoveResult result;
  const auto it = entries_.find(id);
  if (it == entries_.end()) return result;
  Entry removed = std::move(it->second);
  entries_.erase(it);

  if (removed.parent.valid()) {
    erase_value(entries_.at(removed.parent).children, id);
    return result;
  }

  bucket_erase(id, removed);
  --root_count_;

  // Uncover-on-remove: offer each orphan to the surviving roots — including
  // siblings promoted earlier in this loop, so a group of near-duplicates
  // collapses onto one promoted representative instead of all flooding.
  for (const SubscriptionId child_id : removed.children) {
    Entry& child = entries_.at(child_id);
    child.parent = SubscriptionId::invalid();
    const SubscriptionId coverer = find_coverer(child);
    if (coverer.valid()) {
      child.parent = coverer;
      entries_.at(coverer).children.push_back(child_id);
    } else {
      bucket_insert(child_id, child);
      ++root_count_;
      result.promoted.push_back(child_id);
    }
  }
  return result;
}

bool CoveringIndex::is_root(SubscriptionId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && !it->second.parent.valid();
}

SubscriptionId CoveringIndex::root_of(SubscriptionId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return SubscriptionId::invalid();
  return it->second.parent.valid() ? it->second.parent : id;
}

std::vector<SubscriptionId> CoveringIndex::children_of(SubscriptionId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? std::vector<SubscriptionId>{} : it->second.children;
}

}  // namespace evps
