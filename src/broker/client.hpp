// Client endpoint: a publisher and/or subscriber attached to one broker.
//
// Provides the client API of the paper's framework: subscribe (static or
// evolving), unsubscribe, resubscribe (the baseline unsub+sub pair),
// parametric subscription updates, advertise and publish. Received
// publications are recorded in a delivery log used by the accuracy metric.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "common/ids.hpp"
#include "message/codec.hpp"
#include "sim/network.hpp"

namespace evps {

/// Deterministic, collision-free id derivation: the high 32 bits carry the
/// client id, the low 32 bits a per-client sequence number. This makes runs
/// with identical workloads produce identical ids, which the ground-truth
/// comparison relies on.
[[nodiscard]] constexpr SubscriptionId make_subscription_id(ClientId client,
                                                            std::uint32_t seq) noexcept {
  return SubscriptionId{(client.value() << 32) | seq};
}
[[nodiscard]] constexpr MessageId make_publication_id(ClientId client,
                                                      std::uint32_t seq) noexcept {
  return MessageId{(client.value() << 32) | seq};
}

class PubSubClient final : public NetworkNode {
 public:
  struct Delivery {
    SimTime when;
    Publication pub;
  };

  /// `id` must be unique across the run (assigned by the workload).
  PubSubClient(ClientId id, std::string name, Network& net);

  PubSubClient(const PubSubClient&) = delete;
  PubSubClient& operator=(const PubSubClient&) = delete;

  /// Attach to `broker` over a link with `latency`. Must be called once
  /// before any other operation.
  void connect(Broker& broker, Duration latency);

  [[nodiscard]] ClientId id() const noexcept { return id_; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool connected() const noexcept { return broker_ != nullptr; }
  [[nodiscard]] Broker& broker() const {
    if (broker_ == nullptr) throw std::logic_error("client not connected");
    return *broker_;
  }

  // --- subscriber API --------------------------------------------------------
  /// Register `sub`: assigns an id (unless one is already set), stamps the
  /// epoch and subscriber, and sends it to the broker. Returns the id.
  SubscriptionId subscribe(Subscription sub);
  /// Parse-and-subscribe convenience (see message/codec.hpp for the syntax).
  SubscriptionId subscribe(std::string_view text) { return subscribe(parse_subscription(text)); }

  void unsubscribe(SubscriptionId id);

  /// Baseline resubscription: unsubscribe `old_id`, then subscribe the
  /// replacement (two messages, Section I). Returns the new id.
  SubscriptionId resubscribe(SubscriptionId old_id, Subscription replacement);

  /// Parametric baseline [12]: adjust predicate operands in place with a
  /// single update message.
  void update_subscription(SubscriptionId id, std::vector<std::optional<Value>> new_values);

  // --- publisher API ---------------------------------------------------------
  MessageId publish(Publication pub);
  MessageId publish(std::string_view text) { return publish(parse_publication(text)); }

  MessageId advertise(std::vector<Predicate> predicates);
  void unadvertise(MessageId id);

  /// Push an evolution-variable value into the broker network (e.g. the
  /// game server propagating visibility).
  void send_var_update(const std::string& name, double value);

  /// Subscriptions issued by this client and not yet unsubscribed.
  [[nodiscard]] const std::set<SubscriptionId>& active_subscriptions() const noexcept {
    return active_subs_;
  }
  /// Advertisements issued and not yet withdrawn.
  [[nodiscard]] const std::set<MessageId>& active_advertisements() const noexcept {
    return active_advs_;
  }

  /// Graceful departure: unsubscribe every active subscription and withdraw
  /// every advertisement. The client stays attached (it may re-subscribe).
  void shutdown();

  // --- delivery log ----------------------------------------------------------
  [[nodiscard]] const std::vector<Delivery>& deliveries() const noexcept { return deliveries_; }
  void clear_deliveries() { deliveries_.clear(); }

  /// Optional hook invoked on each delivery (after logging).
  std::function<void(const Publication&, SimTime)> on_delivery;

  void on_message(const Envelope& env) override;

 private:
  void record_delivery(const PublicationPtr& pub);

  ClientId id_;
  std::string name_;
  Network& net_;
  Broker* broker_ = nullptr;
  std::uint32_t next_sub_seq_ = 1;
  std::uint32_t next_pub_seq_ = 1;
  std::uint32_t next_adv_seq_ = 1;
  std::set<SubscriptionId> active_subs_;
  std::set<MessageId> active_advs_;
  std::vector<Delivery> deliveries_;
};

}  // namespace evps
