# Empty dependencies file for test_esq.
# This may be replaced when dependencies are built.
