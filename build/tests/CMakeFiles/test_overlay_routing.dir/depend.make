# Empty dependencies file for test_overlay_routing.
# This may be replaced when dependencies are built.
