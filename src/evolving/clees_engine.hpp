// Cached Lazy Evaluation Evolving Subscriptions (CLEES) — Sections IV-C, V-C.
//
// Like LEES, subscriptions are split into a static part (standard matcher)
// and an evolving part held in the Lazy Evolution Storage. On the first
// publication that probes a subscription, the evolving part is materialised
// into a concrete version which is cached for the subscription's time
// threshold (TT); until it expires, subsequent publications match against
// the cached version with plain predicate tests (cache hit). After expiry
// the next probe triggers re-materialisation (cache miss).
//
// The cache is kept separate from the standard matcher: inserting versions
// into the matcher would leverage its index but raise contention on the
// shared structure (Section V-C) — and would re-introduce VES's maintenance
// scaling, which CLEES exists to avoid.
//
// A cached version is just the vector of bound values the compiled
// predicates evaluated to (CachedBound), parallel to the compiled parts —
// re-materialisation overwrites it in place, so steady state allocates
// nothing.
//
// Sharding (DESIGN.md §11): the storage is partitioned like the matcher and
// the lazy phase fans out one worker per shard, like LEES. Crucially the TT
// cache state (Part::extra) lives inside the shard that owns the part, so a
// worker only ever mutates cache entries no other worker can reach. For K=1
// probe order and cache trajectory are exactly the sequential ones; for K>1
// the within-destination early exit is per shard, so a part may be probed
// (and its cache refreshed) where K=1 would have skipped it — every cached
// version is still at most TT old, so the paper's staleness contract holds
// for every K.
#pragma once

#include <vector>

#include "evolving/engine.hpp"
#include "evolving/lazy_storage.hpp"

namespace evps {

class CleesEngine final : public BrokerEngine {
 public:
  explicit CleesEngine(const EngineConfig& config);

  [[nodiscard]] std::size_t storage_size() const noexcept {
    std::size_t total = 0;
    for (const auto& storage : storage_) total += storage.size();
    return total;
  }

  void export_audit_state(audit::EngineState& out) const override;

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;
  void do_match_batch(std::span<const Publication* const> pubs, const VariableSnapshot* snapshot,
                      EngineHost& host, std::vector<std::vector<NodeId>>& destinations) override;

 private:
  struct TtCache {
    std::vector<CachedBound> bounds;  // parallel to Part::preds
    SimTime expires = SimTime::zero();
    /// A version has been materialised into `bounds` (expires alone cannot
    /// tell: the analysis windows below outlive it).
    bool populated = false;
    /// Static analysis at install time (EngineConfig::analysis_cache_windows):
    /// bounds provably constant for every reachable variable state — the
    /// first materialised version never expires.
    bool constant_bounds = false;
    /// Bounds independent of `t`: a version stays exact until some registry
    /// variable changes, however far past TT that is.
    bool time_invariant = false;
    /// VariableRegistry::global_version() when `bounds` was materialised.
    std::uint64_t seen_version = 0;
  };
  using Storage = LazyStorage<TtCache>;

  /// Per-shard-worker scratch; cacheline-aligned against false sharing.
  struct alignas(64) ShardScratch {
    EvalScope scope;
    std::vector<double> stack;
    std::vector<NodeId> dests;
    /// Bounds materialised under a piggybacked snapshot are never cached
    /// (they are anchored at the publication's entry time, not broker time);
    /// this scratch keeps that path allocation-free too.
    std::vector<CachedBound> snapshot_bounds;
    std::uint64_t lazy_evaluations = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };

  [[nodiscard]] Storage& storage_for(SubscriptionId id) noexcept {
    return storage_[sharded_->shard_of(id)];
  }

  void process_m1(const std::vector<SubscriptionId>& m1, std::vector<NodeId>& destinations);
  void lazy_eval_phase(const Publication& pub, const VariableSnapshot* snapshot,
                       const VariableRegistry& registry, SimTime now,
                       std::vector<NodeId>& destinations);

  // Lazy Evolution Storage: evolving parts grouped per destination, one
  // partition per matcher shard.
  std::vector<Storage> storage_;
  std::vector<ShardScratch> shard_scratch_;
};

}  // namespace evps
