// The standard (non-evolving) matching engine interface.
//
// Matchers store *static* predicates only. Evolving predicates never enter a
// matcher directly: VES inserts materialised versions, LEES/CLEES keep them
// in their own structures (Section V). Attempting to add an evolving
// predicate throws.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/ids.hpp"
#include "message/predicate.hpp"
#include "message/publication.hpp"

namespace evps {

/// One subscription of an add_batch() call. Owned by value so sharded
/// matchers can redistribute entries across shards without copying the
/// predicate vectors.
struct MatcherBatchEntry {
  SubscriptionId id;
  std::vector<Predicate> preds;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Install `preds` (conjunctive) under `id`. `id` must not already be
  /// present; predicates must all be static.
  virtual void add(SubscriptionId id, const std::vector<Predicate>& preds) = 0;

  /// Install a batch of subscriptions, exactly as if add() had been called
  /// per entry in order (the default does just that; a partial failure
  /// leaves the earlier entries installed). Implementations override this to
  /// amortise index maintenance — CountingMatcher turns the batch into one
  /// sorted bulk merge per touched (attribute, operator) bound list, the
  /// path VES uses for bulk version re-materialisation.
  virtual void add_batch(std::vector<MatcherBatchEntry> batch) {
    for (auto& entry : batch) add(entry.id, entry.preds);
  }

  /// Remove the subscription; returns false if unknown.
  virtual bool remove(SubscriptionId id) = 0;

  /// Append all matching subscription ids to `out` in ascending id order.
  virtual void match(const Publication& pub, std::vector<SubscriptionId>& out) const = 0;

  /// Match a batch of publications: out[i] receives the ascending-id hits of
  /// *pubs[i], exactly as if match(*pubs[i], out[i]) had been called in a
  /// loop (the default does just that). ShardedMatcher overrides this to
  /// amortise one pool dispatch over the whole batch. The batch is a span of
  /// pointers so brokers can assemble it from shared (refcounted)
  /// publications without copying events into a contiguous staging vector.
  /// `out` is grown to pubs.size() if needed (never shrunk, so inner vectors
  /// keep their capacity) and each used entry is cleared first.
  virtual void match_batch(std::span<const Publication* const> pubs,
                           std::vector<std::vector<SubscriptionId>>& out) const {
    if (out.size() < pubs.size()) out.resize(pubs.size());
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      out[i].clear();
      match(*pubs[i], out[i]);
    }
  }

  /// Convenience overload for contiguous publications (tests, benches):
  /// builds the pointer span and delegates to the virtual batch entry point.
  void match_batch(std::span<const Publication> pubs,
                   std::vector<std::vector<SubscriptionId>>& out) const {
    std::vector<const Publication*> ptrs;
    ptrs.reserve(pubs.size());
    for (const auto& pub : pubs) ptrs.push_back(&pub);
    match_batch(std::span<const Publication* const>(ptrs), out);
  }

  [[nodiscard]] virtual bool contains(SubscriptionId id) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Append every installed subscription id to `out`, in no particular
  /// order. Snapshot/audit support (analysis/audit): lets the auditor check
  /// the matcher's physical footprint against the engine's logical table.
  virtual void collect_ids(std::vector<SubscriptionId>& out) const = 0;

  /// Convenience wrapper.
  [[nodiscard]] std::vector<SubscriptionId> match(const Publication& pub) const {
    std::vector<SubscriptionId> out;
    match(pub, out);
    return out;
  }

 protected:
  static void require_static(const std::vector<Predicate>& preds) {
    for (const auto& p : preds) {
      if (p.is_evolving()) {
        throw std::invalid_argument(
            "matcher only stores static predicates; materialise evolving ones first");
      }
    }
  }
};

using MatcherPtr = std::unique_ptr<Matcher>;

/// Matcher implementations selectable by configuration:
///   * kBruteForce — linear-scan oracle (tests, baselines)
///   * kCounting   — paged per-attribute interval indexes: fast match,
///                   O(log n) insert/remove, bulk add_batch (the default)
///   * kChurn      — unordered buckets: O(1) amortised insert/remove for
///                   high subscription churn [10], linear-ish match
enum class MatcherKind { kBruteForce, kCounting, kChurn };

[[nodiscard]] MatcherPtr make_matcher(MatcherKind kind);

}  // namespace evps
