// Batch-means 95 % confidence intervals for sweep aggregates.
//
// The sweep harness reports distributions over independently seeded replicas.
// For the mean of a replica-level metric it attaches a 95 % CI computed by
// the method of batch means: the (replica-ordered) series is split into B
// near-equal contiguous batches, the batch means are treated as B
// approximately independent observations, and the half-width is
// t_{0.975,B-1} * s_B / sqrt(B). For i.i.d. replicas any B is valid (batching
// only discards degrees of freedom); for serially correlated series —
// interval samples inside one long run — batching is what makes the CI
// honest, which is why the harness standardises on it everywhere.
//
// Edge-case contract (the aggregation hardening the sweep tests pin):
//   * empty series          -> defined == false, mean 0
//   * single sample         -> defined == false (variance undefined), mean set
//   * non-finite samples    -> ignored (counted in `rejected`), never poison
//   * constant series       -> defined, half_width 0
#pragma once

#include <cstddef>
#include <span>

namespace evps {

struct ConfidenceInterval {
  double mean = 0.0;
  /// Half-width of the 95 % interval around `mean`; 0 when !defined.
  double half_width = 0.0;
  /// Batches actually used (0 or 1 when the CI is undefined).
  std::size_t batches = 0;
  /// Finite samples the estimate is built from.
  std::size_t samples = 0;
  /// Non-finite samples dropped by the guard.
  std::size_t rejected = 0;
  /// False when fewer than two finite samples exist.
  bool defined = false;
};

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom
/// (conservative step table; 1.96 in the limit).
[[nodiscard]] double student_t_975(std::size_t df) noexcept;

/// Batch-means 95 % CI over `series` in its given order. `batch_count` 0
/// picks min(n, 20) batches; requests are clamped to [2, n].
[[nodiscard]] ConfidenceInterval batch_means_ci(std::span<const double> series,
                                                std::size_t batch_count = 0);

}  // namespace evps
