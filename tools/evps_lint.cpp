// evps-lint — offline static analysis of subscription scenarios.
//
// Runs the same subscribe-time analysis the broker applies
// (analysis/analyzer.hpp) over a scenario file, printing one verdict per
// subscription plus caret diagnostics for parse failures. Exits nonzero when
// any subscription is malformed, unsatisfiable, or fails to parse, so the
// tool slots into CI and pre-deployment checks.
//
// Scenario format (one directive per line, '#' starts a comment):
//
//   var <name> in [<lo>, <hi>]          declare an evolution-variable range
//   var <name> = <value> in [<lo>, <hi>]    ... and set its current value
//   adv <pred> [; <pred>]...            an advertisement (codec predicates)
//   sub <subscription>                  a subscription (codec text language)
//
// Example:
//   var load in [0, 1]
//   adv price >= 0; price <= 100
//   sub [tt=0.5] price <= 120 + 10 * load; price >= 150
//
// prints "unsatisfiable" for the subscription (price cannot exceed 130 yet
// must reach 150) and exits 1.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/sim_time.hpp"
#include "message/codec.hpp"

namespace {

using namespace evps;

struct LintContext {
  std::string path;
  VariableRegistry registry;
  std::vector<Advertisement> ads;
  int subscriptions = 0;
  int errors = 0;
};

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.front())) != 0)) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.back())) != 0)) {
    s.remove_suffix(1);
  }
  return s;
}

/// Print "file:line: error: ..." followed by the offending line with a caret
/// under the bad token. `offset` is relative to `body`, which starts at
/// column `body_col` of `line`.
void caret_diagnostic(const LintContext& ctx, int line_no, const std::string& line,
                      std::size_t body_col, std::size_t offset, const std::string& token,
                      const std::string& message) {
  std::cerr << ctx.path << ":" << line_no << ": error: " << message << "\n";
  std::cerr << "  " << line << "\n";
  std::cerr << "  " << std::string(body_col + offset, ' ') << '^'
            << std::string(token.size() > 1 ? token.size() - 1 : 0, '~') << "\n";
}

/// `var <name> [= <value>] in [<lo>, <hi>]`
bool handle_var(LintContext& ctx, int line_no, const std::string& line, std::string_view body) {
  std::istringstream in{std::string(body)};
  std::string name;
  std::string tok;
  double value = 0;
  bool has_value = false;
  double lo = 0;
  double hi = 0;
  in >> name >> tok;
  if (tok == "=") {
    in >> value >> tok;
    has_value = true;
  }
  char lbracket = 0;
  char comma = 0;
  char rbracket = 0;
  in >> lbracket >> lo >> comma >> hi >> rbracket;
  if (name.empty() || tok != "in" || lbracket != '[' || comma != ',' || rbracket != ']' ||
      in.fail()) {
    caret_diagnostic(ctx, line_no, line, 0, 0, "",
                     "bad var directive (expected: var <name> [= <value>] in [<lo>, <hi>])");
    return false;
  }
  try {
    ctx.registry.declare_range(name, lo, hi);
    if (has_value) ctx.registry.set(name, value, SimTime::zero());
  } catch (const std::invalid_argument& e) {
    caret_diagnostic(ctx, line_no, line, 0, 0, "", e.what());
    return false;
  }
  return true;
}

bool handle_adv(LintContext& ctx, int line_no, const std::string& line, std::string_view body,
                std::size_t body_col) {
  try {
    // Reuse the subscription grammar for the predicate list; metadata
    // options make no sense on an advertisement and are rejected upstream.
    const Subscription parsed = parse_subscription(body);
    Advertisement adv(MessageId{static_cast<std::uint64_t>(ctx.ads.size() + 1)}, ClientId{0},
                      parsed.predicates());
    ctx.ads.push_back(std::move(adv));
    return true;
  } catch (const CodecError& e) {
    caret_diagnostic(ctx, line_no, line, body_col, e.has_location() ? e.offset() : 0,
                     e.has_location() ? e.token() : "", e.what());
    return false;
  }
}

bool handle_sub(LintContext& ctx, int line_no, const std::string& line, std::string_view body,
                std::size_t body_col) {
  Subscription sub;
  try {
    sub = parse_subscription(body);
  } catch (const CodecError& e) {
    caret_diagnostic(ctx, line_no, line, body_col, e.has_location() ? e.offset() : 0,
                     e.has_location() ? e.token() : "", e.what());
    return false;
  }
  ++ctx.subscriptions;
  sub.set_id(SubscriptionId{static_cast<std::uint64_t>(ctx.subscriptions)});

  std::vector<const Advertisement*> ads;
  ads.reserve(ctx.ads.size());
  for (const Advertisement& adv : ctx.ads) ads.push_back(&adv);
  const SubscriptionAnalysis analysis = analyze_subscription(sub, ctx.registry, ads);

  std::cout << ctx.path << ":" << line_no << ": sub " << ctx.subscriptions << ": "
            << to_string(analysis.verdict);
  if (!analysis.diagnostic.empty()) std::cout << " — " << analysis.diagnostic;
  std::cout << "\n";
  if (analysis.verdict == Verdict::kConstant && analysis.folded.has_value()) {
    std::cout << "    folds to: " << serialize(*analysis.folded) << "\n";
  }
  return analysis.verdict != Verdict::kMalformed && analysis.verdict != Verdict::kUnsatisfiable;
}

int lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "evps-lint: cannot open " << path << "\n";
    return 2;
  }
  LintContext ctx;
  ctx.path = path;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view rest = trim_view(line);
    if (rest.empty() || rest.front() == '#') continue;
    const auto space = rest.find_first_of(" \t");
    const std::string_view directive = rest.substr(0, space);
    std::string_view body =
        space == std::string_view::npos ? std::string_view{} : trim_view(rest.substr(space));
    const auto body_col =
        body.empty() ? line.size() : static_cast<std::size_t>(body.data() - line.data());
    bool ok = false;
    if (directive == "var") {
      ok = handle_var(ctx, line_no, line, body);
    } else if (directive == "adv") {
      ok = handle_adv(ctx, line_no, line, body, body_col);
    } else if (directive == "sub") {
      ok = handle_sub(ctx, line_no, line, body, body_col);
    } else {
      caret_diagnostic(ctx, line_no, line, 0, 0, "",
                       "unknown directive '" + std::string(directive) +
                           "' (expected var, adv or sub)");
    }
    if (!ok) ++ctx.errors;
  }
  if (ctx.errors != 0) {
    std::cout << path << ": " << ctx.errors << " problem(s) in " << ctx.subscriptions
              << " subscription(s)\n";
    return 1;
  }
  std::cout << path << ": " << ctx.subscriptions << " subscription(s), no problems\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: evps-lint <scenario>...\n"
              << "Statically analyzes subscription scenarios; see tools/evps_lint.cpp\n"
              << "for the scenario format. Exits nonzero on unsatisfiable or malformed\n"
              << "subscriptions.\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc = std::max(rc, lint_file(argv[i]));
  }
  return rc;
}
