file(REMOVE_RECURSE
  "CMakeFiles/test_variable_registry.dir/test_variable_registry.cpp.o"
  "CMakeFiles/test_variable_registry.dir/test_variable_registry.cpp.o.d"
  "test_variable_registry"
  "test_variable_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variable_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
