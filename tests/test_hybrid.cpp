// Hybrid adaptive engine (the paper's Section IV-C future work): per-part
// switching between timer-refreshed versions and lazy caching.
#include <gtest/gtest.h>

#include "evolving/hybrid_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct HybridTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg{.kind = EngineKind::kHybrid};
  HybridEngine engine{cfg};
};

TEST_F(HybridTest, StartsInLazyMode) {
  engine.add(make_sub(1, "x <= 2 * t"), NodeId{1}, host);
  EXPECT_EQ(engine.storage_size(), 1u);
  EXPECT_EQ(engine.lazy_count(), 1u);
  EXPECT_EQ(engine.versioned_count(), 0u);
}

TEST_F(HybridTest, CorrectMatchingInLazyMode) {
  engine.add(make_sub(1, "[tt=0.000001] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1));
  EXPECT_EQ(match(engine, host, parse_publication("x = 2")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 3")).empty());
}

TEST_F(HybridTest, HighProbeRatePromotesToVersioned) {
  engine.add(make_sub(1, "x <= 2 * t"), NodeId{1}, host);
  // Probe well above once per MEI (1 s default): 10 probes per 100 ms.
  sim.every(sec(0.1), Duration::millis(100), sec(3), [&](SimTime) {
    (void)match(engine, host, parse_publication("x = 1000"));
  });
  sim.run_until(sec(2.5));
  EXPECT_EQ(engine.versioned_count(), 1u);
  EXPECT_EQ(engine.lazy_count(), 0u);
  EXPECT_GT(engine.costs().evolutions, 0u);  // timer refreshes happening
}

TEST_F(HybridTest, QuietSubscriptionStaysOrReturnsLazy) {
  engine.add(make_sub(1, "x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(5));  // several windows with zero probes
  EXPECT_EQ(engine.lazy_count(), 1u);

  // Promote with a burst, then go quiet: it must demote again.
  sim.every(sim.now() + Duration::millis(100), Duration::millis(100), sec(8), [&](SimTime) {
    (void)match(engine, host, parse_publication("x = 1000"));
  });
  sim.run_until(sec(8.5));
  EXPECT_EQ(engine.versioned_count(), 1u);
  sim.run_until(sec(12));  // quiet again
  EXPECT_EQ(engine.lazy_count(), 1u);
}

TEST_F(HybridTest, VersionedModeMatchesWithMeiGranularity) {
  engine.add(make_sub(1, "x <= 2 * t"), NodeId{1}, host);
  // Promote to versioned with frequent probes.
  sim.every(sec(0.05), Duration::millis(50), sec(10), [&](SimTime) {
    (void)match(engine, host, parse_publication("x = 1e9"));
  });
  sim.run_until(sec(4.2));
  ASSERT_EQ(engine.versioned_count(), 1u);
  // Version refreshed at the last tick (t=4): bound ~8.
  EXPECT_EQ(match(engine, host, parse_publication("x = 7.9")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 8.5")).empty());
}

TEST_F(HybridTest, MixedPopulationSplitsModes) {
  engine.add(make_sub(1, "hot <= 2 * t"), NodeId{1}, host);
  engine.add(make_sub(2, "cold <= 2 * t"), NodeId{2}, host);
  // Only the "hot" attribute is probed frequently; the cold subscription has
  // a different destination but is probed by the same publications... use an
  // attribute the cold sub does not carry so it is probed but never matched:
  // both parts are probed (no static gate), so drive separate publications.
  sim.every(sec(0.1), Duration::millis(100), sec(3), [&](SimTime) {
    // Publication carries only `hot`: the cold part is probed but its
    // predicate attribute is missing -> still counts as a probe.
    (void)match(engine, host, parse_publication("hot = 1e9"));
  });
  sim.run_until(sec(2.5));
  // Both destinations see the probe traffic (evaluation is per destination),
  // so both become versioned — this documents that probe accounting is per
  // structural visit, not per match.
  EXPECT_EQ(engine.versioned_count(), 2u);
}

TEST_F(HybridTest, StaticSubscriptionsUnaffected) {
  engine.add(make_sub(1, "x > 0"), NodeId{1}, host);
  EXPECT_EQ(engine.storage_size(), 0u);
  EXPECT_EQ(match(engine, host, parse_publication("x = 1")).size(), 1u);
  sim.run_until(sec(3));
  EXPECT_EQ(engine.costs().evolutions, 0u);  // no timer work for static subs
}

TEST_F(HybridTest, SplitSubscriptionGatedByStaticPart) {
  engine.add(make_sub(1, "symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host);
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'MSFT'; price = 1")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 1")).size(), 1u);
}

TEST_F(HybridTest, RemoveStopsTimerWorkWhenEmpty) {
  engine.add(make_sub(1, "x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(2));
  EXPECT_TRUE(engine.remove(SubscriptionId{1}, host));
  sim.run_until(sec(4));
  // The tick chain goes quiescent once no evolving parts remain: the
  // simulator queue must eventually drain.
  sim.run_all(1000);
  EXPECT_TRUE(sim.empty());
}

TEST_F(HybridTest, EarlyExitPerDestination) {
  engine.add(make_sub(1, "[tt=1] x >= t"), NodeId{7}, host);
  engine.add(make_sub(2, "[tt=1] x >= t"), NodeId{7}, host);
  const auto dests = match(engine, host, parse_publication("x = 5"));
  EXPECT_EQ(dests, std::vector<NodeId>{NodeId{7}});
  EXPECT_EQ(engine.costs().cache_misses, 1u);
}

TEST_F(HybridTest, SnapshotBypassesVersions) {
  host.set_variable("v", 0.1);
  engine.add(make_sub(1, "x <= 10 * v"), NodeId{1}, host);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
  Publication pub = parse_publication("x = 5");
  pub.set_entry_time(sim.now());
  const VariableSnapshot snapshot = make_variable_snapshot({{"v", 1.0}});
  EXPECT_EQ(match(engine, host, pub, &snapshot).size(), 1u);
}

TEST_F(HybridTest, AgreesWithExactOracleInLazyMode) {
  // With tiny TT and no promotion (single probes spaced > MEI apart), the
  // hybrid engine is exact like LEES.
  engine.add(make_sub(1, "[tt=0.000001] x >= -3 + t; x <= 3 + t"), NodeId{1}, host);
  for (double t = 0; t <= 8; t += 2.0) {
    sim.run_until(sec(t));
    const bool expected = (4.0 >= -3 + t) && (4.0 <= 3 + t);
    EXPECT_EQ(!match(engine, host, parse_publication("x = 4")).empty(), expected) << t;
  }
}

}  // namespace
}  // namespace evps
