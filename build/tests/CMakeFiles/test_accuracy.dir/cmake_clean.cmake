file(REMOVE_RECURSE
  "CMakeFiles/test_accuracy.dir/test_accuracy.cpp.o"
  "CMakeFiles/test_accuracy.dir/test_accuracy.cpp.o.d"
  "test_accuracy"
  "test_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
