# Empty dependencies file for test_ids.
# This may be replaced when dependencies are built.
