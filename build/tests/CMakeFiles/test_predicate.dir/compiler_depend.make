# Empty compiler generated dependencies file for test_predicate.
# This may be replaced when dependencies are built.
