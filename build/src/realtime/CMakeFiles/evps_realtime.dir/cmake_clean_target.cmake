file(REMOVE_RECURSE
  "libevps_realtime.a"
)
