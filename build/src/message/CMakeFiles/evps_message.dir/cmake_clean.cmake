file(REMOVE_RECURSE
  "CMakeFiles/evps_message.dir/advertisement.cpp.o"
  "CMakeFiles/evps_message.dir/advertisement.cpp.o.d"
  "CMakeFiles/evps_message.dir/codec.cpp.o"
  "CMakeFiles/evps_message.dir/codec.cpp.o.d"
  "CMakeFiles/evps_message.dir/predicate.cpp.o"
  "CMakeFiles/evps_message.dir/predicate.cpp.o.d"
  "CMakeFiles/evps_message.dir/publication.cpp.o"
  "CMakeFiles/evps_message.dir/publication.cpp.o.d"
  "CMakeFiles/evps_message.dir/subscription.cpp.o"
  "CMakeFiles/evps_message.dir/subscription.cpp.o.d"
  "libevps_message.a"
  "libevps_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
