// Location-based MMOG workload (Sections VI-C and VI-D, Figures 8-10).
//
// A single game server with an embedded broker hosts up to thousands of
// characters owned by up to 100 client machines. Every character subscribes
// to a rectangular area of interest centred on its position; all characters
// independently pick a movement direction every epoch (10 s) and move at
// constant speed, so the interest rectangle slides linearly — exactly the
// evolving subscription pattern of Figure 1. Each evolving subscription is
// replaced at the epoch boundary with a fresh one carrying the new velocity.
//
// The in-game visibility variable `v` (0..1) scales the area of interest;
// the server sets it directly on its embedded broker. For the non-evolving
// baseline (Section VI-D), the server additionally publishes weather
// notifications that clients subscribe to, and clients resubscribe both on
// movement ticks and on visibility changes — until the final blackout window
// when weather notifications stop and the baseline goes stale.
//
// Substitution vs. the paper (see DESIGN.md): the Mammoth game trace is
// replaced by this seeded motion model, which is the motion model the paper
// itself describes; game-event publications are generated at the positions
// of randomly chosen characters plus uniform background noise.
#pragma once

#include <memory>
#include <vector>

#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "workloads/system_kind.hpp"

namespace evps {

struct GameConfig {
  SystemKind system = SystemKind::kClees;
  std::uint64_t seed = 7;

  std::size_t characters = 500;
  /// Client machines; characters are distributed round-robin (Figure 10(b)
  /// varies this to change the subscription-to-client ratio).
  std::size_t clients = 100;

  double world_half = 100.0;  // world is [-world_half, world_half]^2
  double speed_min = 0.5;     // units/s
  double speed_max = 3.0;
  double half_width = 3.0;   // AoI half extents (paper: 6x4 rectangle)
  double half_height = 2.0;

  Duration move_epoch = Duration::seconds(10.0);  // direction + sub replacement
  Duration mei = Duration::seconds(1.0);
  Duration tt = Duration::seconds(1.0);

  /// Standard-matcher implementation used by the broker engine.
  MatcherKind matcher = MatcherKind::kCounting;

  // --- broker matrix knobs (sweep harness) ----------------------------------
  // Defaults reproduce the historical single-shard, unbatched behaviour
  // bit for bit; the sweep driver varies them to span the capacity matrix.
  /// Matcher shards/threads inside the game-server engine (0 = single shard).
  std::size_t matcher_threads = 0;
  /// Publication batch size inside the broker (1 = no batching).
  std::size_t batch_size = 1;
  /// Per-link outgoing batch size (0 = EVPS_LINK_BATCH env, default 1).
  std::size_t link_batch_size = 0;

  /// Game-event publications per second.
  double pub_rate = 200.0;
  /// Fraction of events at character positions (rest uniform background).
  double hotspot_fraction = 0.7;

  /// Fraction of characters using evolving subscriptions; the rest install
  /// one static subscription at start (Figure 8(c): 0.5).
  double evolving_fraction = 1.0;

  Duration client_latency = Duration::millis(2);

  /// Resubscription cadence of baseline (non-evolving) characters.
  Duration resub_interval = Duration::seconds(1.0);

  // --- visibility experiment (Figure 10(c)) ---------------------------------
  bool use_visibility = false;
  Duration visibility_step = Duration::seconds(3.0);
  /// No weather notifications to clients during the last part of the run.
  Duration blackout_tail = Duration::seconds(30.0);

  SimTime duration = SimTime::from_seconds(60.0);
};

class GameExperiment {
 public:
  explicit GameExperiment(const GameConfig& config);

  void run();

  [[nodiscard]] Overlay& overlay() noexcept { return overlay_; }
  [[nodiscard]] const GameConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Broker& server() { return *server_; }

  /// Engine cost accounting of the (single) game broker.
  [[nodiscard]] const EngineCosts& engine_costs() const { return server_->engine().costs(); }

  [[nodiscard]] DeliveryLog delivery_log() const { return collect_delivery_log(overlay_); }

  /// Game-event deliveries per sampling second (Figure 10(c) series).
  [[nodiscard]] const std::vector<std::uint64_t>& deliveries_per_second() const noexcept {
    return deliveries_per_second_;
  }
  /// Subscription-related messages the broker received.
  [[nodiscard]] std::uint64_t subscription_msgs() const noexcept {
    return server_->stats().subscription_msgs;
  }

  /// Scheduled visibility value at time `t` (Figure 10(c) schedule).
  [[nodiscard]] double visibility_at(SimTime t) const;

  /// Exact position of character `i` at time `t` (piecewise linear).
  [[nodiscard]] std::pair<double, double> character_position(std::size_t i, SimTime t) const;

 private:
  struct Character {
    std::size_t owner = 0;  // index into owners_
    bool evolving = true;
    double x = 0, y = 0;    // position at epoch start
    double dx = 0, dy = 0;  // velocity (units/s)
    double speed = 1.0;
    SimTime epoch = SimTime::zero();
    SubscriptionId current_sub{};
    Rng rng{0};
  };

  struct Owner {
    PubSubClient* client = nullptr;
    double known_visibility = 1.0;  // last weather value received (baseline)
  };

  void build();
  void pick_direction(Character& ch);
  void start_epoch(std::size_t char_index, SimTime now);
  [[nodiscard]] Subscription make_evolving_subscription(const Character& ch, SimTime now) const;
  [[nodiscard]] Subscription make_static_subscription(const Character& ch, SimTime now,
                                                      double visibility) const;
  void schedule_publications();
  void schedule_visibility();
  void schedule_delivery_sampler();

  GameConfig cfg_;
  Simulator sim_;
  Overlay overlay_;
  Rng rng_;

  Broker* server_ = nullptr;
  PubSubClient* event_source_ = nullptr;
  std::vector<Owner> owners_;
  std::vector<Character> characters_;
  std::vector<std::uint64_t> deliveries_per_second_;
  std::uint64_t event_deliveries_ = 0;
  std::uint64_t last_delivery_total_ = 0;
  bool ran_ = false;
};

}  // namespace evps
