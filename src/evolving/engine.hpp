// Broker-side subscription engine interface.
//
// A BrokerEngine owns everything a broker needs to match publications
// against installed subscriptions: the standard matcher plus, for the
// evolving designs, the evolution machinery of Section IV/V:
//
//   * StaticEngine     — plain matcher; evolving subscriptions rejected.
//                        Used by the resubscription baseline.
//   * ParametricEngine — plain matcher + in-place subscription updates
//                        (the parametric-subscriptions baseline [12]).
//   * VesEngine        — Versioned Evolving Subscriptions: materialised
//                        versions kept in the matcher, refreshed per MEI via
//                        the Evolving Subscription Queue.
//   * LeesEngine       — Lazy Evaluation: evolving predicates evaluated on
//                        every publication (LEME).
//   * CleesEngine      — Cached lazy evaluation with time threshold TT.
//   * HybridEngine     — adaptive per-subscription switch between
//                        timer-refreshed versions (VES-like) and lazy
//                        caching (CLEES-like); the paper's future work.
//
// Matching is destination-oriented: the broker registers each subscription
// with the next hop (client or neighbour broker) it was received from, and
// match() returns the set of destinations the publication must be forwarded
// to. This enables the paper's per-client early-exit optimisation in LEES
// (Section VI-C, Figure 10(b)).
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/audit/snapshot.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "expr/variable_registry.hpp"
#include "matching/matcher.hpp"
#include "matching/sharded_matcher.hpp"
#include "message/messages.hpp"
#include "message/subscription.hpp"
#include "metrics/shard_counters.hpp"
#include "sim/stats.hpp"

namespace evps {

/// Services the hosting broker provides to an engine: virtual time, timer
/// scheduling and the broker-local evolution variable registry.
class EngineHost {
 public:
  virtual ~EngineHost() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
  /// Schedule `fn` to run after `delay` of virtual time.
  virtual void schedule(Duration delay, std::function<void()> fn) = 0;
  [[nodiscard]] virtual VariableRegistry& variables() = 0;
  [[nodiscard]] const VariableRegistry& variables() const {
    return const_cast<EngineHost*>(this)->variables();
  }
};

/// Cost accounting (paper metrics 3 and 4, Section VI-A).
struct EngineCosts {
  /// Per-operation time spent maintaining subscription versions
  /// (VES evolution updates, parametric updates), in seconds.
  Summary maintenance;
  /// Per-publication time spent on lazy evaluation (LEES/CLEES), in seconds.
  Summary lazy_eval;
  /// Per-publication time spent in the standard matcher, in seconds.
  Summary match;

  std::uint64_t evolutions = 0;        // VES version replacements
  std::uint64_t lazy_evaluations = 0;  // LEES/CLEES on-demand evaluations
  std::uint64_t cache_hits = 0;        // CLEES
  std::uint64_t cache_misses = 0;      // CLEES

  /// Total engine processing time in seconds (maintenance + lazy + match).
  [[nodiscard]] double total_seconds() const noexcept {
    return maintenance.sum() + lazy_eval.sum() + match.sum();
  }

  void reset() {
    *this = EngineCosts{};
  }
};

enum class EngineKind { kStatic, kParametric, kVes, kLees, kClees, kHybrid };

[[nodiscard]] const char* to_string(EngineKind kind) noexcept;

struct EngineConfig {
  EngineKind kind = EngineKind::kStatic;
  MatcherKind matcher = MatcherKind::kCounting;
  /// Fallback MEI/TT for subscriptions that do not specify one.
  Duration default_mei = Duration::seconds(1.0);
  Duration default_tt = Duration::seconds(1.0);
  /// VES extension (Section IV-A): versions installed for *broker* next hops
  /// are widened to cover the whole upcoming MEI window, trading false
  /// positives on the forwarding path for the elimination of staleness
  /// false negatives. Versions for directly attached subscribers stay exact.
  bool overestimate_forwarding = false;
  /// CLEES extension: size TT cache windows from static analysis
  /// (analysis/analyzer.hpp) at install time. Parts whose bounds are
  /// provably constant never expire; parts independent of `t` stay valid
  /// past TT while no registry variable has changed. Both cases re-derive
  /// bit-identical bounds, so this only skips provably redundant
  /// re-materialisations — observable behaviour is unchanged.
  bool analysis_cache_windows = true;
  /// Share one physical matcher/storage entry among subscriptions whose
  /// installs are interchangeable for delivery: identical destination and
  /// bit-identical predicates (and epoch where `t` matters). Removal is
  /// refcounted, so delivery sets are unchanged — this only shrinks the
  /// matcher population under duplicate-heavy workloads.
  bool dedup_identical = true;
  /// Matcher shards (ShardedMatcher): subscriptions are hash-partitioned
  /// across this many independent matcher instances and match() fans out to
  /// the shared worker pool. 0 resolves to the EVPS_MATCHER_THREADS
  /// environment variable (default 1). Results are bit-identical for every
  /// value; 1 is the exact single-threaded layout.
  std::size_t matcher_threads = 0;
};

/// Refcounted install-sharing groups (EngineConfig::dedup_identical). Keys
/// must be injective over delivery behaviour: two ids may share a key only
/// when installing either produces the same matches to the same destination.
/// The first member of a group is its *canonical* id — the one physically
/// installed; when it leaves, the table nominates a surviving member to
/// reinstall under.
class DedupTable {
 public:
  /// Track `id` under `key`. True when `id` opened the group (the caller
  /// must physically install it).
  bool add(SubscriptionId id, std::string key);

  struct RemoveAction {
    bool tracked = false;    ///< id was known to this table
    bool uninstall = false;  ///< id was canonical: physically uninstall it
    /// Surviving member to reinstall under (invalid when the group died).
    SubscriptionId reinstall = SubscriptionId::invalid();
  };
  RemoveAction remove(SubscriptionId id);

  [[nodiscard]] std::size_t members() const noexcept { return key_of_.size(); }
  [[nodiscard]] std::size_t groups() const noexcept { return groups_.size(); }

  /// Visit every group as (key, members); members.front() is the canonical
  /// (physically installed) id. Snapshot export support (analysis/audit).
  template <typename Fn>
  void for_each_group(Fn&& fn) const {
    for (const auto& [key, members] : groups_) fn(key, members);
  }
  /// Physical installs currently saved by sharing.
  [[nodiscard]] std::size_t suppressed() const noexcept {
    return key_of_.size() - groups_.size();
  }

 private:
  std::unordered_map<std::string, std::vector<SubscriptionId>> groups_;
  std::unordered_map<SubscriptionId, std::string> key_of_;
};

/// Dedup key for a fully-static subscription installed towards `dest`:
/// destination + order-independent, bit-exact predicate serialization
/// (int64s in decimal, doubles as bit patterns, strings length-prefixed).
[[nodiscard]] std::string static_dedup_key(NodeId dest, const std::vector<Predicate>& preds);

class BrokerEngine {
 public:
  explicit BrokerEngine(const EngineConfig& config);
  virtual ~BrokerEngine() = default;
  BrokerEngine(const BrokerEngine&) = delete;
  BrokerEngine& operator=(const BrokerEngine&) = delete;

  /// Install `sub` with next-hop `dest`. `host` supplies time/timers (may be
  /// needed immediately for VES). `dest_is_broker` marks forwarding hops
  /// (enables the overestimation extension). Duplicate ids throw.
  void add(const SubscriptionPtr& sub, NodeId dest, EngineHost& host,
           bool dest_is_broker = false);

  /// Remove a subscription; returns false if unknown.
  bool remove(SubscriptionId id, EngineHost& host);

  /// Parametric update: replace the constant operand of predicate i with
  /// new_values[i] (engaged entries only). The subscription keeps its id and
  /// destination. Returns false if unknown.
  bool update(SubscriptionId id, const std::vector<std::optional<Value>>& new_values,
              EngineHost& host);

  /// Match `pub` and return the destinations it must be forwarded to
  /// (deduplicated, ascending). `snapshot` carries piggybacked variable
  /// values in snapshot-consistency mode: when present, evolving predicates
  /// evaluate at the publication's entry time with those values.
  void match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
             std::vector<NodeId>& destinations);

  /// Batch variant: destinations[i] receives the deduplicated ascending
  /// destinations of *pubs[i], exactly as if match() had been called per
  /// publication with the same snapshot — engines override the underlying
  /// hook only to amortise pool dispatches, never to change results. The
  /// batch is a span of pointers so the broker can hand over shared
  /// (refcounted) publications without staging copies. `destinations` is
  /// grown to pubs.size() if needed (never shrunk, so the inner vectors keep
  /// their capacity); used entries are cleared first.
  void match_batch(std::span<const Publication* const> pubs, const VariableSnapshot* snapshot,
                   EngineHost& host, std::vector<std::vector<NodeId>>& destinations);

  /// Convenience overload for contiguous publications (tests, benches):
  /// builds a pointer span over grow-only scratch and delegates.
  void match_batch(std::span<const Publication> pubs, const VariableSnapshot* snapshot,
                   EngineHost& host, std::vector<std::vector<NodeId>>& destinations);

  [[nodiscard]] std::size_t size() const noexcept { return subs_.size(); }
  [[nodiscard]] bool contains(SubscriptionId id) const noexcept { return subs_.contains(id); }
  [[nodiscard]] const EngineCosts& costs() const noexcept { return costs_; }
  void reset_costs() noexcept { costs_.reset(); }
  [[nodiscard]] EngineKind kind() const noexcept { return config_.kind; }

  /// Physical matcher entries (shared installs counted once).
  [[nodiscard]] std::size_t matcher_population() const noexcept { return matcher_->size(); }

  /// Matcher shards backing this engine (EngineConfig::matcher_threads).
  [[nodiscard]] std::size_t shard_count() const noexcept { return sharded_->shard_count(); }
  /// Physical matcher entries per shard (occupancy metric).
  [[nodiscard]] std::vector<std::size_t> shard_occupancy() const {
    return sharded_->shard_sizes();
  }
  [[nodiscard]] const BatchCounters& batch_counters() const noexcept { return batch_counters_; }
  /// Installs currently elided by identical-subscription sharing.
  [[nodiscard]] virtual std::size_t deduped_installs() const noexcept {
    return static_dedup_.suppressed();
  }

  /// Destination registered for `id` (invalid NodeId if unknown).
  [[nodiscard]] NodeId destination_of(SubscriptionId id) const noexcept;

  /// The (current) subscription object installed under `id`, or null.
  [[nodiscard]] SubscriptionPtr subscription_of(SubscriptionId id) const noexcept;

  /// Export the engine's logical table and physical footprint into `out`
  /// (analysis/audit snapshots). The base fills kind, dedup flag, the
  /// installed table, the matcher's id population and the static dedup
  /// groups; lazy engines override to append their storage entries and lazy
  /// dedup groups (calling the base first).
  virtual void export_audit_state(audit::EngineState& out) const;

 protected:
  struct Installed {
    SubscriptionPtr sub;
    NodeId dest;
    bool dest_is_broker = false;
  };

  // Subclass hooks. The base class maintains subs_ bookkeeping.
  virtual void do_add(const Installed& entry, EngineHost& host) = 0;
  virtual void do_remove(const Installed& entry, EngineHost& host) = 0;
  virtual void do_match(const Publication& pub, const VariableSnapshot* snapshot,
                        EngineHost& host, std::vector<NodeId>& destinations) = 0;

  /// Batch hook. The default simply loops do_match — exact by construction.
  /// Overrides must produce identical destinations (pre-dedup order may
  /// differ; the caller sorts). `destinations` is already sized and cleared.
  virtual void do_match_batch(std::span<const Publication* const> pubs,
                              const VariableSnapshot* snapshot, EngineHost& host,
                              std::vector<std::vector<NodeId>>& destinations);

  /// Batch implementation for matcher-only engines (Static/Parametric/VES):
  /// one sharded matcher dispatch for the whole batch, then per-publication
  /// id -> destination mapping. The matcher timer records once per batch.
  void matcher_only_match_batch(std::span<const Publication* const> pubs,
                                std::vector<std::vector<NodeId>>& destinations);

  /// Rebind the engine-owned evaluation scope for `pub`. In snapshot mode
  /// the scope is anchored at the publication entry time and the snapshot
  /// values shadow the local registry; otherwise it evaluates at `now`.
  /// Callers select the subscription epoch per evolving part via
  /// EvalScope::set_epoch. Allocation-free once the variable universe is
  /// known.
  [[nodiscard]] EvalScope& publication_scope(const Publication& pub,
                                             const VariableSnapshot* snapshot,
                                             const VariableRegistry& registry, SimTime now);

  /// The rebinding behind publication_scope, applicable to any scope (the
  /// sharded lazy engines keep one EvalScope per shard worker).
  static void rebind_publication_scope(EvalScope& scope, const Publication& pub,
                                       const VariableSnapshot* snapshot,
                                       const VariableRegistry& registry, SimTime now);

  [[nodiscard]] const std::unordered_map<SubscriptionId, Installed>& installed() const noexcept {
    return subs_;
  }

  /// Installed entry for a matcher-returned id, or null when the matcher and
  /// the installed table have desynchronised (a bug — asserts in debug
  /// builds; release builds skip the stale id instead of throwing).
  [[nodiscard]] const Installed* installed_entry(SubscriptionId id) const noexcept;

  /// Effective MEI/TT for a subscription (subscription value, or config
  /// default when the subscription carries a non-positive one).
  [[nodiscard]] Duration effective_mei(const Subscription& sub) const noexcept;
  [[nodiscard]] Duration effective_tt(const Subscription& sub) const noexcept;

  /// Install a FULLY-static subscription into the matcher, sharing one
  /// matcher entry per identical (destination, predicates) group when
  /// config_.dedup_identical. Sound because the matcher result is only ever
  /// mapped to the canonical member's destination, which all members share.
  /// Must not be used for split (static half of evolving) installs: those
  /// are keyed by subscription id in the lazy stores (note_m1).
  void matcher_add_static(const Installed& entry);
  /// Removal counterpart: keeps a canonical member installed while the
  /// group is non-empty. Falls back to a plain matcher remove for untracked
  /// ids (dedup disabled).
  void matcher_remove_static(SubscriptionId id);

  DedupTable static_dedup_;

  EngineConfig config_;
  MatcherPtr matcher_;
  /// matcher_ downcast (the engine always builds a ShardedMatcher; K=1 is
  /// a zero-overhead passthrough to a single underlying matcher).
  ShardedMatcher* sharded_ = nullptr;
  EngineCosts costs_;
  BatchCounters batch_counters_;

  // Per-publication scratch shared by the subclasses so that steady-state
  // matching never allocates: the matcher result buffer, the evaluation
  // scope (rebound, not rebuilt, each publication) and the value stack used
  // by compiled expression programs.
  std::vector<SubscriptionId> m1_;
  /// Batch counterpart of m1_: per-publication hit lists (grow-only).
  std::vector<std::vector<SubscriptionId>> m1_batch_;
  /// Pointer staging for the contiguous match_batch overload (grow-only).
  std::vector<const Publication*> ptr_scratch_;
  EvalScope scope_;
  std::vector<double> eval_stack_;

  /// RAII timer recording into a Summary (seconds).
  class ScopedTimer {
   public:
    explicit ScopedTimer(Summary& target) noexcept
        : target_(target), start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      const auto end = std::chrono::steady_clock::now();
      target_.record(std::chrono::duration<double>(end - start_).count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    Summary& target_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  std::unordered_map<SubscriptionId, Installed> subs_;
};

using BrokerEnginePtr = std::unique_ptr<BrokerEngine>;

[[nodiscard]] BrokerEnginePtr make_engine(const EngineConfig& config);

}  // namespace evps
