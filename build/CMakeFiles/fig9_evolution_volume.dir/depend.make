# Empty dependencies file for fig9_evolution_volume.
# This may be replaced when dependencies are built.
