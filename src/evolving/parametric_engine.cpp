#include "evolving/parametric_engine.hpp"

// ParametricEngine is entirely defined in the header; this translation unit
// exists so the class has a home for future extensions (e.g. the update
// approximation/thrashing-avoidance heuristics sketched in [12]).
