// Fuzz-style property test for the parse -> compile -> verify front door:
// thousands of seeded random and truncated token streams must either parse
// into an expression whose compiled program passes verification, or be
// rejected cleanly via ParseError/try_parse_expr — never crash, corrupt
// state, or produce an unverifiable program. Run it under the sanitize
// presets (ASan+UBSan / TSan) to give "cleanly" teeth.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/rng.hpp"
#include "expr/parser.hpp"
#include "expr/program.hpp"

namespace evps {
namespace {

/// Random token soup: mostly grammar tokens (so a fair share parses), with
/// occasional junk bytes.
std::string random_stream(Rng& rng) {
  static const char* const kTokens[] = {
      "1",    "2.5",  "-3",   "t",     "mi_v",  "mi_w", "+",    "-",     "*",
      "/",    "%",    "^",    "(",     ")",     ",",    "min",  "max",   "clamp",
      "step", "abs",  "sqrt", "floor", "ceil",  "sin",  "cos",  "sign",  "1e9",
      "0.0",  "42",   ".5",   "e",     "..",    "1e",   "@",    "$",     "#",
  };
  constexpr int kCount = static_cast<int>(std::size(kTokens));
  std::string out;
  const int n = static_cast<int>(rng.uniform_int(1, 16));
  for (int i = 0; i < n; ++i) {
    if (i != 0 && rng.bernoulli(0.7)) out += ' ';
    out += kTokens[rng.uniform_int(0, kCount - 1)];
  }
  return out;
}

/// A valid expression with a random prefix chopped off mid-token — the
/// truncation shapes deserializers actually see.
std::string truncated_stream(Rng& rng) {
  static const char* const kValid[] = {
      "min(1, 2 + t, clamp(mi_v, 0, 10))",
      "-3 + 2 * step(t - 5)",
      "sqrt(abs(mi_v)) ^ 2 % 7",
      "max(1e3, floor(t / 60), ceil(0.5))",
      "sign(sin(t) * cos(mi_w)) + 1",
  };
  const std::string full = kValid[rng.uniform_int(0, std::size(kValid) - 1)];
  return full.substr(0, rng.uniform_int(0, full.size()));
}

TEST(MalformedInput, ParserCompilerVerifierRejectCleanly) {
  std::uint64_t parsed = 0;
  std::uint64_t rejected = 0;
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    Rng rng{seed};
    const std::string text = rng.bernoulli(0.5) ? random_stream(rng) : truncated_stream(rng);

    std::string error;
    const auto expr = try_parse_expr(text, &error);
    if (!expr.has_value()) {
      ++rejected;
      EXPECT_FALSE(error.empty()) << "seed " << seed << ": '" << text << "'";
      continue;
    }
    ++parsed;
    const ExprProgram prog = ExprProgram::compile(**expr);
    const auto r = verify_program(prog);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": '" << text << "' parsed but compiled to an "
                      << "unverifiable program: " << r.message;
  }
  // The stream generators must exercise both outcomes heavily.
  EXPECT_GT(parsed, 200u);
  EXPECT_GT(rejected, 500u);
}

TEST(MalformedInput, ThrowingParserAgreesWithTryVariant) {
  // Same streams through parse_expr: the thrown ParseError must carry an
  // offset inside the text (or == size for end-of-input) and a token that
  // actually occurs at that offset.
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng{seed};
    const std::string text = rng.bernoulli(0.5) ? random_stream(rng) : truncated_stream(rng);
    try {
      (void)parse_expr(text);
    } catch (const ParseError& e) {
      ASSERT_LE(e.offset(), text.size()) << "seed " << seed << ": '" << text << "'";
      if (!e.token().empty()) {
        ASSERT_EQ(text.compare(e.offset(), e.token().size(), e.token()), 0)
            << "seed " << seed << ": '" << text << "' offset " << e.offset() << " token '"
            << e.token() << "'";
      }
    }
  }
}

}  // namespace
}  // namespace evps
