#!/usr/bin/env bash
# Tier-1 entry point: configure, build and test every preset, run clang-tidy
# (when installed), and smoke-run the benchmarks. CI and pre-merge checks run
# exactly this script; a clean exit means the change is green across the
# default build, ASan+UBSan, and TSan.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  cat <<'EOF'
Usage: scripts/check.sh [--quick] [--help]

  --quick   default preset only (skip sanitizers, lint, bench smoke and the
            sharded re-run)
  --help    this text

Full mode runs, in order:
  1. default preset        build + ctest (single-shard matchers, K=1)
  2. sanitize preset       ASan + UBSan build + ctest. Runs the full test
                           set, notably the NaN/IEEE-special matcher suites
                           (test_matcher_nan, test_bound_index, and the
                           NaN-extended property/churn suites) whose
                           historical failure mode — comparator UB and
                           stale-entry use-after-reuse — is exactly what
                           these sanitizers catch.
  3. sanitize-thread       TSan build + ctest. The gate's dedicated payload
                           is tests/test_concurrency_stress: many sharded
                           matchers contending for the shared worker pool,
                           concurrent match_batch dispatches, engine lazy
                           phases fanning out one task per matcher shard,
                           and evolution ticks interleaved with matching.
                           Every other test also runs under TSan, at K=1.
  4. sharded re-run        the default-preset ctest again with
                           EVPS_MATCHER_THREADS=4 exported, so the whole
                           behavioural suite (delivery order, equivalence,
                           soundness) proves bit-identical results at K=4.
  5. link-batch re-run     the default-preset ctest again with
                           EVPS_LINK_BATCH=64 exported: every broker batches
                           per-link forwards and deliveries (DESIGN.md §14),
                           and the whole suite must still be bit-identical.
  6. fuzz smoke            time-boxed run of the fuzz preset harnesses
                           (batch codec, scenario parser, and the
                           differential covering/relational soundness
                           harness) over the checked-in corpus: libFuzzer
                           under Clang, the fallback mutation driver under
                           gcc.
  7. sweep smoke           time-boxed Monte-Carlo capacity sweep: a small
                           evps-sweep run (all scenarios, --selfcheck) at
                           two worker counts, the statistical comparator's
                           --selftest, and a same-parameters comparison
                           that must report zero significant deltas.
  8. clang-tidy lint, bench smoke
EOF
}

QUICK=0
case "${1:-}" in
  --quick) QUICK=1 ;;
  --help|-h) usage; exit 0 ;;
  "") ;;
  *) usage >&2; exit 2 ;;
esac

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_preset() {
  local preset="$1"
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
}

run_preset default

if [[ "${QUICK}" == "0" ]]; then
  run_preset sanitize
  run_preset sanitize-thread

  echo "=== default preset, EVPS_MATCHER_THREADS=4 ==="
  EVPS_MATCHER_THREADS=4 ctest --preset default

  echo "=== default preset, EVPS_LINK_BATCH=64 ==="
  EVPS_LINK_BATCH=64 ctest --preset default

  echo "=== fuzz smoke ==="
  # Time-boxed: each harness replays the corpus then mutates for at most
  # 10s / 5000 runs, whichever comes first. Any crash or round-trip
  # violation aborts the harness and fails the script.
  cmake --preset fuzz
  cmake --build --preset fuzz -j "${JOBS}" --target fuzz_batch_codec fuzz_scenario fuzz_covers
  ./build-fuzz/fuzz/fuzz_batch_codec -runs=5000 -max_total_time=10 fuzz/corpus/batch
  ./build-fuzz/fuzz/fuzz_scenario -runs=5000 -max_total_time=10 fuzz/corpus/scenario
  ./build-fuzz/fuzz/fuzz_covers -runs=2000 -max_total_time=10 fuzz/corpus/covers

  echo "=== sweep smoke ==="
  # Time-boxed statistical smoke: a small sweep with the bit-determinism
  # self-check at two worker counts, then the comparator. Same parameters and
  # seeds on both sides, so any significant delta is a real nondeterminism or
  # statistics bug, not noise.
  timeout 120 ./build/tools/evps-sweep --scenario=all --replicas=8 --scale=0.5 \
      --workers=2 --selfcheck --quiet --out=build/sweep_smoke_a.json
  timeout 120 ./build/tools/evps-sweep --scenario=all --replicas=8 --scale=0.5 \
      --workers=4 --selfcheck --quiet --out=build/sweep_smoke_b.json
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/sweep_compare.py --selftest
    python3 scripts/sweep_compare.py build/sweep_smoke_a.json build/sweep_smoke_b.json
  fi

  echo "=== lint (clang-tidy) ==="
  cmake --build build --target lint -j "${JOBS}"

  echo "=== bench-smoke ==="
  # One pass over every benchmark binary with minimal repetitions: catches
  # crashes and assertion failures without paying for stable timings.
  for bench in build/bench/*; do
    [[ -x "${bench}" ]] || continue
    case "${bench##*/}" in
      micro_matcher)
        # Skip the population-heavy cases (100k point-insert fill, the
        # 100k/1M maintenance-sweep and bulk-rebuild fills) — the 10k
        # variants already cover every code path, including add_batch.
        "${bench}" --benchmark_min_time=0.01 --benchmark_repetitions=1 \
            '--benchmark_filter=-(BM_LargePopulationMatch|BM_MaintenanceSweep<.*>/(100000|1000000)|BM_BulkRebuild/100000)' \
            --benchmark_out=/dev/null >/dev/null ;;
      micro_*)
        # google-benchmark micros. Plain double (seconds): the "0.01s" suffix
        # form needs benchmark >= 1.8. Explicit --benchmark_out so the smoke
        # pass never clobbers the checked-in BENCH_*.json baselines (the
        # micros default their output to those files).
        "${bench}" --benchmark_min_time=0.01 --benchmark_repetitions=1 \
            --benchmark_out=/dev/null >/dev/null ;;
      routing_covering|overlay_batch)
        # argv[1] overrides the output path; keep BENCH_routing.json intact.
        "${bench}" /dev/null >/dev/null ;;
      *)
        # fig/table drivers ignore argv and print to stdout.
        "${bench}" >/dev/null ;;
    esac
    echo "ok: ${bench}"
  done
fi

echo "All checks passed."
