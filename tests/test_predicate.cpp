#include "message/predicate.hpp"

#include <gtest/gtest.h>

#include "expr/parser.hpp"

namespace evps {
namespace {

TEST(RelOp, ToStringAndParse) {
  for (const RelOp op : {RelOp::kLt, RelOp::kLe, RelOp::kGt, RelOp::kGe, RelOp::kEq, RelOp::kNe}) {
    const auto parsed = parse_rel_op(to_string(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_EQ(parse_rel_op("=="), RelOp::kEq);
  EXPECT_EQ(parse_rel_op("<>"), RelOp::kNe);
  EXPECT_FALSE(parse_rel_op("~").has_value());
}

TEST(ApplyRelOp, Numeric) {
  EXPECT_TRUE(apply_rel_op(RelOp::kLt, Value{1}, Value{2}));
  EXPECT_FALSE(apply_rel_op(RelOp::kLt, Value{2}, Value{2}));
  EXPECT_TRUE(apply_rel_op(RelOp::kLe, Value{2}, Value{2}));
  EXPECT_TRUE(apply_rel_op(RelOp::kGt, Value{3.5}, Value{2}));
  EXPECT_TRUE(apply_rel_op(RelOp::kGe, Value{2}, Value{2.0}));
  EXPECT_TRUE(apply_rel_op(RelOp::kEq, Value{2}, Value{2.0}));
  EXPECT_TRUE(apply_rel_op(RelOp::kNe, Value{2}, Value{3}));
}

TEST(ApplyRelOp, IncomparableOnlySatisfiesNe) {
  for (const RelOp op : {RelOp::kLt, RelOp::kLe, RelOp::kGt, RelOp::kGe, RelOp::kEq}) {
    EXPECT_FALSE(apply_rel_op(op, Value{"abc"}, Value{1})) << to_string(op);
  }
  EXPECT_TRUE(apply_rel_op(RelOp::kNe, Value{"abc"}, Value{1}));
}

TEST(Predicate, StaticMatch) {
  const Predicate p{"x", RelOp::kLt, Value{3}};
  EXPECT_FALSE(p.is_evolving());
  EXPECT_TRUE(p.matches(Value{2}));
  EXPECT_FALSE(p.matches(Value{3}));
  EXPECT_EQ(p.attribute(), "x");
  EXPECT_EQ(p.op(), RelOp::kLt);
}

TEST(Predicate, StringEquality) {
  const Predicate p{"symbol", RelOp::kEq, Value{"IBM"}};
  EXPECT_TRUE(p.matches(Value{"IBM"}));
  EXPECT_FALSE(p.matches(Value{"MSFT"}));
  EXPECT_FALSE(p.matches(Value{42}));
}

TEST(Predicate, EvolvingMatch) {
  const Predicate p{"x", RelOp::kLt, parse_expr("2 * t")};
  EXPECT_TRUE(p.is_evolving());
  const MapEnv env{{"t", 3.0}};
  EXPECT_TRUE(p.matches(Value{5}, env));   // 5 < 6
  EXPECT_FALSE(p.matches(Value{7}, env));  // 7 < 6 is false
}

TEST(Predicate, ConstantFunctionDegeneratesToStatic) {
  const Predicate p{"x", RelOp::kLt, parse_expr("2 + 3")};
  EXPECT_FALSE(p.is_evolving());
  EXPECT_TRUE(p.matches(Value{4}));
  EXPECT_DOUBLE_EQ(p.constant().as_double(), 5.0);
}

TEST(Predicate, NullFunctionRejected) {
  EXPECT_THROW(Predicate("x", RelOp::kLt, ExprPtr{}), std::invalid_argument);
}

TEST(Predicate, Materialize) {
  const Predicate p{"x", RelOp::kGe, parse_expr("-3 + t")};
  const MapEnv env{{"t", 1.0}};
  const Predicate version = p.materialize(env);
  EXPECT_FALSE(version.is_evolving());
  EXPECT_DOUBLE_EQ(version.constant().as_double(), -2.0);
  EXPECT_EQ(version.attribute(), "x");
  EXPECT_EQ(version.op(), RelOp::kGe);

  // Static predicates materialise to themselves.
  const Predicate s{"y", RelOp::kEq, Value{7}};
  EXPECT_EQ(s.materialize(env), s);
}

TEST(Predicate, Variables) {
  const Predicate p{"x", RelOp::kGe, parse_expr("(3 + t) * v")};
  const auto vars = p.variables();
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars.contains("t"));
  EXPECT_TRUE(vars.contains("v"));
  EXPECT_TRUE(Predicate("x", RelOp::kGe, Value{1}).variables().empty());
}

TEST(Predicate, EqualityAndToString) {
  const Predicate a{"x", RelOp::kLt, Value{3}};
  const Predicate b{"x", RelOp::kLt, Value{3}};
  const Predicate c{"x", RelOp::kLe, Value{3}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.to_string(), "x < 3");

  const Predicate e1{"x", RelOp::kGe, parse_expr("t * 2")};
  const Predicate e2{"x", RelOp::kGe, parse_expr("t * 2")};
  const Predicate e3{"x", RelOp::kGe, parse_expr("t * 3")};
  EXPECT_EQ(e1, e2);
  EXPECT_FALSE(e1 == e3);
  EXPECT_FALSE(e1 == a);
}

TEST(Predicate, UnboundVariableFailsClosed) {
  const Predicate p{"x", RelOp::kGe, parse_expr("10 * ghost")};
  const MapEnv empty;
  EXPECT_FALSE(p.matches(Value{1'000'000}, empty));  // no crash, no match

  const Predicate version = p.materialize(empty);
  EXPECT_FALSE(version.is_evolving());
  EXPECT_FALSE(version.matches(Value{1'000'000}));
  EXPECT_FALSE(version.matches(Value{-1'000'000}));
  EXPECT_FALSE(version.matches(Value{"anything"}));
}

TEST(Predicate, NonFiniteConstantExpressionStaysEvolvingAndNeverMatches) {
  // sqrt(-1) is a constant NaN: kept as an expression (a NaN Value would not
  // round-trip), and the comparison never satisfies an ordering operator.
  const Predicate p{"x", RelOp::kLt, parse_expr("sqrt(0 - 1)")};
  EXPECT_TRUE(p.is_evolving());
  const MapEnv empty;
  EXPECT_FALSE(p.matches(Value{0}, empty));
}

TEST(Predicate, PaperGameExample) {
  // Section III-C: publication (x,4) vs subscription {x >= -3 + t, x <= 3 + t}.
  const Predicate lo{"x", RelOp::kGe, parse_expr("-3 + t")};
  const Predicate hi{"x", RelOp::kLe, parse_expr("3 + t")};
  const MapEnv at0{{"t", 0.0}};
  const MapEnv at1{{"t", 1.0}};
  // At t=0 the publication x=4 does not match (4 <= 3 fails).
  EXPECT_TRUE(lo.matches(Value{4}, at0));
  EXPECT_FALSE(hi.matches(Value{4}, at0));
  // At t=1 it matches: 4 >= -2 and 4 <= 4.
  EXPECT_TRUE(lo.matches(Value{4}, at1));
  EXPECT_TRUE(hi.matches(Value{4}, at1));
}

}  // namespace
}  // namespace evps
