file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot_consistency.dir/test_snapshot_consistency.cpp.o"
  "CMakeFiles/test_snapshot_consistency.dir/test_snapshot_consistency.cpp.o.d"
  "test_snapshot_consistency"
  "test_snapshot_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
