
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/ast.cpp" "src/expr/CMakeFiles/evps_expr.dir/ast.cpp.o" "gcc" "src/expr/CMakeFiles/evps_expr.dir/ast.cpp.o.d"
  "/root/repo/src/expr/parser.cpp" "src/expr/CMakeFiles/evps_expr.dir/parser.cpp.o" "gcc" "src/expr/CMakeFiles/evps_expr.dir/parser.cpp.o.d"
  "/root/repo/src/expr/variable_registry.cpp" "src/expr/CMakeFiles/evps_expr.dir/variable_registry.cpp.o" "gcc" "src/expr/CMakeFiles/evps_expr.dir/variable_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
