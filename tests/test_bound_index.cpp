// PagedBoundIndex unit tests: agreement with a reference sorted multiset
// under randomized insert/erase/scan workloads, page-split/page-drain edge
// cases, bulk-merge equivalence, and the IEEE corner cases the ordering
// contract promises (±inf, -0.0; NaN is rejected by contract and never
// inserted).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "matching/bound_index.hpp"

namespace evps {
namespace {

using Slot = PagedBoundIndex::Slot;
using Entry = PagedBoundIndex::Entry;

/// Reference model: flat vector kept sorted by (bound, slot).
struct Reference {
  std::vector<Entry> entries;

  static bool less(const Entry& a, const Entry& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.slot < b.slot;
  }

  void insert(double bound, Slot slot) {
    const Entry e{bound, slot};
    entries.insert(std::upper_bound(entries.begin(), entries.end(), e, less), e);
  }

  bool erase(double bound, Slot slot) {
    const auto it = std::find_if(entries.begin(), entries.end(), [&](const Entry& e) {
      return e.bound == bound && e.slot == slot;
    });
    if (it == entries.end()) return false;
    entries.erase(it);
    return true;
  }

  [[nodiscard]] std::vector<Slot> below(double v, bool inclusive) const {
    std::vector<Slot> out;
    for (const auto& e : entries) {
      if (inclusive ? e.bound <= v : e.bound < v) out.push_back(e.slot);
    }
    return out;
  }

  [[nodiscard]] std::vector<Slot> above(double v, bool inclusive) const {
    std::vector<Slot> out;
    for (const auto& e : entries) {
      if (inclusive ? e.bound >= v : e.bound > v) out.push_back(e.slot);
    }
    return out;
  }
};

std::vector<Slot> collect_below(const PagedBoundIndex& idx, double v, bool inclusive) {
  std::vector<Slot> out;
  idx.visit_below(v, inclusive, [&](Slot s) { out.push_back(s); });
  return out;
}

std::vector<Slot> collect_above(const PagedBoundIndex& idx, double v, bool inclusive) {
  std::vector<Slot> out;
  idx.visit_above(v, inclusive, [&](Slot s) { out.push_back(s); });
  return out;
}

void expect_agrees(const PagedBoundIndex& idx, const Reference& ref, double v) {
  for (const bool inclusive : {false, true}) {
    EXPECT_EQ(collect_below(idx, v, inclusive), ref.below(v, inclusive)) << "v=" << v;
    EXPECT_EQ(collect_above(idx, v, inclusive), ref.above(v, inclusive)) << "v=" << v;
  }
}

TEST(PagedBoundIndex, EmptyIndexScansNothing) {
  PagedBoundIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(collect_below(idx, 0.0, true).empty());
  EXPECT_TRUE(collect_above(idx, 0.0, true).empty());
  EXPECT_FALSE(idx.erase(1.0, 1));
}

TEST(PagedBoundIndex, RandomInsertEraseScanAgreesWithReference) {
  Rng rng{7};
  PagedBoundIndex idx;
  Reference ref;
  for (int op = 0; op < 20000; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.55 || ref.entries.empty()) {
      // Small value domain so duplicate bounds (and cross-page runs of the
      // same bound) are common.
      const double bound = static_cast<double>(rng.uniform_int(-40, 40)) / 4.0;
      const auto slot = static_cast<Slot>(rng.uniform_int(0, 5000));
      idx.insert(bound, slot);
      ref.insert(bound, slot);
    } else if (roll < 0.8) {
      const auto& victim = ref.entries[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.entries.size()) - 1))];
      const double bound = victim.bound;
      const Slot slot = victim.slot;
      EXPECT_TRUE(idx.erase(bound, slot));
      EXPECT_TRUE(ref.erase(bound, slot));
    } else {
      expect_agrees(idx, ref, static_cast<double>(rng.uniform_int(-44, 44)) / 4.0);
    }
    ASSERT_EQ(idx.size(), ref.entries.size());
  }
  // Drain completely through the index's own view.
  std::vector<Entry> all;
  idx.visit_all([&](double b, Slot s) { all.push_back(Entry{b, s}); });
  ASSERT_EQ(all.size(), ref.entries.size());
  for (const auto& e : all) EXPECT_TRUE(idx.erase(e.bound, e.slot));
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.page_count(), 0u);
}

TEST(PagedBoundIndex, SplitsUnderSequentialAndReverseInsertion) {
  for (const bool reverse : {false, true}) {
    PagedBoundIndex idx;
    const int n = 3000;  // ~12 pages
    for (int i = 0; i < n; ++i) {
      const int k = reverse ? n - 1 - i : i;
      idx.insert(static_cast<double>(k), static_cast<Slot>(k));
    }
    EXPECT_GT(idx.page_count(), 1u);
    std::vector<Entry> all;
    idx.visit_all([&](double b, Slot s) { all.push_back(Entry{b, s}); });
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)].bound, static_cast<double>(i));
    }
    EXPECT_EQ(collect_above(idx, 1499.5, false).size(), 1500u);
    EXPECT_EQ(collect_below(idx, 1499.5, false).size(), 1500u);
  }
}

TEST(PagedBoundIndex, EqualBoundRunSpanningPagesScansExactly) {
  PagedBoundIndex idx;
  Reference ref;
  // 1000 entries of the same bound forces the run across multiple pages.
  for (Slot s = 0; s < 1000; ++s) {
    idx.insert(5.0, s);
    ref.insert(5.0, s);
  }
  for (Slot s = 0; s < 300; ++s) {
    idx.insert(4.0, s);
    ref.insert(4.0, s);
    idx.insert(6.0, s);
    ref.insert(6.0, s);
  }
  for (const double v : {3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5}) expect_agrees(idx, ref, v);
  // Erase from the middle of the equal run.
  for (Slot s = 200; s < 800; ++s) {
    ASSERT_TRUE(idx.erase(5.0, s));
    ref.erase(5.0, s);
  }
  for (const double v : {4.5, 5.0, 5.5}) expect_agrees(idx, ref, v);
}

TEST(PagedBoundIndex, InsertBatchMatchesIndividualInserts) {
  Rng rng{11};
  PagedBoundIndex incremental;
  PagedBoundIndex batched;
  Reference ref;
  // Seed both with a shared prefix, then merge batches of varying size.
  for (int round = 0; round < 30; ++round) {
    std::vector<Entry> batch;
    const auto batch_size = rng.uniform_int(1, 400);
    for (std::int64_t i = 0; i < batch_size; ++i) {
      const double bound = static_cast<double>(rng.uniform_int(-1000, 1000)) / 8.0;
      const auto slot = static_cast<Slot>(rng.uniform_int(0, 100000));
      batch.push_back(Entry{bound, slot});
      incremental.insert(bound, slot);
      ref.insert(bound, slot);
    }
    batched.insert_batch(std::move(batch));
    ASSERT_EQ(batched.size(), incremental.size());
    // Interleave point erases so merged pages see later point operations.
    for (int k = 0; k < 20 && !ref.entries.empty(); ++k) {
      const auto& victim = ref.entries[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.entries.size()) - 1))];
      const double bound = victim.bound;
      const Slot slot = victim.slot;
      ASSERT_TRUE(incremental.erase(bound, slot));
      ASSERT_TRUE(batched.erase(bound, slot));
      ref.erase(bound, slot);
    }
    expect_agrees(batched, ref, static_cast<double>(rng.uniform_int(-1100, 1100)) / 8.0);
  }
  std::vector<Entry> a;
  std::vector<Entry> b;
  incremental.visit_all([&](double bound, Slot s) { a.push_back(Entry{bound, s}); });
  batched.visit_all([&](double bound, Slot s) { b.push_back(Entry{bound, s}); });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bound, b[i].bound);
    EXPECT_EQ(a[i].slot, b[i].slot);
  }
}

TEST(PagedBoundIndex, InfinityAndNegativeZeroOrdering) {
  PagedBoundIndex idx;
  Reference ref;
  const double inf = std::numeric_limits<double>::infinity();
  const double entries[] = {-inf, -1.0, -0.0, 0.0, 1.0, inf};
  Slot slot = 0;
  for (const double b : entries) {
    idx.insert(b, slot);
    ref.insert(b, slot);
    ++slot;
  }
  for (const double v : {-inf, -1.0, -0.0, 0.0, 0.5, 1.0, inf}) expect_agrees(idx, ref, v);
  // -0.0 and 0.0 are one equivalence class: either spelling erases either
  // entry (slots disambiguate).
  EXPECT_TRUE(idx.erase(0.0, 2));   // entry was inserted as -0.0
  EXPECT_TRUE(idx.erase(-0.0, 3));  // entry was inserted as 0.0
  EXPECT_TRUE(idx.erase(inf, 5));
  EXPECT_TRUE(idx.erase(-inf, 0));
  EXPECT_EQ(idx.size(), 2u);
}

}  // namespace
}  // namespace evps
