#include "matching/churn_matcher.hpp"

#include <algorithm>

namespace evps {

void ChurnMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  const auto [it, inserted] = subs_.emplace(id, SubState{preds, {}});
  if (!inserted) throw std::invalid_argument("duplicate subscription id " + id.str());
  auto& state = it->second;
  state.locations.resize(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    index_predicate(id, static_cast<RefSlot>(i), preds[i], state);
  }
  predicate_count_ += preds.size();
}

void ChurnMatcher::index_predicate(SubscriptionId id, RefSlot slot, const Predicate& p,
                                   SubState& state) {
  auto& bucket = buckets_[p.attribute()];
  Location& loc = state.locations[slot];
  loc.attr = p.attribute();
  const Value& c = p.constant();
  if (p.op() == RelOp::kEq && !c.is_string()) {
    loc.kind = Location::Kind::kEqNum;
    loc.num_key = *c.numeric();
    auto& list = bucket.eq_num[loc.num_key];
    loc.index = list.size();
    list.push_back(EqEntry{id, slot});
  } else if (p.op() == RelOp::kEq) {
    loc.kind = Location::Kind::kEqStr;
    loc.str_key = c.as_string();
    auto& list = bucket.eq_str[loc.str_key];
    loc.index = list.size();
    list.push_back(EqEntry{id, slot});
  } else {
    loc.kind = Location::Kind::kScan;
    loc.index = bucket.scan.size();
    bucket.scan.push_back(ScanEntry{p.op(), c, id, slot});
  }
}

bool ChurnMatcher::remove(SubscriptionId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  // Detach the state first: unindexing patches *other* subscriptions'
  // location tables, never this one's (its entries are all being removed).
  const SubState state = std::move(it->second);
  subs_.erase(it);
  for (const auto& loc : state.locations) unindex(loc);
  predicate_count_ -= state.preds.size();
  return true;
}

void ChurnMatcher::unindex(const Location& loc) {
  const auto bucket_it = buckets_.find(loc.attr);
  if (bucket_it == buckets_.end()) return;
  auto& bucket = bucket_it->second;

  // Swap-erase `list[loc.index]`, patching the displaced entry's location.
  const auto swap_erase = [&](auto& list, auto kind) {
    if (loc.index >= list.size()) return;
    if (loc.index + 1 != list.size()) {
      list[loc.index] = std::move(list.back());
      const auto& moved = list[loc.index];
      const auto owner = subs_.find(moved.sub);
      if (owner != subs_.end()) {
        Location& moved_loc = owner->second.locations[moved.ref];
        (void)kind;
        moved_loc.index = loc.index;
      }
    }
    list.pop_back();
  };

  switch (loc.kind) {
    case Location::Kind::kEqNum: {
      const auto list_it = bucket.eq_num.find(loc.num_key);
      if (list_it == bucket.eq_num.end()) return;
      swap_erase(list_it->second, loc.kind);
      if (list_it->second.empty()) bucket.eq_num.erase(list_it);
      break;
    }
    case Location::Kind::kEqStr: {
      const auto list_it = bucket.eq_str.find(loc.str_key);
      if (list_it == bucket.eq_str.end()) return;
      swap_erase(list_it->second, loc.kind);
      if (list_it->second.empty()) bucket.eq_str.erase(list_it);
      break;
    }
    case Location::Kind::kScan:
      swap_erase(bucket.scan, loc.kind);
      break;
  }
  if (bucket.empty()) buckets_.erase(bucket_it);
}

void ChurnMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (subs_.empty() || pub.empty()) return;
  std::unordered_map<SubscriptionId, std::uint32_t> counts;
  counts.reserve(64);
  const auto hit = [&](SubscriptionId id) { ++counts[id]; };

  for (const auto& [attr, value] : pub.attributes()) {
    const auto it = buckets_.find(attr);
    if (it == buckets_.end()) continue;
    const auto& bucket = it->second;
    if (const auto num = value.numeric()) {
      if (const auto eq = bucket.eq_num.find(*num); eq != bucket.eq_num.end()) {
        for (const auto& entry : eq->second) hit(entry.sub);
      }
    } else if (const auto eq = bucket.eq_str.find(value.as_string());
               eq != bucket.eq_str.end()) {
      for (const auto& entry : eq->second) hit(entry.sub);
    }
    for (const auto& entry : bucket.scan) {
      if (apply_rel_op(entry.op, value, entry.operand)) hit(entry.sub);
    }
  }

  const std::size_t first_new = out.size();
  for (const auto& [id, count] : counts) {
    const auto sub_it = subs_.find(id);
    if (sub_it != subs_.end() && count == sub_it->second.preds.size()) out.push_back(id);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end());
}

}  // namespace evps
