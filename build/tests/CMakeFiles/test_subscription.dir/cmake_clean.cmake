file(REMOVE_RECURSE
  "CMakeFiles/test_subscription.dir/test_subscription.cpp.o"
  "CMakeFiles/test_subscription.dir/test_subscription.cpp.o.d"
  "test_subscription"
  "test_subscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
