// Figure 9: VES processing time at a constant evolution volume.
//
// 1000 evolutions/s can be produced by many subscriptions evolving slowly or
// few evolving fast; the paper shows the cost is driven by the matcher
// population, not the evolution count:
//   2000 subs @ 2 s period  -> slowest  (paper: ~1000 ms)
//   1000 subs @ 1 s period  -> middle
//    500 subs @ 0.5 s period-> fastest  (paper: ~200 ms)
// plus the 50/50-split equivalence: 2000 subs of which half evolve @ 1 s has
// the same processing time as 2000 evolving-only subs @ 2 s (same matcher
// population, same 1000 evolutions/s) — the paper's observation that VES
// cost depends on the total population, evolving or not.
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/game.hpp"

namespace {

using namespace evps;

struct Case {
  const char* label;
  std::size_t characters;
  double mei_seconds;
  double evolving_fraction;
};

double ves_processing_ms(const Case& c, std::uint64_t* evolutions = nullptr) {
  GameConfig cfg;
  cfg.system = SystemKind::kVes;
  cfg.seed = 7;
  cfg.characters = c.characters;
  cfg.clients = 100;
  cfg.pub_rate = 100.0;
  cfg.evolving_fraction = c.evolving_fraction;
  cfg.mei = Duration::seconds(c.mei_seconds);
  cfg.duration = SimTime::from_seconds(20.0);
  GameExperiment exp(cfg);
  exp.run();
  if (evolutions != nullptr) *evolutions = exp.engine_costs().evolutions;
  return exp.engine_costs().maintenance.sum() * 1000.0;
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 9: VES processing at constant evolution volume\n";
  std::cout << "(all cases generate ~1000 evolutions/s over a 20 s window)\n";

  const Case cases[] = {
      {"2000 subs @ 2.0 s", 2000, 2.0, 1.0},
      {"1000 subs @ 1.0 s", 1000, 1.0, 1.0},
      {" 500 subs @ 0.5 s", 500, 0.5, 1.0},
      {"2000 subs, 50% evolving @ 1.0 s", 2000, 1.0, 0.5},
  };
  Table t{{"configuration", "evolutions", "evolutions/s", "VES maintenance (ms)"}};
  std::vector<double> ms;
  for (const auto& c : cases) {
    std::uint64_t evolutions = 0;
    const double m = ves_processing_ms(c, &evolutions);
    ms.push_back(m);
    t.add_row({c.label, std::to_string(evolutions),
               Table::fmt(static_cast<double>(evolutions) / 20.0, 0), Table::fmt(m, 1)});
  }
  t.print();

  std::cout << "\nshape checks (paper):\n";
  std::cout << "  2000@2s slower than 500@0.5s by ~5x: measured ratio "
            << Table::fmt(ms[0] / ms[2], 1) << "x (paper: 1000 ms vs 200 ms)\n";
  std::cout << "  monotone in matcher population: " << Table::fmt(ms[0], 1) << " > "
            << Table::fmt(ms[1], 1) << " > " << Table::fmt(ms[2], 1) << " ms\n";
  std::cout << "  50/50 split @ 1 s ~= pure evolving @ 2 s (same population & volume): "
            << Table::fmt(ms[3], 1) << " vs " << Table::fmt(ms[0], 1) << " ms\n";
  return 0;
}
