#include "evolving/lees_engine.hpp"

namespace evps {

void LeesEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->add(sub.id(), sub.predicates());
    return;
  }
  const auto static_part = sub.static_predicates();
  auto part = leme_.make_part(entry.sub, !static_part.empty());
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  leme_.add(std::move(part), entry.dest);
}

void LeesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->remove(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  leme_.remove(sub.id(), entry.dest);
}

bool LeesEngine::evolving_part_matches(const Leme::Part& part, const Publication& pub,
                                       const EvalScope& scope) {
  for (const auto& cp : part.preds) {
    const Value* v = pub.get(cp.attr());
    if (v == nullptr || !cp.matches(*v, scope, eval_stack_)) return false;
  }
  return true;
}

void LeesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                          EngineHost& host, std::vector<NodeId>& destinations) {
  // M1: standard matcher over static parts and purely-static subscriptions.
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  leme_.begin_match();
  for (const auto id : m1_) {
    if (leme_.note_m1(id)) continue;  // static half of a split subscription
    const Installed* entry = installed_entry(id);
    if (entry == nullptr) continue;
    // Purely-static match: forward, and skip the destination's LEME group.
    destinations.push_back(entry->dest);
    leme_.mark_done(entry->dest);
  }

  // M2: on-demand evaluation of evolving parts, per destination, with early
  // exit once the destination is known to need the publication.
  const ScopedTimer timer(costs_.lazy_eval);
  EvalScope& scope = publication_scope(pub, snapshot, host.variables(), host.now());
  for (const auto& [dest, group] : leme_.groups()) {
    if (leme_.done(group)) continue;
    for (const auto& part : group.parts) {
      if (part.has_static_part && !leme_.m1_hit(part)) continue;
      ++costs_.lazy_evaluations;
      scope.set_epoch(part.sub->epoch());
      if (evolving_part_matches(part, pub, scope)) {
        destinations.push_back(dest);
        break;  // early exit: this destination is settled
      }
    }
  }
}

}  // namespace evps
