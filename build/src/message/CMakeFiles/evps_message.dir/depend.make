# Empty dependencies file for evps_message.
# This may be replaced when dependencies are built.
