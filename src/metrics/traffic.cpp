#include "metrics/traffic.hpp"

namespace evps {

TrafficProbe::TrafficProbe(Overlay& overlay, Duration interval, SimTime until)
    : overlay_(overlay), interval_(interval) {
  if (interval <= Duration::zero()) throw std::invalid_argument("interval must be positive");
  auto& sim = overlay.simulator();
  sim.every(sim.now() + interval, interval, until + Duration::micros(1), [this](SimTime) {
    const std::uint64_t total = overlay_.total_subscription_msgs();
    const auto broker_count = overlay_.brokers().size();
    const double delta = static_cast<double>(total - last_total_);
    last_total_ = total;
    samples_.push_back(broker_count == 0 ? 0.0 : delta / static_cast<double>(broker_count));
  });
}

double TrafficProbe::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace evps
