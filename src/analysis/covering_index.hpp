// Incremental per-broker index of the covering relation.
//
// The index maintains a two-level forest over the subscriptions a broker has
// accepted: every subscription is either a *root* or the direct child of a
// root that provably covers it (analysis/covering.hpp). Roots are what the
// broker needs to disseminate upstream — a covered child's publications are
// already routed towards its root — so the forest is exactly the routing
// view of the covering relation.
//
// Invariants:
//   * Children hang off roots only (depth <= 1). Covering is transitive, so
//     when a root C is demoted under a new root A, C's children re-attach to
//     A directly: A covers C covers D implies A covers D. The re-attachment
//     is an index-local move — no network traffic, the children were already
//     suppressed and stay suppressed.
//   * Shapes are computed once at add() time and never refreshed. This is
//     sound because everything a kCovers verdict depends on is monotone:
//     declared variable ranges are fixed at declaration, registry histories
//     are append-only (a variable set once resolves at every later instant),
//     and envelopes already quantify over all t >= 0, so epoch offsets
//     between the two subscriptions cannot invalidate the verdict.
//   * Candidate filtering is by attribute: a coverer's attrs are a subset of
//     the coveree's, so any constrained root covering B appears in the
//     bucket of at least one of B's attributes, and any root covered by a
//     constrained A appears in the bucket of A's first attribute.
//
// Uncover-on-remove: removing a *child* is silent. Removing a *root*
// orphans its children; each is first offered to the surviving roots (and to
// siblings promoted moments earlier, so duplicate groups collapse to one
// re-dissemination), and only those with no surviving coverer are promoted
// to roots — the promoted list is what the broker must re-disseminate
// upstream before the coverer's unsubscribe propagates.
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/covering.hpp"
#include "analysis/relational.hpp"

namespace evps {

class CoveringIndex {
 public:
  /// `relational` enables the octagon refinement pass
  /// (analysis/relational.hpp) on pairs the per-attribute check leaves
  /// kUnknown. Relational shapes are computed once at add() time alongside
  /// the ValueSet shapes, under the same monotonicity argument.
  explicit CoveringIndex(bool relational = true) : relational_(relational) {}

  struct AddResult {
    /// Root that covers the new subscription; invalid() when the new
    /// subscription itself became a root.
    SubscriptionId parent = SubscriptionId::invalid();
    /// Former roots now covered by (and attached under) the new root. Their
    /// upstream dissemination is newly redundant.
    std::vector<SubscriptionId> demoted;
  };

  struct RemoveResult {
    /// Former children promoted to roots: no surviving root covers them, so
    /// the broker must re-disseminate them upstream (before forwarding the
    /// removed coverer's unsubscribe — per-link FIFO keeps that race-free).
    std::vector<SubscriptionId> promoted;
  };

  /// Analyze `sub` against the current roots and insert it. Throws
  /// std::invalid_argument when `sub.id()` is already present (a duplicate
  /// would corrupt the forest's parent/children links).
  AddResult add(const Subscription& sub, const VariableRegistry& registry);

  /// Remove a subscription; no-op result when the id is unknown or a child.
  RemoveResult remove(SubscriptionId id);

  [[nodiscard]] bool contains(SubscriptionId id) const { return entries_.count(id) != 0; }
  /// A subscription the broker should disseminate (not covered by another).
  [[nodiscard]] bool is_root(SubscriptionId id) const;
  /// The covering root for `id` (itself when it is a root).
  [[nodiscard]] SubscriptionId root_of(SubscriptionId id) const;
  /// Direct children of a root (empty for children / unknown ids).
  [[nodiscard]] std::vector<SubscriptionId> children_of(SubscriptionId id) const;

  /// Visit every entry as (id, parent); parent is invalid() for roots.
  /// Snapshot export support (analysis/audit) — children are recoverable
  /// via children_of, so (id, parent) pairs are the whole forest.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [id, e] : entries_) fn(id, e.parent);
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t root_count() const noexcept { return root_count_; }
  [[nodiscard]] const CoverStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    SubscriptionShape inner;
    SubscriptionShape outer;
    RelationalShape rel;  // populated only when relational_ is on
    SubscriptionId parent = SubscriptionId::invalid();  // invalid => root
    std::vector<SubscriptionId> children;               // roots only
  };

  [[nodiscard]] bool check_covers(const Entry& coverer, const Entry& coveree);
  /// First surviving root whose inner shape covers `e`'s outer shape.
  [[nodiscard]] SubscriptionId find_coverer(const Entry& e);
  void bucket_insert(SubscriptionId id, const Entry& e);
  void bucket_erase(SubscriptionId id, const Entry& e);

  std::unordered_map<SubscriptionId, Entry> entries_;
  /// Roots that constrain a given attribute (a root appears once per attr).
  std::unordered_map<AttrId, std::vector<SubscriptionId>> roots_by_attr_;
  /// Roots with no predicates at all (they cover everything).
  std::vector<SubscriptionId> unconstrained_roots_;
  std::size_t root_count_ = 0;
  bool relational_ = true;
  CoverStats stats_;
};

}  // namespace evps
