#include "evolving/static_engine.hpp"

namespace evps {

void StaticEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  if (entry.sub->is_evolving()) {
    throw std::invalid_argument("static engine cannot install evolving subscription " +
                                entry.sub->id().str());
  }
  matcher_add_static(entry);
}

void StaticEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  matcher_remove_static(entry.sub->id());
}

void StaticEngine::do_match(const Publication& pub, const VariableSnapshot* /*snapshot*/,
                            EngineHost& /*host*/, std::vector<NodeId>& destinations) {
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  for (const auto id : m1_) {
    const Installed* entry = installed_entry(id);
    if (entry != nullptr) destinations.push_back(entry->dest);
  }
}

void StaticEngine::do_match_batch(std::span<const Publication* const> pubs,
                                  const VariableSnapshot* /*snapshot*/, EngineHost& /*host*/,
                                  std::vector<std::vector<NodeId>>& destinations) {
  matcher_only_match_batch(pubs, destinations);
}

}  // namespace evps
