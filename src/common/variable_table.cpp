#include "common/variable_table.hpp"

#include <mutex>
#include <stdexcept>

namespace evps {

VariableTable& VariableTable::instance() {
  static VariableTable table;
  return table;
}

VarId VariableTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;  // raced with another intern
  const auto id = static_cast<VarId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

VarId VariableTable::find(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidVarId : it->second;
}

const std::string& VariableTable::name(VarId id) const {
  std::shared_lock lock(mu_);
  if (id >= names_.size()) throw std::out_of_range("unknown VarId");
  return names_[id];
}

std::size_t VariableTable::size() const {
  std::shared_lock lock(mu_);
  return names_.size();
}

VarId elapsed_time_var_id() {
  static const VarId id = VariableTable::instance().intern("t");
  return id;
}

}  // namespace evps
