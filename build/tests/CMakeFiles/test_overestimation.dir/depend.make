# Empty dependencies file for test_overestimation.
# This may be replaced when dependencies are built.
