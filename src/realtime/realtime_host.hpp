// Real-time EngineHost: wall-clock timers on a dedicated worker thread.
//
// The experiment harness runs everything on the deterministic simulator, but
// the paper's implementation (Section V-A) uses threads that monitor the ESQ
// and update versions as wall-clock time passes. This host reproduces that
// architecture: engine operations and timer callbacks all execute on one
// worker thread, which serialises matcher version replacements exactly like
// the paper's replacement lock.
//
// Usage: interact with the engine exclusively through post()/invoke() so
// every engine operation runs on the worker thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>

#include "evolving/engine.hpp"

namespace evps {

class RealTimeHost final : public EngineHost {
 public:
  RealTimeHost();
  ~RealTimeHost() override;

  RealTimeHost(const RealTimeHost&) = delete;
  RealTimeHost& operator=(const RealTimeHost&) = delete;

  // --- EngineHost (must be called from the worker thread) -------------------
  [[nodiscard]] SimTime now() const override;
  void schedule(Duration delay, std::function<void()> fn) override;
  [[nodiscard]] VariableRegistry& variables() override { return registry_; }

  // --- cross-thread interface ------------------------------------------------
  /// Run `fn` on the worker thread as soon as possible (asynchronous).
  void post(std::function<void()> fn) { schedule_at(clock_now(), std::move(fn)); }

  /// Run `fn` on the worker thread and wait for completion.
  void invoke(std::function<void()> fn);

  /// Convenience: set an evolution variable from any thread.
  void set_variable(const std::string& name, double value) {
    invoke([this, name, value] { registry_.set(name, value, now()); });
  }

  /// Stop the worker thread; pending timers are dropped. Idempotent.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] Clock::time_point clock_now() const { return Clock::now(); }
  void schedule_at(Clock::time_point when, std::function<void()> fn);
  void worker_loop();

  struct Task {
    Clock::time_point when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Task& a, const Task& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Clock::time_point epoch_;
  VariableRegistry registry_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Task, std::vector<Task>, Later> tasks_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace evps
