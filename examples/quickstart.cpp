// Quickstart: an evolving subscription in ~40 lines.
//
// One broker, one subscriber whose interest window slides with time
// (the paper's Section III-C example), one publisher. The same publication
// content misses at t=0 and hits at t=2 without any resubscription.
//
//   $ ./quickstart
#include <iostream>

#include "broker/overlay.hpp"

using namespace evps;

int main() {
  Simulator sim;
  Overlay overlay{sim};

  // A broker running the CLEES evolving engine (cached lazy evaluation).
  BrokerConfig config;
  config.engine.kind = EngineKind::kClees;
  Broker& broker = overlay.add_broker("broker", config);

  PubSubClient& player = overlay.add_client("player");
  PubSubClient& world = overlay.add_client("world");
  player.connect(broker, Duration::millis(1));
  world.connect(broker, Duration::millis(1));

  // The paper's moving 6x4 area of interest: centred at (t, t), so the
  // rectangle slides diagonally at 1 unit/s. `t` is the number of seconds
  // since the subscription was installed.
  player.subscribe("x >= -3 + t; x <= 3 + t; y >= -2 + t; y <= 2 + t");

  player.on_delivery = [&](const Publication& pub, SimTime when) {
    std::cout << "  [" << when.seconds() << "s] delivered: " << pub.to_string() << "\n";
  };

  // An apple pickup at (4, 3): outside the window at t~0, inside at t~2.
  sim.after(Duration::millis(100), [&] {
    std::cout << "publishing at t=0.1s (window ~[-2.9,3.1]x[-1.9,2.1]) -> no match\n";
    world.publish("x = 4; y = 3; action = 'pickup'; object = 'apple'");
  });
  sim.after(Duration::seconds(2), [&] {
    std::cout << "publishing at t=2.0s (window ~[-1,5]x[0,4])        -> match\n";
    world.publish("x = 4; y = 3; action = 'pickup'; object = 'apple'");
  });

  sim.run_until(SimTime::from_seconds(3));

  std::cout << "deliveries: " << player.deliveries().size()
            << ", subscription messages sent: 1 (and zero resubscriptions)\n";
  return 0;
}
