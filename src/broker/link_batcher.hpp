// Per-link publication batching (DESIGN.md §14).
//
// A LinkBatcher sits between the broker's routing decision and Network::send.
// It buffers publications per destination — per-neighbour forwards and
// per-client deliveries alike — and flushes each destination's buffer as one
// PublishBatchMsg / DeliveryBatchMsg when it reaches `batch_size`, when the
// flush deadline fires, or when a non-batchable message must go out on the
// same link (the order-preserving barrier).
//
// With a zero deadline the flush timer runs in the same virtual instant as
// the enqueues (simulator same-time FIFO), so every batched publication
// leaves the broker at exactly the instant the per-message path would have
// sent it: arrival times, per-link order and therefore delivery timestamps
// are bit-identical. The overlay is a tree and clients are single-homed, so
// the cross-link send reordering batching introduces is unobservable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "metrics/link_counters.hpp"
#include "sim/network.hpp"

namespace evps {

/// Destination classification, cached per link on first touch (neighbour
/// sets are fixed after topology setup, so the routing-table consultation
/// happens once per (broker, destination), not once per event).
enum class LinkKind : std::uint8_t {
  kClient,   ///< delivery hop: DeliveryMsg / DeliveryBatchMsg
  kBroker,   ///< forwarding hop: PublishMsg / PublishBatchMsg
  kUnknown,  ///< not a neighbour: dropped (mirrors the pre-batching checks)
};

/// Default link batch size: the EVPS_LINK_BATCH environment variable,
/// clamped to [1, kMaxBatchPublications]; unset, empty, or unparsable
/// values mean 1 (the per-message path). Read once per process.
[[nodiscard]] std::size_t default_link_batch_size();

class LinkBatcher {
 public:
  struct Config {
    std::size_t batch_size = 1;                   ///< flush when a link buffers this many
    Duration flush_deadline = Duration::zero();   ///< 0 = same-instant flush
    bool measure_bytes = false;                   ///< account codec bytes per flush
  };

  /// `self` supplies the sending node id (assigned when the owner attaches
  /// to the network, after member construction); `classify` resolves a
  /// destination's kind on first touch.
  LinkBatcher(Network& net, const NetworkNode& self, Config config,
              std::function<LinkKind(NodeId)> classify);
  ~LinkBatcher();

  LinkBatcher(const LinkBatcher&) = delete;
  LinkBatcher& operator=(const LinkBatcher&) = delete;

  /// True when batching machinery is engaged. When false, enqueue() sends a
  /// scalar message immediately — the exact per-message path.
  [[nodiscard]] bool active() const noexcept {
    return config_.batch_size > 1 || config_.flush_deadline > Duration::zero();
  }

  /// Queue (or, when inactive, immediately send) one publication towards
  /// `dest`. Returns the destination's kind so the caller can count
  /// deliveries vs. forwards; kUnknown means the publication was dropped.
  LinkKind enqueue(NodeId dest, const PublicationPtr& pub);

  /// Flush `dest`'s pending publications, if any. MUST be called before
  /// sending any non-batchable message to `dest`: per-link FIFO then keeps
  /// the relative order of publications and control traffic exactly as the
  /// per-message path produced it.
  void barrier(NodeId dest);

  /// Flush every destination with pending publications (deadline timer).
  void flush_all();

  [[nodiscard]] const LinkBatchCounters& counters() const noexcept { return counters_; }
  void reset_counters() { counters_.reset(); }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Visit every slot with buffered publications as (dest, pending count).
  /// Snapshot export support (analysis/audit): at a quiesce point no slot
  /// may have pending publications.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (!slot->pending.empty()) fn(slot->dest, slot->pending.size());
    }
  }

 private:
  enum class FlushCause : std::uint8_t { kSize, kDeadline, kBarrier };

  struct Slot {
    NodeId dest;
    LinkKind kind = LinkKind::kUnknown;
    std::vector<PublicationPtr> pending;
  };

  Slot& slot_for(NodeId dest);
  void flush_slot(Slot& slot, FlushCause cause);
  void send_scalar(NodeId dest, LinkKind kind, const PublicationPtr& pub);
  void schedule_flush();

  Network& net_;
  const NetworkNode& self_;
  Config config_;
  std::function<LinkKind(NodeId)> classify_;
  /// Slots in first-touch order (deterministic flush_all iteration) with a
  /// side index; a slot persists for the broker's lifetime.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<NodeId, std::size_t> slot_index_;
  bool flush_scheduled_ = false;
  /// Severs the deadline timer's capture of `this` on destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Reusable serialization arena (measure_bytes): steady-state accounting
  /// allocates nothing once the arena has grown to the largest batch.
  std::string arena_;
  LinkBatchCounters counters_;
};

}  // namespace evps
