// Hybrid evolving engine — the adaptive VES/CLEES combination the paper
// leaves as future work (Section IV-C: "A truly hybrid solution which can
// adaptively switch between the two represents an interesting avenue").
//
// Rationale: VES cost is proportional to the evolution (refresh) rate and
// independent of publications; CLEES cost is proportional to the rate of
// publications that probe a subscription. The cheaper strategy therefore
// depends on the per-subscription probe rate:
//
//   probes/sec > refreshes/sec (1/MEI)  ->  keep a timer-refreshed version
//   probes/sec < refreshes/sec          ->  evaluate lazily, cache for TT
//
// Each evolving part starts lazy and is re-classified at the end of every
// observation window from its measured probe count. Versioned parts are
// re-materialised on the engine's periodic tick (every MEI), like VES but in
// the engine-local store rather than the shared matcher (avoiding VES's
// population-bound maintenance); lazy parts behave exactly like CLEES.
//
// Cost accounting: version refreshes -> maintenance + evolutions; lazy
// materialisations -> lazy_eval + cache_misses; version/cache probe tests ->
// cache_hits.
//
// Versions are stored as CachedBound vectors over the install-time compiled
// predicates (see lazy_storage.hpp), so both probing and refreshing are
// allocation-free in steady state.
#pragma once

#include <vector>

#include "evolving/engine.hpp"
#include "evolving/lazy_storage.hpp"

namespace evps {

class HybridEngine final : public BrokerEngine {
 public:
  explicit HybridEngine(const EngineConfig& config) : BrokerEngine(config) {}

  [[nodiscard]] std::size_t storage_size() const noexcept { return storage_.size(); }
  /// Number of evolving parts currently in versioned (VES-like) mode.
  [[nodiscard]] std::size_t versioned_count() const noexcept;
  [[nodiscard]] std::size_t lazy_count() const noexcept {
    return storage_.size() - versioned_count();
  }

  void export_audit_state(audit::EngineState& out) const override;

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;

 private:
  enum class Mode { kLazy, kVersioned };

  struct AdaptiveState {
    Mode mode = Mode::kLazy;
    std::vector<CachedBound> bounds;  // materialised version (both modes)
    SimTime version_expires = SimTime::zero();  // lazy mode only
    std::uint64_t probes_this_window = 0;
  };
  using Storage = LazyStorage<AdaptiveState>;

  void ensure_timer(EngineHost& host);
  void on_tick(EngineHost& host);
  void refresh(Storage::Part& part, EngineHost& host);

  [[nodiscard]] Duration tick_period() const noexcept { return config_.default_mei; }

  Storage storage_;
  std::vector<CachedBound> snapshot_bounds_;  // see CleesEngine
  bool timer_running_ = false;
  EngineHost* timer_host_ = nullptr;
};

}  // namespace evps
