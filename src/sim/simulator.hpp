// Deterministic discrete-event simulator.
//
// Substitutes for the paper's 100-machine cluster: brokers and clients are
// nodes whose message exchanges and timers become events on a single virtual
// timeline. Same-time events execute in scheduling order (FIFO), so a run is
// a pure function of the workload seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"

namespace evps {

/// Cancellation handle for a recurring timer created with Simulator::every.
/// Copyable; all copies refer to the same timer. cancel() prevents any
/// future firing (an already-queued occurrence becomes a no-op), so owners
/// whose callbacks capture raw pointers can sever them on destruction.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }
  /// True while the timer can still fire (never cancelled and not expired).
  [[nodiscard]] bool active() const noexcept { return alive_ != nullptr && *alive_; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> alive) noexcept : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, Action fn);

  /// Schedule `fn` after a relative delay (must be >= 0).
  void after(Duration d, Action fn) { at(now_ + d, std::move(fn)); }

  /// Schedule `fn` every `period` starting at `first`, until `until`
  /// (exclusive). `fn` receives the firing time. The returned handle cancels
  /// all future firings; it may be discarded if cancellation is not needed.
  TimerHandle every(SimTime first, Duration period, SimTime until,
                    std::function<void(SimTime)> fn);

  /// Execute the next event, advancing the clock. Returns false when the
  /// queue is empty.
  bool step();

  /// Execute all events with time <= `t`, then advance the clock to `t`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Drain the queue (bounded by `max_events` as a runaway backstop).
  /// Returns the number of events executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  void schedule_occurrence(SimTime when, Duration period, SimTime until,
                           std::function<void(SimTime)> fn, std::shared_ptr<bool> alive);

  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace evps
