#include "metrics/analysis_counters.hpp"

#include <ostream>

#include "broker/broker.hpp"
#include "metrics/report.hpp"

namespace evps {

void print_analysis_report(const std::vector<const Broker*>& brokers, std::ostream& os) {
  Table table(
      {"broker", "analyzed", "malformed", "unsat", "rel-unsat", "folded", "uncovered", "redundant"});
  AnalysisCounters total;
  for (const Broker* broker : brokers) {
    const AnalysisCounters& c = broker->analysis_counters();
    total.analyzed += c.analyzed;
    total.rejected_malformed += c.rejected_malformed;
    total.rejected_unsatisfiable += c.rejected_unsatisfiable;
    total.rejected_rel_unsatisfiable += c.rejected_rel_unsatisfiable;
    total.folded_constant += c.folded_constant;
    total.flagged_uncovered += c.flagged_uncovered;
    total.flagged_redundant += c.flagged_redundant;
    table.add_row({broker->name(), std::to_string(c.analyzed),
                   std::to_string(c.rejected_malformed),
                   std::to_string(c.rejected_unsatisfiable),
                   std::to_string(c.rejected_rel_unsatisfiable),
                   std::to_string(c.folded_constant), std::to_string(c.flagged_uncovered),
                   std::to_string(c.flagged_redundant)});
  }
  table.add_row({"total", std::to_string(total.analyzed),
                 std::to_string(total.rejected_malformed),
                 std::to_string(total.rejected_unsatisfiable),
                 std::to_string(total.rejected_rel_unsatisfiable),
                 std::to_string(total.folded_constant),
                 std::to_string(total.flagged_uncovered),
                 std::to_string(total.flagged_redundant)});
  table.print(os);
}

}  // namespace evps
