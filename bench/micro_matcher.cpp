// Micro-benchmarks: the standard content-based matcher.
//
// Two costs matter for the paper's analysis: match() (paid per publication
// by every engine) and add()/remove() (paid per version replacement by VES —
// the maintenance cost that grows with the matcher population, Figure 9).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gbench_main.hpp"
#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"
#include "matching/counting_matcher.hpp"
#include "matching/sharded_matcher.hpp"

namespace {

using namespace evps;

std::vector<Predicate> aoi_preds(Rng& rng, double world) {
  const double x = rng.uniform(-world, world);
  const double y = rng.uniform(-world, world);
  return {
      Predicate{"x", RelOp::kGe, Value{x - 3}},
      Predicate{"x", RelOp::kLe, Value{x + 3}},
      Predicate{"y", RelOp::kGe, Value{y - 2}},
      Predicate{"y", RelOp::kLe, Value{y + 2}},
  };
}

void fill(Matcher& m, std::size_t n, Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    m.add(SubscriptionId{i + 1}, aoi_preds(rng, 100.0));
  }
}

template <typename M>
void BM_Match(benchmark::State& state) {
  M matcher;
  Rng rng{1};
  fill(matcher, static_cast<std::size_t>(state.range(0)), rng);
  std::vector<SubscriptionId> out;
  for (auto _ : state) {
    Publication pub;
    pub.set("x", rng.uniform(-100.0, 100.0));
    pub.set("y", rng.uniform(-100.0, 100.0));
    out.clear();
    matcher.match(pub, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_Match<CountingMatcher>)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Match<ChurnMatcher>)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Match<BruteForceMatcher>)->Arg(100)->Arg(1000)->Arg(10000);

template <typename M>
void BM_VersionReplacement(benchmark::State& state) {
  // The VES maintenance operation: remove + re-add one subscription while
  // the matcher holds `n` others.
  M matcher;
  Rng rng{2};
  const auto n = static_cast<std::size_t>(state.range(0));
  fill(matcher, n, rng);
  const SubscriptionId victim{n / 2 + 1};
  std::vector<Predicate> version = aoi_preds(rng, 100.0);
  for (auto _ : state) {
    matcher.remove(victim);
    matcher.add(victim, version);
  }
  benchmark::DoNotOptimize(matcher.size());
}
BENCHMARK(BM_VersionReplacement<CountingMatcher>)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_VersionReplacement<ChurnMatcher>)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EqualityHeavyMatch(benchmark::State& state) {
  // HFT-style: string equality fan-out over 500 symbols plus price bands.
  CountingMatcher matcher;
  Rng rng{3};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    const double c = rng.uniform(10.0, 500.0);
    matcher.add(SubscriptionId{i + 1},
                {Predicate{"symbol", RelOp::kEq,
                           Value{"STK" + std::to_string(i % 500)}},
                 Predicate{"price", RelOp::kGe, Value{c - 0.25}},
                 Predicate{"price", RelOp::kLe, Value{c + 0.25}}});
  }
  std::vector<SubscriptionId> out;
  for (auto _ : state) {
    Publication pub;
    pub.set("symbol", "STK" + std::to_string(rng.uniform_int(0, 499)));
    pub.set("price", rng.uniform(10.0, 500.0));
    out.clear();
    matcher.match(pub, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_EqualityHeavyMatch)->Arg(900)->Arg(9000);

template <typename M>
void BM_LargePopulationMatch(benchmark::State& state) {
  // Millions-of-subscribers direction: 100k resident AOI subscriptions
  // (400k indexed predicates). The matcher is built once and shared across
  // repetitions — at this population the sorted-index build is the dominant
  // setup cost, not something to re-pay per timing run.
  static M* matcher = [] {
    auto* m = new M;
    Rng fill_rng{11};
    fill(*m, 100000, fill_rng);
    return m;
  }();
  Rng rng{12};
  std::vector<SubscriptionId> out;
  for (auto _ : state) {
    Publication pub;
    pub.set("x", rng.uniform(-100.0, 100.0));
    pub.set("y", rng.uniform(-100.0, 100.0));
    out.clear();
    matcher->match(pub, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LargePopulationMatch<CountingMatcher>);
BENCHMARK(BM_LargePopulationMatch<ChurnMatcher>);

std::vector<MatcherBatchEntry> aoi_batch(std::size_t n, Rng& rng, std::uint64_t first_id = 1) {
  std::vector<MatcherBatchEntry> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(MatcherBatchEntry{SubscriptionId{first_id + i}, aoi_preds(rng, 100.0)});
  }
  return batch;
}

template <typename M>
void BM_MaintenanceSweep(benchmark::State& state) {
  // Per-operation maintenance (remove + add of one subscription) against a
  // resident population of n — the Figure 9 growth axis. With the paged
  // bound indexes the per-op cost must grow sublinearly (≈ O(log n)) across
  // the 10k → 1M sweep; the population itself is installed via add_batch so
  // even the 1M setup stays a sort + merge, not n point inserts.
  M matcher;
  Rng rng{6};
  const auto n = static_cast<std::size_t>(state.range(0));
  matcher.add_batch(aoi_batch(n, rng));
  const SubscriptionId victim{n / 2 + 1};
  const std::vector<Predicate> version = aoi_preds(rng, 100.0);
  for (auto _ : state) {
    matcher.remove(victim);
    matcher.add(victim, version);
  }
  benchmark::DoNotOptimize(matcher.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaintenanceSweep<CountingMatcher>)->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_MaintenanceSweep<ChurnMatcher>)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_BulkRebuild(benchmark::State& state) {
  // Args: {population, wave}. One VES evolution wave: `wave` subscriptions
  // are removed and their fresh versions reinstalled through one add_batch —
  // the bulk re-materialisation path (one sorted merge per touched
  // (attribute, operator) list instead of `wave` binary-searched inserts).
  CountingMatcher matcher;
  Rng rng{7};
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto wave = static_cast<std::size_t>(state.range(1));
  matcher.add_batch(aoi_batch(n, rng));
  const std::uint64_t first = n / 4 + 1;  // contiguous id block mid-population
  const std::vector<MatcherBatchEntry> versions = aoi_batch(wave, rng, first);
  for (auto _ : state) {
    state.PauseTiming();
    auto fresh = versions;  // re-materialised wave (copied outside the timer)
    state.ResumeTiming();
    for (std::size_t i = 0; i < wave; ++i) matcher.remove(SubscriptionId{first + i});
    matcher.add_batch(std::move(fresh));
  }
  benchmark::DoNotOptimize(matcher.size());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(wave));
}
BENCHMARK(BM_BulkRebuild)->Args({10000, 1000})->Args({100000, 1000})->Args({100000, 10000});

void BM_ShardedMatch(benchmark::State& state) {
  // Args: {subscriptions, shards}. K=1 is the exact unsharded code path, so
  // the K sweep isolates the fork-join + merge overhead against the
  // parallel-section win (which needs as many free cores as shards).
  ShardedMatcher matcher{MatcherKind::kCounting, static_cast<std::size_t>(state.range(1))};
  Rng rng{4};
  fill(matcher, static_cast<std::size_t>(state.range(0)), rng);
  std::vector<SubscriptionId> out;
  for (auto _ : state) {
    Publication pub;
    pub.set("x", rng.uniform(-100.0, 100.0));
    pub.set("y", rng.uniform(-100.0, 100.0));
    out.clear();
    matcher.match(pub, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_ShardedMatch)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8});

void BM_ShardedMatchBatch(benchmark::State& state) {
  // Args: {subscriptions, shards, batch size}. One fork/join per batch
  // instead of per publication; items processed = publications, so per-pub
  // cost is comparable across batch sizes.
  ShardedMatcher matcher{MatcherKind::kCounting, static_cast<std::size_t>(state.range(1))};
  Rng rng{5};
  fill(matcher, static_cast<std::size_t>(state.range(0)), rng);
  const auto batch = static_cast<std::size_t>(state.range(2));
  std::vector<Publication> pubs(batch);
  std::vector<std::vector<SubscriptionId>> out;
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& pub : pubs) {
      pub = Publication{};
      pub.set("x", rng.uniform(-100.0, 100.0));
      pub.set("y", rng.uniform(-100.0, 100.0));
    }
    state.ResumeTiming();
    matcher.match_batch(pubs, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ShardedMatchBatch)
    ->Args({10000, 1, 8})
    ->Args({10000, 4, 1})
    ->Args({10000, 4, 8})
    ->Args({10000, 4, 32})
    ->Args({10000, 8, 32});

}  // namespace

int main(int argc, char** argv) { return evps_bench::run(argc, argv, "BENCH_matcher.json"); }
