#include "evolving/lees_engine.hpp"

#include <algorithm>
#include <cstring>

namespace evps {
namespace {

/// Dedup key for a FULLY-evolving subscription towards `dest`: destination +
/// epoch + order-independent, bit-exact serialization of each compiled
/// predicate (opcode stream with operand bit patterns). Equal keys imply
/// bit-identical evaluation on every publication: same programs, same
/// operators, same `t` origin, same destination.
std::string lazy_dedup_key(NodeId dest, const Subscription& sub) {
  std::vector<std::string> parts;
  parts.reserve(sub.predicates().size());
  for (const auto& p : sub.predicates()) {
    std::string s = std::to_string(p.attr_id());
    s += '~';
    s += std::to_string(static_cast<int>(p.op()));
    const ExprProgram prog = ExprProgram::compile(*p.fun());
    for (const auto& insn : prog.code()) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &insn.k, sizeof(bits));
      s += '~';
      s += std::to_string(static_cast<int>(insn.op));
      s += ',';
      s += std::to_string(insn.argc);
      s += ',';
      s += std::to_string(insn.var);
      s += ',';
      s += std::to_string(bits);
    }
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  std::string key = std::to_string(dest.value());
  key += '@';
  key += std::to_string(sub.epoch().micros());
  for (const auto& part : parts) {
    key += '|';
    key += part;
  }
  return key;
}

}  // namespace

void LeesEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_add_static(entry);
    return;
  }
  const auto static_part = sub.static_predicates();
  if (static_part.empty() && config_.dedup_identical) {
    // Fully-evolving: share one LEME part per identical group. The key is
    // built (and programs compiled) before any state changes, so compile
    // failures leave the engine untouched; the canonical install is undone
    // from the table if verification rejects it below.
    if (!lazy_dedup_.add(sub.id(), lazy_dedup_key(entry.dest, sub))) return;
    try {
      leme_.add(leme_.make_part(entry.sub, false), entry.dest);
    } catch (...) {
      lazy_dedup_.remove(sub.id());
      throw;
    }
    return;
  }
  auto part = leme_.make_part(entry.sub, !static_part.empty());
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  leme_.add(std::move(part), entry.dest);
}

void LeesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_remove_static(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  const DedupTable::RemoveAction action = lazy_dedup_.remove(sub.id());
  if (!action.tracked) {
    leme_.remove(sub.id(), entry.dest);
    return;
  }
  if (!action.uninstall) return;  // a sharing member left; canonical stays
  leme_.remove(sub.id(), entry.dest);
  if (action.reinstall.valid()) {
    const Installed* next = installed_entry(action.reinstall);
    if (next != nullptr) leme_.add(leme_.make_part(next->sub, false), next->dest);
  }
}

bool LeesEngine::evolving_part_matches(const Leme::Part& part, const Publication& pub,
                                       const EvalScope& scope) {
  for (const auto& cp : part.preds) {
    const Value* v = pub.get(cp.attr());
    if (v == nullptr || !cp.matches(*v, scope, eval_stack_)) return false;
  }
  return true;
}

void LeesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                          EngineHost& host, std::vector<NodeId>& destinations) {
  // M1: standard matcher over static parts and purely-static subscriptions.
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  leme_.begin_match();
  for (const auto id : m1_) {
    if (leme_.note_m1(id)) continue;  // static half of a split subscription
    const Installed* entry = installed_entry(id);
    if (entry == nullptr) continue;
    // Purely-static match: forward, and skip the destination's LEME group.
    destinations.push_back(entry->dest);
    leme_.mark_done(entry->dest);
  }

  // M2: on-demand evaluation of evolving parts, per destination, with early
  // exit once the destination is known to need the publication.
  const ScopedTimer timer(costs_.lazy_eval);
  EvalScope& scope = publication_scope(pub, snapshot, host.variables(), host.now());
  for (const auto& [dest, group] : leme_.groups()) {
    if (leme_.done(group)) continue;
    for (const auto& part : group.parts) {
      if (part.has_static_part && !leme_.m1_hit(part)) continue;
      ++costs_.lazy_evaluations;
      scope.set_epoch(part.sub->epoch());
      if (evolving_part_matches(part, pub, scope)) {
        destinations.push_back(dest);
        break;  // early exit: this destination is settled
      }
    }
  }
}

}  // namespace evps
