// Content-based predicates, static and evolving.
//
// A static predicate compares a publication attribute against a constant
// Value:            (price < 15.29)
// An evolving predicate compares it against an expression over evolution
// variables:        (x >= (-3 + t) * v)
//
// Predicates within one subscription are conjunctive (Section III-A).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/attribute_table.hpp"
#include "common/value.hpp"
#include "expr/ast.hpp"
#include "expr/program.hpp"

namespace evps {

enum class RelOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

[[nodiscard]] std::string_view to_string(RelOp op) noexcept;
[[nodiscard]] std::optional<RelOp> parse_rel_op(std::string_view text) noexcept;

/// Apply `op` to (lhs, rhs) in the content-based sense; incomparable values
/// (string vs numeric) never satisfy any operator except kNe.
[[nodiscard]] bool apply_rel_op(RelOp op, const Value& lhs, const Value& rhs) noexcept;

class Predicate {
 public:
  /// Static predicate: attribute `op` constant.
  Predicate(std::string attribute, RelOp op, Value constant);

  /// Evolving predicate: attribute `op` fun(vars...). If `fun` is itself
  /// constant, the predicate degenerates to a static one.
  Predicate(std::string attribute, RelOp op, ExprPtr fun);

  [[nodiscard]] const std::string& attribute() const noexcept { return attribute_; }
  /// Interned id of attribute(); cached at construction so matching never
  /// hashes the name.
  [[nodiscard]] AttrId attr_id() const noexcept { return attr_id_; }
  [[nodiscard]] RelOp op() const noexcept { return op_; }

  [[nodiscard]] bool is_evolving() const noexcept {
    return std::holds_alternative<ExprPtr>(operand_);
  }

  /// Static operand; only valid when !is_evolving().
  [[nodiscard]] const Value& constant() const { return std::get<Value>(operand_); }

  /// Evolving operand; only valid when is_evolving().
  [[nodiscard]] const ExprPtr& fun() const { return std::get<ExprPtr>(operand_); }

  /// Evaluate against a publication attribute value. Static predicates
  /// ignore `env`; evolving predicates evaluate their function under `env`.
  [[nodiscard]] bool matches(const Value& pub_value, const Env& env) const;

  /// Static-only fast path; requires !is_evolving().
  [[nodiscard]] bool matches(const Value& pub_value) const;

  /// Produce the non-evolving version of this predicate under `env`
  /// (VES/CLEES version materialisation). Static predicates return a copy.
  [[nodiscard]] Predicate materialize(const Env& env) const;

  /// Variables referenced by the operand (empty for static predicates).
  [[nodiscard]] std::set<std::string> variables() const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Predicate& other) const noexcept;

 private:
  std::string attribute_;
  AttrId attr_id_ = kInvalidAttrId;
  RelOp op_;
  std::variant<Value, ExprPtr> operand_;
};

/// Install-time compiled form of an evolving predicate: attribute resolved to
/// its interned AttrId and the function lowered to a flat ExprProgram, so the
/// per-publication evaluation loop (LEES/CLEES/hybrid) does integer loads
/// only. Requires pred.is_evolving() (static parts live in the matcher).
class CompiledPredicate {
 public:
  CompiledPredicate() = default;
  explicit CompiledPredicate(const Predicate& pred);

  [[nodiscard]] AttrId attr() const noexcept { return attr_; }
  [[nodiscard]] RelOp op() const noexcept { return op_; }
  [[nodiscard]] const ExprProgram& program() const noexcept { return prog_; }

  /// Bound value under `scope`; NaN when a referenced variable is unbound
  /// (`unbound` reports which). Allocation-free in steady state.
  [[nodiscard]] double bound(const EvalScope& scope, std::vector<double>& stack,
                             bool& unbound) const;

  /// Evaluate against a publication value: pub_value OP program(scope).
  /// Unbound variables fail closed, mirroring Predicate::matches.
  [[nodiscard]] bool matches(const Value& pub_value, const EvalScope& scope,
                             std::vector<double>& stack) const;

 private:
  AttrId attr_ = kInvalidAttrId;
  RelOp op_ = RelOp::kLt;
  ExprProgram prog_;
};

}  // namespace evps
