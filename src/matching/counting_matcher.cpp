#include "matching/counting_matcher.hpp"

#include <algorithm>

#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"

namespace evps {

void CountingMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  const auto [it, inserted] = subs_.emplace(id, preds);
  if (!inserted) throw std::invalid_argument("duplicate subscription id " + id.str());
  for (const auto& p : preds) index_predicate(id, p);
  predicate_count_ += preds.size();
}

bool CountingMatcher::remove(SubscriptionId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  for (const auto& p : it->second) unindex_predicate(id, p);
  predicate_count_ -= it->second.size();
  subs_.erase(it);
  return true;
}

void CountingMatcher::index_predicate(SubscriptionId id, const Predicate& p) {
  auto& idx = index_[p.attribute()];
  const Value& c = p.constant();
  if (p.op() == RelOp::kEq) {
    if (c.is_string()) {
      idx.eq_str[c.as_string()].push_back(id);
    } else {
      idx.eq_num[*c.numeric()].push_back(id);
    }
    return;
  }
  if (p.op() == RelOp::kNe) {
    idx.ne.emplace_back(c, id);
    return;
  }
  if (c.is_string()) {
    idx.misc.emplace_back(p, id);
    return;
  }
  const double bound = *c.numeric();
  auto insert_sorted = [&](std::vector<BoundEntry>& list) {
    const BoundEntry entry{bound, id};
    list.insert(std::upper_bound(list.begin(), list.end(), entry), entry);
  };
  switch (p.op()) {
    case RelOp::kLt: insert_sorted(idx.lt); break;
    case RelOp::kLe: insert_sorted(idx.le); break;
    case RelOp::kGt: insert_sorted(idx.gt); break;
    case RelOp::kGe: insert_sorted(idx.ge); break;
    default: break;  // kEq/kNe handled above
  }
}

void CountingMatcher::unindex_predicate(SubscriptionId id, const Predicate& p) {
  const auto idx_it = index_.find(p.attribute());
  if (idx_it == index_.end()) return;
  auto& idx = idx_it->second;
  const Value& c = p.constant();

  auto erase_from_list = [&](auto& map, const auto& key) {
    const auto it = map.find(key);
    if (it == map.end()) return;
    auto& v = it->second;
    const auto pos = std::find(v.begin(), v.end(), id);
    if (pos != v.end()) v.erase(pos);
    if (v.empty()) map.erase(it);
  };

  if (p.op() == RelOp::kEq) {
    if (c.is_string()) {
      erase_from_list(idx.eq_str, c.as_string());
    } else {
      erase_from_list(idx.eq_num, *c.numeric());
    }
  } else if (p.op() == RelOp::kNe) {
    const auto pos = std::find_if(idx.ne.begin(), idx.ne.end(),
                                  [&](const auto& e) { return e.second == id && e.first == c; });
    if (pos != idx.ne.end()) idx.ne.erase(pos);
  } else if (c.is_string()) {
    const auto pos = std::find_if(idx.misc.begin(), idx.misc.end(),
                                  [&](const auto& e) { return e.second == id && e.first == p; });
    if (pos != idx.misc.end()) idx.misc.erase(pos);
  } else {
    const double bound = *c.numeric();
    auto erase_sorted = [&](std::vector<BoundEntry>& list) {
      const BoundEntry entry{bound, id};
      const auto range = std::equal_range(list.begin(), list.end(), entry);
      if (range.first != range.second) list.erase(range.first);
    };
    switch (p.op()) {
      case RelOp::kLt: erase_sorted(idx.lt); break;
      case RelOp::kLe: erase_sorted(idx.le); break;
      case RelOp::kGt: erase_sorted(idx.gt); break;
      case RelOp::kGe: erase_sorted(idx.ge); break;
      default: break;
    }
  }
  if (idx.empty()) index_.erase(idx_it);
}

void CountingMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (subs_.empty() || pub.empty()) return;
  std::unordered_map<SubscriptionId, std::uint32_t> counts;
  counts.reserve(64);

  const auto hit = [&](SubscriptionId id) { ++counts[id]; };

  for (const auto& [attr, value] : pub.attributes()) {
    const auto idx_it = index_.find(attr);
    if (idx_it == index_.end()) continue;
    const auto& idx = idx_it->second;

    if (const auto num = value.numeric()) {
      const double v = *num;
      // pub < bound: all bounds strictly greater than v.
      {
        auto pos = std::upper_bound(idx.lt.begin(), idx.lt.end(), v,
                                    [](double x, const BoundEntry& e) { return x < e.bound; });
        for (; pos != idx.lt.end(); ++pos) hit(pos->sub);
      }
      // pub <= bound: all bounds >= v.
      {
        auto pos = std::lower_bound(idx.le.begin(), idx.le.end(), v,
                                    [](const BoundEntry& e, double x) { return e.bound < x; });
        for (; pos != idx.le.end(); ++pos) hit(pos->sub);
      }
      // pub > bound: all bounds strictly less than v.
      {
        const auto end = std::lower_bound(idx.gt.begin(), idx.gt.end(), v,
                                          [](const BoundEntry& e, double x) { return e.bound < x; });
        for (auto pos = idx.gt.begin(); pos != end; ++pos) hit(pos->sub);
      }
      // pub >= bound: all bounds <= v.
      {
        const auto end = std::upper_bound(idx.ge.begin(), idx.ge.end(), v,
                                          [](double x, const BoundEntry& e) { return x < e.bound; });
        for (auto pos = idx.ge.begin(); pos != end; ++pos) hit(pos->sub);
      }
      if (const auto eq = idx.eq_num.find(v); eq != idx.eq_num.end()) {
        for (const auto id : eq->second) hit(id);
      }
    } else {
      if (const auto eq = idx.eq_str.find(value.as_string()); eq != idx.eq_str.end()) {
        for (const auto id : eq->second) hit(id);
      }
    }
    for (const auto& [operand, id] : idx.ne) {
      if (apply_rel_op(RelOp::kNe, value, operand)) hit(id);
    }
    for (const auto& [pred, id] : idx.misc) {
      if (pred.matches(value)) hit(id);
    }
  }

  const std::size_t first_new = out.size();
  for (const auto& [id, count] : counts) {
    const auto sub_it = subs_.find(id);
    if (sub_it != subs_.end() && count == sub_it->second.size()) out.push_back(id);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end());
}

MatcherPtr make_matcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kBruteForce: return std::make_unique<BruteForceMatcher>();
    case MatcherKind::kCounting: return std::make_unique<CountingMatcher>();
    case MatcherKind::kChurn: return std::make_unique<ChurnMatcher>();
  }
  throw std::invalid_argument("unknown matcher kind");
}

}  // namespace evps
