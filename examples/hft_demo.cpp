// High-frequency-trading demo (Section VI-B): three simulated stock markets
// (13 brokers), brokerage-firm publishers and HFT client firms tracking
// narrow, drifting price bands with evolving subscriptions — compared
// head-to-head with the resubscription baseline.
//
//   $ ./hft_demo
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/hft.hpp"

using namespace evps;

namespace {

HftConfig demo_config(SystemKind system) {
  HftConfig cfg;
  cfg.system = system;
  cfg.seed = 7;
  cfg.clients = 30;
  cfg.stocks = 120;
  cfg.stocks_per_client = 5;
  cfg.pub_rate = 25.0;
  cfg.change_rate_per_min = 30.0;
  cfg.validity = Duration::seconds(20.0);
  cfg.duration = SimTime::from_seconds(60.0);
  cfg.traffic_interval = Duration::seconds(20.0);
  return cfg;
}

}  // namespace

int main() {
  std::cout << "HFT demo: 3 markets x (3 edge + 1 core) + 1 central broker\n";
  std::cout << "30 HFT firms x 5 stocks, bands re-centred 30x/min per subscription\n\n";

  Table t{{"system", "sub msgs/interval/broker", "deliveries", "engine time (ms)"}};
  for (const SystemKind system :
       {SystemKind::kResub, SystemKind::kParametric, SystemKind::kClees}) {
    HftExperiment exp(demo_config(system));
    exp.run();
    t.add_row({to_string(system), Table::fmt(exp.traffic().mean(), 1),
               std::to_string(exp.delivery_log().total()),
               Table::fmt(exp.engine_seconds() * 1000, 1)});
  }
  t.print();

  std::cout << "\nThe evolving system expresses each band as\n"
               "    price >= c0 - w + drift*t ; price <= c0 + w + drift*t\n"
               "so brokers re-centre it locally; clients only send one subscription\n"
               "per validity period instead of two messages per band move.\n";
  return 0;
}
