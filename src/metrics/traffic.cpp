#include "metrics/traffic.hpp"

#include <cstdio>

namespace evps {

LinkBatchCounters aggregate_link_counters(const Overlay& overlay) {
  LinkBatchCounters total;
  for (const auto& broker : overlay.brokers()) total.merge(broker->link_counters());
  return total;
}

std::string format_link_report(const LinkBatchCounters& c) {
  char line[256];
  std::string out = "link batching:\n";
  std::snprintf(line, sizeof(line),
                "  messages %llu (batch %llu, single %llu), events %llu, events/msg %.2f\n",
                static_cast<unsigned long long>(c.messages()),
                static_cast<unsigned long long>(c.batch_messages),
                static_cast<unsigned long long>(c.single_messages),
                static_cast<unsigned long long>(c.events), c.events_per_message());
  out += line;
  std::snprintf(line, sizeof(line),
                "  flushes: size %llu, deadline %llu, barrier %llu\n",
                static_cast<unsigned long long>(c.size_flushes),
                static_cast<unsigned long long>(c.deadline_flushes),
                static_cast<unsigned long long>(c.barrier_flushes));
  out += line;
  if (c.bytes != 0) {
    std::snprintf(line, sizeof(line), "  wire bytes %llu\n",
                  static_cast<unsigned long long>(c.bytes));
    out += line;
  }
  if (c.fill.summary().count() != 0) {
    std::snprintf(line, sizeof(line), "  batch fill: mean %.1f, max %.0f, p99 %.0f\n",
                  c.fill.summary().mean(), c.fill.summary().max(), c.fill.quantile(0.99));
    out += line;
  }
  return out;
}

TrafficProbe::TrafficProbe(Overlay& overlay, Duration interval, SimTime until)
    : overlay_(overlay), interval_(interval) {
  if (interval <= Duration::zero()) throw std::invalid_argument("interval must be positive");
  auto& sim = overlay.simulator();
  sim.every(sim.now() + interval, interval, until + Duration::micros(1), [this](SimTime) {
    const std::uint64_t total = overlay_.total_subscription_msgs();
    const auto broker_count = overlay_.brokers().size();
    const double delta = static_cast<double>(total - last_total_);
    last_total_ = total;
    samples_.push_back(broker_count == 0 ? 0.0 : delta / static_cast<double>(broker_count));
  });
}

double TrafficProbe::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace evps
