file(REMOVE_RECURSE
  "CMakeFiles/test_string_util.dir/test_string_util.cpp.o"
  "CMakeFiles/test_string_util.dir/test_string_util.cpp.o.d"
  "test_string_util"
  "test_string_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_string_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
