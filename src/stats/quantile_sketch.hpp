// Fixed-budget streaming quantiles with a guaranteed rank-error bound.
//
// Greenwald–Khanna summary: a sorted list of tuples (v, g, Δ) where g is the
// gap to the previous tuple's minimum rank and Δ the extra rank slack, under
// the invariant g + Δ <= floor(2εn). `quantile(q)` then returns a stream
// value whose rank in the sorted stream is within `error_budget()` of
// ceil(q·n); for a sketch built purely by `add()` that budget is ε·n (plus
// one rank of ceiling slack — the documented bound the property suite
// enforces). Memory is O((1/ε)·log(εn)) tuples independent of the stream
// values — the "fixed budget" the sweep needs to absorb per-delivery latency
// streams of any length.
//
// `combine()` merges another sketch built with the same ε (tuples are
// interleaved by value; both operands' rank-slack budgets add), so
// per-replica sketches can be folded into a pooled view: a fold over k
// sketches answers within the *sum* of their ε·n_i budgets. The sweep
// driver therefore reports pooled quantiles only over small folds and keeps
// the headline p50/p99 per replica, where the tight single-stream bound
// applies.
//
// Determinism: the structure is completely deterministic in the sequence of
// add()/combine() calls — no randomness, no pointers — which the
// bit-deterministic replica requirement relies on. Non-finite inputs are
// rejected and counted, like every accumulator in the harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace evps {

class QuantileSketch {
 public:
  /// `eps` is the rank-error fraction (default 0.5 % of the stream length).
  explicit QuantileSketch(double eps = 0.005);

  /// Record one sample. Non-finite values are counted as rejected.
  void add(double x);

  /// Merge a sketch built with the same ε. The rank-error budgets add:
  /// after the merge, error_budget() == ε·n_total + both inherited extras.
  void combine(const QuantileSketch& other);

  /// A stream value whose rank is within error_budget() (+1 ceiling slack)
  /// of ceil(q·count()). q is clamped to [0, 1]; 0 for an empty sketch.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }

  /// Absolute rank slack of quantile(): ε·count() plus any budget inherited
  /// from combine().
  [[nodiscard]] double error_budget() const noexcept {
    return eps_ * static_cast<double>(n_) + extra_budget_;
  }

  /// Exact stream extremes (the boundary tuples are never compacted).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Resident tuples — the memory footprint observable the budget tests pin.
  [[nodiscard]] std::size_t tuple_count() const noexcept { return tuples_.size(); }

 private:
  struct Tuple {
    double v;
    std::uint64_t g;
    std::uint64_t delta;
  };

  [[nodiscard]] std::uint64_t band() const noexcept;
  void compress();

  double eps_;
  double extra_budget_ = 0.0;  // rank slack inherited from combine()
  std::uint64_t n_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // sorted by v
};

}  // namespace evps
