# Empty dependencies file for game_demo.
# This may be replaced when dependencies are built.
