// Covering-based subscription routing: dissemination traffic and matcher
// population, off vs on.
//
// Two clustered-subscriber workloads run on an advertisement-mode star
// overlay (core + 4 edge brokers):
//
//   game — moving-interest zones: per edge broker, subscriber clusters pick
//     a hotspot; one wide zone per cluster covers a pile of narrower (and
//     evolving, load-scaled) zones from the same cluster.
//   hft  — price bands: wide desk-level band subscriptions covering nested
//     per-trader bands, plus exact duplicates (identical alert rules),
//     which also exercises the engines' identical-predicate dedup.
//
// Each workload runs twice — BrokerConfig::covering off and on — with an
// identical message script, including an unsubscribe wave that removes ~20%
// of the coverers mid-run (uncover-on-remove re-dissemination). The runs
// must produce bit-identical client delivery logs (checked; the bench exits
// nonzero on divergence, so the bench-smoke ctest entry doubles as a
// regression test), while the covering run must need fewer
// subscription-dissemination messages and smaller matchers.
//
// Results are printed as tables and recorded in BENCH_routing.json
// (argv[1] overrides the output path).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "message/codec.hpp"
#include "metrics/covering_counters.hpp"
#include "metrics/report.hpp"

namespace {

using namespace evps;

constexpr int kEdges = 4;
constexpr int kClustersPerEdge = 3;
constexpr int kCoveredPerCluster = 6;

struct RunStats {
  std::uint64_t subscription_msgs = 0;
  std::uint64_t matcher_population = 0;
  std::uint64_t deduped_installs = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t demote_unsubscribes = 0;
  std::uint64_t resubscribes = 0;
  CoverStats pairs;
  /// Flattened delivery log for the off/on equivalence check.
  std::vector<std::string> delivery_log;
};

struct Workload {
  std::string name;
  std::string adv;                      // advertised publication space
  std::vector<std::string> subs;        // subscription texts, cluster-ordered
  std::vector<std::size_t> unsub_wave;  // indices unsubscribed mid-run
  std::vector<std::string> pubs;        // publication texts
};

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Clustered game zones: per cluster one wide [c-60, c+60] x/y box covering
/// narrower static and load-scaled evolving zones around the same hotspot.
Workload make_game_workload() {
  Workload w;
  w.name = "game";
  w.adv = "x >= 0; x <= 1000; y >= 0; y <= 1000";
  Rng rng{2024};
  for (int e = 0; e < kEdges; ++e) {
    for (int c = 0; c < kClustersPerEdge; ++c) {
      const double cx = rng.uniform(100.0, 900.0);
      const double cy = rng.uniform(100.0, 900.0);
      std::vector<std::string> zones;
      for (int s = 0; s < kCoveredPerCluster; ++s) {
        const double r = rng.uniform(5.0, 40.0);
        const double ox = rng.uniform(-15.0, 15.0);
        const double oy = rng.uniform(-15.0, 15.0);
        if (rng.bernoulli(0.3)) {
          // Evolving zone: gz_load in [0, 1] keeps the envelope within the
          // wide box (max reach 40 + 15 < 60).
          zones.push_back("[tt=0.5] x >= " + fmt_num(cx + ox - r) + "; x <= " +
                          fmt_num(cx + ox) + " + " + fmt_num(r * 0.5) + " * gz_load; y >= " +
                          fmt_num(cy + oy - r) + "; y <= " + fmt_num(cy + oy + r));
        } else {
          zones.push_back("x >= " + fmt_num(cx + ox - r) + "; x <= " + fmt_num(cx + ox + r) +
                          "; y >= " + fmt_num(cy + oy - r) + "; y <= " + fmt_num(cy + oy + r));
        }
      }
      // Two narrow zones subscribe before the wide one: they start as roots
      // and are demoted (retracted upstream) when the coverer arrives.
      w.subs.push_back(zones[0]);
      w.subs.push_back(zones[1]);
      w.subs.push_back("x >= " + fmt_num(cx - 60) + "; x <= " + fmt_num(cx + 60) + "; y >= " +
                       fmt_num(cy - 60) + "; y <= " + fmt_num(cy + 60));
      const std::size_t coverer = w.subs.size() - 1;
      if (rng.bernoulli(0.25)) w.unsub_wave.push_back(coverer);
      for (int s = 2; s < kCoveredPerCluster; ++s) w.subs.push_back(zones[s]);
      // Publications aimed at the cluster so deliveries are non-trivial.
      for (int p = 0; p < 4; ++p) {
        w.pubs.push_back("x = " + fmt_num(cx + rng.uniform(-70.0, 70.0)) +
                         "; y = " + fmt_num(cy + rng.uniform(-70.0, 70.0)));
      }
    }
  }
  return w;
}

/// HFT price bands: desk-wide bands covering per-trader bands plus exact
/// duplicate alert rules (identical predicates, multiple subscribers).
Workload make_hft_workload() {
  Workload w;
  w.name = "hft";
  w.adv = "price >= 0; price <= 1000";
  Rng rng{7};
  for (int e = 0; e < kEdges; ++e) {
    for (int c = 0; c < kClustersPerEdge; ++c) {
      const double base = rng.uniform(50.0, 900.0);
      const std::string dup = "price >= " + fmt_num(base - 10) + "; price <= " +
                              fmt_num(base + 10);
      // The duplicate alert rules subscribe before the desk-wide band: the
      // first becomes a root, is demoted on the coverer's arrival, and both
      // exercise the engines' identical-predicate dedup.
      w.subs.push_back(dup);
      w.subs.push_back(dup);
      w.subs.push_back("price >= " + fmt_num(base - 40) + "; price <= " + fmt_num(base + 40));
      const std::size_t coverer = w.subs.size() - 1;
      if (rng.bernoulli(0.25)) w.unsub_wave.push_back(coverer);
      for (int s = 2; s < kCoveredPerCluster; ++s) {
        if (rng.bernoulli(0.3)) {
          // Volatility-scaled band: hf_vix in [0, 1] bounds the reach to 30.
          w.subs.push_back("[tt=0.5] price >= " + fmt_num(base - 20) + "; price <= " +
                           fmt_num(base) + " + 30 * hf_vix");
        } else {
          const double r = rng.uniform(5.0, 35.0);
          w.subs.push_back("price >= " + fmt_num(base - r) + "; price <= " + fmt_num(base + r));
        }
      }
      for (int p = 0; p < 4; ++p) {
        w.pubs.push_back("price = " + fmt_num(base + rng.uniform(-50.0, 50.0)));
      }
    }
  }
  return w;
}

RunStats run(const Workload& w, bool covering_on) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.routing = RoutingMode::kAdvertisement;
  cfg.covering = covering_on;
  auto brokers = overlay.build_star(kEdges, cfg, Duration::millis(5));
  for (auto* b : brokers) {
    b->variables().declare_range("gz_load", 0.0, 1.0);
    b->variables().declare_range("hf_vix", 0.0, 1.0);
  }
  brokers[0]->set_variable("gz_load", 0.5);
  brokers[0]->set_variable("hf_vix", 0.3);

  PubSubClient& publisher = overlay.add_client("pub");
  publisher.connect(*brokers[1], Duration::millis(1));

  std::vector<PubSubClient*> subscribers;
  std::vector<SubscriptionId> sub_ids(w.subs.size());
  const std::size_t per_edge = (w.subs.size() + kEdges - 1) / kEdges;
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    PubSubClient& c = overlay.add_client("sub" + std::to_string(i));
    // Cluster-ordered: consecutive subscriptions land on the same edge.
    c.connect(*brokers[1 + (i / per_edge) % kEdges], Duration::millis(1));
    subscribers.push_back(&c);
  }

  sim.after(Duration::zero(), [&] {
    publisher.advertise(parse_subscription(w.adv).predicates());
  });
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    sim.after(Duration::seconds(1.0 + 0.01 * static_cast<double>(i)),
              [&, i] { sub_ids[i] = subscribers[i]->subscribe(w.subs[i]); });
  }
  for (std::size_t i = 0; i < w.pubs.size(); ++i) {
    sim.after(Duration::seconds(4.0 + 0.05 * static_cast<double>(i)),
              [&, i] { publisher.publish(w.pubs[i]); });
  }
  // Unsubscribe wave: remove a fifth of the coverers (uncover-on-remove).
  for (std::size_t k = 0; k < w.unsub_wave.size(); ++k) {
    const std::size_t i = w.unsub_wave[k];
    sim.after(Duration::seconds(8.0 + 0.05 * static_cast<double>(k)),
              [&, i] { subscribers[i]->unsubscribe(sub_ids[i]); });
  }
  // Second publication round against the post-removal state.
  for (std::size_t i = 0; i < w.pubs.size(); ++i) {
    sim.after(Duration::seconds(10.0 + 0.05 * static_cast<double>(i)),
              [&, i] { publisher.publish(w.pubs[i]); });
  }
  sim.run_until(SimTime::from_seconds(20.0));

  RunStats r;
  for (const auto& b : overlay.brokers()) {
    r.subscription_msgs += b->stats().subscription_msgs;
    r.matcher_population += b->engine().matcher_population();
    r.deduped_installs += b->engine().deduped_installs();
    r.suppressed += b->covering_counters().suppressed_forwards;
    r.demote_unsubscribes += b->covering_counters().demote_unsubscribes;
    r.resubscribes += b->covering_counters().resubscribes;
    const CoverStats cs = b->covering_stats();
    r.pairs.pairs += cs.pairs;
    r.pairs.covered += cs.covered;
    r.pairs.unknown += cs.unknown;
  }
  for (const PubSubClient* c : subscribers) {
    r.deliveries += c->deliveries().size();
    for (const auto& d : c->deliveries()) {
      r.delivery_log.push_back(c->name() + "@" + std::to_string(d.when.micros()) + ":" +
                               serialize(d.pub));
    }
  }
  return r;
}

void json_scenario(std::ostream& os, const std::string& name, const RunStats& off,
                   const RunStats& on) {
  const double reduction =
      off.subscription_msgs == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(on.subscription_msgs) /
                               static_cast<double>(off.subscription_msgs));
  os << "    {\"name\":\"" << name << "\","
     << "\"off\":{\"subscription_msgs\":" << off.subscription_msgs
     << ",\"matcher_population\":" << off.matcher_population
     << ",\"deduped_installs\":" << off.deduped_installs << ",\"deliveries\":" << off.deliveries
     << "},"
     << "\"on\":{\"subscription_msgs\":" << on.subscription_msgs
     << ",\"matcher_population\":" << on.matcher_population
     << ",\"deduped_installs\":" << on.deduped_installs << ",\"deliveries\":" << on.deliveries
     << ",\"suppressed_forwards\":" << on.suppressed
     << ",\"demote_unsubscribes\":" << on.demote_unsubscribes
     << ",\"resubscribes\":" << on.resubscribes << ",\"pairs_analyzed\":" << on.pairs.pairs
     << ",\"pairs_covered\":" << on.pairs.covered << "},"
     << "\"dissemination_reduction_pct\":" << reduction << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_routing.json";
  std::cout << "Covering-based subscription routing: dissemination and matcher population\n";

  bool diverged = false;
  std::ostringstream json;
  json << "{\n  \"overlay\": \"star, core + " << kEdges
       << " edges, advertisement routing, LEES\",\n  \"scenarios\": [\n";

  const Workload workloads[] = {make_game_workload(), make_hft_workload()};
  for (std::size_t wi = 0; wi < 2; ++wi) {
    const Workload& w = workloads[wi];
    const RunStats off = run(w, false);
    const RunStats on = run(w, true);

    print_banner(w.name + " workload (" + std::to_string(w.subs.size()) + " subscriptions, " +
                 std::to_string(w.unsub_wave.size()) + " coverers removed mid-run)");
    Table t{{"metric", "covering off", "covering on"}};
    t.add_row({"subscription msgs", std::to_string(off.subscription_msgs),
               std::to_string(on.subscription_msgs)});
    t.add_row({"matcher population", std::to_string(off.matcher_population),
               std::to_string(on.matcher_population)});
    t.add_row({"deduped installs", std::to_string(off.deduped_installs),
               std::to_string(on.deduped_installs)});
    t.add_row({"deliveries", std::to_string(off.deliveries), std::to_string(on.deliveries)});
    t.add_row({"suppressed forwards", "-", std::to_string(on.suppressed)});
    t.add_row({"demote unsubscribes", "-", std::to_string(on.demote_unsubscribes)});
    t.add_row({"resubscribes", "-", std::to_string(on.resubscribes)});
    t.add_row({"covering pairs (covered)", "-",
               std::to_string(on.pairs.pairs) + " (" + std::to_string(on.pairs.covered) + ")"});
    t.print();
    const double reduction =
        100.0 * (1.0 - static_cast<double>(on.subscription_msgs) /
                           static_cast<double>(off.subscription_msgs));
    std::cout << "dissemination reduction: " << Table::fmt(reduction, 1) << "%\n";

    if (off.delivery_log != on.delivery_log) {
      std::cerr << "ERROR: delivery logs diverge between covering off/on in " << w.name << "\n";
      diverged = true;
    }

    json_scenario(json, w.name, off, on);
    json << (wi == 0 ? ",\n" : "\n");
  }
  json << "  ]\n}";

  // BENCH_routing.json is shared with the overlay_batch bench: each bench
  // owns one top-level section and preserves the other's.
  if (!write_json_section(out_path, "routing_covering", json.str())) {
    std::cerr << "ERROR: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << out_path << " (section routing_covering)\n";
  return diverged ? 1 : 0;
}
