// End-to-end link batching equivalence (DESIGN.md §14).
//
// The contract under test: with a zero flush deadline, routing publications
// through the per-link batcher (PublishBatchMsg towards neighbour brokers,
// DeliveryBatchMsg towards clients) is observationally IDENTICAL to the
// per-message path — same deliveries, same timestamps, same per-client
// order, bit for bit — across overlay topologies, engines, routing modes and
// batch widths, under a workload that mixes bursts, staggered singles,
// evolution-variable updates, an unsubscribe wave and control traffic
// interleaved with pending batches (the barrier path).
//
// With a positive deadline the batched run trades bounded lateness for
// fuller batches: the delivery SET and per-client order still match, and
// every delivery lands within (hops * deadline) of its per-message
// timestamp.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "message/codec.hpp"
#include "metrics/traffic.hpp"

namespace evps {
namespace {

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

enum class Topology { kLine, kStar };

struct ScenarioConfig {
  Topology topology = Topology::kLine;
  EngineKind engine = EngineKind::kLees;
  RoutingMode routing = RoutingMode::kFlooding;
  bool covering = false;
  bool snapshot_consistency = false;
  std::size_t batch_size = 1;
  std::size_t link_batch_size = 1;
  Duration deadline = Duration::zero();
};

struct ScenarioResult {
  /// Flattened, client-ordered `name@micros:id:payload` log — the
  /// bit-identity witness (timestamps included).
  std::vector<std::string> log;
  /// Per-client `id:payload` sequences and timestamps, for the
  /// positive-deadline assertions (order/set without timestamps).
  std::map<std::string, std::vector<std::string>> per_client;
  std::map<std::string, std::vector<std::int64_t>> times;
  LinkBatchCounters counters;
  std::uint64_t stats_publications = 0;
  std::uint64_t stats_deliveries = 0;
  std::uint64_t delivery_batch_envelopes = 0;
  std::uint64_t delivery_batch_events = 0;
  std::size_t broker_count = 0;
};

constexpr int kSubsPerBroker = 3;

/// One deterministic workload, heavy on the batching-relevant interleavings:
///   - 6 bursts of 12 publications in one virtual instant each (batch
///     formation), the first burst immediately chased by a variable update
///     from a second client on the entry broker (barrier while pending);
///   - 15 staggered singles (batch-of-1 scalar framing);
///   - an unsubscribe wave, then a second burst round against the changed
///     subscription population;
///   - evolving subscriptions scaled by `load`, updated mid-run.
ScenarioResult run_scenario(const ScenarioConfig& sc) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = sc.engine;
  cfg.routing = sc.routing;
  cfg.covering = sc.covering;
  cfg.snapshot_consistency = sc.snapshot_consistency;
  cfg.batch_size = sc.batch_size;
  cfg.link_batch_size = sc.link_batch_size;
  cfg.link_flush_deadline = sc.deadline;

  std::vector<Broker*> brokers = sc.topology == Topology::kLine
                                     ? overlay.build_line(4, cfg, Duration::millis(5))
                                     : overlay.build_star(4, cfg, Duration::millis(5));
  for (auto* b : brokers) b->variables().declare_range("load", 0.0, 1.0);
  brokers[0]->set_variable("load", 0.5);

  // Publisher and the control client share the entry broker, so a burst and
  // the chasing variable update arrive in the same virtual instant.
  Broker& entry = *brokers[sc.topology == Topology::kLine ? 0 : 1];
  PubSubClient& publisher = overlay.add_client("pub");
  publisher.connect(entry, Duration::millis(1));
  PubSubClient& control = overlay.add_client("ctl");
  control.connect(entry, Duration::millis(1));

  ScenarioResult r;
  r.broker_count = brokers.size();

  // Count grouped deliveries on the wire (clients are the non-broker nodes).
  const NodeId max_broker_node = brokers.back()->node_id();
  overlay.network().add_tap([&](const Envelope& env, SimTime) {
    if (env.to.value() > max_broker_node.value() &&
        std::holds_alternative<DeliveryBatchMsg>(env.msg)) {
      ++r.delivery_batch_envelopes;
      r.delivery_batch_events += publications_carried(env.msg);
    }
  });

  Rng rng{4242};
  std::vector<PubSubClient*> subscribers;
  std::vector<SubscriptionId> sub_ids;
  std::vector<std::string> sub_texts;
  for (std::size_t bi = 0; bi < brokers.size(); ++bi) {
    for (int s = 0; s < kSubsPerBroker; ++s) {
      const double cx = rng.uniform(100.0, 900.0);
      const double cy = rng.uniform(100.0, 900.0);
      const double hw = rng.uniform(120.0, 350.0);
      if (s == 1) {
        // Evolving: the x reach scales with `load` in [0, 1].
        sub_texts.push_back("[tt=0.5] x >= " + fmt_num(cx - hw) + "; x <= " + fmt_num(cx) +
                            " + " + fmt_num(hw) + " * load; y >= " + fmt_num(cy - hw) +
                            "; y <= " + fmt_num(cy + hw));
      } else {
        sub_texts.push_back("x >= " + fmt_num(cx - hw) + "; x <= " + fmt_num(cx + hw) +
                            "; y >= " + fmt_num(cy - hw) + "; y <= " + fmt_num(cy + hw));
      }
      PubSubClient& c = overlay.add_client("sub" + std::to_string(bi) + "_" + std::to_string(s));
      c.connect(*brokers[bi], Duration::millis(1));
      subscribers.push_back(&c);
    }
  }
  sub_ids.resize(sub_texts.size());

  std::vector<std::string> burst_pubs;
  for (int i = 0; i < 12 * 12; ++i) {
    burst_pubs.push_back("x = " + fmt_num(rng.uniform(0.0, 1000.0)) +
                         "; y = " + fmt_num(rng.uniform(0.0, 1000.0)));
  }
  std::vector<std::string> single_pubs;
  for (int i = 0; i < 15; ++i) {
    single_pubs.push_back("x = " + fmt_num(rng.uniform(0.0, 1000.0)) +
                          "; y = " + fmt_num(rng.uniform(0.0, 1000.0)));
  }

  sim.after(Duration::zero(), [&] {
    publisher.advertise(parse_subscription("x >= 0; x <= 1000; y >= 0; y <= 1000").predicates());
  });
  for (std::size_t i = 0; i < sub_texts.size(); ++i) {
    sim.after(Duration::seconds(1.0 + 0.01 * static_cast<double>(i)),
              [&, i] { sub_ids[i] = subscribers[i]->subscribe(sub_texts[i]); });
  }
  for (int burst = 0; burst < 6; ++burst) {
    sim.after(Duration::seconds(3.0 + 0.05 * burst), [&, burst] {
      for (int p = 0; p < 12; ++p) {
        publisher.publish(burst_pubs[static_cast<std::size_t>(burst) * 12 + p]);
      }
      // Chase the first burst with control traffic in the same instant: its
      // broker-to-broker forward must barrier-flush the pending batches.
      if (burst == 0) control.send_var_update("load", 0.8);
    });
  }
  for (std::size_t i = 0; i < single_pubs.size(); ++i) {
    sim.after(Duration::seconds(5.0 + 0.03 * static_cast<double>(i)),
              [&, i] { publisher.publish(single_pubs[i]); });
  }
  sim.after(Duration::seconds(6.0), [&] { control.send_var_update("load", 0.2); });
  for (std::size_t i = 0; i < sub_ids.size(); i += 4) {
    sim.after(Duration::seconds(7.0 + 0.01 * static_cast<double>(i)),
              [&, i] { subscribers[i]->unsubscribe(sub_ids[i]); });
  }
  for (int burst = 6; burst < 12; ++burst) {
    sim.after(Duration::seconds(8.0 + 0.05 * burst), [&, burst] {
      for (int p = 0; p < 12; ++p) {
        publisher.publish(burst_pubs[static_cast<std::size_t>(burst) * 12 + p]);
      }
    });
  }
  sim.run_until(SimTime::from_seconds(15.0));

  for (const PubSubClient* c : subscribers) {
    for (const auto& d : c->deliveries()) {
      const std::string payload = std::to_string(d.pub.id().value()) + ":" + serialize(d.pub);
      r.log.push_back(c->name() + "@" + std::to_string(d.when.micros()) + ":" + payload);
      r.per_client[c->name()].push_back(payload);
      r.times[c->name()].push_back(d.when.micros());
    }
  }
  r.counters = aggregate_link_counters(overlay);
  for (const auto& b : overlay.brokers()) {
    r.stats_publications += b->stats().publications;
    r.stats_deliveries += b->stats().deliveries;
  }
  return r;
}

ScenarioConfig baseline_of(ScenarioConfig sc) {
  sc.batch_size = 1;
  sc.link_batch_size = 1;
  sc.deadline = Duration::zero();
  return sc;
}

class LinkBatchSweep : public ::testing::TestWithParam<std::tuple<Topology, EngineKind,
                                                                  RoutingMode>> {};

/// The tentpole acceptance check: every (matcher batch, link batch) width is
/// bit-identical — timestamps included — to the per-message path, per
/// topology, engine and routing mode.
TEST_P(LinkBatchSweep, BitIdenticalToPerMessagePath) {
  const auto [topology, engine, routing] = GetParam();
  ScenarioConfig sc;
  sc.topology = topology;
  sc.engine = engine;
  sc.routing = routing;
  const ScenarioResult base = run_scenario(baseline_of(sc));
  ASSERT_FALSE(base.log.empty());

  const std::size_t widths[] = {2, 8, 64, 256};
  for (const std::size_t link_batch : widths) {
    for (const std::size_t match_batch : {std::size_t{1}, std::size_t{8}}) {
      ScenarioConfig batched = sc;
      batched.batch_size = match_batch;
      batched.link_batch_size = link_batch;
      const ScenarioResult got = run_scenario(batched);
      EXPECT_EQ(got.log, base.log)
          << "diverged at link_batch=" << link_batch << " match_batch=" << match_batch;
      // Events carried and broker-side event stats are invariant under
      // batching; only envelope counts may shrink.
      EXPECT_EQ(got.counters.events, base.counters.events);
      EXPECT_EQ(got.stats_publications, base.stats_publications);
      EXPECT_EQ(got.stats_deliveries, base.stats_deliveries);
      EXPECT_LE(got.counters.messages(), base.counters.messages());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, LinkBatchSweep,
    ::testing::Values(std::make_tuple(Topology::kLine, EngineKind::kLees, RoutingMode::kFlooding),
                      std::make_tuple(Topology::kLine, EngineKind::kClees,
                                      RoutingMode::kAdvertisement),
                      std::make_tuple(Topology::kStar, EngineKind::kLees,
                                      RoutingMode::kAdvertisement),
                      std::make_tuple(Topology::kStar, EngineKind::kClees,
                                      RoutingMode::kFlooding)));

TEST(LinkBatching, SnapshotConsistencyBypassesBatcherUnchanged) {
  ScenarioConfig sc;
  sc.engine = EngineKind::kLees;
  sc.snapshot_consistency = true;
  const ScenarioResult base = run_scenario(baseline_of(sc));
  ASSERT_FALSE(base.log.empty());
  ScenarioConfig batched = sc;
  batched.link_batch_size = 64;
  const ScenarioResult got = run_scenario(batched);
  EXPECT_EQ(got.log, base.log);
  // Snapshot-carrying publications never ride a batch: everything the
  // batcher saw went out as scalar sends at their entry broker, and only
  // snapshot-free hops (none here at the entry) could batch. Deliveries at
  // downstream brokers still carry the snapshot, so batches stay empty.
  EXPECT_EQ(got.counters.batch_messages, 0u);
}

TEST(LinkBatching, CoveringRoutingComposesWithLinkBatching) {
  ScenarioConfig sc;
  sc.engine = EngineKind::kLees;
  sc.routing = RoutingMode::kAdvertisement;
  sc.covering = true;
  const ScenarioResult base = run_scenario(baseline_of(sc));
  ASSERT_FALSE(base.log.empty());
  ScenarioConfig batched = sc;
  batched.batch_size = 8;
  batched.link_batch_size = 64;
  const ScenarioResult got = run_scenario(batched);
  EXPECT_EQ(got.log, base.log);
}

TEST(LinkBatching, GroupedDeliveriesObservedOnTheWire) {
  ScenarioConfig sc;
  sc.link_batch_size = 64;
  const ScenarioResult got = run_scenario(sc);
  // Bursty instants must actually group client deliveries into
  // DeliveryBatchMsg envelopes, each carrying at least two publications.
  EXPECT_GT(got.delivery_batch_envelopes, 0u);
  EXPECT_GT(got.delivery_batch_events, 2 * got.delivery_batch_envelopes);
  EXPECT_GT(got.counters.batch_messages, 0u);
  EXPECT_LT(got.counters.messages(), got.counters.events);
  // Every flushed batch is one histogram sample.
  EXPECT_EQ(got.counters.fill.summary().count(), got.counters.batch_messages);
  // The burst chased by a variable update forced at least one barrier flush.
  EXPECT_GT(got.counters.barrier_flushes, 0u);
}

TEST(LinkBatching, PositiveDeadlineBoundedLatenessSameOrder) {
  ScenarioConfig sc;
  sc.engine = EngineKind::kLees;
  const ScenarioResult base = run_scenario(baseline_of(sc));
  ASSERT_FALSE(base.log.empty());

  ScenarioConfig delayed = sc;
  delayed.link_batch_size = 64;
  delayed.deadline = Duration::millis(2);
  const ScenarioResult got = run_scenario(delayed);

  // Same delivery sets, same per-client order (single publisher, tree
  // overlay: one path per (publisher, client) pair, and batching preserves
  // per-link FIFO).
  EXPECT_EQ(got.per_client, base.per_client);
  // Every delivery is no earlier than per-message, and late by at most one
  // deadline per overlay hop (broker chain + client link).
  const std::int64_t max_late =
      delayed.deadline.count_micros() * static_cast<std::int64_t>(base.broker_count + 1);
  for (const auto& [client, base_times] : base.times) {
    const auto it = got.times.find(client);
    ASSERT_NE(it, got.times.end()) << client;
    ASSERT_EQ(it->second.size(), base_times.size()) << client;
    for (std::size_t i = 0; i < base_times.size(); ++i) {
      EXPECT_GE(it->second[i], base_times[i]) << client << " #" << i;
      EXPECT_LE(it->second[i] - base_times[i], max_late) << client << " #" << i;
    }
  }
  // The point of waiting: strictly fewer envelopes than the same-instant
  // policy needs for this (mostly staggered) schedule, deadline flushes used.
  EXPECT_GT(got.counters.deadline_flushes, 0u);
  EXPECT_EQ(got.counters.events, base.counters.events);
}

TEST(LinkBatching, ZeroConfigResolvesFromEnvironmentDefault) {
  // link_batch_size = 0 resolves through EVPS_LINK_BATCH (default 1) at
  // broker construction; the resolved width is visible in config().
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.link_batch_size = 0;
  Broker& b = overlay.add_broker("b", cfg);
  EXPECT_GE(b.config().link_batch_size, 1u);
  EXPECT_LE(b.config().link_batch_size, kMaxBatchPublications);
}

}  // namespace
}  // namespace evps
