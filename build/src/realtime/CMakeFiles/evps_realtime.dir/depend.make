# Empty dependencies file for evps_realtime.
# This may be replaced when dependencies are built.
