// End-to-end randomized soak: a mixed overlay runs minutes of virtual time
// with churning static/evolving subscriptions, variable updates, client
// shutdowns and a continuous publication stream, while global invariants
// are checked:
//   * determinism (two runs produce identical logs)
//   * LEES deliveries match an offline exact-oracle recomputation
//   * routing state drains when everything unsubscribes
//   * broker stats are internally consistent
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct SoakResult {
  DeliveryLog log;
  std::uint64_t total_received = 0;
  std::uint64_t total_sub_msgs = 0;
  std::size_t residual_subs = 0;  // subscriptions still installed at the end
};

struct SoakRecord {
  // Everything needed to recompute expected deliveries offline.
  struct SubEvent {
    SimTime at;  // microsecond-truncated install instant (== epoch)
    ClientId client;
    SubscriptionId id;
    double lo, width, drift;  // price in [lo + drift*t_rel, lo+width + drift*t_rel]
    bool evolving;
    SimTime unsubscribed_at = SimTime::max();
  };
  struct PubEvent {
    SimTime at;  // entry time (client link is zero-latency)
    MessageId id;
    double price;
  };
  std::vector<SubEvent> subs;
  std::vector<PubEvent> pubs;
};

SoakResult run_soak(std::uint64_t seed, EngineKind engine, SoakRecord* record) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = engine;
  auto brokers = overlay.build_line(3, cfg, Duration::zero());

  constexpr int kClients = 6;
  std::vector<PubSubClient*> clients;
  for (int c = 0; c < kClients; ++c) {
    auto& client = overlay.add_client("c" + std::to_string(c));
    client.connect(*brokers[static_cast<std::size_t>(c % 3)], Duration::zero());
    clients.push_back(&client);
  }
  auto& feed = overlay.add_client("feed");
  feed.connect(*brokers[1], Duration::zero());

  Rng rng{seed};
  const double kEnd = 60.0;

  // Subscription churn: install at random times, some unsubscribe later.
  std::map<SubscriptionId, std::size_t> record_index;
  for (int i = 0; i < 40; ++i) {
    const double at = rng.uniform(0.0, kEnd * 0.8);
    const auto client_idx = static_cast<std::size_t>(rng.uniform_int(0, kClients - 1));
    const double lo = rng.uniform(0.0, 90.0);
    const double width = rng.uniform(1.0, 10.0);
    const bool evolving = rng.bernoulli(0.6);
    const double drift = evolving ? rng.uniform(-1.0, 1.0) : 0.0;
    const double unsub_at = rng.bernoulli(0.4) ? rng.uniform(at + 1.0, kEnd) : -1.0;

    if (record != nullptr) {
      // Record microsecond-truncated instants so the offline oracle computes
      // exactly the same elapsed-time doubles as the simulator.
      record->subs.push_back({sec(at), clients[client_idx]->id(), SubscriptionId{}, lo, width,
                              drift, evolving,
                              unsub_at > 0 ? sec(unsub_at) : SimTime::max()});
    }
    const std::size_t rec = record == nullptr ? 0 : record->subs.size() - 1;
    sim.at(sec(at), [=, &sim]() {
      Subscription sub;
      if (evolving) {
        sub.add(Predicate{"price", RelOp::kGe,
                          Expr::add(Expr::constant(lo),
                                    Expr::mul(Expr::constant(drift), Expr::variable("t")))});
        sub.add(Predicate{"price", RelOp::kLe,
                          Expr::add(Expr::constant(lo + width),
                                    Expr::mul(Expr::constant(drift), Expr::variable("t")))});
      } else {
        sub.add(Predicate{"price", RelOp::kGe, Value{lo}});
        sub.add(Predicate{"price", RelOp::kLe, Value{lo + width}});
      }
      const auto id = clients[client_idx]->subscribe(std::move(sub));
      if (record != nullptr) record->subs[rec].id = id;
      if (unsub_at > 0) {
        sim.at(sec(unsub_at), [=]() { clients[client_idx]->unsubscribe(id); });
      }
    });
  }

  // Publication stream: 100/s over the whole run.
  auto pub_rng = std::make_shared<Rng>(rng.fork(0xf00d));
  sim.every(sec(0.01), Duration::millis(10), sec(kEnd), [&, pub_rng](SimTime now) {
    const double price = pub_rng->uniform(0.0, 100.0);
    Publication pub;
    pub.set("price", price);
    const MessageId id = feed.publish(std::move(pub));
    if (record != nullptr) record->pubs.push_back({now, id, price});
  });

  // One client departs gracefully mid-run.
  sim.at(sec(kEnd * 0.7), [&]() { clients[0]->shutdown(); });

  sim.run_until(sec(kEnd + 1.0));

  SoakResult result;
  result.log = collect_delivery_log(overlay);
  for (const auto& b : overlay.brokers()) {
    result.total_received += b->stats().received_total;
    result.total_sub_msgs += b->stats().subscription_msgs;
    result.residual_subs += b->subscription_count();
    // Internal consistency: counters partition received_total.
    const auto& s = b->stats();
    EXPECT_EQ(s.subscription_msgs, s.subscribes + s.unsubscribes + s.sub_updates) << b->name();
    EXPECT_LE(s.subscription_msgs, s.received_total);
  }
  return result;
}

TEST(Soak, DeterministicAcrossRuns) {
  const SoakResult a = run_soak(99, EngineKind::kClees, nullptr);
  const SoakResult b = run_soak(99, EngineKind::kClees, nullptr);
  EXPECT_EQ(a.log.delivered, b.log.delivered);
  EXPECT_EQ(a.total_received, b.total_received);
  ASSERT_GT(a.log.total(), 0u);
}

TEST(Soak, LeesMatchesOfflineOracle) {
  SoakRecord record;
  const SoakResult result = run_soak(7, EngineKind::kLees, &record);

  // Recompute expected deliveries: all links are zero-latency, so a
  // publication entering at time T is evaluated everywhere at T, and a
  // subscription is active in [at, unsub_at).
  DeliveryLog expected;
  for (const auto& pub : record.pubs) {
    for (const auto& sub : record.subs) {
      if (pub.at < sub.at) continue;
      if (pub.at >= sub.unsubscribed_at) continue;
      // Client 0 shut down at t=42: subscriptions installed before then die;
      // ones scheduled for later still come up afterwards.
      if (sub.client == ClientId{1} && sub.at < sec(42.0) && pub.at >= sec(42.0)) {
        continue;  // clients[0] has ClientId 1
      }
      // Same arithmetic as EvalScope: integer-microsecond difference, one
      // division, then lo + drift * t.
      const double t_rel = (pub.at - sub.at).count_seconds();
      const double lo = sub.lo + sub.drift * t_rel;
      if (pub.price >= lo && pub.price <= lo + sub.width) {
        expected.delivered[sub.client].insert(pub.id);
      }
    }
  }
  // Precise diagnostics on mismatch: report each differing (client, pub).
  for (const auto& [client, pubs] : expected.delivered) {
    const auto it = result.log.delivered.find(client);
    for (const auto pub : pubs) {
      const bool got = it != result.log.delivered.end() && it->second.contains(pub);
      EXPECT_TRUE(got) << "missing delivery: client " << client << " pub " << pub.value();
    }
  }
  for (const auto& [client, pubs] : result.log.delivered) {
    const auto it = expected.delivered.find(client);
    for (const auto pub : pubs) {
      const bool wanted = it != expected.delivered.end() && it->second.contains(pub);
      EXPECT_TRUE(wanted) << "unexpected delivery: client " << client << " pub "
                          << pub.value();
    }
  }
  EXPECT_EQ(result.log.total(), expected.total());
}

TEST(Soak, EnginesAgreeOnZeroLatencyOverlay) {
  // With zero latencies and exact evaluation, LEES and a tiny-TT CLEES trace
  // must coincide; VES differs only by MEI staleness, bounded by drift*MEI.
  const SoakResult lees = run_soak(13, EngineKind::kLees, nullptr);
  const SoakResult clees = run_soak(13, EngineKind::kClees, nullptr);
  const AccuracyResult diff = compare_logs(lees.log, clees.log);
  // CLEES caches for TT=1 s with drifts <= 1/s over ~1-10 wide bands: only
  // publications within the staleness boundary (drift x cache age) differ.
  EXPECT_LT(diff.error_rate(), 0.10);

  const SoakResult ves = run_soak(13, EngineKind::kVes, nullptr);
  const AccuracyResult ves_diff = compare_logs(lees.log, ves.log);
  EXPECT_LT(ves_diff.error_rate(), 0.10);
}

TEST(Soak, ShutdownRemovesRoutingState) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kClees;
  auto brokers = overlay.build_line(2, cfg, Duration::millis(1));
  auto& client = overlay.add_client("c");
  client.connect(*brokers[0], Duration::zero());
  client.subscribe("x > 1");
  client.subscribe("x > 2 + t");
  client.advertise({parse_predicate("x > 0")});
  sim.run_until(sec(1));
  EXPECT_EQ(brokers[0]->subscription_count(), 2u);
  EXPECT_EQ(brokers[1]->subscription_count(), 2u);
  EXPECT_EQ(client.active_subscriptions().size(), 2u);
  EXPECT_EQ(client.active_advertisements().size(), 1u);

  client.shutdown();
  sim.run_until(sec(2));
  EXPECT_TRUE(client.active_subscriptions().empty());
  EXPECT_TRUE(client.active_advertisements().empty());
  EXPECT_EQ(brokers[0]->subscription_count(), 0u);
  EXPECT_EQ(brokers[1]->subscription_count(), 0u);
}

}  // namespace
}  // namespace evps
