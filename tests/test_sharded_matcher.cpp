// Sharded matcher determinism suite (PR 5 tentpole).
//
// The load-bearing property: a ShardedMatcher must return *bit-identical*
// hit lists for every shard count K and every pool schedule — the broker's
// delivery order is derived from these lists, so any divergence between K=1
// and K>1 would silently change observable behaviour. The property test
// below drives 1000 random seeds of interleaved add/remove/match churn
// through K ∈ {1, 2, 4, 8} side by side for all three matcher kinds.
//
// Also covers the ThreadPool primitive itself (every index exactly once,
// exception propagation, nested dispatch, concurrent callers) and the
// batch-vs-loop equivalence of match_batch().
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "matching/sharded_matcher.hpp"

namespace evps {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> counts(997);
  auto body = [&](std::size_t i) { counts[i].fetch_add(1, std::memory_order_relaxed); };
  pool.run_indexed(counts.size(), body);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool{2};
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int job = 0; job < 200; ++job) {
    const std::size_t n = 1 + static_cast<std::size_t>(job % 7);
    auto body = [&](std::size_t i) { sum.fetch_add(i + 1, std::memory_order_relaxed); };
    pool.run_indexed(n, body);
    expected += n * (n + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> counts(64, 0);  // plain ints: everything runs on this thread
  auto body = [&](std::size_t i) { ++counts[i]; };
  pool.run_indexed(counts.size(), body);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPool, PropagatesTaskExceptionAndStaysUsable) {
  ThreadPool pool{2};
  auto boom = [](std::size_t i) {
    if (i == 13) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.run_indexed(64, boom), std::runtime_error);
  // The failed job must not poison the next one.
  std::atomic<int> n{0};
  auto count = [&](std::size_t) { n.fetch_add(1, std::memory_order_relaxed); };
  pool.run_indexed(32, count);
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, NestedRunExecutesInlineWithoutDeadlock) {
  // A task that dispatches again (e.g. an engine calling back into a sharded
  // matcher) must run the nested job inline rather than deadlocking on the
  // single-job serialisation.
  ThreadPool pool{2};
  std::atomic<int> inner{0};
  auto body = [&](std::size_t) {
    auto nested = [&](std::size_t) { inner.fetch_add(1, std::memory_order_relaxed); };
    pool.run_indexed(4, nested);
  };
  pool.run_indexed(8, body);
  EXPECT_EQ(inner.load(), 8 * 4);
}

TEST(ThreadPool, ConcurrentCallersAreSerialisedCorrectly) {
  ThreadPool pool{2};
  constexpr int kCallers = 4;
  constexpr int kJobsPerCaller = 50;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int job = 0; job < kJobsPerCaller; ++job) {
        auto body = [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); };
        pool.run_indexed(16, body);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kCallers) * kJobsPerCaller * 16);
}

// ---------------------------------------------------------------------------
// Shard assignment
// ---------------------------------------------------------------------------

TEST(ShardedMatcher, ShardOfIsDeterministicAndInRange) {
  for (std::uint64_t id = 0; id < 4096; ++id) {
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const auto s = ShardedMatcher::shard_of(SubscriptionId{id}, k);
      EXPECT_LT(s, k);
      EXPECT_EQ(s, ShardedMatcher::shard_of(SubscriptionId{id}, k));
    }
    EXPECT_EQ(ShardedMatcher::shard_of(SubscriptionId{id}, 1), 0u);
  }
}

TEST(ShardedMatcher, ConsecutiveIdsSpreadAcrossShards) {
  // The assignment hash must not leave shards starved for the common case of
  // densely allocated ids.
  constexpr std::size_t kShards = 8;
  std::vector<std::size_t> histogram(kShards, 0);
  constexpr std::uint64_t kIds = 10000;
  for (std::uint64_t id = 1; id <= kIds; ++id) {
    ++histogram[ShardedMatcher::shard_of(SubscriptionId{id}, kShards)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(histogram[s], kIds / kShards / 2) << "shard " << s << " starved";
    EXPECT_LT(histogram[s], kIds * 2 / kShards) << "shard " << s << " overloaded";
  }
}

TEST(ShardedMatcher, ShardSizesSumToSize) {
  ShardedMatcher m{MatcherKind::kCounting, 4};
  EXPECT_EQ(m.shard_count(), 4u);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    m.add(SubscriptionId{id}, {Predicate{"x", RelOp::kLe, Value{static_cast<double>(id)}}});
  }
  std::size_t sum = 0;
  for (std::size_t s : m.shard_sizes()) sum += s;
  EXPECT_EQ(sum, m.size());
  EXPECT_EQ(m.size(), 100u);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    EXPECT_TRUE(m.contains(SubscriptionId{id}));
  }
  EXPECT_FALSE(m.contains(SubscriptionId{101}));
  EXPECT_FALSE(m.remove(SubscriptionId{101}));
  for (std::uint64_t id = 1; id <= 100; id += 2) {
    EXPECT_TRUE(m.remove(SubscriptionId{id}));
  }
  EXPECT_EQ(m.size(), 50u);
}

// ---------------------------------------------------------------------------
// Random-workload equivalence across shard counts (1000 seeds)
// ---------------------------------------------------------------------------

const char* kAttributes[] = {"x", "y", "price", "volume", "symbol"};

Value random_value(Rng& rng, bool allow_string) {
  const auto kind = rng.uniform_int(0, allow_string ? 2 : 1);
  switch (kind) {
    case 0: return Value{rng.uniform_int(-20, 20)};
    case 1: return Value{rng.uniform(-20.0, 20.0)};
    default: return Value{std::string(1, static_cast<char>('a' + rng.uniform_int(0, 5)))};
  }
}

Predicate random_predicate(Rng& rng) {
  const auto* attr = kAttributes[rng.uniform_int(0, 4)];
  const auto op = static_cast<RelOp>(rng.uniform_int(0, 5));
  return Predicate{attr, op, random_value(rng, true)};
}

Publication random_publication(Rng& rng) {
  Publication pub;
  const auto n = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < n; ++i) {
    pub.set(kAttributes[rng.uniform_int(0, 4)], random_value(rng, true));
  }
  return pub;
}

class ShardEquivalence : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(ShardEquivalence, HitsBitIdenticalAcrossShardCounts) {
  const MatcherKind kind = GetParam();
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Rng rng{seed};
    ShardedMatcher k1{kind, 1};
    ShardedMatcher k2{kind, 2};
    ShardedMatcher k4{kind, 4};
    ShardedMatcher k8{kind, 8};
    ShardedMatcher* matchers[] = {&k1, &k2, &k4, &k8};

    std::vector<SubscriptionId> live;
    std::uint64_t next_id = 1;
    std::vector<SubscriptionId> expected, got;

    for (int op = 0; op < 25; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.5 || live.empty()) {
        const SubscriptionId id{next_id++};
        std::vector<Predicate> preds;
        const auto n = rng.uniform_int(1, 3);
        for (std::int64_t i = 0; i < n; ++i) preds.push_back(random_predicate(rng));
        for (auto* m : matchers) m->add(id, preds);
        live.push_back(id);
      } else if (roll < 0.6) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        const SubscriptionId id = live[idx];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        for (auto* m : matchers) ASSERT_TRUE(m->remove(id));
      } else {
        const Publication pub = random_publication(rng);
        expected.clear();
        k1.match(pub, expected);
        for (std::size_t mi = 1; mi < 4; ++mi) {
          got.clear();
          matchers[mi]->match(pub, got);
          ASSERT_EQ(got, expected) << "seed " << seed << " K=" << matchers[mi]->shard_count()
                                   << " pub " << pub.to_string();
        }
      }
      for (auto* m : matchers) ASSERT_EQ(m->size(), live.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatcherKinds, ShardEquivalence,
                         ::testing::Values(MatcherKind::kBruteForce, MatcherKind::kCounting,
                                           MatcherKind::kChurn),
                         [](const auto& info) {
                           switch (info.param) {
                             case MatcherKind::kBruteForce: return "BruteForce";
                             case MatcherKind::kCounting: return "Counting";
                             default: return "Churn";
                           }
                         });

// ---------------------------------------------------------------------------
// Batch-vs-loop equivalence
// ---------------------------------------------------------------------------

TEST(ShardedMatcher, BatchEqualsLoopForAllShardCounts) {
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    Rng rng{k * 7919};
    ShardedMatcher m{MatcherKind::kCounting, k};
    for (std::uint64_t id = 1; id <= 80; ++id) {
      std::vector<Predicate> preds;
      const auto n = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < n; ++i) preds.push_back(random_predicate(rng));
      m.add(SubscriptionId{id}, preds);
    }
    std::vector<Publication> pubs;
    for (int i = 0; i < 17; ++i) pubs.push_back(random_publication(rng));

    std::vector<std::vector<SubscriptionId>> batch;
    m.match_batch(pubs, batch);
    ASSERT_GE(batch.size(), pubs.size());
    std::vector<SubscriptionId> loop;
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      loop.clear();
      m.match(pubs[i], loop);
      ASSERT_EQ(batch[i], loop) << "K=" << k << " pub " << i;
    }

    // Second batch reuses the scratch; results must not depend on leftovers.
    std::vector<Publication> pubs2;
    for (int i = 0; i < 5; ++i) pubs2.push_back(random_publication(rng));
    m.match_batch(pubs2, batch);
    for (std::size_t i = 0; i < pubs2.size(); ++i) {
      loop.clear();
      m.match(pubs2[i], loop);
      ASSERT_EQ(batch[i], loop) << "K=" << k << " reused-scratch pub " << i;
    }
  }
}

TEST(ShardedMatcher, DefaultMatchBatchFallbackEqualsLoop) {
  // The base-class match_batch (used by every non-sharded matcher) must be
  // the exact loop.
  Rng rng{4242};
  MatcherPtr m = make_matcher(MatcherKind::kChurn);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    m->add(SubscriptionId{id}, {random_predicate(rng)});
  }
  std::vector<Publication> pubs;
  for (int i = 0; i < 9; ++i) pubs.push_back(random_publication(rng));
  std::vector<std::vector<SubscriptionId>> batch;
  m->match_batch(pubs, batch);
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    ASSERT_EQ(batch[i], m->match(pubs[i])) << i;
  }
}

TEST(ShardedMatcher, ExplicitShardCountOverridesDefault) {
  // shards == 0 resolves to the environment default (>= 1); an explicit
  // count is taken verbatim.
  ShardedMatcher by_default{MatcherKind::kCounting, 0};
  EXPECT_GE(by_default.shard_count(), 1u);
  EXPECT_EQ(by_default.shard_count(), default_matcher_shards());
  ShardedMatcher explicit8{MatcherKind::kCounting, 8};
  EXPECT_EQ(explicit8.shard_count(), 8u);
}

}  // namespace
}  // namespace evps
