#include "evolving/clees_engine.hpp"

#include "analysis/analyzer.hpp"
#include "common/thread_pool.hpp"

namespace evps {

CleesEngine::CleesEngine(const EngineConfig& config) : BrokerEngine(config) {
  storage_.resize(shard_count());
  shard_scratch_.resize(shard_count());
}

void CleesEngine::do_add(const Installed& entry, EngineHost& host) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_add_static(entry);
    return;
  }
  const auto static_part = sub.static_predicates();
  auto& storage = storage_for(sub.id());
  auto part = storage.make_part(entry.sub, !static_part.empty());
  if (config_.analysis_cache_windows) {
    // Derive the cache-window class once, at install time, instead of
    // re-deriving bounds per publication: provably-constant bounds never
    // need re-materialisation, t-independent bounds only when a registry
    // variable changed.
    const SubscriptionAnalysis analysis = analyze_subscription(sub, host.variables());
    part.extra.constant_bounds = analysis.verdict == Verdict::kConstant;
    part.extra.time_invariant = !analysis.time_dependent;
  }
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  storage.add(std::move(part), entry.dest);
}

void CleesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_remove_static(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  storage_for(sub.id()).remove(sub.id(), entry.dest);
}

void CleesEngine::process_m1(const std::vector<SubscriptionId>& m1,
                             std::vector<NodeId>& destinations) {
  for (const auto id : m1) {
    if (storage_for(id).note_m1(id)) continue;  // static half of a split subscription
    const Installed* entry = installed_entry(id);
    if (entry == nullptr) continue;
    destinations.push_back(entry->dest);
    for (auto& storage : storage_) storage.mark_done(entry->dest);
  }
}

void CleesEngine::lazy_eval_phase(const Publication& pub, const VariableSnapshot* snapshot,
                                  const VariableRegistry& registry, SimTime now,
                                  std::vector<NodeId>& destinations) {
  // Captured once: workers must not touch the host, and the registry version
  // cannot change while a match is in flight (variable updates are
  // main-thread events).
  const std::uint64_t global_version = registry.global_version();
  auto task = [&](std::size_t s) {
    ShardScratch& sc = shard_scratch_[s];
    sc.dests.clear();
    Storage& storage = storage_[s];
    if (storage.size() == 0) return;
    rebind_publication_scope(sc.scope, pub, snapshot, registry, now);
    for (auto& [dest, group] : storage.groups()) {
      if (storage.done(group)) continue;
      for (auto& part : group.parts) {
        if (part.has_static_part && !storage.m1_hit(part)) continue;

        bool matched = false;
        // Snapshot-consistency mode bypasses the cache: cached versions are
        // anchored at broker-local time, which a piggybacked snapshot
        // invalidates (the hybrid is future work in the paper).
        bool valid = snapshot == nullptr && now < part.extra.expires;
        if (!valid && snapshot == nullptr && part.extra.populated) {
          // Analysis-sized windows: past TT, a version is still *exact* (not
          // merely tolerated staleness) when re-materialisation would provably
          // reproduce it bit-for-bit.
          valid = part.extra.constant_bounds ||
                  (part.extra.time_invariant && global_version == part.extra.seen_version);
        }
        if (valid) {
          ++sc.cache_hits;
          matched = cached_bounds_match(part.preds, part.extra.bounds, pub);
        } else {
          ++sc.cache_misses;
          ++sc.lazy_evaluations;
          sc.scope.set_epoch(part.sub->epoch());
          auto& bounds = snapshot == nullptr ? part.extra.bounds : sc.snapshot_bounds;
          materialize_bounds(part.preds, sc.scope, sc.stack, bounds);
          matched = cached_bounds_match(part.preds, bounds, pub);
          if (snapshot == nullptr) {
            part.extra.expires = now + effective_tt(*part.sub);
            part.extra.populated = true;
            part.extra.seen_version = global_version;
          }
        }
        if (matched) {
          sc.dests.push_back(dest);
          break;  // early exit: this (shard, destination) is settled
        }
      }
    }
  };
  if (storage_.size() == 1) {
    task(0);
  } else {
    ThreadPool::shared().run_indexed(storage_.size(), task);
  }
  for (ShardScratch& sc : shard_scratch_) {
    destinations.insert(destinations.end(), sc.dests.begin(), sc.dests.end());
    costs_.lazy_evaluations += sc.lazy_evaluations;
    costs_.cache_hits += sc.cache_hits;
    costs_.cache_misses += sc.cache_misses;
    sc.lazy_evaluations = sc.cache_hits = sc.cache_misses = 0;
  }
}

void CleesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                           EngineHost& host, std::vector<NodeId>& destinations) {
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  for (auto& storage : storage_) storage.begin_match();
  process_m1(m1_, destinations);

  const ScopedTimer timer(costs_.lazy_eval);
  lazy_eval_phase(pub, snapshot, host.variables(), host.now(), destinations);
}

void CleesEngine::do_match_batch(std::span<const Publication* const> pubs,
                                 const VariableSnapshot* snapshot, EngineHost& host,
                                 std::vector<std::vector<NodeId>>& destinations) {
  // Matcher phase amortised over the whole batch (one pool dispatch); lazy
  // phases stay per publication so probe order — and therefore the TT cache
  // trajectory — is exactly the do_match-loop one.
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match_batch(pubs, m1_batch_);
  }
  const VariableRegistry& registry = host.variables();
  const SimTime now = host.now();
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    for (auto& storage : storage_) storage.begin_match();
    process_m1(m1_batch_[i], destinations[i]);
    const ScopedTimer timer(costs_.lazy_eval);
    lazy_eval_phase(*pubs[i], snapshot, registry, now, destinations[i]);
  }
}

void CleesEngine::export_audit_state(audit::EngineState& out) const {
  BrokerEngine::export_audit_state(out);
  for (const Storage& storage : storage_) {
    for (const auto& [dest, group] : storage.groups()) {
      for (const Storage::Part& part : group.parts) {
        out.lazy_entries.push_back(audit::LazyEntry{part.id, dest});
      }
    }
  }
}

}  // namespace evps
