#include "sim/network.hpp"

#include <algorithm>

namespace evps {
namespace {
std::pair<NodeId, NodeId> link_key(NodeId a, NodeId b) noexcept {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

NodeId Network::attach(NetworkNode& node) {
  const NodeId id{static_cast<std::uint64_t>(nodes_.size())};
  node.node_id_ = id;
  nodes_.push_back(&node);
  adjacency_.try_emplace(id);
  return id;
}

void Network::connect(NodeId a, NodeId b, Duration latency) {
  if (a == b) throw std::invalid_argument("cannot link a node to itself");
  if (a.value() >= nodes_.size() || b.value() >= nodes_.size()) {
    throw std::invalid_argument("cannot link unattached nodes");
  }
  if (latency < Duration::zero()) throw std::invalid_argument("latency must be >= 0");
  const auto [it, inserted] = links_.insert_or_assign(link_key(a, b), latency);
  if (inserted) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

bool Network::connected(NodeId a, NodeId b) const noexcept {
  return links_.contains(link_key(a, b));
}

Duration Network::latency(NodeId a, NodeId b) const {
  const auto it = links_.find(link_key(a, b));
  if (it == links_.end()) throw std::invalid_argument("nodes are not linked");
  return it->second;
}

std::vector<NodeId> Network::neighbors(NodeId n) const {
  const auto it = adjacency_.find(n);
  return it == adjacency_.end() ? std::vector<NodeId>{} : it->second;
}

MessageId Network::send(NodeId from, NodeId to, Message msg) {
  const auto it = links_.find(link_key(from, to));
  if (it == links_.end()) {
    throw std::invalid_argument("send between unlinked nodes " + from.str() + " -> " + to.str());
  }
  const MessageId id = message_ids_.next();
  ++messages_sent_;
  // Move-construct the envelope straight into the delivery closure (one
  // Message move, no copy) and skip tap dispatch entirely on the common
  // tap-free path. Taps are installed before traffic starts, so branching at
  // send time observes the same tap set delivery time would.
  if (taps_.empty()) {
    sim_.after(it->second, [this, env = Envelope{id, from, to, std::move(msg)}]() {
      nodes_[env.to.value()]->on_message(env);
    });
  } else {
    sim_.after(it->second, [this, env = Envelope{id, from, to, std::move(msg)}]() {
      for (const auto& tap : taps_) tap(env, sim_.now());
      nodes_[env.to.value()]->on_message(env);
    });
  }
  return id;
}

}  // namespace evps
