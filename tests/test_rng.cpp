#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <map>

namespace evps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng{7};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 5.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.2);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{99};
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 6000; ++i) {
    const auto x = rng.uniform_int(1, 6);
    ASSERT_GE(x, 1);
    ASSERT_LE(x, 6);
    ++counts[x];
  }
  EXPECT_EQ(counts.size(), 6u);  // all faces hit
  for (const auto& [face, count] : counts) EXPECT_GT(count, 700) << face;
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-10, -1);
    EXPECT_GE(x, -10);
    EXPECT_LE(x, -1);
  }
}

TEST(Rng, Bernoulli) {
  Rng rng{11};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{42};
  Rng b{42};
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, ForkSaltsDiffer) {
  Rng a{42};
  Rng parent_copy{42};
  Rng f1 = a.fork(1);
  Rng f2 = parent_copy.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1() == f2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix, DeterministicAndProgressing) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  std::uint64_t s3 = 0;
  const auto first = splitmix64(s3);
  const auto second = splitmix64(s3);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace evps
