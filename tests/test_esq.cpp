#include "evolving/esq.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

TEST(Esq, EmptyQueue) {
  EvolvingSubscriptionQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.next_due().has_value());
  std::vector<SubscriptionId> out;
  q.pop_due(sec(100), out);
  EXPECT_TRUE(out.empty());
}

TEST(Esq, OrderedByDueTime) {
  EvolvingSubscriptionQueue q;
  q.push(SubscriptionId{1}, sec(3));
  q.push(SubscriptionId{2}, sec(1));
  q.push(SubscriptionId{3}, sec(2));
  EXPECT_EQ(q.next_due(), sec(1));
  std::vector<SubscriptionId> out;
  q.pop_due(sec(10), out);
  EXPECT_EQ(out, (std::vector<SubscriptionId>{SubscriptionId{2}, SubscriptionId{3},
                                              SubscriptionId{1}}));
  EXPECT_TRUE(q.empty());
}

TEST(Esq, PopOnlyDueEntries) {
  EvolvingSubscriptionQueue q;
  q.push(SubscriptionId{1}, sec(1));
  q.push(SubscriptionId{2}, sec(5));
  std::vector<SubscriptionId> out;
  q.pop_due(sec(2), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{SubscriptionId{1}});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_due(), sec(5));
}

TEST(Esq, DueBoundaryInclusive) {
  EvolvingSubscriptionQueue q;
  q.push(SubscriptionId{1}, sec(2));
  std::vector<SubscriptionId> out;
  q.pop_due(sec(2), out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Esq, RepushReschedules) {
  EvolvingSubscriptionQueue q;
  q.push(SubscriptionId{1}, sec(1));
  q.push(SubscriptionId{1}, sec(10));  // supersedes the earlier entry
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_due(), sec(10));
  std::vector<SubscriptionId> out;
  q.pop_due(sec(5), out);
  EXPECT_TRUE(out.empty());  // stale entry skipped
  q.pop_due(sec(10), out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Esq, RemoveCancels) {
  EvolvingSubscriptionQueue q;
  q.push(SubscriptionId{1}, sec(1));
  q.push(SubscriptionId{2}, sec(2));
  EXPECT_TRUE(q.remove(SubscriptionId{1}));
  EXPECT_FALSE(q.remove(SubscriptionId{1}));
  EXPECT_FALSE(q.contains(SubscriptionId{1}));
  EXPECT_TRUE(q.contains(SubscriptionId{2}));
  EXPECT_EQ(q.next_due(), sec(2));
  std::vector<SubscriptionId> out;
  q.pop_due(sec(10), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{SubscriptionId{2}});
}

TEST(Esq, SameDueTimeFifo) {
  EvolvingSubscriptionQueue q;
  q.push(SubscriptionId{5}, sec(1));
  q.push(SubscriptionId{3}, sec(1));
  q.push(SubscriptionId{9}, sec(1));
  std::vector<SubscriptionId> out;
  q.pop_due(sec(1), out);
  EXPECT_EQ(out, (std::vector<SubscriptionId>{SubscriptionId{5}, SubscriptionId{3},
                                              SubscriptionId{9}}));
}

TEST(Esq, ManyEntriesStress) {
  EvolvingSubscriptionQueue q;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.push(SubscriptionId{i}, sec(static_cast<double>(i % 100)));
  }
  EXPECT_EQ(q.size(), 1000u);
  // Reschedule everything, then remove half.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.push(SubscriptionId{i}, sec(static_cast<double>(1000 - i)));
  }
  for (std::uint64_t i = 0; i < 1000; i += 2) q.remove(SubscriptionId{i});
  EXPECT_EQ(q.size(), 500u);
  std::vector<SubscriptionId> out;
  q.pop_due(sec(2000), out);
  EXPECT_EQ(out.size(), 500u);
  // Due order: id 999 (due 1), id 997 (due 3), ...
  EXPECT_EQ(out.front(), SubscriptionId{999});
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace evps
