#include "broker/link_batcher.hpp"

#include <algorithm>
#include <cstdlib>

#include "message/codec.hpp"

namespace evps {

std::size_t default_link_batch_size() {
  static const std::size_t cached = [] {
    // Read once before any worker thread exists; nothing in-process calls
    // setenv, so the lone getenv is benign.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("EVPS_LINK_BATCH");
    if (env == nullptr || *env == '\0') return std::size_t{1};
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || v < 1) return std::size_t{1};
    return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxBatchPublications);
  }();
  return cached;
}

LinkBatcher::LinkBatcher(Network& net, const NetworkNode& self, Config config,
                         std::function<LinkKind(NodeId)> classify)
    : net_(net), self_(self), config_(config), classify_(std::move(classify)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
}

LinkBatcher::~LinkBatcher() { *alive_ = false; }

LinkBatcher::Slot& LinkBatcher::slot_for(NodeId dest) {
  const auto it = slot_index_.find(dest);
  if (it != slot_index_.end()) return *slots_[it->second];
  slot_index_.emplace(dest, slots_.size());
  slots_.push_back(std::make_unique<Slot>(Slot{dest, classify_(dest), {}}));
  return *slots_.back();
}

LinkKind LinkBatcher::enqueue(NodeId dest, const PublicationPtr& pub) {
  Slot& slot = slot_for(dest);
  if (slot.kind == LinkKind::kUnknown) return LinkKind::kUnknown;
  if (!active()) {
    send_scalar(dest, slot.kind, pub);
    return slot.kind;
  }
  slot.pending.push_back(pub);
  if (slot.pending.size() >= config_.batch_size) {
    flush_slot(slot, FlushCause::kSize);
  } else {
    schedule_flush();
  }
  return slot.kind;
}

void LinkBatcher::barrier(NodeId dest) {
  const auto it = slot_index_.find(dest);
  if (it == slot_index_.end()) return;
  Slot& slot = *slots_[it->second];
  if (!slot.pending.empty()) flush_slot(slot, FlushCause::kBarrier);
}

void LinkBatcher::flush_all() {
  for (const auto& slot : slots_) {
    if (!slot->pending.empty()) flush_slot(*slot, FlushCause::kDeadline);
  }
}

void LinkBatcher::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // With a zero deadline this fires in the same virtual instant, after every
  // already-queued same-time event — the equivalence-preserving policy.
  net_.simulator().after(config_.flush_deadline, [this, alive = alive_] {
    if (!*alive) return;
    flush_scheduled_ = false;
    flush_all();
  });
}

void LinkBatcher::send_scalar(NodeId dest, LinkKind kind, const PublicationPtr& pub) {
  ++counters_.single_messages;
  ++counters_.events;
  if (config_.measure_bytes) counters_.bytes += serialize(*pub).size();
  if (kind == LinkKind::kClient) {
    net_.send(self_.node_id(), dest, DeliveryMsg{pub});
  } else {
    net_.send(self_.node_id(), dest, PublishMsg{pub, nullptr});
  }
}

void LinkBatcher::flush_slot(Slot& slot, FlushCause cause) {
  switch (cause) {
    case FlushCause::kSize: ++counters_.size_flushes; break;
    case FlushCause::kDeadline: ++counters_.deadline_flushes; break;
    case FlushCause::kBarrier: ++counters_.barrier_flushes; break;
  }
  if (slot.pending.size() == 1) {
    // A batch of one goes out in scalar framing: the wire never carries
    // batch overhead for unamortised sends, and the inactive/active paths
    // stay byte-identical at batch_size 1.
    send_scalar(slot.dest, slot.kind, slot.pending.front());
    slot.pending.clear();
    return;
  }
  ++counters_.batch_messages;
  counters_.events += slot.pending.size();
  counters_.fill.record(static_cast<double>(slot.pending.size()));
  if (config_.measure_bytes) {
    serialize_batch(std::span<const PublicationPtr>(slot.pending), arena_);
    counters_.bytes += arena_.size();
  }
  std::vector<PublicationPtr> pubs;
  pubs.swap(slot.pending);
  if (slot.kind == LinkKind::kClient) {
    net_.send(self_.node_id(), slot.dest, DeliveryBatchMsg{std::move(pubs)});
  } else {
    net_.send(self_.node_id(), slot.dest, PublishBatchMsg{std::move(pubs)});
  }
}

}  // namespace evps
