// Fuzz harness for the publication batch codec (message/codec.hpp).
//
// Properties under test:
//   * parse_publication_batch never crashes, overflows or over-allocates on
//     arbitrary bytes — it either returns a batch or throws CodecError;
//   * accepted frames round-trip: re-serialising the parsed batch yields a
//     frame that parses back to the same publications (id, publisher and
//     entry time are the codec's documented round-trip contract).
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz_driver.hpp"
#include "message/codec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::vector<evps::Publication> pubs;
  try {
    pubs = evps::parse_publication_batch(text);
  } catch (const evps::CodecError&) {
    return 0;  // rejected — the only acceptable failure mode
  }
  // The frame was accepted: the round trip must succeed without exceptions
  // and preserve every record's identity.
  const std::string again = evps::serialize_batch(pubs);
  const std::vector<evps::Publication> reparsed = evps::parse_publication_batch(again);
  if (reparsed.size() != pubs.size()) std::abort();
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    if (reparsed[i].id() != pubs[i].id() || reparsed[i].publisher() != pubs[i].publisher() ||
        reparsed[i].entry_time() != pubs[i].entry_time()) {
      std::abort();
    }
  }
  return 0;
}
