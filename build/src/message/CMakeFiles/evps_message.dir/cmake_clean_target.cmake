file(REMOVE_RECURSE
  "libevps_message.a"
)
