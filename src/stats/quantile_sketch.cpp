#include "stats/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evps {

QuantileSketch::QuantileSketch(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps >= 0.5) {
    throw std::invalid_argument("QuantileSketch eps must be in (0, 0.5)");
  }
}

std::uint64_t QuantileSketch::band() const noexcept {
  return static_cast<std::uint64_t>(2.0 * eps_ * static_cast<double>(n_));
}

void QuantileSketch::add(double x) {
  if (!std::isfinite(x)) {
    ++rejected_;
    return;
  }
  // Position of the first tuple with v >= x (insert before it). Ties keep
  // insertion after existing equal values irrelevant for rank correctness;
  // lower_bound makes the layout deterministic.
  const auto pos = std::lower_bound(tuples_.begin(), tuples_.end(), x,
                                    [](const Tuple& t, double v) { return t.v < v; });
  const bool at_edge = pos == tuples_.begin() || pos == tuples_.end();
  const std::uint64_t b = band();  // uses n before this insert
  const std::uint64_t delta = (at_edge || b < 1) ? 0 : b - 1;
  tuples_.insert(pos, Tuple{x, 1, delta});
  ++n_;
  if (++since_compress_ >= static_cast<std::uint64_t>(std::max(1.0, 1.0 / (2.0 * eps_)))) {
    compress();
    since_compress_ = 0;
  }
}

void QuantileSketch::compress() {
  if (tuples_.size() < 3) return;
  const std::uint64_t b = band();
  // Merge right-to-left into the nearest surviving successor so one pass can
  // collapse whole runs; the first and last tuples are never absorbed,
  // keeping min()/max() exact.
  std::size_t succ = tuples_.size() - 1;
  for (std::size_t i = tuples_.size() - 2; i >= 1; --i) {
    if (tuples_[i].g + tuples_[succ].g + tuples_[succ].delta <= b) {
      tuples_[succ].g += tuples_[i].g;
      tuples_[i].g = 0;  // mark absorbed
    } else {
      succ = i;
    }
  }
  std::size_t write = 0;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].g == 0 && i != 0) continue;
    tuples_[write++] = tuples_[i];
  }
  tuples_.resize(write);
}

void QuantileSketch::combine(const QuantileSketch& other) {
  if (other.eps_ != eps_) {
    throw std::invalid_argument("QuantileSketch::combine requires equal eps");
  }
  rejected_ += other.rejected_;
  if (other.n_ == 0) return;
  if (n_ == 0) {
    n_ = other.n_;
    extra_budget_ = other.extra_budget_;
    tuples_ = other.tuples_;
    since_compress_ = 0;
    return;
  }
  // Interleave by value. A tuple's rank in the merged stream is its rank in
  // its own stream plus the number of other-stream elements below it; that
  // second term is only known up to the other summary's slack at the next
  // tuple, so Δ is inflated by g + Δ - 1 of the other operand's successor
  // (the classical GK merge). Every merged tuple then satisfies
  // g + Δ <= 2·(budget_a + budget_b), which is exactly what quantile() needs
  // to answer within the sum of the operands' budgets.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::size_t i = 0, j = 0;
  while (i < tuples_.size() || j < other.tuples_.size()) {
    const bool take_mine =
        j >= other.tuples_.size() ||
        (i < tuples_.size() && tuples_[i].v <= other.tuples_[j].v);
    Tuple t = take_mine ? tuples_[i++] : other.tuples_[j++];
    const std::vector<Tuple>& rest = take_mine ? other.tuples_ : tuples_;
    const std::size_t next = take_mine ? j : i;
    if (next < rest.size()) t.delta += rest[next].g + rest[next].delta - 1;
    merged.push_back(t);
  }
  // error_budget() = ε·(n_a + n_b) + extra_a + extra_b, which equals the sum
  // of both operands' pre-merge budgets — the documented "budgets add" rule.
  extra_budget_ += other.extra_budget_;
  n_ += other.n_;
  tuples_ = std::move(merged);
  compress();
  since_compress_ = 0;
}

double QuantileSketch::quantile(double q) const {
  if (tuples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double r = std::max(1.0, std::ceil(q * static_cast<double>(n_)));
  const double e = error_budget();
  std::uint64_t rmin = 0;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const double rmax = static_cast<double>(rmin + tuples_[i].delta);
    if (rmax > r + e && i > 0) return tuples_[i - 1].v;
  }
  return tuples_.back().v;
}

double QuantileSketch::min() const {
  if (tuples_.empty()) throw std::logic_error("QuantileSketch::min on empty sketch");
  return tuples_.front().v;
}

double QuantileSketch::max() const {
  if (tuples_.empty()) throw std::logic_error("QuantileSketch::max on empty sketch");
  return tuples_.back().v;
}

}  // namespace evps
