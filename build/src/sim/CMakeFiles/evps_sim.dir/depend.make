# Empty dependencies file for evps_sim.
# This may be replaced when dependencies are built.
