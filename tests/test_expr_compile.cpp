// Property tests: the flat ExprProgram produced by ExprProgram::compile must
// be observationally identical to tree-walking Expr::eval — bit-for-bit equal
// results (NaN included), the same left-to-right operand evaluation order,
// and the same unbound-variable failure (same variable reported first).
//
// Expressions are generated randomly over every node kind the AST offers,
// with some variables deliberately left unbound, across >1000 seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "expr/ast.hpp"
#include "expr/program.hpp"
#include "expr/variable_registry.hpp"
#include "message/predicate.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

// Variable pool: the first kBound are bound in every scope, the rest are
// never bound (plus `t`, which the scope always resolves).
constexpr int kBound = 4;
const char* const kVars[] = {"ec_a", "ec_b", "ec_c", "ec_d", "ec_miss1", "ec_miss2"};
constexpr int kPool = 6;

ExprPtr random_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.25)) {
    // Leaf: constant, pooled variable or `t`.
    const int pick = static_cast<int>(rng.uniform_int(0, 3));
    if (pick == 0) return Expr::constant(rng.uniform(-8.0, 8.0));
    if (pick == 1) return Expr::variable("t");
    return Expr::variable(kVars[rng.uniform_int(0, kPool - 1)]);
  }
  switch (rng.uniform_int(0, 5)) {
    case 0:
    case 1: {
      const auto op = static_cast<BinaryOp>(rng.uniform_int(0, 5));
      return Expr::binary(op, random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    }
    case 2: {
      const auto op = static_cast<UnaryOp>(rng.uniform_int(0, 7));
      return Expr::unary(op, random_expr(rng, depth - 1));
    }
    case 3: {
      const auto fn = rng.bernoulli(0.5) ? CallFn::kMin : CallFn::kMax;
      std::vector<ExprPtr> args;
      const int n = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < n; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(fn, std::move(args));
    }
    case 4: {
      std::vector<ExprPtr> args;
      for (int i = 0; i < 3; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(CallFn::kClamp, std::move(args));
    }
    default:
      return Expr::call(CallFn::kStep, {random_expr(rng, depth - 1)});
  }
}

/// Bitwise double equality (distinguishes NaN payloads and signed zeros the
/// way "same computation" should — both sides run identical operations).
bool same_bits(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub || (std::isnan(a) && std::isnan(b));
}

TEST(ExprCompile, MatchesTreeWalkAcrossRandomSeeds) {
  VariableRegistry reg;
  for (int i = 0; i < kBound; ++i) reg.set(kVars[i], 0.0, SimTime::zero());

  std::uint64_t evaluated = 0;
  std::uint64_t threw = 0;
  std::vector<double> stack;
  EvalScope scope;
  double clock = 1.0;  // registry histories must be appended in time order
  for (std::uint64_t seed = 1; seed <= 1200; ++seed) {
    Rng rng{seed};
    const ExprPtr expr = random_expr(rng, static_cast<int>(rng.uniform_int(1, 5)));
    const ExprProgram prog = ExprProgram::compile(*expr);

    // Each seed is probed at a few time points / variable assignments,
    // through the same rebound scope the engines reuse.
    for (int round = 0; round < 4; ++round) {
      clock += 1.0;
      for (int i = 0; i < kBound; ++i) {
        reg.set(kVars[i], rng.uniform(-5.0, 5.0), sec(clock));
      }
      scope.rebind(&reg, sec(clock + rng.uniform()));
      scope.set_epoch(sec(clock * rng.uniform()));

      double tree = 0.0;
      std::string tree_error;
      try {
        tree = expr->eval(scope);
      } catch (const UnboundVariableError& e) {
        tree_error = e.what();
      }
      double compiled = 0.0;
      std::string compiled_error;
      try {
        compiled = prog.eval(scope, stack);
      } catch (const UnboundVariableError& e) {
        compiled_error = e.what();
      }

      ASSERT_EQ(tree_error, compiled_error)
          << "seed " << seed << ": " << expr->to_string();
      if (!tree_error.empty()) {
        ++threw;
        continue;
      }
      ++evaluated;
      ASSERT_TRUE(same_bits(tree, compiled))
          << "seed " << seed << ": " << expr->to_string() << " tree=" << tree
          << " compiled=" << compiled;
    }
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(evaluated, 1000u);
  EXPECT_GT(threw, 100u);
}

TEST(ExprCompile, UnboundVariableReportsFirstInEvaluationOrder) {
  // a + (miss1 * miss2): the tree walker hits miss1 first; the program's
  // postfix order must fail on the same variable.
  const auto expr = Expr::add(
      Expr::variable("ec_a"),
      Expr::mul(Expr::variable("ec_miss1"), Expr::variable("ec_miss2")));
  VariableRegistry reg;
  reg.set("ec_a", 1.0, SimTime::zero());
  const EvalScope scope{&reg, sec(1), SimTime::zero()};
  std::vector<double> stack;
  const ExprProgram prog = ExprProgram::compile(*expr);

  std::string tree_error;
  try {
    (void)expr->eval(scope);
  } catch (const UnboundVariableError& e) {
    tree_error = e.what();
  }
  std::string compiled_error;
  try {
    (void)prog.eval(scope, stack);
  } catch (const UnboundVariableError& e) {
    compiled_error = e.what();
  }
  ASSERT_FALSE(tree_error.empty());
  EXPECT_EQ(tree_error, compiled_error);
  EXPECT_NE(tree_error.find("ec_miss1"), std::string::npos);
}

TEST(ExprCompile, ProgramReportsItsVariables) {
  const auto expr = Expr::add(
      Expr::mul(Expr::variable("ec_b"), Expr::variable("t")),
      Expr::sub(Expr::variable("ec_a"), Expr::variable("ec_b")));
  const ExprProgram prog = ExprProgram::compile(*expr);
  const auto vars = prog.variables();
  ASSERT_EQ(vars.size(), 3u);  // ec_a, ec_b, t — deduplicated
  EXPECT_TRUE(std::binary_search(vars.begin(), vars.end(), elapsed_time_var_id()));
  EXPECT_TRUE(
      std::binary_search(vars.begin(), vars.end(), VariableTable::instance().intern("ec_a")));
  EXPECT_TRUE(
      std::binary_search(vars.begin(), vars.end(), VariableTable::instance().intern("ec_b")));
}

TEST(ExprCompile, EmptyProgramThrows) {
  const ExprProgram prog;
  std::vector<double> stack;
  const EvalScope scope;
  EXPECT_THROW((void)prog.eval(scope, stack), std::logic_error);
}

TEST(ExprCompile, CompiledPredicateMirrorsMaterialize) {
  // Bound case, unbound case, and arithmetic-NaN case must all agree with
  // Predicate::materialize + static matching.
  VariableRegistry reg;
  reg.set("ec_a", 3.0, SimTime::zero());
  EvalScope scope{&reg, sec(2), SimTime::zero()};
  std::vector<double> stack;

  const Predicate bound_pred{"x", RelOp::kLe, Expr::mul(Expr::variable("ec_a"),
                                                        Expr::constant(2.0))};
  const CompiledPredicate cp{bound_pred};
  bool unbound = true;
  EXPECT_DOUBLE_EQ(cp.bound(scope, stack, unbound), 6.0);
  EXPECT_FALSE(unbound);
  EXPECT_TRUE(cp.matches(Value{5.0}, scope, stack));
  EXPECT_FALSE(cp.matches(Value{7.0}, scope, stack));

  const Predicate unbound_pred{"x", RelOp::kNe, Expr::variable("ec_missing_forever")};
  const CompiledPredicate cu{unbound_pred};
  (void)cu.bound(scope, stack, unbound);
  EXPECT_TRUE(unbound);
  // Unbound fails closed even for kNe (materialize would emit kLt vs NaN).
  EXPECT_FALSE(cu.matches(Value{1.0}, scope, stack));
  EXPECT_FALSE(unbound_pred.materialize(scope).matches(Value{1.0}));

  // 0/0 -> NaN with the operator kept: kNe matches (NaN is incomparable),
  // exactly like matching the materialized predicate.
  const Predicate nan_pred{"x", RelOp::kNe,
                           Expr::div(Expr::constant(0.0), Expr::constant(0.0))};
  // div(0,0) is constant-folded only when finite, so it stays an expression.
  ASSERT_TRUE(nan_pred.is_evolving());
  const CompiledPredicate cn{nan_pred};
  EXPECT_TRUE(cn.matches(Value{1.0}, scope, stack));
  EXPECT_TRUE(nan_pred.materialize(scope).matches(Value{1.0}));
}

}  // namespace
}  // namespace evps
