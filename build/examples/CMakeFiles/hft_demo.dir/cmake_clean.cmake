file(REMOVE_RECURSE
  "CMakeFiles/hft_demo.dir/hft_demo.cpp.o"
  "CMakeFiles/hft_demo.dir/hft_demo.cpp.o.d"
  "hft_demo"
  "hft_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hft_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
