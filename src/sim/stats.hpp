// Lightweight statistics: counters and a fixed-boundary histogram used by
// the experiment harness for processing-time and latency distributions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace evps {

/// Streaming summary of a sequence of doubles. Non-finite samples (NaN,
/// ±inf) are rejected — counted in `rejected()` but kept out of every
/// moment, so one corrupt sample cannot poison an aggregate that is later
/// merged fleet-wide.
class Summary {
 public:
  void record(double x) noexcept {
    if (!std::isfinite(x)) {
      ++rejected_;
      return;
    }
    ++count_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const noexcept {
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    return std::max(0.0, (sum_sq_ - sum_ * sum_ / n) / (n - 1));
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const Summary& other) noexcept {
    rejected_ += other.rejected_;
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() noexcept { *this = Summary{}; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t rejected_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over explicit bucket boundaries. Values < first boundary fall
/// into bucket 0; values >= last boundary into the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries) : boundaries_(std::move(boundaries)) {
    if (!std::is_sorted(boundaries_.begin(), boundaries_.end())) {
      throw std::invalid_argument("histogram boundaries must be sorted");
    }
    counts_.assign(boundaries_.size() + 1, 0);
  }

  void record(double x) noexcept {
    // Route non-finite samples through the summary's guard (they count as
    // rejected there) without disturbing any bucket: NaN would otherwise
    // land in bucket 0 via upper_bound's false comparisons.
    if (!std::isfinite(x)) {
      summary_.record(x);
      return;
    }
    const auto pos = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
    ++counts_[static_cast<std::size_t>(pos - boundaries_.begin())];
    summary_.record(x);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] const std::vector<double>& boundaries() const noexcept { return boundaries_; }
  [[nodiscard]] const Summary& summary() const noexcept { return summary_; }

  /// Merge another histogram recorded over the same boundaries (aggregating
  /// per-link / per-shard histograms into a fleet view).
  void merge(const Histogram& other) {
    if (boundaries_ != other.boundaries_) {
      throw std::invalid_argument("cannot merge histograms with different boundaries");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    summary_.merge(other.summary_);
  }

  void reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    summary_.reset();
  }

  /// Approximate quantile (bucket upper bound containing the q-th sample).
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;
  Summary summary_;
};

}  // namespace evps
