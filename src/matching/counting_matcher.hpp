// Counting-algorithm matcher with per-attribute operator indexes.
//
// The classic content-based matching scheme (Fabret et al. / PADRES): each
// predicate is indexed under its attribute; matching a publication walks, for
// each publication attribute, the set of satisfied predicates and counts hits
// per subscription. A subscription matches when its hit count equals its
// predicate count.
//
// Index structure per attribute (attributes interned to dense AttrId, so the
// top level is a flat vector, not a string-keyed map):
//   * four sorted bound lists for < <= > >= (binary search + contiguous walk)
//   * hash maps for numeric and string equality
//   * scan lists for != and for ordered string comparisons
//
// Subscriptions occupy dense slots; hit counting uses an epoch-stamped
// counter array (a generation stamp marks a slot's counter valid for the
// current match, so nothing is cleared between matches) and all scratch is
// per-matcher, making match() allocation-free in steady state.
//
// Identical predicates within one subscription are deduplicated on add: they
// are redundant for conjunctive semantics and would otherwise leave stale
// index entries behind on remove (the duplicate-predicate leak).
//
// Insertion/removal into the sorted lists is O(n) per attribute — this is
// the "optimized indexing structure" whose maintenance cost the paper's VES
// analysis depends on (Figures 8 and 9): fast matching, but version
// replacement cost grows with the matcher population.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/attribute_table.hpp"
#include "matching/matcher.hpp"

namespace evps {

class CountingMatcher final : public Matcher {
 public:
  using Matcher::match;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  [[nodiscard]] bool contains(SubscriptionId id) const override { return slot_of_.contains(id); }
  [[nodiscard]] std::size_t size() const override { return slot_of_.size(); }

  /// Total number of indexed predicates (diagnostics). Duplicate predicates
  /// within a subscription are deduplicated on add and not counted.
  [[nodiscard]] std::size_t predicate_count() const noexcept { return predicate_count_; }

 private:
  /// Dense per-matcher subscription slot; index into slots_ and the epoch
  /// counter arrays. Slots are recycled through a free list on remove.
  using SubSlot = std::uint32_t;

  struct BoundEntry {
    double bound;
    SubSlot slot;

    friend bool operator<(const BoundEntry& a, const BoundEntry& b) noexcept {
      if (a.bound != b.bound) return a.bound < b.bound;
      return a.slot < b.slot;
    }
  };

  struct AttributeIndex {
    // pub_value OP bound; sorted ascending by bound.
    std::vector<BoundEntry> lt, le, gt, ge;
    std::unordered_map<double, std::vector<SubSlot>> eq_num;
    std::unordered_map<std::string, std::vector<SubSlot>> eq_str;
    std::vector<std::pair<Value, SubSlot>> ne;
    // Ordered string comparisons (rare): evaluated by scan.
    std::vector<std::pair<Predicate, SubSlot>> misc;

    [[nodiscard]] bool empty() const noexcept {
      return lt.empty() && le.empty() && gt.empty() && ge.empty() && eq_num.empty() &&
             eq_str.empty() && ne.empty() && misc.empty();
    }
  };

  struct SlotState {
    SubscriptionId id;               // invalid while the slot is free
    std::vector<Predicate> preds;    // deduplicated
  };

  void index_predicate(SubSlot slot, const Predicate& p);
  void unindex_predicate(SubSlot slot, const Predicate& p);
  [[nodiscard]] AttributeIndex* find_index(AttrId attr) noexcept {
    return attr < index_.size() ? &index_[attr] : nullptr;
  }

  /// Per-attribute indexes, keyed by interned AttrId. Grows monotonically
  /// with the attribute universe; empty entries cost one AttributeIndex.
  std::vector<AttributeIndex> index_;

  std::vector<SlotState> slots_;       // slot -> subscription state
  std::vector<SubSlot> free_slots_;    // recycled slots
  std::unordered_map<SubscriptionId, SubSlot> slot_of_;
  std::size_t predicate_count_ = 0;

  // Epoch-stamped match scratch: counts_[s] is valid iff stamp_[s] ==
  // epoch_, so no per-match clearing. Engine operations are serialised per
  // matcher (see realtime_host), so mutable scratch in const match() is safe.
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<std::uint32_t> counts_;
  mutable std::vector<SubSlot> touched_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace evps
