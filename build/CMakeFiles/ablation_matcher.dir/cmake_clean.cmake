file(REMOVE_RECURSE
  "CMakeFiles/ablation_matcher.dir/bench/ablation_matcher.cpp.o"
  "CMakeFiles/ablation_matcher.dir/bench/ablation_matcher.cpp.o.d"
  "bench/ablation_matcher"
  "bench/ablation_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
