file(REMOVE_RECURSE
  "CMakeFiles/fig10ab_throughput.dir/bench/fig10ab_throughput.cpp.o"
  "CMakeFiles/fig10ab_throughput.dir/bench/fig10ab_throughput.cpp.o.d"
  "bench/fig10ab_throughput"
  "bench/fig10ab_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10ab_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
