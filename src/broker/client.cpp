#include "broker/client.hpp"

namespace evps {

PubSubClient::PubSubClient(ClientId id, std::string name, Network& net)
    : id_(id), name_(std::move(name)), net_(net) {
  net_.attach(*this);
}

void PubSubClient::connect(Broker& broker, Duration latency) {
  if (broker_ != nullptr) throw std::logic_error("client already connected");
  net_.connect(node_id(), broker.node_id(), latency);
  broker.accept_client(node_id());
  broker_ = &broker;
}

SubscriptionId PubSubClient::subscribe(Subscription sub) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  if (!sub.id().valid()) sub.set_id(make_subscription_id(id_, next_sub_seq_++));
  sub.set_subscriber(id_);
  sub.set_epoch(net_.simulator().now());
  const SubscriptionId id = sub.id();
  active_subs_.insert(id);
  net_.send(node_id(), broker_->node_id(),
            SubscribeMsg{std::make_shared<const Subscription>(std::move(sub))});
  return id;
}

void PubSubClient::unsubscribe(SubscriptionId id) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  active_subs_.erase(id);
  net_.send(node_id(), broker_->node_id(), UnsubscribeMsg{id});
}

SubscriptionId PubSubClient::resubscribe(SubscriptionId old_id, Subscription replacement) {
  unsubscribe(old_id);
  return subscribe(std::move(replacement));
}

void PubSubClient::update_subscription(SubscriptionId id,
                                       std::vector<std::optional<Value>> new_values) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  net_.send(node_id(), broker_->node_id(), SubscriptionUpdateMsg{id, std::move(new_values)});
}

MessageId PubSubClient::publish(Publication pub) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  const MessageId id = make_publication_id(id_, next_pub_seq_++);
  pub.set_id(id);
  pub.set_publisher(id_);
  net_.send(node_id(), broker_->node_id(),
            PublishMsg{std::make_shared<const Publication>(std::move(pub)), nullptr});
  return id;
}

MessageId PubSubClient::advertise(std::vector<Predicate> predicates) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  const MessageId id = make_publication_id(id_, (std::uint32_t{1} << 24) + next_adv_seq_++);
  auto adv = std::make_shared<Advertisement>(id, id_, std::move(predicates));
  active_advs_.insert(id);
  net_.send(node_id(), broker_->node_id(), AdvertiseMsg{std::move(adv)});
  return id;
}

void PubSubClient::unadvertise(MessageId id) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  active_advs_.erase(id);
  net_.send(node_id(), broker_->node_id(), UnadvertiseMsg{id});
}

void PubSubClient::shutdown() {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  // Copy: unsubscribe()/unadvertise() mutate the active sets.
  const auto subs = active_subs_;
  for (const auto id : subs) unsubscribe(id);
  const auto advs = active_advs_;
  for (const auto id : advs) unadvertise(id);
}

void PubSubClient::send_var_update(const std::string& name, double value) {
  if (broker_ == nullptr) throw std::logic_error("client not connected");
  net_.send(node_id(), broker_->node_id(), VarUpdateMsg{name, value});
}

void PubSubClient::on_message(const Envelope& env) {
  if (const auto* delivery = std::get_if<DeliveryMsg>(&env.msg)) {
    record_delivery(delivery->pub);
  } else if (const auto* batch = std::get_if<DeliveryBatchMsg>(&env.msg)) {
    // Unpacking in order makes a grouped delivery indistinguishable from N
    // consecutive DeliveryMsg arrivals at the same instant.
    for (const auto& pub : batch->pubs) record_delivery(pub);
  }
}

void PubSubClient::record_delivery(const PublicationPtr& pub) {
  deliveries_.push_back(Delivery{net_.simulator().now(), *pub});
  if (on_delivery) on_delivery(*pub, net_.simulator().now());
}

}  // namespace evps
