// Steady-state matching must not touch the heap (tentpole acceptance
// criterion of the compiled-predicate work): after a warm-up publication has
// grown every scratch buffer to capacity, BrokerEngine::match performs zero
// allocations for LEES, CLEES, VES, hybrid and static engines alike.
//
// The whole-program operator new/delete are replaced with counting versions
// in this binary. All variants are forwarded to malloc/free consistently so
// the test also runs cleanly under ASan (no alloc/dealloc mismatch).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "evolving/clees_engine.hpp"
#include "evolving/hybrid_engine.hpp"
#include "evolving/lees_engine.hpp"
#include "evolving/static_engine.hpp"
#include "evolving/ves_engine.hpp"
#include "test_util.hpp"

namespace {
// Atomic (relaxed): sharded dispatches run task bodies on pool workers, and
// an allocation there must count the same as one on the caller.
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }
void count_alloc() { g_alloc_count.fetch_add(1, std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  count_alloc();
  const auto align = static_cast<std::size_t>(al);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;

/// Install a mixed population: split evolving subs (static + evolving
/// predicate), fully evolving subs, and purely static subs, spread over a
/// handful of destinations.
void populate(BrokerEngine& engine, SimHost& host, int n, bool evolving_allowed) {
  for (int i = 1; i <= n; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    SubscriptionPtr sub;
    if (!evolving_allowed || i % 3 == 0) {
      sub = make_sub(id, "x <= " + std::to_string(40 + i % 20));
    } else if (i % 3 == 1) {
      sub = make_sub(id, "y >= 1; x <= 10 + 2 * v + 0.01 * t");
    } else {
      sub = make_sub(id, "x <= 5 * v + 0.1 * t");
    }
    engine.add(sub, NodeId{1 + id % 7}, host);
  }
}

/// Matches `pubs` through `engine` once (growing scratch), then asserts the
/// next `rounds` full passes allocate nothing.
void expect_alloc_free_matching(BrokerEngine& engine, SimHost& host,
                                const std::vector<Publication>& pubs,
                                const VariableSnapshot* snapshot = nullptr) {
  std::vector<NodeId> dests;
  dests.reserve(64);
  for (int warm = 0; warm < 2; ++warm) {
    for (const auto& pub : pubs) {
      dests.clear();
      engine.match(pub, snapshot, host, dests);
    }
  }
  const std::uint64_t before = alloc_count();
  std::size_t total_dests = 0;
  for (int round = 0; round < 50; ++round) {
    for (const auto& pub : pubs) {
      dests.clear();
      engine.match(pub, snapshot, host, dests);
      total_dests += dests.size();
    }
  }
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u) << "steady-state match allocated";
  EXPECT_GT(total_dests, 0u) << "workload never matched anything";
}

std::vector<Publication> make_pubs() {
  std::vector<Publication> pubs;
  pubs.push_back(Publication{{"x", Value{3.0}}, {"y", Value{2.0}}});
  pubs.push_back(Publication{{"x", Value{45.0}}, {"y", Value{0.0}}});
  pubs.push_back(Publication{{"x", Value{-2.0}}, {"y", Value{5.0}}});
  pubs.push_back(Publication{{"z", Value{1.0}}});
  for (auto& pub : pubs) pub.set_entry_time(SimTime::from_seconds(1));
  return pubs;
}

class MatchAllocation : public ::testing::Test {
 protected:
  Simulator sim;
  SimHost host{sim};

  void SetUp() override {
    host.set_variable("v", 0.5);
    sim.run_until(SimTime::from_seconds(1));
  }
};

TEST_F(MatchAllocation, LeesSteadyStateIsAllocFree) {
  LeesEngine engine{EngineConfig{.kind = EngineKind::kLees}};
  populate(engine, host, 120, true);
  expect_alloc_free_matching(engine, host, make_pubs());
}

TEST_F(MatchAllocation, LeesSnapshotPathIsAllocFree) {
  LeesEngine engine{EngineConfig{.kind = EngineKind::kLees}};
  populate(engine, host, 120, true);
  const VariableSnapshot snapshot = make_variable_snapshot({{"v", 1.0}});
  expect_alloc_free_matching(engine, host, make_pubs(), &snapshot);
}

TEST_F(MatchAllocation, CleesSteadyStateIsAllocFree) {
  CleesEngine engine{EngineConfig{.kind = EngineKind::kClees}};
  populate(engine, host, 120, true);
  // Cache hits (same instant) and misses (first touch) both occur here; the
  // re-materialisation path overwrites cached bounds in place.
  expect_alloc_free_matching(engine, host, make_pubs());
}

TEST_F(MatchAllocation, CleesCacheExpiryRefreshIsAllocFree) {
  CleesEngine engine{EngineConfig{.kind = EngineKind::kClees}};
  for (int i = 1; i <= 60; ++i) {
    // Sub-millisecond TT: every pass below begins past the cache window.
    engine.add(make_sub(static_cast<std::uint64_t>(i),
                        "[tt=0.000001] x <= 5 * v + 0.1 * t"),
               NodeId{1 + static_cast<std::uint64_t>(i) % 7}, host);
  }
  const auto pubs = make_pubs();
  std::vector<NodeId> dests;
  dests.reserve(64);
  for (const auto& pub : pubs) {
    dests.clear();
    engine.match(pub, nullptr, host, dests);
  }
  // Every later pass begins past the TT, forcing re-materialisation.
  const std::uint64_t before = alloc_count();
  for (int round = 0; round < 20; ++round) {
    sim.run_until(sim.now() + Duration::millis(1));
    for (const auto& pub : pubs) {
      dests.clear();
      engine.match(pub, nullptr, host, dests);
    }
  }
  EXPECT_EQ(alloc_count() - before, 0u);
  EXPECT_GT(engine.costs().cache_misses, 60u);
}

TEST_F(MatchAllocation, VesSteadyStateIsAllocFree) {
  VesEngine engine{EngineConfig{.kind = EngineKind::kVes}};
  populate(engine, host, 120, true);
  expect_alloc_free_matching(engine, host, make_pubs());
}

TEST_F(MatchAllocation, HybridSteadyStateIsAllocFree) {
  HybridEngine engine{EngineConfig{.kind = EngineKind::kHybrid}};
  populate(engine, host, 120, true);
  expect_alloc_free_matching(engine, host, make_pubs());
}

TEST_F(MatchAllocation, StaticSteadyStateIsAllocFree) {
  StaticEngine engine{EngineConfig{.kind = EngineKind::kStatic}};
  populate(engine, host, 120, false);
  expect_alloc_free_matching(engine, host, make_pubs());
}

/// Batch variant: after warm-up passes have sized every per-shard scratch
/// (and instantiated the shared worker pool — its one-time thread spawn is
/// deliberately outside the measured window), steady-state match_batch()
/// must not allocate on any thread, caller or pool worker.
void expect_alloc_free_batching(BrokerEngine& engine, SimHost& host,
                                const std::vector<Publication>& pubs) {
  std::vector<std::vector<NodeId>> dests;
  for (int warm = 0; warm < 3; ++warm) {
    engine.match_batch(pubs, nullptr, host, dests);
  }
  const std::uint64_t before = alloc_count();
  std::size_t total_dests = 0;
  for (int round = 0; round < 50; ++round) {
    engine.match_batch(pubs, nullptr, host, dests);
    for (std::size_t i = 0; i < pubs.size(); ++i) total_dests += dests[i].size();
  }
  EXPECT_EQ(alloc_count() - before, 0u) << "steady-state match_batch allocated";
  EXPECT_GT(total_dests, 0u) << "workload never matched anything";
}

TEST_F(MatchAllocation, LeesShardedBatchSteadyStateIsAllocFree) {
  LeesEngine engine{EngineConfig{.kind = EngineKind::kLees, .matcher_threads = 2}};
  populate(engine, host, 120, true);
  expect_alloc_free_batching(engine, host, make_pubs());
}

TEST_F(MatchAllocation, CleesShardedBatchSteadyStateIsAllocFree) {
  CleesEngine engine{EngineConfig{.kind = EngineKind::kClees, .matcher_threads = 2}};
  populate(engine, host, 120, true);
  expect_alloc_free_batching(engine, host, make_pubs());
}

TEST_F(MatchAllocation, VesShardedBatchSteadyStateIsAllocFree) {
  VesEngine engine{EngineConfig{.kind = EngineKind::kVes, .matcher_threads = 2}};
  populate(engine, host, 120, true);
  expect_alloc_free_batching(engine, host, make_pubs());
}

}  // namespace
}  // namespace evps
