// Parametric-subscriptions baseline [12].
//
// Broker-side it behaves like the static engine, but subscription *update*
// messages adjust the constant operands of installed subscriptions in place
// — one network message instead of an unsubscribe/subscribe pair. The update
// itself is applied by BrokerEngine::update (remove + reinsert into the
// matcher), whose cost is charged to maintenance, mirroring the routing
// table adjustment cost described in the paper.
#pragma once

#include "evolving/static_engine.hpp"

namespace evps {

class ParametricEngine final : public StaticEngine {
 public:
  explicit ParametricEngine(const EngineConfig& config) : StaticEngine(config) {}
};

}  // namespace evps
