# Empty compiler generated dependencies file for micro_expr.
# This may be replaced when dependencies are built.
