file(REMOVE_RECURSE
  "CMakeFiles/test_ves.dir/test_ves.cpp.o"
  "CMakeFiles/test_ves.dir/test_ves.cpp.o.d"
  "test_ves"
  "test_ves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
