#include "evolving/static_engine.hpp"

namespace evps {

void StaticEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  if (entry.sub->is_evolving()) {
    throw std::invalid_argument("static engine cannot install evolving subscription " +
                                entry.sub->id().str());
  }
  matcher_->add(entry.sub->id(), entry.sub->predicates());
}

void StaticEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  matcher_->remove(entry.sub->id());
}

void StaticEngine::do_match(const Publication& pub, const VariableSnapshot* /*snapshot*/,
                            EngineHost& /*host*/, std::vector<NodeId>& destinations) {
  std::vector<SubscriptionId> ids;
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, ids);
  }
  for (const auto id : ids) destinations.push_back(destination_of(id));
}

}  // namespace evps
