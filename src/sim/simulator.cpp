#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace evps {

void Simulator::at(SimTime t, Action fn) {
  if (t < now_) throw std::invalid_argument("cannot schedule an event in the past");
  if (!fn) throw std::invalid_argument("cannot schedule an empty action");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

TimerHandle Simulator::every(SimTime first, Duration period, SimTime until,
                             std::function<void(SimTime)> fn) {
  if (period <= Duration::zero()) throw std::invalid_argument("period must be positive");
  auto alive = std::make_shared<bool>(true);
  if (first >= until) {
    *alive = false;
    return TimerHandle{alive};
  }
  TimerHandle handle{alive};
  schedule_occurrence(first, period, until, std::move(fn), std::move(alive));
  return handle;
}

void Simulator::schedule_occurrence(SimTime when, Duration period, SimTime until,
                                    std::function<void(SimTime)> fn,
                                    std::shared_ptr<bool> alive) {
  at(when, [this, when, period, until, fn = std::move(fn), alive = std::move(alive)]() mutable {
    if (!*alive) return;  // cancelled while queued
    fn(when);
    if (!*alive) return;  // fn cancelled its own timer
    const SimTime next = when + period;
    if (next >= until) {
      *alive = false;  // expired: handles report inactive
      return;
    }
    schedule_occurrence(next, period, until, std::move(fn), std::move(alive));
  });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping so re-entrant scheduling is safe.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace evps
