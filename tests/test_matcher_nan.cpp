// Non-finite operand suite: NaN, ±infinity and −0.0 as predicate constants
// and publication values.
//
// Content-based semantics (Value::compare / apply_rel_op): a comparison
// involving NaN is *incomparable* — it satisfies only kNe. The historical
// bugs covered here:
//   * NaN bounds in the sorted bound lists broke strict weak ordering, so
//     binary searches were UB and erase could remove ANOTHER subscription's
//     entry (now quarantined into the misc scan list).
//   * NaN-keyed eq_num entries leaked on remove — find(NaN) never succeeds
//     on a double-keyed hash map — leaving stale entries aimed at recycled
//     slots (CountingMatcher) or stale back-references able to corrupt a
//     reused slot's location table (ChurnMatcher).
//   * A NaN *publication* value spuriously satisfied every <= / >= bound
//     (NaN degenerates lower_bound/upper_bound partitions).
//   * A `!= NaN` predicate could not be removed (Value::operator== is false
//     for NaN vs NaN), leaving a matches-everything ghost that fired for
//     whichever subscription later recycled the slot.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"
#include "matching/counting_matcher.hpp"
#include "matching/sharded_matcher.hpp"

namespace evps {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

using Ids = std::vector<SubscriptionId>;

Ids hits(const Matcher& m, const Publication& pub) {
  Ids out;
  m.match(pub, out);
  return out;
}

TEST(NanBound, RemovingOneNanBoundSubscriptionLeavesOthersIntact) {
  // Two subscriptions with identical NaN bounds plus one innocent bystander:
  // under the old sorted lists the NaN entries made every binary search UB
  // and the first remove could erase the bystander's entry instead.
  CountingMatcher m;
  m.add(SubscriptionId{1}, {Predicate{"x", RelOp::kLt, Value{kNaN}}});
  m.add(SubscriptionId{2}, {Predicate{"x", RelOp::kLt, Value{kNaN}}});
  m.add(SubscriptionId{3}, {Predicate{"x", RelOp::kLt, Value{5.0}}});

  EXPECT_TRUE(m.remove(SubscriptionId{1}));
  EXPECT_TRUE(m.contains(SubscriptionId{2}));
  // The bystander still matches; the NaN-bound subscription never can.
  EXPECT_EQ(m.match(Publication{{"x", Value{1.0}}}), Ids{SubscriptionId{3}});

  EXPECT_TRUE(m.remove(SubscriptionId{2}));
  EXPECT_TRUE(m.remove(SubscriptionId{3}));
  EXPECT_EQ(m.indexed_entry_count(), 0u);
  EXPECT_EQ(m.predicate_count(), 0u);
}

// A NaN equality or kNe constant must be fully unindexed on remove; the
// recycled slot is then re-used by an unrelated subscription which must not
// inherit any stale entry.
template <typename M>
void nan_remove_then_reuse_slot(M& m) {
  m.add(SubscriptionId{1}, {Predicate{"x", RelOp::kEq, Value{kNaN}}});
  // NaN == NaN is false under content-based semantics: never matches.
  EXPECT_TRUE(hits(m, Publication{{"x", Value{kNaN}}}).empty());
  EXPECT_TRUE(hits(m, Publication{{"x", Value{3.0}}}).empty());
  EXPECT_TRUE(m.remove(SubscriptionId{1}));
  EXPECT_EQ(m.indexed_entry_count(), 0u);

  // Slot recycle: any leaked "x == NaN" entry would now reference this slot.
  m.add(SubscriptionId{2}, {Predicate{"y", RelOp::kEq, Value{1}}});
  EXPECT_TRUE(hits(m, Publication{{"x", Value{3.0}}}).empty());
  EXPECT_EQ(hits(m, Publication{{"y", Value{1}}}), Ids{SubscriptionId{2}});
  EXPECT_TRUE(m.remove(SubscriptionId{2}));
  EXPECT_EQ(m.indexed_entry_count(), 0u);
}

TEST(NanEqLeak, CountingRemoveThenReuseSlot) {
  CountingMatcher m;
  nan_remove_then_reuse_slot(m);
}

TEST(NanEqLeak, ChurnRemoveThenReuseSlot) {
  ChurnMatcher m;
  nan_remove_then_reuse_slot(m);
}

template <typename M>
void nan_ne_ghost(M& m) {
  // `x != NaN` is satisfied by EVERY x value (incomparable => kNe holds).
  m.add(SubscriptionId{1}, {Predicate{"x", RelOp::kNe, Value{kNaN}}});
  EXPECT_EQ(hits(m, Publication{{"x", Value{1.0}}}), Ids{SubscriptionId{1}});
  EXPECT_EQ(hits(m, Publication{{"x", Value{kNaN}}}), Ids{SubscriptionId{1}});
  EXPECT_EQ(hits(m, Publication{{"x", Value{"s"}}}), Ids{SubscriptionId{1}});

  // Equality-based unindexing used to skip this entry (NaN != NaN), leaving
  // a matches-everything ghost aimed at the recycled slot.
  EXPECT_TRUE(m.remove(SubscriptionId{1}));
  EXPECT_EQ(m.indexed_entry_count(), 0u);
  m.add(SubscriptionId{9}, {Predicate{"y", RelOp::kEq, Value{1}}});
  EXPECT_TRUE(hits(m, Publication{{"x", Value{1.0}}}).empty());
  EXPECT_EQ(hits(m, Publication{{"y", Value{1}}}), Ids{SubscriptionId{9}});
}

TEST(NanNeGhost, CountingRemoveUnindexesNeNan) {
  CountingMatcher m;
  nan_ne_ghost(m);
}

TEST(NanNeGhost, ChurnRemoveUnindexesNeNan) {
  ChurnMatcher m;
  nan_ne_ghost(m);
}

TEST(NanPublication, SatisfiesOnlyNePredicates) {
  // A NaN publication value used to fall through the bound-list binary
  // searches with a NaN pivot, spuriously hitting every <= / >= bound.
  CountingMatcher counting;
  ChurnMatcher churn;
  BruteForceMatcher oracle;
  const std::vector<std::pair<RelOp, double>> preds{
      {RelOp::kLt, 5.0}, {RelOp::kLe, 5.0}, {RelOp::kGt, 5.0},
      {RelOp::kGe, 5.0}, {RelOp::kEq, 5.0}, {RelOp::kNe, 5.0},
  };
  std::uint64_t id = 1;
  for (const auto& [op, bound] : preds) {
    const std::vector<Predicate> p{Predicate{"x", op, Value{bound}}};
    oracle.add(SubscriptionId{id}, p);
    counting.add(SubscriptionId{id}, p);
    churn.add(SubscriptionId{id}, p);
    ++id;
  }
  const Publication pub{{"x", Value{kNaN}}};
  const Ids expected = oracle.match(pub);
  EXPECT_EQ(expected, Ids{SubscriptionId{6}});  // only x != 5
  EXPECT_EQ(counting.match(pub), expected);
  EXPECT_EQ(churn.match(pub), expected);
}

TEST(NonFiniteAgreement, ExhaustiveOperatorBoundValueCross) {
  // Every operator crossed with every special bound, matched against every
  // special publication value: the indexed matchers must agree with the
  // oracle cell by cell.
  const double specials[] = {-kInf, -1.5, -0.0, 0.0, 1.5, kInf, kNaN};
  BruteForceMatcher oracle;
  CountingMatcher counting;
  ChurnMatcher churn;
  std::uint64_t id = 1;
  for (int op = 0; op < 6; ++op) {
    for (const double bound : specials) {
      const std::vector<Predicate> p{
          Predicate{"x", static_cast<RelOp>(op), Value{bound}}};
      oracle.add(SubscriptionId{id}, p);
      counting.add(SubscriptionId{id}, p);
      churn.add(SubscriptionId{id}, p);
      ++id;
    }
  }
  for (const double v : specials) {
    const Publication pub{{"x", Value{v}}};
    const Ids expected = oracle.match(pub);
    ASSERT_EQ(counting.match(pub), expected) << "value " << v;
    ASSERT_EQ(churn.match(pub), expected) << "value " << v;
  }
  // Tear down completely: no entry may survive.
  for (std::uint64_t i = 1; i < id; ++i) {
    EXPECT_TRUE(counting.remove(SubscriptionId{i}));
    EXPECT_TRUE(churn.remove(SubscriptionId{i}));
  }
  EXPECT_EQ(counting.indexed_entry_count(), 0u);
  EXPECT_EQ(churn.indexed_entry_count(), 0u);
}

TEST(NegativeZero, CrossSpellingBoundsRemoveIndependently) {
  // −0.0 and 0.0 are one ordering class; entries are disambiguated by slot,
  // so removing the −0.0-bound subscription must not disturb the 0.0 one.
  CountingMatcher m;
  m.add(SubscriptionId{1}, {Predicate{"x", RelOp::kGe, Value{-0.0}}});
  m.add(SubscriptionId{2}, {Predicate{"x", RelOp::kGe, Value{0.0}}});
  EXPECT_EQ(m.match(Publication{{"x", Value{0.0}}}),
            (Ids{SubscriptionId{1}, SubscriptionId{2}}));
  EXPECT_EQ(m.match(Publication{{"x", Value{-0.0}}}),
            (Ids{SubscriptionId{1}, SubscriptionId{2}}));
  EXPECT_TRUE(m.remove(SubscriptionId{1}));
  EXPECT_EQ(m.match(Publication{{"x", Value{0.0}}}), Ids{SubscriptionId{2}});
  EXPECT_TRUE(m.remove(SubscriptionId{2}));
  EXPECT_EQ(m.indexed_entry_count(), 0u);
}

// --- add_batch agreement -------------------------------------------------

Value random_value(Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return Value{rng.uniform_int(-5, 5)};
    case 1: return Value{rng.uniform(-5.0, 5.0)};
    case 2: return Value{kNaN};
    case 3: return Value{kInf};
    case 4: return Value{-kInf};
    case 5: return Value{-0.0};
    default: return Value{std::string(1, static_cast<char>('a' + rng.uniform_int(0, 2)))};
  }
}

std::vector<Predicate> random_preds(Rng& rng) {
  const char* attrs[] = {"x", "y", "price"};
  std::vector<Predicate> preds;
  const auto n = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    preds.push_back(Predicate{attrs[rng.uniform_int(0, 2)],
                              static_cast<RelOp>(rng.uniform_int(0, 5)), random_value(rng)});
  }
  return preds;
}

TEST(AddBatch, MatchesIndividualAddsIncludingSharded) {
  // Bulk installation must be observationally identical to per-subscription
  // add(), for the plain counting matcher and through shard redistribution.
  Rng rng{4242};
  BruteForceMatcher oracle;
  CountingMatcher individual;
  CountingMatcher batched;
  ShardedMatcher sharded{MatcherKind::kCounting, 4};

  std::uint64_t next_id = 1;
  for (int round = 0; round < 20; ++round) {
    std::vector<MatcherBatchEntry> batch;
    const auto batch_size = rng.uniform_int(1, 120);
    for (std::int64_t i = 0; i < batch_size; ++i) {
      const SubscriptionId id{next_id++};
      auto preds = random_preds(rng);
      oracle.add(id, preds);
      individual.add(id, preds);
      batch.push_back(MatcherBatchEntry{id, std::move(preds)});
    }
    {
      auto copy = batch;
      batched.add_batch(std::move(copy));
    }
    sharded.add_batch(std::move(batch));

    // Interleave some removals so batches land on partially drained indexes.
    for (int r = 0; r < 10 && next_id > 2; ++r) {
      const SubscriptionId id{1 + static_cast<std::uint64_t>(
                                      rng.uniform_int(0, static_cast<std::int64_t>(next_id) - 2))};
      const bool present = oracle.contains(id);
      EXPECT_EQ(individual.remove(id), present);
      EXPECT_EQ(batched.remove(id), present);
      EXPECT_EQ(sharded.remove(id), present);
      oracle.remove(id);
    }

    for (int p = 0; p < 25; ++p) {
      Publication pub;
      const char* attrs[] = {"x", "y", "price"};
      const auto n = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < n; ++i) {
        pub.set(attrs[rng.uniform_int(0, 2)], random_value(rng));
      }
      const Ids expected = oracle.match(pub);
      ASSERT_EQ(hits(individual, pub), expected) << "round " << round;
      ASSERT_EQ(hits(batched, pub), expected) << "round " << round;
      ASSERT_EQ(hits(sharded, pub), expected) << "round " << round;
    }
    ASSERT_EQ(individual.size(), oracle.size());
    ASSERT_EQ(batched.size(), oracle.size());
    ASSERT_EQ(sharded.size(), oracle.size());
  }

  // Drain everything through remove(); the bulk-built indexes must empty out
  // exactly like the incrementally built one.
  for (std::uint64_t i = 1; i < next_id; ++i) {
    const SubscriptionId id{i};
    const bool present = oracle.contains(id);
    EXPECT_EQ(batched.remove(id), present);
    EXPECT_EQ(sharded.remove(id), present);
  }
  EXPECT_EQ(batched.indexed_entry_count(), 0u);
  EXPECT_EQ(batched.predicate_count(), 0u);
  EXPECT_EQ(sharded.size(), 0u);
}

TEST(AddBatch, EmptyAndSingletonBatches) {
  CountingMatcher m;
  m.add_batch({});
  EXPECT_EQ(m.size(), 0u);
  std::vector<MatcherBatchEntry> one;
  one.push_back(MatcherBatchEntry{SubscriptionId{7}, {Predicate{"x", RelOp::kGt, Value{1}}}});
  m.add_batch(std::move(one));
  EXPECT_EQ(m.match(Publication{{"x", Value{2}}}), Ids{SubscriptionId{7}});
}

}  // namespace
}  // namespace evps
