#include "message/publication.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

TEST(Publication, EmptyByDefault) {
  const Publication pub;
  EXPECT_TRUE(pub.empty());
  EXPECT_EQ(pub.size(), 0u);
  EXPECT_EQ(pub.get("x"), nullptr);
}

TEST(Publication, SetAndGet) {
  Publication pub;
  pub.set("x", 4).set("y", 3.5).set("action", "pickup");
  EXPECT_EQ(pub.size(), 3u);
  ASSERT_NE(pub.get("x"), nullptr);
  EXPECT_EQ(pub.get("x")->as_int(), 4);
  EXPECT_DOUBLE_EQ(pub.get("y")->as_double(), 3.5);
  EXPECT_EQ(pub.get("action")->as_string(), "pickup");
  EXPECT_TRUE(pub.has("y"));
  EXPECT_FALSE(pub.has("z"));
}

TEST(Publication, SetOverwrites) {
  Publication pub;
  pub.set("x", 1);
  pub.set("x", 2);
  EXPECT_EQ(pub.size(), 1u);
  EXPECT_EQ(pub.get("x")->as_int(), 2);
}

TEST(Publication, AttributesSortedCanonically) {
  Publication pub;
  pub.set("zebra", 1).set("apple", 2).set("mango", 3);
  const auto& attrs = pub.attributes();
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].first, "apple");
  EXPECT_EQ(attrs[1].first, "mango");
  EXPECT_EQ(attrs[2].first, "zebra");
}

TEST(Publication, InitializerList) {
  const Publication pub{{"x", Value{4}}, {"y", Value{3}}};
  EXPECT_EQ(pub.size(), 2u);
  EXPECT_EQ(pub.get("x")->as_int(), 4);
}

TEST(Publication, EqualityIgnoresMetadata) {
  Publication a{{"x", Value{1}}};
  Publication b{{"x", Value{1}}};
  b.set_id(MessageId{99});
  b.set_publisher(ClientId{5});
  b.set_entry_time(SimTime::from_seconds(3));
  EXPECT_EQ(a, b);
  const Publication other{{"x", Value{2}}};
  EXPECT_FALSE(a == other);
}

TEST(Publication, Metadata) {
  Publication pub;
  pub.set_id(MessageId{7});
  pub.set_publisher(ClientId{3});
  pub.set_entry_time(SimTime::from_seconds(1.5));
  EXPECT_EQ(pub.id(), MessageId{7});
  EXPECT_EQ(pub.publisher(), ClientId{3});
  EXPECT_EQ(pub.entry_time(), SimTime::from_seconds(1.5));
}

TEST(Publication, ToString) {
  Publication pub{{"x", Value{4}}, {"action", Value{"pickup"}}};
  EXPECT_EQ(pub.to_string(), "{action = 'pickup'; x = 4}");
}

TEST(Publication, CachesInternedAttributeIds) {
  Publication pub;
  pub.set("zebra", 1).set("apple", 2).set("apple", 3);
  const auto& ids = pub.attribute_ids();
  ASSERT_EQ(ids.size(), pub.attributes().size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], AttributeTable::instance().find(pub.attributes()[i].first));
    EXPECT_EQ(AttributeTable::instance().name(ids[i]), pub.attributes()[i].first);
  }
  EXPECT_EQ(pub.get(ids[0])->as_int(), 3);  // "apple", overwritten
  EXPECT_EQ(pub.get(kInvalidAttrId), nullptr);
}

TEST(AttributeTable, InternIsIdempotentAndDense) {
  auto& table = AttributeTable::instance();
  const AttrId a = table.intern("attr_table_test_a");
  EXPECT_EQ(table.intern("attr_table_test_a"), a);
  EXPECT_EQ(table.find("attr_table_test_a"), a);
  const AttrId b = table.intern("attr_table_test_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.name(a), "attr_table_test_a");
  EXPECT_EQ(table.find("attr_table_test_never_interned"), kInvalidAttrId);
  EXPECT_GE(table.size(), 2u);
}

}  // namespace
}  // namespace evps
