# Empty compiler generated dependencies file for realtime_demo.
# This may be replaced when dependencies are built.
