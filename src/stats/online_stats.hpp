// Numerically stable streaming moments for the Monte-Carlo sweep harness.
//
// OnlineStats is a Welford accumulator (count / mean / centred second moment
// plus min / max) with an exact pairwise `combine()` (Chan et al.'s parallel
// update), so per-replica accumulators built on worker threads can be merged
// into one summary after the fork-join barrier. `combine()` is *statistically*
// exact — the merged moments describe the union of the two sample sets — and
// numerically stable, but floating-point addition is not associative, so two
// different partitions of the same stream agree to rounding error, not bit
// for bit. The sweep driver therefore always folds replica accumulators in
// replica-index order, which makes the aggregate bit-deterministic for any
// worker count.
//
// Non-finite samples (NaN, ±inf) never enter the moments: they are counted
// in `rejected()` and otherwise ignored, so one corrupt latency sample
// cannot poison a whole sweep (the "NaN guard" the statistical-testing
// hardening pass requires of every accumulator).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace evps {

class OnlineStats {
 public:
  /// Record one sample. Non-finite values are counted as rejected.
  void add(double x) noexcept {
    if (!std::isfinite(x)) {
      ++rejected_;
      return;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge `other` into this accumulator. The result carries the moments of
  /// the concatenated sample sets regardless of how the stream was
  /// partitioned or in which order partitions are combined (up to
  /// floating-point rounding; count/min/max/rejected are exact).
  void combine(const OnlineStats& other) noexcept {
    rejected_ += other.rejected_;
    if (other.n_ == 0) return;
    if (n_ == 0) {
      n_ = other.n_;
      mean_ = other.mean_;
      m2_ = other.m2_;
      min_ = other.min_;
      max_ = other.max_;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double n = na + nb;
    const double delta = other.mean_ - mean_;
    mean_ += delta * (nb / n);
    m2_ += other.m2_ + delta * delta * (na * nb / n);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  /// Unbiased sample variance; 0 for fewer than two samples (callers that
  /// must distinguish "undefined" check count() themselves — the confidence
  /// layer suppresses CIs below two samples).
  [[nodiscard]] double variance() const noexcept {
    if (n_ < 2) return 0.0;
    return std::max(0.0, m2_ / static_cast<double>(n_ - 1));
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(n_); }

  void reset() noexcept { *this = OnlineStats{}; }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t rejected_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace evps
