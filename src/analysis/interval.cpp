#include "analysis/interval.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One-ulp outward rounding: endpoint arithmetic rounds to nearest, so the
/// true bound can sit half an ulp outside the computed one. Infinities are
/// already extreme.
double down(double x) noexcept { return std::isfinite(x) ? std::nextafter(x, -kInf) : x; }
double up(double x) noexcept { return std::isfinite(x) ? std::nextafter(x, kInf) : x; }

void widen(Interval& i) noexcept {
  i.lo = down(i.lo);
  i.hi = up(i.hi);
}

// Endpoint exactness tests: widening exists to cover round-to-nearest error,
// so an endpoint whose arithmetic was provably exact keeps its crisp value —
// `v + 1` over v in [0, 4] is exactly [1, 5], and a static `x <= 5` stays
// provably covered by it (the 1-ulp fail-closed gap).

bool sum_exact(double x, double y, double s) noexcept {
  return std::isfinite(s) && s - x == y && s - y == x;
}

bool diff_exact(double x, double y, double d) noexcept {
  return std::isfinite(d) && d + y == x && x - d == y;
}

/// fma detects an inexact product as a nonzero residual — except when the
/// real residual is too small for even a subnormal (possible only when the
/// product's own magnitude sits within ~106 bits of the subnormal floor), so
/// those magnitudes fail closed.
bool prod_exact(double x, double y, double p) noexcept {
  if (!std::isfinite(p)) return false;
  if (p == 0.0) return x == 0.0 || y == 0.0;
  return std::abs(p) >= 0x1p-916 && std::fma(x, y, -p) == 0.0;
}

/// x / y == q exactly iff q * y == x exactly (same residual caveat, on x).
bool quot_exact(double x, double y, double q) noexcept {
  if (!std::isfinite(q) || !std::isfinite(y)) return false;
  if (q == 0.0) return x == 0.0;
  return std::abs(x) >= 0x1p-916 && std::fma(q, y, -x) == 0.0;
}

bool degenerate(const Interval& i) noexcept { return i.lo == i.hi; }
bool contains_zero(const Interval& i) noexcept { return i.lo <= 0.0 && 0.0 <= i.hi; }
bool contains_inf(const Interval& i) noexcept { return i.lo == -kInf || i.hi == kInf; }
/// Some finite value lies in the (non-empty) interval.
bool contains_finite(const Interval& i) noexcept { return i.lo < kInf && i.hi > -kInf; }

/// Exact result of a degenerate (point × point) operation.
Interval exact(double v, bool maybe_nan) noexcept {
  if (std::isnan(v)) return Interval::nan_only();
  Interval r = Interval::range(v, v);
  r.maybe_nan = maybe_nan;
  return r;
}

/// Numeric range spanned by non-NaN candidates; NaN candidates (0*inf,
/// inf-inf, ...) only set the flag — their finite neighbourhood limits
/// appear among the other candidates. Each candidate contributes its crisp
/// value when `exact[i]`, a 1-ulp-widened value otherwise.
Interval from_candidates(const double* cand, const bool* exact, int n, bool maybe_nan) noexcept {
  Interval r = Interval::nan_only();
  bool any = false;
  for (int i = 0; i < n; ++i) {
    if (std::isnan(cand[i])) {
      maybe_nan = true;
      continue;
    }
    const double lo = exact[i] ? cand[i] : down(cand[i]);
    const double hi = exact[i] ? cand[i] : up(cand[i]);
    if (!any) {
      r.lo = lo;
      r.hi = hi;
      any = true;
    } else {
      r.lo = std::min(r.lo, lo);
      r.hi = std::max(r.hi, hi);
    }
  }
  r.maybe_nan = maybe_nan;
  return r;
}

double sgn(double x) noexcept { return x < 0 ? -1.0 : (x > 0 ? 1.0 : 0.0); }

}  // namespace

Interval Interval::point(double v) noexcept {
  if (std::isnan(v)) return nan_only();
  return range(v, v);
}

Interval Interval::hull(const Interval& other) const noexcept {
  Interval r;
  r.maybe_nan = maybe_nan || other.maybe_nan;
  if (numeric_empty()) {
    r.lo = other.lo;
    r.hi = other.hi;
  } else if (other.numeric_empty()) {
    r.lo = lo;
    r.hi = hi;
  } else {
    r.lo = std::min(lo, other.lo);
    r.hi = std::max(hi, other.hi);
  }
  return r;
}

Interval iv_neg(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  Interval r = Interval::range(-a.hi, -a.lo);  // negation is exact
  r.maybe_nan = a.maybe_nan;
  return r;
}

Interval iv_abs(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  Interval r;
  if (a.lo >= 0) {
    r = Interval::range(a.lo, a.hi);
  } else if (a.hi <= 0) {
    r = Interval::range(-a.hi, -a.lo);
  } else {
    r = Interval::range(0.0, std::max(-a.lo, a.hi));
  }
  r.maybe_nan = a.maybe_nan;  // |x| is exact
  return r;
}

Interval iv_floor(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  Interval r = Interval::range(std::floor(a.lo), std::floor(a.hi));  // exact, monotone
  r.maybe_nan = a.maybe_nan;
  return r;
}

Interval iv_ceil(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  Interval r = Interval::range(std::ceil(a.lo), std::ceil(a.hi));
  r.maybe_nan = a.maybe_nan;
  return r;
}

Interval iv_sqrt(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  if (a.hi < 0) return Interval::nan_only();
  const bool nan = a.maybe_nan || a.lo < 0;
  if (degenerate(a)) return exact(std::sqrt(a.lo), nan);
  Interval r = Interval::range(std::sqrt(std::max(a.lo, 0.0)), std::sqrt(a.hi));
  r.maybe_nan = nan;
  widen(r);  // sqrt is correctly rounded; one ulp is ample
  return r;
}

Interval iv_sin(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  const bool nan = a.maybe_nan || contains_inf(a);
  if (degenerate(a)) return exact(std::sin(a.lo), nan);
  Interval r = Interval::range(-1.0, 1.0);
  r.maybe_nan = nan;
  return r;
}

Interval iv_cos(const Interval& a) noexcept {
  if (a.numeric_empty()) return a;
  const bool nan = a.maybe_nan || contains_inf(a);
  if (degenerate(a)) return exact(std::cos(a.lo), nan);
  Interval r = Interval::range(-1.0, 1.0);
  r.maybe_nan = nan;
  return r;
}

Interval iv_sign(const Interval& a) noexcept {
  // The evaluator maps NaN to 0 (x<0 and x>0 both false), so sign never
  // yields NaN and a possible-NaN input adds 0 to the range.
  if (a.numeric_empty()) return Interval::point(0.0);
  Interval r = Interval::range(sgn(a.lo), sgn(a.hi));  // sgn is monotone
  if (a.maybe_nan) {
    r.lo = std::min(r.lo, 0.0);
    r.hi = std::max(r.hi, 0.0);
  }
  return r;
}

Interval iv_step(const Interval& a) noexcept {
  // NaN input steps to 1 (NaN < 0 is false); step never yields NaN.
  if (a.numeric_empty()) return Interval::point(1.0);
  Interval r = Interval::range(a.lo < 0 ? 0.0 : 1.0, a.hi < 0 ? 0.0 : 1.0);
  if (a.maybe_nan) r.hi = 1.0;
  return r;
}

Interval iv_add(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty() || b.numeric_empty()) return Interval::nan_only();
  bool nan = a.maybe_nan || b.maybe_nan;
  if ((a.hi == kInf && b.lo == -kInf) || (a.lo == -kInf && b.hi == kInf)) nan = true;
  if (degenerate(a) && degenerate(b)) return exact(a.lo + b.lo, nan);
  const double lo_c = a.lo + b.lo;
  const double hi_c = a.hi + b.hi;
  const double lo = std::isnan(lo_c) ? -kInf : (sum_exact(a.lo, b.lo, lo_c) ? lo_c : down(lo_c));
  const double hi = std::isnan(hi_c) ? kInf : (sum_exact(a.hi, b.hi, hi_c) ? hi_c : up(hi_c));
  Interval r = Interval::range(lo, hi);
  r.maybe_nan = nan;
  return r;
}

Interval iv_sub(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty() || b.numeric_empty()) return Interval::nan_only();
  bool nan = a.maybe_nan || b.maybe_nan;
  if ((a.hi == kInf && b.hi == kInf) || (a.lo == -kInf && b.lo == -kInf)) nan = true;
  if (degenerate(a) && degenerate(b)) return exact(a.lo - b.lo, nan);
  const double lo_c = a.lo - b.hi;
  const double hi_c = a.hi - b.lo;
  const double lo = std::isnan(lo_c) ? -kInf : (diff_exact(a.lo, b.hi, lo_c) ? lo_c : down(lo_c));
  const double hi = std::isnan(hi_c) ? kInf : (diff_exact(a.hi, b.lo, hi_c) ? hi_c : up(hi_c));
  Interval r = Interval::range(lo, hi);
  r.maybe_nan = nan;
  return r;
}

Interval iv_mul(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty() || b.numeric_empty()) return Interval::nan_only();
  bool nan = a.maybe_nan || b.maybe_nan;
  // 0 * inf can pair an interior zero with an endpoint infinity, which no
  // corner product exposes.
  if ((contains_zero(a) && contains_inf(b)) || (contains_zero(b) && contains_inf(a))) nan = true;
  if (degenerate(a) && degenerate(b)) return exact(a.lo * b.lo, nan);
  double cand[5];
  bool is_exact[5];
  int n = 0;
  const double xs[4] = {a.lo, a.lo, a.hi, a.hi};
  const double ys[4] = {b.lo, b.hi, b.lo, b.hi};
  for (int i = 0; i < 4; ++i, ++n) {
    cand[n] = xs[i] * ys[i];
    is_exact[n] = prod_exact(xs[i], ys[i], cand[n]);
  }
  // A zero in one operand times a *finite* value of the other yields 0, but
  // when that operand's endpoints are infinite every corner product is NaN
  // (e.g. [0,0] * [-inf,+inf]) and the interior zero would be lost.
  if ((contains_zero(a) && contains_finite(b)) || (contains_zero(b) && contains_finite(a))) {
    cand[n] = 0.0;
    is_exact[n++] = true;
  }
  return from_candidates(cand, is_exact, n, nan);
}

Interval iv_div(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty() || b.numeric_empty()) return Interval::nan_only();
  bool nan = a.maybe_nan || b.maybe_nan;
  if (degenerate(a) && degenerate(b)) return exact(a.lo / b.lo, nan);
  if (contains_zero(b)) {
    // x / ±0 jumps to ±inf and 0/0 is NaN; near-zero divisors reach any
    // magnitude. Give up with full range.
    Interval r = Interval::top();
    r.maybe_nan = true;
    return r;
  }
  if (contains_inf(a) && contains_inf(b)) nan = true;  // inf / inf
  double cand[5];
  bool is_exact[5];
  int n = 0;
  const double xs[4] = {a.lo, a.lo, a.hi, a.hi};
  const double ys[4] = {b.lo, b.hi, b.lo, b.hi};
  for (int i = 0; i < 4; ++i, ++n) {
    cand[n] = xs[i] / ys[i];
    is_exact[n] = quot_exact(xs[i], ys[i], cand[n]);
  }
  // finite / ±inf yields ±0; with infinite endpoints on both sides the
  // corners are all NaN (e.g. [-inf,+inf] / [+inf,+inf]) and the interior
  // zero would be lost.
  if (contains_finite(a) && contains_inf(b)) {
    cand[n] = 0.0;
    is_exact[n++] = true;
  }
  return from_candidates(cand, is_exact, n, nan);
}

Interval iv_mod(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty() || b.numeric_empty()) return Interval::nan_only();
  bool nan = a.maybe_nan || b.maybe_nan || contains_inf(a) || contains_zero(b);
  if (degenerate(a) && degenerate(b)) return exact(std::fmod(a.lo, b.lo), nan);
  // fmod(x, y): sign follows x, |result| <= min(|x|, |y|); exact in IEEE,
  // so the clipped endpoints need no widening.
  const double m = std::max(std::abs(b.lo), std::abs(b.hi));
  Interval r = Interval::range(a.lo >= 0 ? 0.0 : std::max(a.lo, -m),
                               a.hi <= 0 ? 0.0 : std::min(a.hi, m));
  r.maybe_nan = nan;
  return r;
}

Interval iv_pow(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty() || b.numeric_empty()) return Interval::nan_only();
  const bool nan = a.maybe_nan || b.maybe_nan;
  if (degenerate(a) && degenerate(b)) return exact(std::pow(a.lo, b.lo), nan);
  if (a.lo < 0) {
    // Negative bases alternate sign with integer exponents and are NaN for
    // fractional ones; no useful interval.
    Interval r = Interval::top();
    r.maybe_nan = true;
    return r;
  }
  // Non-negative base: pow is monotone in each argument separately, so the
  // extremes sit at box corners — plus 1, attained when the exponent crosses
  // 0 or the base crosses 1.
  // pow is not correctly rounded; every corner stays 1-ulp-widened.
  double cand[5];
  bool is_exact[5] = {false, false, false, false, false};
  int n = 0;
  cand[n++] = std::pow(a.lo, b.lo);
  cand[n++] = std::pow(a.lo, b.hi);
  cand[n++] = std::pow(a.hi, b.lo);
  cand[n++] = std::pow(a.hi, b.hi);
  if (contains_zero(b) || (a.lo <= 1.0 && 1.0 <= a.hi)) {
    cand[n] = 1.0;
    is_exact[n++] = true;
  }
  return from_candidates(cand, is_exact, n, nan);
}

Interval iv_min2(const Interval& a, const Interval& b) noexcept {
  // Mirrors std::min(a, b) in the evaluator's fold: a NaN accumulator (left
  // operand) sticks, a NaN element (right operand) is skipped.
  if (a.numeric_empty()) return Interval::nan_only();
  if (b.numeric_empty()) return a;
  Interval r = Interval::range(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
  if (b.maybe_nan) r.hi = std::max(r.hi, a.hi);  // b skipped -> result is a
  r.maybe_nan = a.maybe_nan;
  return r;
}

Interval iv_max2(const Interval& a, const Interval& b) noexcept {
  if (a.numeric_empty()) return Interval::nan_only();
  if (b.numeric_empty()) return a;
  Interval r = Interval::range(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
  if (b.maybe_nan) r.lo = std::min(r.lo, a.lo);
  r.maybe_nan = a.maybe_nan;
  return r;
}

Interval eval_interval(const ExprProgram& prog, const VarBounds& vars) {
  using Op = ExprProgram::Op;
  if (prog.empty()) throw std::logic_error("abstract evaluation of an empty ExprProgram");
  std::vector<Interval> stack;
  stack.reserve(prog.max_stack());
  const auto pop = [&stack]() {
    Interval v = stack.back();
    stack.pop_back();
    return v;
  };
  for (const ExprProgram::Insn& insn : prog.code()) {
    switch (insn.op) {
      case Op::kPushConst: stack.push_back(Interval::point(insn.k)); break;
      case Op::kLoadVar: stack.push_back(vars.bounds(insn.var)); break;
      case Op::kNeg: stack.back() = iv_neg(stack.back()); break;
      case Op::kAbs: stack.back() = iv_abs(stack.back()); break;
      case Op::kFloor: stack.back() = iv_floor(stack.back()); break;
      case Op::kCeil: stack.back() = iv_ceil(stack.back()); break;
      case Op::kSqrt: stack.back() = iv_sqrt(stack.back()); break;
      case Op::kSin: stack.back() = iv_sin(stack.back()); break;
      case Op::kCos: stack.back() = iv_cos(stack.back()); break;
      case Op::kSign: stack.back() = iv_sign(stack.back()); break;
      case Op::kAdd: {
        const Interval b = pop();
        stack.back() = iv_add(stack.back(), b);
        break;
      }
      case Op::kSub: {
        const Interval b = pop();
        stack.back() = iv_sub(stack.back(), b);
        break;
      }
      case Op::kMul: {
        const Interval b = pop();
        stack.back() = iv_mul(stack.back(), b);
        break;
      }
      case Op::kDiv: {
        const Interval b = pop();
        stack.back() = iv_div(stack.back(), b);
        break;
      }
      case Op::kMod: {
        const Interval b = pop();
        stack.back() = iv_mod(stack.back(), b);
        break;
      }
      case Op::kPow: {
        const Interval b = pop();
        stack.back() = iv_pow(stack.back(), b);
        break;
      }
      case Op::kMin: {
        const std::size_t base = stack.size() - insn.argc;
        Interval m = stack[base];
        for (std::size_t i = 1; i < insn.argc; ++i) m = iv_min2(m, stack[base + i]);
        stack.resize(base);
        stack.push_back(m);
        break;
      }
      case Op::kMax: {
        const std::size_t base = stack.size() - insn.argc;
        Interval m = stack[base];
        for (std::size_t i = 1; i < insn.argc; ++i) m = iv_max2(m, stack[base + i]);
        stack.resize(base);
        stack.push_back(m);
        break;
      }
      case Op::kClamp: {
        const Interval hi = pop();
        const Interval lo = pop();
        stack.back() = iv_min2(iv_max2(stack.back(), lo), hi);
        break;
      }
      case Op::kStep: stack.back() = iv_step(stack.back()); break;
    }
  }
  return stack.back();
}

}  // namespace evps
