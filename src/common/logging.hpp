// Minimal leveled logger.
//
// The experiment drivers run millions of simulated messages, so logging is
// compiled around a cheap runtime level check and disabled (Warn) by default.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace evps {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  logger.write(level, component, os.str());
}
}  // namespace detail

#define EVPS_LOG(level, component, ...) ::evps::detail::log(level, component, __VA_ARGS__)
#define EVPS_TRACE(component, ...) EVPS_LOG(::evps::LogLevel::kTrace, component, __VA_ARGS__)
#define EVPS_DEBUG(component, ...) EVPS_LOG(::evps::LogLevel::kDebug, component, __VA_ARGS__)
#define EVPS_INFO(component, ...) EVPS_LOG(::evps::LogLevel::kInfo, component, __VA_ARGS__)
#define EVPS_WARN(component, ...) EVPS_LOG(::evps::LogLevel::kWarn, component, __VA_ARGS__)
#define EVPS_ERROR(component, ...) EVPS_LOG(::evps::LogLevel::kError, component, __VA_ARGS__)

}  // namespace evps
