#include "stats/confidence.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "stats/online_stats.hpp"

namespace evps {

double student_t_975(std::size_t df) noexcept {
  // Two-sided 95 % critical values; exact through df 30, then conservative
  // steps (a step table can only widen an interval, never narrow it).
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return kTable[0];
  if (df <= kTable.size()) return kTable[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

ConfidenceInterval batch_means_ci(std::span<const double> series, std::size_t batch_count) {
  ConfidenceInterval ci;
  std::vector<double> finite;
  finite.reserve(series.size());
  for (const double x : series) {
    if (std::isfinite(x)) {
      finite.push_back(x);
    } else {
      ++ci.rejected;
    }
  }
  ci.samples = finite.size();
  if (finite.empty()) return ci;

  OnlineStats overall;
  for (const double x : finite) overall.add(x);
  ci.mean = overall.mean();
  if (finite.size() < 2) return ci;  // variance undefined: CI suppressed

  const std::size_t n = finite.size();
  std::size_t b = batch_count == 0 ? std::min<std::size_t>(n, 20) : batch_count;
  b = std::clamp<std::size_t>(b, 2, n);

  // Near-equal contiguous batches: the first n % b batches take one extra
  // sample, so no observation is discarded and the grand mean is exact.
  const std::size_t base = n / b;
  const std::size_t extra = n % b;
  std::vector<double> batch_means;
  batch_means.reserve(b);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < b; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    OnlineStats batch;
    for (std::size_t j = 0; j < len; ++j) batch.add(finite[pos + j]);
    pos += len;
    batch_means.push_back(batch.mean());
  }

  OnlineStats across;
  for (const double m : batch_means) across.add(m);
  ci.batches = b;
  ci.defined = true;
  ci.half_width = student_t_975(b - 1) * across.stddev() / std::sqrt(static_cast<double>(b));
  return ci;
}

}  // namespace evps
