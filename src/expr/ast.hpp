// Expression AST for evolving-subscription predicate functions.
//
// The paper replaces the constant operand of a content-based predicate with a
// function over *evolution variables* (Section III-B):
//
//     SubEv : { (a1 op1 fun1(v_a, v_b, ...)), ... }
//
// This module provides the function representation: an immutable expression
// tree over doubles, with named variables resolved through an Env at
// evaluation time. Trees are shared (shared_ptr<const Expr>) because the
// same subscription expression is held simultaneously by routing tables on
// several brokers and by the evolving engines.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace evps {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Variable resolution interface used during evaluation.
class Env {
 public:
  virtual ~Env() = default;
  /// Returns the current value of `name`, or throws UnboundVariableError.
  [[nodiscard]] virtual double lookup(std::string_view name) const = 0;
  /// True iff `name` is bound.
  [[nodiscard]] virtual bool has(std::string_view name) const = 0;
};

/// Thrown when evaluation references a variable the Env does not bind.
class UnboundVariableError : public std::runtime_error {
 public:
  explicit UnboundVariableError(std::string_view name)
      : std::runtime_error("unbound evolution variable: " + std::string(name)) {}
};

/// Simple map-backed Env for tests and local evaluation.
class MapEnv final : public Env {
 public:
  MapEnv() = default;
  MapEnv(std::initializer_list<std::pair<std::string, double>> init) {
    for (auto& [k, v] : init) set(k, v);
  }

  MapEnv& set(std::string name, double value) {
    bindings_.insert_or_assign(std::move(name), value);
    return *this;
  }

  [[nodiscard]] double lookup(std::string_view name) const override;
  [[nodiscard]] bool has(std::string_view name) const override;

 private:
  std::map<std::string, double, std::less<>> bindings_;
};

enum class BinaryOp : std::uint8_t { kAdd, kSub, kMul, kDiv, kMod, kPow };
enum class UnaryOp : std::uint8_t { kNeg, kAbs, kFloor, kCeil, kSqrt, kSin, kCos, kSign };
/// N-ary builtin functions. kMin/kMax accept >=1 args, kClamp exactly 3,
/// kStep exactly 1 (0 for x<0, 1 otherwise).
enum class CallFn : std::uint8_t { kMin, kMax, kClamp, kStep };

[[nodiscard]] std::string_view to_string(BinaryOp op) noexcept;
[[nodiscard]] std::string_view to_string(UnaryOp op) noexcept;
[[nodiscard]] std::string_view to_string(CallFn fn) noexcept;

/// Immutable expression node.
class Expr {
 public:
  struct Const { double value; };
  struct Var { std::string name; };
  struct Unary { UnaryOp op; ExprPtr operand; };
  struct Binary { BinaryOp op; ExprPtr lhs; ExprPtr rhs; };
  struct Call { CallFn fn; std::vector<ExprPtr> args; };
  using Node = std::variant<Const, Var, Unary, Binary, Call>;

  // Factory functions — the only way to create expressions.
  [[nodiscard]] static ExprPtr constant(double value);
  [[nodiscard]] static ExprPtr variable(std::string name);
  [[nodiscard]] static ExprPtr unary(UnaryOp op, ExprPtr operand);
  [[nodiscard]] static ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  [[nodiscard]] static ExprPtr call(CallFn fn, std::vector<ExprPtr> args);

  // Convenience arithmetic factories.
  [[nodiscard]] static ExprPtr add(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kAdd, std::move(a), std::move(b)); }
  [[nodiscard]] static ExprPtr sub(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kSub, std::move(a), std::move(b)); }
  [[nodiscard]] static ExprPtr mul(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kMul, std::move(a), std::move(b)); }
  [[nodiscard]] static ExprPtr div(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kDiv, std::move(a), std::move(b)); }

  /// Evaluate against an environment. Division by zero yields +/-inf like
  /// IEEE; mod by zero yields NaN. Unbound variables throw.
  [[nodiscard]] double eval(const Env& env) const;

  /// Collect the names of all variables referenced by this expression.
  void collect_variables(std::set<std::string>& out) const;
  [[nodiscard]] std::set<std::string> variables() const {
    std::set<std::string> out;
    collect_variables(out);
    return out;
  }

  /// True iff the expression references no variables.
  [[nodiscard]] bool is_constant() const noexcept { return const_; }

  /// Structural equality.
  [[nodiscard]] bool equals(const Expr& other) const noexcept;

  /// Parseable textual form (round-trips through parse_expr).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const Node& node() const noexcept { return node_; }

 private:
  explicit Expr(Node node);
  Node node_;
  bool const_ = false;
};

}  // namespace evps
