#include "matching/counting_matcher.hpp"

#include <algorithm>

#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"

namespace evps {

void CountingMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  require_static(preds);
  if (slot_of_.contains(id)) throw std::invalid_argument("duplicate subscription id " + id.str());

  // Deduplicate identical predicates: conjunctively redundant, and indexing
  // copies would leave stale entries on remove (each index list stores one
  // occurrence per unique (attr, op, operand) triple per subscription).
  std::vector<Predicate> unique;
  unique.reserve(preds.size());
  for (const auto& p : preds) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) unique.push_back(p);
  }

  SubSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<SubSlot>(slots_.size());
    slots_.emplace_back();
    stamp_.push_back(0);
    counts_.push_back(0);
  }
  slot_of_.emplace(id, slot);
  slots_[slot].id = id;
  slots_[slot].preds = std::move(unique);
  for (const auto& p : slots_[slot].preds) index_predicate(slot, p);
  predicate_count_ += slots_[slot].preds.size();
}

bool CountingMatcher::remove(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  const SubSlot slot = it->second;
  auto& state = slots_[slot];
  for (const auto& p : state.preds) unindex_predicate(slot, p);
  predicate_count_ -= state.preds.size();
  state.id = SubscriptionId::invalid();
  state.preds.clear();
  state.preds.shrink_to_fit();
  free_slots_.push_back(slot);
  slot_of_.erase(it);
  return true;
}

void CountingMatcher::index_predicate(SubSlot slot, const Predicate& p) {
  const AttrId attr = AttributeTable::instance().intern(p.attribute());
  if (attr >= index_.size()) index_.resize(attr + 1);
  auto& idx = index_[attr];
  const Value& c = p.constant();
  if (p.op() == RelOp::kEq) {
    if (c.is_string()) {
      idx.eq_str[c.as_string()].push_back(slot);
    } else {
      idx.eq_num[*c.numeric()].push_back(slot);
    }
    return;
  }
  if (p.op() == RelOp::kNe) {
    idx.ne.emplace_back(c, slot);
    return;
  }
  if (c.is_string()) {
    idx.misc.emplace_back(p, slot);
    return;
  }
  const double bound = *c.numeric();
  auto insert_sorted = [&](std::vector<BoundEntry>& list) {
    const BoundEntry entry{bound, slot};
    list.insert(std::upper_bound(list.begin(), list.end(), entry), entry);
  };
  switch (p.op()) {
    case RelOp::kLt: insert_sorted(idx.lt); break;
    case RelOp::kLe: insert_sorted(idx.le); break;
    case RelOp::kGt: insert_sorted(idx.gt); break;
    case RelOp::kGe: insert_sorted(idx.ge); break;
    default: break;  // kEq/kNe handled above
  }
}

void CountingMatcher::unindex_predicate(SubSlot slot, const Predicate& p) {
  AttributeIndex* idx_ptr = find_index(AttributeTable::instance().find(p.attribute()));
  if (idx_ptr == nullptr) return;
  auto& idx = *idx_ptr;
  const Value& c = p.constant();

  auto erase_from_list = [&](auto& map, const auto& key) {
    const auto it = map.find(key);
    if (it == map.end()) return;
    auto& v = it->second;
    const auto pos = std::find(v.begin(), v.end(), slot);
    if (pos != v.end()) v.erase(pos);
    if (v.empty()) map.erase(it);
  };

  if (p.op() == RelOp::kEq) {
    if (c.is_string()) {
      erase_from_list(idx.eq_str, c.as_string());
    } else {
      erase_from_list(idx.eq_num, *c.numeric());
    }
  } else if (p.op() == RelOp::kNe) {
    const auto pos = std::find_if(idx.ne.begin(), idx.ne.end(),
                                  [&](const auto& e) { return e.second == slot && e.first == c; });
    if (pos != idx.ne.end()) idx.ne.erase(pos);
  } else if (c.is_string()) {
    const auto pos = std::find_if(idx.misc.begin(), idx.misc.end(),
                                  [&](const auto& e) { return e.second == slot && e.first == p; });
    if (pos != idx.misc.end()) idx.misc.erase(pos);
  } else {
    const double bound = *c.numeric();
    auto erase_sorted = [&](std::vector<BoundEntry>& list) {
      const BoundEntry entry{bound, slot};
      const auto range = std::equal_range(list.begin(), list.end(), entry);
      if (range.first != range.second) list.erase(range.first);
    };
    switch (p.op()) {
      case RelOp::kLt: erase_sorted(idx.lt); break;
      case RelOp::kLe: erase_sorted(idx.le); break;
      case RelOp::kGt: erase_sorted(idx.gt); break;
      case RelOp::kGe: erase_sorted(idx.ge); break;
      default: break;
    }
  }
}

void CountingMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (slot_of_.empty() || pub.empty()) return;

  // Open a new counting epoch; stale counters from previous matches are
  // invalidated by their stamp, never cleared. On the (rare) epoch wrap every
  // stamp is reset so no old stamp can alias the new epoch.
  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  touched_.clear();

  const std::uint32_t epoch = epoch_;
  auto* const stamp = stamp_.data();
  auto* const counts = counts_.data();
  const auto hit = [&](SubSlot slot) {
    if (stamp[slot] != epoch) {
      stamp[slot] = epoch;
      counts[slot] = 1;
      touched_.push_back(slot);
    } else {
      ++counts[slot];
    }
  };

  const auto& ids = pub.attribute_ids();
  const auto& attrs = pub.attributes();
  for (std::size_t a = 0; a < ids.size(); ++a) {
    if (ids[a] >= index_.size()) continue;
    const auto& idx = index_[ids[a]];
    const Value& value = attrs[a].second;

    if (const auto num = value.numeric()) {
      const double v = *num;
      // pub < bound: all bounds strictly greater than v.
      {
        auto pos = std::upper_bound(idx.lt.begin(), idx.lt.end(), v,
                                    [](double x, const BoundEntry& e) { return x < e.bound; });
        for (; pos != idx.lt.end(); ++pos) hit(pos->slot);
      }
      // pub <= bound: all bounds >= v.
      {
        auto pos = std::lower_bound(idx.le.begin(), idx.le.end(), v,
                                    [](const BoundEntry& e, double x) { return e.bound < x; });
        for (; pos != idx.le.end(); ++pos) hit(pos->slot);
      }
      // pub > bound: all bounds strictly less than v.
      {
        const auto end = std::lower_bound(idx.gt.begin(), idx.gt.end(), v,
                                          [](const BoundEntry& e, double x) { return e.bound < x; });
        for (auto pos = idx.gt.begin(); pos != end; ++pos) hit(pos->slot);
      }
      // pub >= bound: all bounds <= v.
      {
        const auto end = std::upper_bound(idx.ge.begin(), idx.ge.end(), v,
                                          [](double x, const BoundEntry& e) { return x < e.bound; });
        for (auto pos = idx.ge.begin(); pos != end; ++pos) hit(pos->slot);
      }
      if (const auto eq = idx.eq_num.find(v); eq != idx.eq_num.end()) {
        for (const auto slot : eq->second) hit(slot);
      }
    } else {
      if (const auto eq = idx.eq_str.find(value.as_string()); eq != idx.eq_str.end()) {
        for (const auto slot : eq->second) hit(slot);
      }
    }
    for (const auto& [operand, slot] : idx.ne) {
      if (apply_rel_op(RelOp::kNe, value, operand)) hit(slot);
    }
    for (const auto& [pred, slot] : idx.misc) {
      if (pred.matches(value)) hit(slot);
    }
  }

  const std::size_t first_new = out.size();
  for (const auto slot : touched_) {
    const auto& state = slots_[slot];
    if (counts[slot] == state.preds.size()) out.push_back(state.id);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end());
}

MatcherPtr make_matcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kBruteForce: return std::make_unique<BruteForceMatcher>();
    case MatcherKind::kCounting: return std::make_unique<CountingMatcher>();
    case MatcherKind::kChurn: return std::make_unique<ChurnMatcher>();
  }
  throw std::invalid_argument("unknown matcher kind");
}

}  // namespace evps
