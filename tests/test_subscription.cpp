#include "message/subscription.hpp"

#include <gtest/gtest.h>

#include "expr/parser.hpp"

namespace evps {
namespace {

Subscription game_subscription() {
  // Section III-C: 6x4 rectangle moving with t.
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, parse_expr("-3 + t")});
  sub.add(Predicate{"x", RelOp::kLe, parse_expr("3 + t")});
  sub.add(Predicate{"y", RelOp::kGe, parse_expr("-2 + t")});
  sub.add(Predicate{"y", RelOp::kLe, parse_expr("2 + t")});
  return sub;
}

TEST(Subscription, EvolvingDetection) {
  Subscription sub = game_subscription();
  EXPECT_TRUE(sub.is_evolving());
  EXPECT_TRUE(sub.is_fully_evolving());
  sub.add(Predicate{"action", RelOp::kEq, Value{"pickup"}});
  EXPECT_TRUE(sub.is_evolving());
  EXPECT_FALSE(sub.is_fully_evolving());

  Subscription empty;
  EXPECT_FALSE(empty.is_evolving());
  EXPECT_FALSE(empty.is_fully_evolving());

  Subscription pure_static;
  pure_static.add(Predicate{"x", RelOp::kLt, Value{3}});
  EXPECT_FALSE(pure_static.is_evolving());
}

TEST(Subscription, PredicateSplit) {
  Subscription sub = game_subscription();
  sub.add(Predicate{"action", RelOp::kEq, Value{"pickup"}});
  EXPECT_EQ(sub.static_predicates().size(), 1u);
  EXPECT_EQ(sub.evolving_predicates().size(), 4u);
}

TEST(Subscription, Variables) {
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, parse_expr("(-3 + t) * v")});
  sub.add(Predicate{"y", RelOp::kLe, parse_expr("2 + t")});
  const auto vars = sub.variables();
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars.contains("t"));
  EXPECT_TRUE(vars.contains("v"));
}

TEST(Subscription, MatchesConjunction) {
  const Subscription sub = game_subscription();
  const MapEnv at1{{"t", 1.0}};
  const MapEnv at0{{"t", 0.0}};
  const Publication pickup{{"x", Value{4}}, {"y", Value{3}}};
  // The paper's example: matches at t=1, not at t=0.
  EXPECT_TRUE(sub.matches(pickup, at1));
  EXPECT_FALSE(sub.matches(pickup, at0));
}

TEST(Subscription, MissingAttributeFailsMatch) {
  const Subscription sub = game_subscription();
  const MapEnv at1{{"t", 1.0}};
  const Publication no_y{{"x", Value{0}}};
  EXPECT_FALSE(sub.matches(no_y, at1));
}

TEST(Subscription, EmptySubscriptionNeverMatches) {
  const Subscription sub;
  const MapEnv env;
  EXPECT_FALSE(sub.matches(Publication{{"x", Value{1}}}, env));
}

TEST(Subscription, StaticFastPath) {
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, Value{0}});
  sub.add(Predicate{"x", RelOp::kLe, Value{10}});
  EXPECT_TRUE(sub.matches(Publication{{"x", Value{5}}}));
  EXPECT_FALSE(sub.matches(Publication{{"x", Value{11}}}));
}

TEST(Subscription, MaterializePreservesMetadata) {
  Subscription sub = game_subscription();
  sub.set_id(SubscriptionId{42});
  sub.set_subscriber(ClientId{3});
  sub.set_mei(Duration::seconds(2));
  sub.set_tt(Duration::seconds(0.5));
  sub.set_validity(Duration::seconds(10));
  sub.set_epoch(SimTime::from_seconds(100));

  const MapEnv at2{{"t", 2.0}};
  const Subscription version = sub.materialize(at2);
  EXPECT_FALSE(version.is_evolving());
  EXPECT_EQ(version.id(), SubscriptionId{42});
  EXPECT_EQ(version.subscriber(), ClientId{3});
  EXPECT_EQ(version.mei(), Duration::seconds(2));
  EXPECT_EQ(version.tt(), Duration::seconds(0.5));
  EXPECT_EQ(version.validity(), Duration::seconds(10));
  EXPECT_EQ(version.epoch(), SimTime::from_seconds(100));
  // x in [-1, 5], y in [0, 4].
  EXPECT_TRUE(version.matches(Publication{{"x", Value{5}}, {"y", Value{0}}}));
  EXPECT_FALSE(version.matches(Publication{{"x", Value{6}}, {"y", Value{0}}}));
}

TEST(Subscription, ScopeBindsElapsedTime) {
  Subscription sub = game_subscription();
  sub.set_epoch(SimTime::from_seconds(10));
  const EvalScope scope = sub.scope(nullptr, SimTime::from_seconds(11));
  EXPECT_DOUBLE_EQ(scope.lookup("t"), 1.0);
}

TEST(Subscription, DefaultDurations) {
  const Subscription sub;
  EXPECT_EQ(sub.mei(), Duration::seconds(1.0));
  EXPECT_EQ(sub.tt(), Duration::seconds(1.0));
  EXPECT_EQ(sub.validity(), Duration::zero());
}

TEST(Subscription, ToStringContainsPredicates) {
  Subscription sub;
  sub.set_id(SubscriptionId{1});
  sub.add(Predicate{"x", RelOp::kLt, Value{3}});
  EXPECT_NE(sub.to_string().find("x < 3"), std::string::npos);
}

}  // namespace
}  // namespace evps
