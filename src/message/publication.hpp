// Publications: sets of attribute-value pairs (Section III-A).
#pragma once

#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/attribute_table.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "common/value.hpp"

namespace evps {

class Publication {
 public:
  using Attribute = std::pair<std::string, Value>;

  Publication() = default;
  Publication(std::initializer_list<Attribute> attrs) {
    for (auto& [name, value] : attrs) set(name, value);
  }

  /// Insert or replace an attribute. Attributes are kept sorted by name so
  /// publications have a canonical form.
  Publication& set(std::string_view name, Value value);

  /// Value of `name`, or nullptr if absent.
  [[nodiscard]] const Value* get(std::string_view name) const noexcept;

  /// Value of the attribute with interned id `id`, or nullptr if absent.
  /// Publications are small, so a linear scan over the cached ids beats a
  /// binary search on names (and never compares strings).
  [[nodiscard]] const Value* get(AttrId id) const noexcept {
    for (std::size_t i = 0; i < attr_ids_.size(); ++i) {
      if (attr_ids_[i] == id) return &attrs_[i].second;
    }
    return nullptr;
  }

  [[nodiscard]] bool has(std::string_view name) const noexcept { return get(name) != nullptr; }

  [[nodiscard]] const std::vector<Attribute>& attributes() const noexcept { return attrs_; }

  /// Interned ids of the attributes, parallel to attributes(). Cached when
  /// the publication is built so matchers never hash attribute names.
  [[nodiscard]] const std::vector<AttrId>& attribute_ids() const noexcept { return attr_ids_; }
  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return attrs_.empty(); }

  /// Publisher-assigned sequence number and origin; set by the client layer.
  [[nodiscard]] MessageId id() const noexcept { return id_; }
  void set_id(MessageId id) noexcept { id_ = id; }
  [[nodiscard]] ClientId publisher() const noexcept { return publisher_; }
  void set_publisher(ClientId c) noexcept { publisher_ = c; }

  /// Time the publication entered the system at its entry-point broker; used
  /// by the ground-truth oracle and by snapshot-consistency mode.
  [[nodiscard]] SimTime entry_time() const noexcept { return entry_time_; }
  void set_entry_time(SimTime t) noexcept { entry_time_ = t; }

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Publication& other) const noexcept {
    return attrs_ == other.attrs_;
  }

 private:
  std::vector<Attribute> attrs_;
  std::vector<AttrId> attr_ids_;  // parallel to attrs_
  MessageId id_{};
  ClientId publisher_{};
  SimTime entry_time_{};
};

/// Publications in flight are immutable and shared: forwarding one event to
/// K neighbours copies a refcount, never the attribute vectors. A broker
/// that must mutate (entry-time stamping) clones first (copy-on-write).
using PublicationPtr = std::shared_ptr<const Publication>;

}  // namespace evps
