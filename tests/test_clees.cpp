// Cached Lazy Evaluation Evolving Subscriptions behaviour (Sections IV-C, V-C).
#include <gtest/gtest.h>

#include "evolving/clees_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct CleesTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  // matcher_threads pinned: the exact cache-hit/miss counts below assume the
  // K=1 probe order (sharded early exit can probe — and cache — parts the
  // sequential order skips; delivery is unchanged, counters are not).
  EngineConfig cfg{.kind = EngineKind::kClees, .matcher_threads = 1};
  CleesEngine engine{cfg};
};

TEST_F(CleesTest, FirstPublicationTriggersLazyEvaluation) {
  engine.add(make_sub(1, "[tt=1] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1));
  EXPECT_EQ(match(engine, host, parse_publication("x = 2")).size(), 1u);
  EXPECT_EQ(engine.costs().cache_misses, 1u);
  EXPECT_EQ(engine.costs().cache_hits, 0u);
}

TEST_F(CleesTest, CachedVersionReusedWithinTt) {
  // Paper Figure 2(b): pubs at 1s, 1.5s, 3s with TT=1s -> lazy evaluation at
  // 1s and 3s, cache hit at 1.5s.
  engine.add(make_sub(1, "[tt=1] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1));
  (void)match(engine, host, parse_publication("x = 0"));
  sim.run_until(sec(1.5));
  (void)match(engine, host, parse_publication("x = 0"));
  sim.run_until(sec(3));
  (void)match(engine, host, parse_publication("x = 0"));
  EXPECT_EQ(engine.costs().cache_misses, 2u);
  EXPECT_EQ(engine.costs().cache_hits, 1u);
  EXPECT_EQ(engine.costs().lazy_evaluations, 2u);
}

TEST_F(CleesTest, CacheStalenessWithinTt) {
  engine.add(make_sub(1, "[tt=1] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1));
  // Materialise at t=1: version x <= 2.
  EXPECT_EQ(match(engine, host, parse_publication("x = 2")).size(), 1u);
  sim.run_until(sec(1.5));
  // The exact bound would now be 3, but the cached version says 2.
  EXPECT_TRUE(match(engine, host, parse_publication("x = 3")).empty());
  sim.run_until(sec(2.1));  // cache expired; fresh bound 4.2
  EXPECT_EQ(match(engine, host, parse_publication("x = 3")).size(), 1u);
}

TEST_F(CleesTest, CacheExpiryDependsOnPublicationsNotTimers) {
  engine.add(make_sub(1, "[tt=1] x <= 2 * t"), NodeId{1}, host);
  EXPECT_TRUE(sim.empty());  // no timers, unlike VES
  sim.run_until(sec(50));
  // First probe after a long quiet period evaluates fresh.
  EXPECT_EQ(match(engine, host, parse_publication("x = 99")).size(), 1u);
  EXPECT_EQ(engine.costs().cache_misses, 1u);
}

TEST_F(CleesTest, TinyTtBehavesLikeLees) {
  engine.add(make_sub(1, "[tt=0.000001] x <= 2 * t"), NodeId{1}, host);
  for (double t = 0.5; t < 3.0; t += 0.5) {
    sim.run_until(sec(t));
    const bool expect_match = 2.0 <= 2.0 * t;
    EXPECT_EQ(!match(engine, host, parse_publication("x = 2")).empty(), expect_match) << t;
  }
  EXPECT_EQ(engine.costs().cache_hits, 0u);
}

TEST_F(CleesTest, SplitSubscriptionIntersectsBothParts) {
  engine.add(make_sub(1, "[tt=1] symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host);
  EXPECT_EQ(engine.storage_size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'MSFT'; price = 5")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 5")).size(), 1u);
  // M1 miss short-circuits before any cache interaction.
  EXPECT_EQ(engine.costs().cache_misses + engine.costs().cache_hits, 1u);
}

TEST_F(CleesTest, EarlyExitPerDestination) {
  engine.add(make_sub(1, "[tt=1] x >= t"), NodeId{7}, host);
  engine.add(make_sub(2, "[tt=1] x >= t"), NodeId{7}, host);
  const auto dests = match(engine, host, parse_publication("x = 5"));
  EXPECT_EQ(dests, std::vector<NodeId>{NodeId{7}});
  EXPECT_EQ(engine.costs().cache_misses, 1u);  // second sub never probed
}

TEST_F(CleesTest, CacheIsPerSubscription) {
  engine.add(make_sub(1, "[tt=1] x <= 2 * t"), NodeId{1}, host);
  engine.add(make_sub(2, "[tt=1] y <= 3 * t"), NodeId{2}, host);
  sim.run_until(sec(1));
  (void)match(engine, host, parse_publication("x = 0; y = 0"));
  EXPECT_EQ(engine.costs().cache_misses, 2u);
  (void)match(engine, host, parse_publication("x = 0; y = 0"));
  EXPECT_EQ(engine.costs().cache_hits, 2u);
}

TEST_F(CleesTest, RemoveDropsStorageAndCache) {
  engine.add(make_sub(1, "[tt=1] x <= 2 * t"), NodeId{1}, host);
  (void)match(engine, host, parse_publication("x = 0"));
  EXPECT_TRUE(engine.remove(SubscriptionId{1}, host));
  EXPECT_EQ(engine.storage_size(), 0u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 0")).empty());
}

TEST_F(CleesTest, StaticSubscriptionPassesThrough) {
  engine.add(make_sub(1, "x > 0"), NodeId{1}, host);
  EXPECT_EQ(engine.storage_size(), 0u);
  EXPECT_EQ(match(engine, host, parse_publication("x = 1")).size(), 1u);
  EXPECT_EQ(engine.costs().cache_misses, 0u);
}

TEST_F(CleesTest, SnapshotBypassesCache) {
  host.set_variable("v", 0.1);
  engine.add(make_sub(1, "[tt=100] x <= 10 * v"), NodeId{1}, host);
  // Populate the cache with the local value (x <= 1).
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
  EXPECT_EQ(engine.costs().cache_misses, 1u);
  // A snapshot evaluation must not consult or pollute the cache.
  Publication pub = parse_publication("x = 5");
  pub.set_entry_time(sim.now());
  const VariableSnapshot snapshot = make_variable_snapshot({{"v", 1.0}});
  EXPECT_EQ(match(engine, host, pub, &snapshot).size(), 1u);
  // The cached (non-snapshot) version is still the local one.
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
  EXPECT_EQ(engine.costs().cache_hits, 1u);
}

TEST_F(CleesTest, DiscreteVariablePickedUpAfterExpiry) {
  host.set_variable("v", 1.0);
  engine.add(make_sub(1, "[tt=1] x <= 10 * v"), NodeId{1}, host);
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")).size(), 1u);
  host.set_variable("v", 0.1);
  // Cache still holds x <= 10.
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")).size(), 1u);
  sim.run_until(sec(1.5));
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
}

}  // namespace
}  // namespace evps
