file(REMOVE_RECURSE
  "CMakeFiles/test_publication.dir/test_publication.cpp.o"
  "CMakeFiles/test_publication.dir/test_publication.cpp.o.d"
  "test_publication"
  "test_publication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_publication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
