# Empty dependencies file for test_codec_property.
# This may be replaced when dependencies are built.
