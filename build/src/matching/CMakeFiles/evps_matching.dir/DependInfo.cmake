
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/brute_force_matcher.cpp" "src/matching/CMakeFiles/evps_matching.dir/brute_force_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/evps_matching.dir/brute_force_matcher.cpp.o.d"
  "/root/repo/src/matching/churn_matcher.cpp" "src/matching/CMakeFiles/evps_matching.dir/churn_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/evps_matching.dir/churn_matcher.cpp.o.d"
  "/root/repo/src/matching/counting_matcher.cpp" "src/matching/CMakeFiles/evps_matching.dir/counting_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/evps_matching.dir/counting_matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/message/CMakeFiles/evps_message.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/evps_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
