// Fixed-width table printing for the experiment harness: every bench binary
// prints the rows/series of the paper figure it regenerates through this.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace evps {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells);

  void print(std::ostream& os = std::cout) const;

  /// Format a double with fixed precision.
  [[nodiscard]] static std::string fmt(double value, int precision = 2);
  /// Format as a percentage ("96.8%").
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for an experiment.
void print_banner(std::string_view title, std::ostream& os = std::cout);

/// Read-modify-write one top-level section of a shared JSON results file:
/// `{"routing_covering": {...}, "overlay_batch": {...}}`. `body` must be a
/// complete JSON value; existing sections under other keys are preserved
/// verbatim (files not in this sectioned shape are replaced wholesale, so
/// legacy single-object outputs upgrade on first write). Returns false when
/// the file cannot be written.
bool write_json_section(const std::string& path, const std::string& key, const std::string& body);

}  // namespace evps
