#include "analysis/relational.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "analysis/analyzer.hpp"
#include "analysis/verifier.hpp"
#include "common/variable_table.hpp"

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Same faithfulness horizon as the ValueSet domain (covering.cpp): beyond
/// 2^53 int/double comparisons can disagree with double-space reasoning.
constexpr double kMaxExactInt = 9007199254740992.0;

// ---------------------------------------------------------------------------
// Real-arithmetic interval helpers.
//
// The iv_* transfer functions in analysis/interval.hpp model the EVALUATOR's
// computed double (including its rounding), which is what envelopes need.
// Relational bounds instead constrain REAL sums/differences of quantities
// ("value - v"), so they need real interval arithmetic: exact results pass
// through, inexact ones round outward — including on degenerate operands.
// ---------------------------------------------------------------------------

double sum_up(double a, double b) noexcept {
  if (a == kInf || b == kInf) return kInf;
  if (a == -kInf || b == -kInf) return -kInf;
  const double s = a + b;
  if (s - a == b && s - b == a) return s;
  return std::nextafter(s, kInf);
}

double sum_down(double a, double b) noexcept {
  if (a == -kInf || b == -kInf) return -kInf;
  if (a == kInf || b == kInf) return kInf;
  const double s = a + b;
  if (s - a == b && s - b == a) return s;
  return std::nextafter(s, -kInf);
}

Interval r_add(const Interval& a, const Interval& b) noexcept {
  return Interval::range(sum_down(a.lo, b.lo), sum_up(a.hi, b.hi));
}

Interval r_sub(const Interval& a, const Interval& b) noexcept {
  return Interval::range(sum_down(a.lo, -b.hi), sum_up(a.hi, -b.lo));
}

Interval r_neg(const Interval& a) noexcept { return Interval::range(-a.hi, -a.lo); }

Interval r_meet(const Interval& a, const Interval& b) noexcept {
  return Interval::range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
}

/// Absorb the final-operation rounding of the evaluator into a relational
/// bound: the concrete result is fl(x) for the real x the bound constrains,
/// and |fl(x) - x| <= ulp(m) where m bounds |fl(x)| (from the result
/// envelope). Returns false (drop the bound) when the result magnitude is
/// unbounded. A numeric-empty envelope means the result is never numeric, so
/// the (vacuous) bound passes through untouched.
bool widen_err(Interval& d, const Interval& result_env) noexcept {
  if (result_env.numeric_empty()) return true;
  const double m = std::max(std::fabs(result_env.lo), std::fabs(result_env.hi));
  if (!std::isfinite(m)) return false;
  const double err = std::nextafter(m, kInf) - m;
  d.lo = sum_down(d.lo, -err);
  d.hi = sum_up(d.hi, err);
  return true;
}

// ---------------------------------------------------------------------------
// Transfer pass.
// ---------------------------------------------------------------------------

struct Slot {
  Interval iv = Interval::unknown();
  std::map<VarId, Interval> diff;  // value - v (valid when value numeric)
  std::map<VarId, Interval> sum;   // value + v
};

template <typename Fn>
void for_union_keys(const std::map<VarId, Interval>& a, const std::map<VarId, Interval>& b,
                    Fn&& fn) {
  for (const auto& [v, iv] : a) {
    (void)iv;
    fn(v);
  }
  for (const auto& [v, iv] : b) {
    (void)iv;
    if (a.find(v) == a.end()) fn(v);
  }
}

Slot combine_add(const Slot& l, const Slot& r) {
  Slot out;
  out.iv = iv_add(l.iv, r.iv);
  for_union_keys(l.diff, r.diff, [&](VarId v) {
    std::optional<Interval> cand;
    if (const auto it = l.diff.find(v); it != l.diff.end()) cand = r_add(it->second, r.iv);
    if (const auto it = r.diff.find(v); it != r.diff.end()) {
      const Interval c2 = r_add(l.iv, it->second);
      cand = cand ? r_meet(*cand, c2) : c2;
    }
    if (cand && widen_err(*cand, out.iv)) out.diff.emplace(v, *cand);
  });
  for_union_keys(l.sum, r.sum, [&](VarId v) {
    std::optional<Interval> cand;
    if (const auto it = l.sum.find(v); it != l.sum.end()) cand = r_add(it->second, r.iv);
    if (const auto it = r.sum.find(v); it != r.sum.end()) {
      const Interval c2 = r_add(l.iv, it->second);
      cand = cand ? r_meet(*cand, c2) : c2;
    }
    if (cand && widen_err(*cand, out.iv)) out.sum.emplace(v, *cand);
  });
  return out;
}

Slot combine_sub(const Slot& l, const Slot& r) {
  Slot out;
  out.iv = iv_sub(l.iv, r.iv);
  // (l - r) - v = (l - v) - r = l - (r + v)
  for_union_keys(l.diff, r.sum, [&](VarId v) {
    std::optional<Interval> cand;
    if (const auto it = l.diff.find(v); it != l.diff.end()) cand = r_sub(it->second, r.iv);
    if (const auto it = r.sum.find(v); it != r.sum.end()) {
      const Interval c2 = r_sub(l.iv, it->second);
      cand = cand ? r_meet(*cand, c2) : c2;
    }
    if (cand && widen_err(*cand, out.iv)) out.diff.emplace(v, *cand);
  });
  // (l - r) + v = (l + v) - r = l - (r - v)
  for_union_keys(l.sum, r.diff, [&](VarId v) {
    std::optional<Interval> cand;
    if (const auto it = l.sum.find(v); it != l.sum.end()) cand = r_sub(it->second, r.iv);
    if (const auto it = r.diff.find(v); it != r.diff.end()) {
      const Interval c2 = r_sub(l.iv, it->second);
      cand = cand ? r_meet(*cand, c2) : c2;
    }
    if (cand && widen_err(*cand, out.iv)) out.sum.emplace(v, *cand);
  });
  return out;
}

/// min/max distribute exactly over "- v" / "+ v" (monotone shifts) and the
/// fold is a pure selection (no rounding), so relations survive — but only
/// when no operand can be NaN (the evaluator's asymmetric NaN skipping
/// breaks the pure-min/max reading). A partner without a stored relation
/// contributes one derived from its envelope and the variable's range.
Slot combine_minmax(const Slot& l, const Slot& r, bool is_min, bool clean,
                    const std::map<VarId, Interval>& var_iv) {
  Slot out;
  out.iv = is_min ? iv_min2(l.iv, r.iv) : iv_max2(l.iv, r.iv);
  if (!clean) return out;
  const auto pick_lo = [is_min](double a, double b) { return is_min ? std::min(a, b) : std::max(a, b); };
  for_union_keys(l.diff, r.diff, [&](VarId v) {
    const Interval& vb = var_iv.at(v);
    const auto li = l.diff.find(v);
    const auto ri = r.diff.find(v);
    const Interval dl = li != l.diff.end() ? li->second : r_sub(l.iv, vb);
    const Interval dr = ri != r.diff.end() ? ri->second : r_sub(r.iv, vb);
    out.diff.emplace(v, Interval::range(pick_lo(dl.lo, dr.lo), pick_lo(dl.hi, dr.hi)));
  });
  for_union_keys(l.sum, r.sum, [&](VarId v) {
    const Interval& vb = var_iv.at(v);
    const auto li = l.sum.find(v);
    const auto ri = r.sum.find(v);
    const Interval dl = li != l.sum.end() ? li->second : r_add(l.iv, vb);
    const Interval dr = ri != r.sum.end() ? ri->second : r_add(r.iv, vb);
    out.sum.emplace(v, Interval::range(pick_lo(dl.lo, dr.lo), pick_lo(dl.hi, dr.hi)));
  });
  return out;
}

[[nodiscard]] bool slot_clean(const Slot& s) noexcept {
  return !s.iv.maybe_nan && !s.iv.numeric_empty();
}

}  // namespace

RelBounds eval_relational(const ExprProgram& prog, const VarBounds& vars,
                          const std::vector<VarId>& rel_vars) {
  using Op = ExprProgram::Op;
  if (prog.empty()) throw std::logic_error("relational eval of an empty ExprProgram");
  std::map<VarId, Interval> var_iv;
  for (const VarId v : rel_vars) var_iv.emplace(v, vars.bounds(v));

  std::vector<Slot> stack;
  const auto need = [&stack](std::size_t n) {
    if (stack.size() < n) throw std::logic_error("relational eval of a malformed ExprProgram");
  };
  for (const ExprProgram::Insn& insn : prog.code()) {
    switch (insn.op) {
      case Op::kPushConst: {
        Slot s;
        s.iv = Interval::point(insn.k);
        stack.push_back(std::move(s));
        break;
      }
      case Op::kLoadVar: {
        Slot s;
        s.iv = vars.bounds(insn.var);
        if (const auto it = var_iv.find(insn.var); it != var_iv.end()) {
          s.diff.emplace(insn.var, Interval::range(0.0, 0.0));
          s.sum.emplace(insn.var, r_add(s.iv, s.iv));
        }
        stack.push_back(std::move(s));
        break;
      }
      case Op::kNeg: {
        need(1);
        Slot& s = stack.back();
        s.iv = iv_neg(s.iv);
        std::map<VarId, Interval> nd;
        std::map<VarId, Interval> ns;
        for (const auto& [v, d] : s.sum) nd.emplace(v, r_neg(d));
        for (const auto& [v, d] : s.diff) ns.emplace(v, r_neg(d));
        s.diff = std::move(nd);
        s.sum = std::move(ns);
        break;
      }
      case Op::kAbs:
      case Op::kFloor:
      case Op::kCeil:
      case Op::kSqrt:
      case Op::kSin:
      case Op::kCos:
      case Op::kSign:
      case Op::kStep: {
        need(1);
        Slot& s = stack.back();
        switch (insn.op) {
          case Op::kAbs: s.iv = iv_abs(s.iv); break;
          case Op::kFloor: s.iv = iv_floor(s.iv); break;
          case Op::kCeil: s.iv = iv_ceil(s.iv); break;
          case Op::kSqrt: s.iv = iv_sqrt(s.iv); break;
          case Op::kSin: s.iv = iv_sin(s.iv); break;
          case Op::kCos: s.iv = iv_cos(s.iv); break;
          case Op::kSign: s.iv = iv_sign(s.iv); break;
          default: s.iv = iv_step(s.iv); break;
        }
        s.diff.clear();
        s.sum.clear();
        break;
      }
      case Op::kAdd:
      case Op::kSub: {
        need(2);
        const Slot r = std::move(stack.back());
        stack.pop_back();
        const Slot l = std::move(stack.back());
        stack.pop_back();
        stack.push_back(insn.op == Op::kAdd ? combine_add(l, r) : combine_sub(l, r));
        break;
      }
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kPow: {
        need(2);
        const Slot r = std::move(stack.back());
        stack.pop_back();
        Slot& l = stack.back();
        switch (insn.op) {
          case Op::kMul: l.iv = iv_mul(l.iv, r.iv); break;
          case Op::kDiv: l.iv = iv_div(l.iv, r.iv); break;
          case Op::kMod: l.iv = iv_mod(l.iv, r.iv); break;
          default: l.iv = iv_pow(l.iv, r.iv); break;
        }
        l.diff.clear();
        l.sum.clear();
        break;
      }
      case Op::kMin:
      case Op::kMax: {
        need(insn.argc);
        const std::size_t base = stack.size() - insn.argc;
        bool clean = true;
        for (std::size_t i = base; i < stack.size(); ++i) clean = clean && slot_clean(stack[i]);
        Slot acc = std::move(stack[base]);
        for (std::size_t i = 1; i < insn.argc; ++i) {
          acc = combine_minmax(acc, stack[base + i], insn.op == Op::kMin, clean, var_iv);
        }
        stack.resize(base);
        stack.push_back(std::move(acc));
        break;
      }
      case Op::kClamp: {
        need(3);
        const Slot hi = std::move(stack.back());
        stack.pop_back();
        const Slot lo = std::move(stack.back());
        stack.pop_back();
        const Slot x = std::move(stack.back());
        stack.pop_back();
        const bool clean1 = slot_clean(x) && slot_clean(lo);
        Slot m = combine_minmax(x, lo, /*is_min=*/false, clean1, var_iv);
        const bool clean2 = slot_clean(m) && slot_clean(hi);
        stack.push_back(combine_minmax(m, hi, /*is_min=*/true, clean2, var_iv));
        break;
      }
    }
  }
  need(1);
  RelBounds out;
  out.value = stack.back().iv;
  out.diff = std::move(stack.back().diff);
  out.sum = std::move(stack.back().sum);
  return out;
}

// ---------------------------------------------------------------------------
// Octagon construction (subscription as coveree B).
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] bool var_safe(VarId v, const VariableRegistry& registry) {
  // Safe = provably a real number under every reachable assignment: `t`
  // (elapsed seconds, >= 0) or a variable with a declared finite range.
  return v == elapsed_time_var_id() || registry.declared_range(v).has_value();
}

struct OctSystem {
  Octagon oct{0};
  std::map<AttrId, std::size_t> attr_node;
  std::map<VarId, std::size_t> var_node;
};

/// Conjoin everything a matching (publication, assignment) pair must
/// satisfy, over attributes the subscription forces numeric, skipping
/// predicate `skip` (-1: none; the redundancy check drops one at a time).
OctSystem build_octagon(const Subscription& sub, const VariableRegistry& registry, int skip) {
  const auto& preds = sub.predicates();

  // Per-attribute outer ValueSets, excluding the skipped predicate.
  std::map<AttrId, ValueSet> outer;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    ValueSet set = outer_pred_set(preds[i], registry);
    const auto [it, inserted] = outer.try_emplace(preds[i].attr_id(), std::move(set));
    if (!inserted) it->second.intersect(set);
  }

  // Compile + verify the surviving evolving predicates once.
  std::vector<std::pair<std::size_t, ExprProgram>> progs;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (static_cast<int>(i) == skip || !preds[i].is_evolving()) continue;
    try {
      ExprProgram prog = ExprProgram::compile(*preds[i].fun());
      if (verify_program(prog).ok) progs.emplace_back(i, std::move(prog));
    } catch (const std::exception&) {
      // Uncompilable operand: contributes no relational constraints.
    }
  }

  OctSystem sys;
  for (const auto& [attr, set] : outer) {
    if (!set.nan && set.strings == ValueSet::Strings::kNone) {
      sys.attr_node.emplace(attr, sys.attr_node.size());
    }
  }
  const std::size_t attr_count = sys.attr_node.size();
  for (const auto& [idx, prog] : progs) {
    (void)idx;
    for (const VarId v : prog.variables()) {
      if (var_safe(v, registry) && sys.var_node.find(v) == sys.var_node.end()) {
        sys.var_node.emplace(v, attr_count + sys.var_node.size());
      }
    }
  }

  Octagon oct(attr_count + sys.var_node.size());
  for (const auto& [attr, node] : sys.attr_node) {
    const ValueSet& s = outer.at(attr);
    if (std::isfinite(s.lo)) oct.add_lower(node, s.lo, s.lo_open);
    if (std::isfinite(s.hi)) oct.add_upper(node, s.hi, s.hi_open);
  }
  for (const auto& [v, node] : sys.var_node) {
    if (v == elapsed_time_var_id()) {
      oct.add_lower(node, 0.0, false);
    } else if (const auto range = registry.declared_range(v)) {
      oct.add_lower(node, range->first, false);
      oct.add_upper(node, range->second, false);
    }
  }

  const RegistryVarBounds bounds(registry);
  std::vector<VarId> rel_vars;
  rel_vars.reserve(sys.var_node.size());
  for (const auto& [v, node] : sys.var_node) {
    (void)node;
    rel_vars.push_back(v);
  }
  for (const auto& [idx, prog] : progs) {
    const Predicate& pred = preds[idx];
    const auto an = sys.attr_node.find(pred.attr_id());
    if (an == sys.attr_node.end()) continue;
    const RelOp op = pred.op();
    if (op == RelOp::kNe) continue;  // != constrains nothing octagonal
    const RelBounds rb = eval_relational(prog, bounds, rel_vars);
    const bool upper = op == RelOp::kLt || op == RelOp::kLe || op == RelOp::kEq;
    const bool lower = op == RelOp::kGt || op == RelOp::kGe || op == RelOp::kEq;
    // pub OP fl with fl - v in [d.lo, d.hi] (when fl is numeric; a matching
    // non-!= comparison implies it is): pub <= fl <= v + d.hi etc.
    for (const auto& [v, d] : rb.diff) {
      const std::size_t j = sys.var_node.at(v);
      if (upper && std::isfinite(d.hi)) oct.add_pair(an->second, +1, j, -1, d.hi, op == RelOp::kLt);
      if (lower && std::isfinite(d.lo)) oct.add_pair(an->second, -1, j, +1, -d.lo, op == RelOp::kGt);
    }
    for (const auto& [v, s] : rb.sum) {
      const std::size_t j = sys.var_node.at(v);
      if (upper && std::isfinite(s.hi)) oct.add_pair(an->second, +1, j, +1, s.hi, op == RelOp::kLt);
      if (lower && std::isfinite(s.lo)) oct.add_pair(an->second, -1, j, -1, -s.lo, op == RelOp::kGt);
    }
  }
  oct.close();
  sys.oct = std::move(oct);
  return sys;
}

// ---------------------------------------------------------------------------
// Requirement construction (subscription as coverer A).
// ---------------------------------------------------------------------------

std::vector<RelOp> upper_shortcut(bool strict) {
  return strict ? std::vector<RelOp>{RelOp::kLt}
                : std::vector<RelOp>{RelOp::kLt, RelOp::kLe, RelOp::kEq};
}

std::vector<RelOp> lower_shortcut(bool strict) {
  return strict ? std::vector<RelOp>{RelOp::kGt}
                : std::vector<RelOp>{RelOp::kGt, RelOp::kGe, RelOp::kEq};
}

RelRequirement make_req(AttrId attr, int pred_index, int sig_index) {
  RelRequirement req;
  req.attr = attr;
  req.pred_index = pred_index;
  req.sig_index = sig_index;
  return req;
}

void add_upper_candidates(RelRequirement& req, const RelBounds& rb, bool strict) {
  // pub <= env.lo <= fl; pub - v <= d.lo <= fl - v; pub + v <= s.lo <= fl + v.
  // `t` relations are excluded: the coverer evaluates with its OWN epoch.
  if (std::isfinite(rb.value.lo)) {
    req.any_of.push_back({req.attr, +1, kInvalidVarId, +1, rb.value.lo, strict});
  }
  for (const auto& [v, d] : rb.diff) {
    if (v != elapsed_time_var_id() && std::isfinite(d.lo)) {
      req.any_of.push_back({req.attr, +1, v, -1, d.lo, strict});
    }
  }
  for (const auto& [v, s] : rb.sum) {
    if (v != elapsed_time_var_id() && std::isfinite(s.lo)) {
      req.any_of.push_back({req.attr, +1, v, +1, s.lo, strict});
    }
  }
}

void add_lower_candidates(RelRequirement& req, const RelBounds& rb, bool strict) {
  if (std::isfinite(rb.value.hi)) {
    req.any_of.push_back({req.attr, -1, kInvalidVarId, +1, -rb.value.hi, strict});
  }
  for (const auto& [v, d] : rb.diff) {
    if (v != elapsed_time_var_id() && std::isfinite(d.hi)) {
      req.any_of.push_back({req.attr, -1, v, +1, -d.hi, strict});
    }
  }
  for (const auto& [v, s] : rb.sum) {
    if (v != elapsed_time_var_id() && std::isfinite(s.hi)) {
      req.any_of.push_back({req.attr, -1, v, -1, -s.hi, strict});
    }
  }
}

void emit_static(RelationalShape& out, const Predicate& pred, int p) {
  const AttrId attr = pred.attr_id();
  const Value& c = pred.constant();
  const RelOp op = pred.op();
  if (c.is_string()) {
    RelRequirement req = make_req(attr, p, -1);
    // On a numeric-forced attribute (the pair check's precondition) a string
    // comparison can only ever hold for !=; every other operator is
    // unprovable here (and already exact in the ValueSet domain).
    req.trivially_satisfied = op == RelOp::kNe;
    out.requirements.push_back(std::move(req));
    return;
  }
  const double d = *c.numeric();
  if (std::isnan(d)) {
    RelRequirement req = make_req(attr, p, -1);
    req.trivially_satisfied = op == RelOp::kNe;  // NaN is incomparable
    out.requirements.push_back(std::move(req));
    return;
  }
  if (c.is_int() && !(std::abs(d) <= kMaxExactInt)) {
    // Exact-int comparisons can disagree with double space: fail closed.
    out.requirements.push_back(make_req(attr, p, -1));
    return;
  }
  switch (op) {
    case RelOp::kLt:
    case RelOp::kLe: {
      RelRequirement req = make_req(attr, p, -1);
      req.any_of.push_back({attr, +1, kInvalidVarId, +1, d, op == RelOp::kLt});
      out.requirements.push_back(std::move(req));
      break;
    }
    case RelOp::kGt:
    case RelOp::kGe: {
      RelRequirement req = make_req(attr, p, -1);
      req.any_of.push_back({attr, -1, kInvalidVarId, +1, -d, op == RelOp::kGt});
      out.requirements.push_back(std::move(req));
      break;
    }
    case RelOp::kEq: {
      RelRequirement le = make_req(attr, p, -1);
      le.any_of.push_back({attr, +1, kInvalidVarId, +1, d, false});
      RelRequirement ge = make_req(attr, p, -1);
      ge.any_of.push_back({attr, -1, kInvalidVarId, +1, -d, false});
      out.requirements.push_back(std::move(le));
      out.requirements.push_back(std::move(ge));
      break;
    }
    case RelOp::kNe: {
      RelRequirement req = make_req(attr, p, -1);
      req.any_of.push_back({attr, +1, kInvalidVarId, +1, d, true});
      req.any_of.push_back({attr, -1, kInvalidVarId, +1, -d, true});
      out.requirements.push_back(std::move(req));
      break;
    }
  }
}

void emit_evolving(RelationalShape& out, const Predicate& pred, int p,
                   const VariableRegistry& registry) {
  const AttrId attr = pred.attr_id();
  const RelOp op = pred.op();
  std::optional<ExprProgram> prog;
  try {
    ExprProgram compiled = ExprProgram::compile(*pred.fun());
    if (verify_program(compiled).ok) prog = std::move(compiled);
  } catch (const std::exception&) {
  }
  if (!prog) {
    // No program to reason about OR to compare syntactically: fail closed.
    out.requirements.push_back(make_req(attr, p, -1));
    return;
  }

  bool t_free = true;
  bool vars_set = true;
  std::vector<VarId> rel_vars;
  for (const VarId v : prog->variables()) {
    if (v == elapsed_time_var_id()) t_free = false;
    if (v != elapsed_time_var_id() && !registry.get(v).has_value()) vars_set = false;
    if (var_safe(v, registry)) rel_vars.push_back(v);
  }
  out.sigs.push_back({attr, op, t_free, p, prog->code()});
  const int sig_index = static_cast<int>(out.sigs.size()) - 1;

  const RegistryVarBounds bounds(registry);
  const RelBounds rb = eval_relational(*prog, bounds, rel_vars);
  // Fail-closed gates mirroring inner_shape: an unset variable makes the
  // predicate fail at evaluation time regardless of any numeric bound, and a
  // maybe-NaN bound can fail every comparison except != (where it *helps*).
  // The syntactic shortcut survives both: the coveree matching via the very
  // same program implies it evaluated to a bindable, comparable value.
  const bool numeric_ok = vars_set && !rb.value.maybe_nan;

  switch (op) {
    case RelOp::kLt:
    case RelOp::kLe: {
      RelRequirement req = make_req(attr, p, sig_index);
      req.shortcut_ops = upper_shortcut(op == RelOp::kLt);
      if (numeric_ok) add_upper_candidates(req, rb, op == RelOp::kLt);
      out.requirements.push_back(std::move(req));
      break;
    }
    case RelOp::kGt:
    case RelOp::kGe: {
      RelRequirement req = make_req(attr, p, sig_index);
      req.shortcut_ops = lower_shortcut(op == RelOp::kGt);
      if (numeric_ok) add_lower_candidates(req, rb, op == RelOp::kGt);
      out.requirements.push_back(std::move(req));
      break;
    }
    case RelOp::kEq: {
      RelRequirement le = make_req(attr, p, sig_index);
      le.shortcut_ops = upper_shortcut(false);
      RelRequirement ge = make_req(attr, p, sig_index);
      ge.shortcut_ops = lower_shortcut(false);
      if (numeric_ok) {
        add_upper_candidates(le, rb, false);
        add_lower_candidates(ge, rb, false);
      }
      out.requirements.push_back(std::move(le));
      out.requirements.push_back(std::move(ge));
      break;
    }
    case RelOp::kNe: {
      RelRequirement req = make_req(attr, p, sig_index);
      req.shortcut_ops = {RelOp::kLt, RelOp::kGt, RelOp::kNe};
      if (vars_set) {
        if (rb.value.numeric_empty()) {
          // The bound is always NaN: != holds for every numeric value.
          req.trivially_satisfied = true;
        } else {
          // Strictly below or strictly above every numeric bound; a NaN
          // bound (maybe_nan) satisfies != outright, so it needs no gate.
          add_upper_candidates(req, rb, true);
          add_lower_candidates(req, rb, true);
        }
      }
      out.requirements.push_back(std::move(req));
      break;
    }
  }
}

void build_requirements(RelationalShape& out, const Subscription& sub,
                        const VariableRegistry& registry) {
  const auto& preds = sub.predicates();
  for (std::size_t p = 0; p < preds.size(); ++p) {
    if (preds[p].is_evolving()) {
      emit_evolving(out, preds[p], static_cast<int>(p), registry);
    } else {
      emit_static(out, preds[p], static_cast<int>(p));
    }
  }
}

// ---------------------------------------------------------------------------
// Satisfaction.
// ---------------------------------------------------------------------------

[[nodiscard]] bool code_equal(const std::vector<ExprProgram::Insn>& a,
                              const std::vector<ExprProgram::Insn>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].argc != b[i].argc || a[i].var != b[i].var ||
        std::memcmp(&a[i].k, &b[i].k, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Is `req` (owned by the shape whose sigs are `own_sigs`) discharged by the
/// coveree system (octagon + node maps + sigs)? `skip_b_pred` excludes one
/// coveree predicate from shortcut matching (redundancy checks a predicate
/// against the OTHERS of its own subscription).
bool requirement_satisfied(const RelRequirement& req, const std::vector<RelPredSig>& own_sigs,
                           const Octagon& oct, const std::map<AttrId, std::size_t>& attr_node,
                           const std::map<VarId, std::size_t>& var_node,
                           const std::vector<RelPredSig>& b_sigs, int skip_b_pred) {
  if (req.trivially_satisfied) return true;
  if (req.sig_index >= 0 && !req.shortcut_ops.empty()) {
    const RelPredSig& mine = own_sigs[static_cast<std::size_t>(req.sig_index)];
    if (mine.t_free) {
      for (const RelPredSig& sig : b_sigs) {
        if (sig.pred_index == skip_b_pred) continue;
        if (sig.attr != req.attr || !sig.t_free) continue;
        if (std::find(req.shortcut_ops.begin(), req.shortcut_ops.end(), sig.op) ==
            req.shortcut_ops.end()) {
          continue;
        }
        if (code_equal(sig.code, mine.code)) return true;
      }
    }
  }
  for (const RelCondition& cond : req.any_of) {
    const auto ai = attr_node.find(cond.attr);
    if (ai == attr_node.end()) continue;
    bool ok = false;
    if (cond.var == kInvalidVarId) {
      ok = cond.attr_sign > 0 ? oct.entails_upper(ai->second, cond.c, cond.strict)
                              : oct.entails_lower(ai->second, -cond.c, cond.strict);
    } else {
      const auto vi = var_node.find(cond.var);
      if (vi == var_node.end()) continue;
      ok = oct.entails_pair(ai->second, cond.attr_sign, vi->second, cond.var_sign, cond.c,
                            cond.strict);
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace

RelationalShape relational_shape(const Subscription& sub, const VariableRegistry& registry) {
  RelationalShape out;
  OctSystem sys = build_octagon(sub, registry, /*skip=*/-1);
  out.octagon = std::move(sys.oct);
  out.attr_node = std::move(sys.attr_node);
  out.var_node = std::move(sys.var_node);
  out.rel_unsat = out.octagon.unsatisfiable();
  build_requirements(out, sub, registry);
  return out;
}

CoverVerdict covers_relational(const SubscriptionShape& a_inner, const RelationalShape& a_rel,
                               const SubscriptionShape& b_outer, const RelationalShape& b_rel) {
  // Re-walk the per-attribute decision: relational entailment can only
  // discharge attributes the coveree forces numeric (a string or NaN value
  // on the attribute would escape every octagon constraint).
  std::vector<AttrId> failed;
  for (const auto& [attr, inner] : a_inner.attrs) {
    const auto it = b_outer.attrs.find(attr);
    if (it == b_outer.attrs.end()) return CoverVerdict::kUnknown;  // presence unfixable
    if (subset_of(it->second, inner)) continue;
    const ValueSet& o = it->second;
    if (o.nan || o.strings != ValueSet::Strings::kNone) return CoverVerdict::kUnknown;
    if (b_rel.attr_node.find(attr) == b_rel.attr_node.end()) return CoverVerdict::kUnknown;
    failed.push_back(attr);
  }
  if (failed.empty()) return CoverVerdict::kUnknown;

  // Every requirement of every A-predicate on a failed attribute must be
  // discharged (build_requirements emits at least one row per predicate, so
  // an undischargeable predicate cannot slip through silently).
  for (const RelRequirement& req : a_rel.requirements) {
    if (std::find(failed.begin(), failed.end(), req.attr) == failed.end()) continue;
    if (!requirement_satisfied(req, a_rel.sigs, b_rel.octagon, b_rel.attr_node, b_rel.var_node,
                               b_rel.sigs, /*skip_b_pred=*/-1)) {
      return CoverVerdict::kUnknown;
    }
  }
  return CoverVerdict::kCovers;
}

int find_redundant_predicate(const Subscription& sub, const VariableRegistry& registry) {
  const auto& preds = sub.predicates();
  if (preds.size() < 2) return -1;
  RelationalShape self;
  build_requirements(self, sub, registry);
  for (std::size_t p = 0; p < preds.size(); ++p) {
    const int pi = static_cast<int>(p);
    bool possible = true;
    for (const RelRequirement& req : self.requirements) {
      if (req.pred_index == pi && req.any_of.empty() && req.shortcut_ops.empty() &&
          !req.trivially_satisfied) {
        possible = false;
        break;
      }
    }
    if (!possible) continue;
    OctSystem others = build_octagon(sub, registry, pi);
    // An unsatisfiable remainder entails everything vacuously; that is the
    // relationally-unsatisfiable verdict's job, not redundancy's.
    if (others.oct.unsatisfiable()) continue;
    if (others.attr_node.find(preds[p].attr_id()) == others.attr_node.end()) continue;
    bool all = true;
    for (const RelRequirement& req : self.requirements) {
      if (req.pred_index != pi) continue;
      if (!requirement_satisfied(req, self.sigs, others.oct, others.attr_node, others.var_node,
                                 self.sigs, /*skip_b_pred=*/pi)) {
        all = false;
        break;
      }
    }
    if (all) return pi;
  }
  return -1;
}

}  // namespace evps
