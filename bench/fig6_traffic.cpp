// Figure 6 (a)-(c): subscription message traffic in the HFT use case.
//
// Compares the resubscription baseline, the parametric-subscriptions
// baseline [12], and evolving subscriptions (all three evolving engines
// generate identical subscription traffic, so one line represents them, as
// in the paper). Panels:
//   (a) interest change rate 30 changes/min/subscription, 60 s validity
//   (b) change rate 12, 60 s validity
//   (c) change rate 30, validity 20 s (3x replacement rate)
//
// Publications are disabled: the metric counts only subscription-related
// messages, which are independent of the event feed.
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/hft.hpp"

namespace {

using namespace evps;

struct Run {
  SystemKind system;
  std::vector<double> per_minute;
  double mean = 0;
};

Run run_system(SystemKind system, double change_rate, Duration validity) {
  HftConfig cfg;
  cfg.system = system;
  cfg.seed = 42;
  cfg.pub_rate = 0;  // traffic metric only
  cfg.change_rate_per_min = change_rate;
  cfg.validity = validity;
  cfg.duration = SimTime::from_seconds(300.0);
  cfg.traffic_interval = Duration::minutes(1.0);
  HftExperiment exp(cfg);
  exp.run();
  return Run{system, exp.traffic().per_interval_per_broker(), exp.traffic().mean()};
}

void panel(const char* title, double change_rate, Duration validity, double paper_reduction) {
  print_banner(title);
  std::cout << "change rate: " << change_rate << " changes/min/sub, validity: "
            << validity.count_seconds() << " s, 13 brokers, 90 clients x 10 subs\n\n";

  const Run resub = run_system(SystemKind::kResub, change_rate, validity);
  const Run parametric = run_system(SystemKind::kParametric, change_rate, validity);
  const Run evolving = run_system(SystemKind::kLees, change_rate, validity);

  Table t{{"minute", "resub (msgs/min/broker)", "parametric", "evolving (VES/LEES/CLEES)"}};
  for (std::size_t i = 0; i < resub.per_minute.size(); ++i) {
    t.add_row({std::to_string(i + 1), Table::fmt(resub.per_minute[i], 1),
               Table::fmt(parametric.per_minute[i], 1), Table::fmt(evolving.per_minute[i], 1)});
  }
  t.add_row({"mean", Table::fmt(resub.mean, 1), Table::fmt(parametric.mean, 1),
             Table::fmt(evolving.mean, 1)});
  t.print();

  const double evolving_reduction = 1.0 - evolving.mean / resub.mean;
  const double parametric_reduction = 1.0 - parametric.mean / resub.mean;
  std::cout << "\nevolving traffic reduction vs resub:   " << Table::pct(evolving_reduction)
            << "  (paper: " << Table::pct(paper_reduction) << ")\n";
  std::cout << "parametric traffic reduction vs resub: " << Table::pct(parametric_reduction)
            << "  (paper: 50.6%)\n";
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 6: HFT subscription traffic\n";
  panel("Figure 6(a): change rate 30/min/sub", 30.0, Duration::seconds(60.0), 0.968);
  panel("Figure 6(b): change rate 12/min/sub", 12.0, Duration::seconds(60.0), 0.929);
  panel("Figure 6(c): validity 20s (3x replacement rate)", 30.0, Duration::seconds(20.0), 0.905);
  return 0;
}
