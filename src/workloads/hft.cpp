#include "workloads/hft.hpp"

#include <cmath>
#include <numbers>

namespace evps {
namespace {

std::string stock_symbol(std::size_t stock) {
  std::string s = std::to_string(stock);
  return "STK" + std::string(3 - std::min<std::size_t>(3, s.size()), '0') + s;
}

/// Deterministic availability toggle, substituting for the paper's
/// generated activability trace.
std::int64_t availability(std::size_t stock, SimTime t) {
  const double phase = static_cast<double>(stock % 97) * 0.37;
  return std::sin(0.05 * t.seconds() + phase) > -0.8 ? 1 : 0;
}

}  // namespace

HftExperiment::HftExperiment(const HftConfig& config)
    : cfg_(config), overlay_(sim_), rng_(config.seed) {
  if (cfg_.publishers != cfg_.markets * cfg_.edges_per_market) {
    throw std::invalid_argument("HFT setup expects one publisher per edge broker");
  }
  build_stocks();
}

void HftExperiment::build_stocks() {
  Rng rng = rng_.fork(0x57004);
  stocks_.reserve(cfg_.stocks);
  for (std::size_t s = 0; s < cfg_.stocks; ++s) {
    StockModel m;
    m.base = rng.uniform(10.0, 500.0);
    m.drift = rng.uniform(-0.05, 0.05);
    m.amplitude = rng.uniform(0.0, 0.5);
    m.omega = 2.0 * std::numbers::pi / rng.uniform(20.0, 120.0);
    m.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    stocks_.push_back(m);
  }
}

double HftExperiment::model_price(std::size_t stock, SimTime t) const {
  const StockModel& m = stocks_.at(stock);
  return m.base + m.drift * t.seconds() + m.amplitude * std::sin(m.omega * t.seconds() + m.phase);
}

void HftExperiment::build_topology() {
  BrokerConfig broker_cfg;
  broker_cfg.engine.kind = engine_kind_for(cfg_.system);
  broker_cfg.engine.matcher = MatcherKind::kCounting;
  broker_cfg.engine.default_mei = cfg_.mei;
  broker_cfg.engine.default_tt = cfg_.tt;
  broker_cfg.routing = cfg_.routing;
  broker_cfg.snapshot_consistency = cfg_.snapshot_consistency;
  broker_cfg.engine.matcher_threads = cfg_.matcher_threads;
  broker_cfg.batch_size = cfg_.batch_size;
  broker_cfg.link_batch_size = cfg_.link_batch_size;

  if (is_centralized(cfg_.system)) {
    edge_brokers_.assign(cfg_.publishers, &overlay_.add_broker("central", broker_cfg));
    return;
  }

  Broker& central = overlay_.add_broker("central", broker_cfg);
  for (std::size_t m = 0; m < cfg_.markets; ++m) {
    Broker& core = overlay_.add_broker("market" + std::to_string(m) + "_core", broker_cfg);
    overlay_.connect(core, central, cfg_.core_central_latency);
    for (std::size_t e = 0; e < cfg_.edges_per_market; ++e) {
      Broker& edge = overlay_.add_broker(
          "market" + std::to_string(m) + "_edge" + std::to_string(e), broker_cfg);
      overlay_.connect(edge, core, cfg_.edge_core_latency);
      edge_brokers_.push_back(&edge);
    }
  }
}

void HftExperiment::build_publishers() {
  const Duration link = is_centralized(cfg_.system) ? Duration::zero() : cfg_.client_latency;
  for (std::size_t p = 0; p < cfg_.publishers; ++p) {
    auto& client = overlay_.add_client("firmpub" + std::to_string(p));
    client.connect(*edge_brokers_[p % edge_brokers_.size()], link);
    publishers_.push_back(&client);

    if (cfg_.pub_rate <= 0) continue;  // traffic-only experiments skip the feed
    const Duration period = Duration::seconds(1.0 / cfg_.pub_rate);
    // The publisher cycles through its assigned stocks (stock % publishers).
    auto stocks = std::make_shared<std::vector<std::size_t>>();
    for (std::size_t s = p; s < cfg_.stocks; s += cfg_.publishers) stocks->push_back(s);
    if (stocks->empty()) continue;
    auto cursor = std::make_shared<std::size_t>(0);
    const Duration offset = Duration::millis(static_cast<std::int64_t>(p));
    sim_.every(SimTime::zero() + period + offset, period, cfg_.duration,
               [this, &client, stocks, cursor](SimTime now) {
                 const std::size_t s = (*stocks)[(*cursor)++ % stocks->size()];
                 Publication pub;
                 pub.set("symbol", stock_symbol(s));
                 pub.set("price", model_price(s, now));
                 pub.set("avail", availability(s, now));
                 client.publish(std::move(pub));
               });
  }
}

SimTime HftExperiment::epoch_start(const Firm& firm, SimTime t) const {
  const SimTime first = SimTime::zero() + firm.stagger;
  if (t < first) return first;
  const std::int64_t elapsed = (t - first).count_micros();
  const std::int64_t validity = cfg_.validity.count_micros();
  return first + Duration::micros((elapsed / validity) * validity);
}

double HftExperiment::intended_center(std::size_t client_index, std::size_t slot,
                                      SimTime t) const {
  const Firm& firm = firms_.at(client_index);
  const std::size_t stock = firm.slots.at(slot).stock;
  const SimTime epoch = epoch_start(firm, t);
  return model_price(stock, epoch) + stocks_[stock].drift * (t - epoch).count_seconds();
}

Subscription HftExperiment::make_evolving_subscription(const Firm& firm, std::size_t slot,
                                                       SimTime now) const {
  const std::size_t stock = firm.slots.at(slot).stock;
  const double c0 = model_price(stock, now);
  const double drift = stocks_[stock].drift;
  const double w = cfg_.band_half_width;
  // price in [c0 - w + drift*t, c0 + w + drift*t]
  const auto drift_term = Expr::mul(Expr::constant(drift), Expr::variable("t"));
  Subscription sub;
  sub.add(Predicate{"symbol", RelOp::kEq, Value{stock_symbol(stock)}});
  sub.add(Predicate{"price", RelOp::kGe, Expr::add(Expr::constant(c0 - w), drift_term)});
  sub.add(Predicate{"price", RelOp::kLe, Expr::add(Expr::constant(c0 + w), drift_term)});
  sub.set_mei(cfg_.mei);
  sub.set_tt(cfg_.tt);
  sub.set_validity(cfg_.validity);
  return sub;
}

Subscription HftExperiment::make_static_subscription(const Firm& firm, std::size_t slot,
                                                     SimTime now) const {
  const std::size_t firm_index = static_cast<std::size_t>(&firm - firms_.data());
  const std::size_t stock = firm.slots.at(slot).stock;
  const double center = intended_center(firm_index, slot, now);
  const double w = cfg_.band_half_width;
  Subscription sub;
  sub.add(Predicate{"symbol", RelOp::kEq, Value{stock_symbol(stock)}});
  sub.add(Predicate{"price", RelOp::kGe, Value{center - w}});
  sub.add(Predicate{"price", RelOp::kLe, Value{center + w}});
  return sub;
}

void HftExperiment::build_subscribers() {
  const Duration link = is_centralized(cfg_.system) ? Duration::zero() : cfg_.client_latency;
  firms_.reserve(cfg_.clients);
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    auto& client = overlay_.add_client("hft" + std::to_string(c));
    client.connect(*edge_brokers_[c % edge_brokers_.size()], link);

    Firm firm;
    firm.client = &client;
    firm.stagger = Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(cfg_.validity.count_micros()) * static_cast<double>(c) /
        static_cast<double>(cfg_.clients)));
    Rng slot_rng = Rng(cfg_.seed).fork(1000 + c);
    firm.slots.resize(cfg_.stocks_per_client);
    for (auto& s : firm.slots) {
      s.stock = static_cast<std::size_t>(
          slot_rng.uniform_int(0, static_cast<std::int64_t>(cfg_.stocks) - 1));
    }
    firms_.push_back(std::move(firm));

    if (uses_evolving_subscriptions(cfg_.system)) {
      schedule_epoch_replacements(firms_.size() - 1);
    } else {
      schedule_change_ticks(firms_.size() - 1);
    }
  }
}

void HftExperiment::schedule_epoch_replacements(std::size_t firm_index) {
  Firm& firm = firms_[firm_index];
  sim_.every(SimTime::zero() + firm.stagger, cfg_.validity, cfg_.duration,
             [this, firm_index](SimTime now) {
               Firm& firm = firms_[firm_index];
               for (std::size_t k = 0; k < firm.slots.size(); ++k) {
                 const SubscriptionId fresh =
                     firm.client->subscribe(make_evolving_subscription(firm, k, now));
                 if (firm.slots[k].current_sub.valid()) {
                   firm.client->unsubscribe(firm.slots[k].current_sub);
                 }
                 firm.slots[k].current_sub = fresh;
               }
             });
}

void HftExperiment::schedule_change_ticks(std::size_t firm_index) {
  Firm& firm = firms_[firm_index];
  const Duration tick = Duration::seconds(60.0 / cfg_.change_rate_per_min);
  const SimTime first = SimTime::zero() + firm.stagger;

  // Initial static subscriptions.
  sim_.at(first, [this, firm_index, first]() {
    Firm& firm = firms_[firm_index];
    for (std::size_t k = 0; k < firm.slots.size(); ++k) {
      firm.slots[k].current_sub = firm.client->subscribe(make_static_subscription(firm, k, first));
    }
  });

  sim_.every(first + tick, tick, cfg_.duration, [this, firm_index](SimTime now) {
    Firm& firm = firms_[firm_index];
    for (std::size_t k = 0; k < firm.slots.size(); ++k) {
      if (!firm.slots[k].current_sub.valid()) continue;
      if (cfg_.system == SystemKind::kParametric) {
        const std::size_t fi = firm_index;
        const double center = intended_center(fi, k, now);
        const double w = cfg_.band_half_width;
        firm.client->update_subscription(
            firm.slots[k].current_sub,
            {std::nullopt, Value{center - w}, Value{center + w}});
      } else {
        // Resubscription baseline: unsubscribe, wait for the unsubscription
        // to settle, then install the replacement.
        firm.client->unsubscribe(firm.slots[k].current_sub);
        firm.slots[k].current_sub = SubscriptionId::invalid();
        sim_.after(cfg_.resub_settle, [this, firm_index, k]() {
          Firm& firm = firms_[firm_index];
          firm.slots[k].current_sub =
              firm.client->subscribe(make_static_subscription(firm, k, sim_.now()));
        });
      }
    }
  });
}

void HftExperiment::run() {
  if (ran_) throw std::logic_error("HftExperiment::run may only be called once");
  ran_ = true;
  build_topology();
  build_publishers();
  build_subscribers();
  traffic_probe_ = std::make_unique<TrafficProbe>(overlay_, cfg_.traffic_interval, cfg_.duration);
  sim_.run_until(cfg_.duration);
}

}  // namespace evps
