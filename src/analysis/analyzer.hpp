// Subscribe-time static analysis of subscriptions.
//
// Combines the ExprProgram verifier (analysis/verifier.hpp) and the interval
// domain (analysis/interval.hpp) into per-subscription verdicts the broker
// acts on before a subscription reaches an engine:
//
//   kMalformed      a compiled predicate program fails verification — never
//                   installable (would hit unchecked stack accesses).
//   kUnsatisfiable  no publication can ever match, for any reachable
//                   evolution-variable values — installing it only burns
//                   matcher cycles on every publication.
//   kAdUncovered    satisfiable in principle, but provably disjoint from
//                   every known advertisement — under advertisement routing
//                   no covered publication can reach it.
//   kRelUnsatisfiable  satisfiable attribute-by-attribute, but the octagon
//                   domain (analysis/relational.hpp) proves the conjunction
//                   infeasible across attributes/variables (e.g. `x <= v`
//                   with `x >= v + 10`).
//   kConstant       every evolving predicate's bound is a single provable
//                   value — the subscription can be folded to a static one
//                   and skip the lazy-evaluation path entirely.
//   kRelRedundant   some predicate is provably entailed by the others
//                   (advisory: the subscription behaves identically with the
//                   predicate removed; it stays installed as-is).
//   kOk             none of the above.
//
// Verdicts are ordered most-severe-first; analysis returns the most severe
// applicable one. Soundness: kUnsatisfiable/kAdUncovered are only reported
// when *provable* from declared variable ranges (VariableRegistry::
// declare_range) and t >= 0; kConstant folds are bit-identical to what lazy
// evaluation would produce (see interval.hpp's point-exactness contract).
// Undeclared variables degrade to "any value including NaN" and simply make
// verdicts less precise, never wrong.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/interval.hpp"
#include "analysis/verifier.hpp"
#include "expr/variable_registry.hpp"
#include "message/advertisement.hpp"
#include "message/subscription.hpp"

namespace evps {

enum class Verdict : std::uint8_t {
  kOk,
  kConstant,
  kAdUncovered,
  kUnsatisfiable,
  kMalformed,
  // Appended (wire/enum stability): relational-domain verdicts.
  kRelUnsatisfiable,
  kRelRedundant,
};

[[nodiscard]] std::string_view to_string(Verdict v) noexcept;

/// Severity order for combining verdicts (kMalformed most severe).
[[nodiscard]] constexpr int severity(Verdict v) noexcept {
  switch (v) {
    case Verdict::kOk: return 0;
    case Verdict::kRelRedundant: return 1;
    case Verdict::kConstant: return 2;
    case Verdict::kAdUncovered: return 3;
    case Verdict::kRelUnsatisfiable: return 4;
    case Verdict::kUnsatisfiable: return 5;
    case Verdict::kMalformed: return 6;
  }
  return 0;
}

/// VarBounds over a registry's declared ranges: `t` maps to [0, +inf)
/// (elapsed time since subscription epoch is never negative), declared
/// variables to their range, everything else to unknown (any double or NaN).
class RegistryVarBounds final : public VarBounds {
 public:
  explicit RegistryVarBounds(const VariableRegistry& registry) noexcept : registry_(&registry) {}
  [[nodiscard]] Interval bounds(VarId var) const override;

 private:
  const VariableRegistry* registry_;
};

struct PredicateAnalysis {
  bool evolving = false;
  /// Bound-value interval (evolving predicates only; top for static).
  Interval interval = Interval::top();
  /// References the elapsed-time variable `t`.
  bool time_dependent = false;
  /// Bound provably a single value for all reachable variable assignments.
  [[nodiscard]] bool constant_bound() const noexcept { return interval.is_point(); }
};

struct SubscriptionAnalysis {
  Verdict verdict = Verdict::kOk;
  /// Human-readable explanation for any non-kOk verdict.
  std::string diagnostic;
  /// Parallel to Subscription::predicates().
  std::vector<PredicateAnalysis> predicates;
  /// Any evolving predicate references `t` (bounds drift with wall time even
  /// when no discrete variable changes). CLEES uses !time_dependent to
  /// extend TT cache windows across unchanged registry versions.
  bool time_dependent = false;
  /// Every evolving predicate has a provably constant bound.
  bool constant_bounds = false;
  /// Index of the predicate flagged by kRelRedundant, -1 otherwise.
  int redundant_predicate = -1;
  /// Static equivalent, present iff verdict == kConstant: evolving
  /// predicates replaced by their folded values (bit-identical to lazy
  /// evaluation), metadata preserved.
  std::optional<Subscription> folded;
};

/// Analyze `sub` against declared variable ranges in `registry`. When `ads`
/// is non-empty, also checks advertisement coverage (pass the broker's known
/// advertisements under advertisement routing; leave empty under flooding).
[[nodiscard]] SubscriptionAnalysis analyze_subscription(
    const Subscription& sub, const VariableRegistry& registry,
    const std::vector<const Advertisement*>& ads = {});

}  // namespace evps
