// Counting-algorithm matcher with per-attribute operator indexes.
//
// The classic content-based matching scheme (Fabret et al. / PADRES): each
// predicate is indexed under its attribute; matching a publication walks, for
// each publication attribute, the set of satisfied predicates and counts hits
// per subscription. A subscription matches when its hit count equals its
// predicate count.
//
// Index structure per attribute (attributes interned to dense AttrId, so the
// top level is a flat vector, not a string-keyed map):
//   * four PagedBoundIndex interval indexes for < <= > >= — paged B-tree
//     leaves (SoA bound/slot arrays) under a flat router, giving O(log n)
//     insert/remove with contiguous page walks for the range scans, plus a
//     bulk-merge path (insert_batch) that add_batch() uses for VES's bulk
//     version re-materialisation
//   * hash maps for numeric and string equality
//   * SoA scan arrays for numeric != (IEEE `v != bound` is exactly the
//     content-based kNe, including NaN on either side) and a string != list
//   * a scan list for ordered string comparisons and for quarantined
//     NaN-constant ordered/equality predicates — NaN has no place in a
//     sorted structure and such predicates can never match, so they are
//     evaluated (to false) by scan
//
// Subscriptions occupy dense slots; hit counting uses an epoch-stamped
// counter array (a generation stamp marks a slot's counter valid for the
// current match, so nothing is cleared between matches) and all scratch is
// per-matcher, making match() allocation-free in steady state.
//
// Identical predicates within one subscription are deduplicated on add: they
// are redundant for conjunctive semantics and would otherwise leave stale
// index entries behind on remove (the duplicate-predicate leak).
//
// Maintenance cost is the VES story (paper Figures 8 and 9): every version
// replacement pays one remove+insert here. The paged indexes keep that cost
// logarithmic in the matcher population, and add_batch() amortises a whole
// evolution wave into one sorted merge per touched (attribute, operator)
// list — the properties that make million-subscription populations viable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/attribute_table.hpp"
#include "matching/bound_index.hpp"
#include "matching/matcher.hpp"

namespace evps {

class CountingMatcher final : public Matcher {
 public:
  using Matcher::match;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  void add_batch(std::vector<MatcherBatchEntry> batch) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  [[nodiscard]] bool contains(SubscriptionId id) const override { return slot_of_.contains(id); }
  [[nodiscard]] std::size_t size() const override { return slot_of_.size(); }
  void collect_ids(std::vector<SubscriptionId>& out) const override {
    for (const auto& [id, slot] : slot_of_) out.push_back(id);
  }

  /// Total number of indexed predicates (diagnostics). Duplicate predicates
  /// within a subscription are deduplicated on add and not counted.
  [[nodiscard]] std::size_t predicate_count() const noexcept { return predicate_count_; }

  /// Physical entries across every per-attribute index structure
  /// (diagnostics/leak tests). Equals the number of live indexed predicates;
  /// a drained matcher must report 0 — stale entries that survive a remove
  /// (e.g. the historical NaN-keyed eq_num leak) show up here.
  [[nodiscard]] std::size_t indexed_entry_count() const noexcept;

 private:
  /// Dense per-matcher subscription slot; index into slots_ and the epoch
  /// counter arrays. Slots are recycled through a free list on remove.
  using SubSlot = std::uint32_t;

  struct AttributeIndex {
    // pub_value OP bound; paged (bound, slot) interval indexes, NaN-free.
    PagedBoundIndex lt, le, gt, ge;
    std::unordered_map<double, std::vector<SubSlot>> eq_num;
    std::unordered_map<std::string, std::vector<SubSlot>> eq_str;
    // Numeric != as SoA parallel arrays: the scan is a vectorisable
    // `pub != bound` sweep. NaN operands live here too (kNe is the one
    // operator a NaN constant satisfies — against every value).
    std::vector<double> ne_bounds;
    std::vector<SubSlot> ne_slots;
    // String != (matches every numeric publication value: incomparable).
    std::vector<std::pair<std::string, SubSlot>> ne_str;
    // Scan fallback: ordered string comparisons and quarantined NaN-constant
    // ordered/equality predicates (never satisfiable, evaluated by scan).
    std::vector<std::pair<Predicate, SubSlot>> misc;

    [[nodiscard]] bool empty() const noexcept {
      return lt.empty() && le.empty() && gt.empty() && ge.empty() && eq_num.empty() &&
             eq_str.empty() && ne_bounds.empty() && ne_str.empty() && misc.empty();
    }
  };

  struct SlotState {
    SubscriptionId id;               // invalid while the slot is free
    std::vector<Predicate> preds;    // deduplicated
  };

  /// Staged bound-list insert (add_batch): one per ordered numeric
  /// predicate, grouped by (attr, op) then bulk-merged.
  struct StagedBound {
    AttrId attr;
    RelOp op;
    double bound;
    SubSlot slot;
  };

  /// Allocate/recycle a slot and register `id`'s deduplicated predicates.
  SubSlot claim_slot(SubscriptionId id, const std::vector<Predicate>& preds);
  /// Index one predicate. With `staged` non-null, ordered numeric bounds are
  /// appended there for a later bulk merge instead of inserted point-wise.
  void index_predicate(SubSlot slot, const Predicate& p, std::vector<StagedBound>* staged);
  void unindex_predicate(SubSlot slot, const Predicate& p);
  [[nodiscard]] AttributeIndex* find_index(AttrId attr) noexcept {
    return attr < index_.size() ? &index_[attr] : nullptr;
  }
  [[nodiscard]] PagedBoundIndex& bound_list(AttributeIndex& idx, RelOp op) noexcept;

  /// Per-attribute indexes, keyed by interned AttrId. Grows monotonically
  /// with the attribute universe; empty entries cost one AttributeIndex.
  std::vector<AttributeIndex> index_;

  std::vector<SlotState> slots_;       // slot -> subscription state
  std::vector<SubSlot> free_slots_;    // recycled slots
  std::unordered_map<SubscriptionId, SubSlot> slot_of_;
  std::size_t predicate_count_ = 0;

  // Epoch-stamped match scratch: counts_[s] is valid iff stamp_[s] ==
  // epoch_, so no per-match clearing. Engine operations are serialised per
  // matcher (see realtime_host), so mutable scratch in const match() is safe.
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<std::uint32_t> counts_;
  mutable std::vector<SubSlot> touched_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace evps
