// Delivery accuracy: false positives / false negatives vs. ground truth
// (Section VI-A2).
//
// The ground truth is the delivery log produced by a *centralised,
// instantaneous* run of the same deterministic workload: a single broker,
// zero-latency links, and lazily-evaluated evolving subscriptions — i.e. the
// intended interest function of every subscriber evaluated at the exact
// instant each publication enters the system (Section V-D's consistency
// ideal). Any publication a subscriber received but the truth does not
// contain is a false positive; any truth publication not received is a
// false negative.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "broker/overlay.hpp"
#include "common/ids.hpp"

namespace evps {

/// Per-client sets of delivered publication ids.
struct DeliveryLog {
  std::map<ClientId, std::set<MessageId>> delivered;

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [client, pubs] : delivered) n += pubs.size();
    return n;
  }
};

/// Extract the delivery log from all clients of an overlay. Clients with no
/// deliveries get no entry (harmless for comparison).
[[nodiscard]] DeliveryLog collect_delivery_log(const Overlay& overlay);

struct AccuracyResult {
  std::uint64_t truth_deliveries = 0;
  std::uint64_t actual_deliveries = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;

  /// Combined FP+FN count — the paper groups them as a single item.
  [[nodiscard]] std::uint64_t errors() const noexcept {
    return false_positives + false_negatives;
  }

  /// Errors normalised by the ground-truth volume.
  [[nodiscard]] double error_rate() const noexcept {
    return truth_deliveries == 0 ? 0.0
                                 : static_cast<double>(errors()) /
                                       static_cast<double>(truth_deliveries);
  }

  /// Delivery accuracy in [0, 1]: 1 - error_rate, floored at 0.
  [[nodiscard]] double accuracy() const noexcept {
    const double a = 1.0 - error_rate();
    return a < 0.0 ? 0.0 : a;
  }
};

[[nodiscard]] AccuracyResult compare_logs(const DeliveryLog& truth, const DeliveryLog& actual);

}  // namespace evps
