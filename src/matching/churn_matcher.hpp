// Churn-optimised matcher.
//
// The paper positions evolving subscriptions "within the context of
// applications with high subscription churn; therefore, it is best paired
// with a matching engine optimized for a high rate of subscriptions and
// unsubscriptions" (Section II, citing [10]). VES in particular pays one
// matcher remove+insert per evolution, so insert/remove cost dominates its
// maintenance overhead.
//
// Design: per attribute (interned AttrId, flat vector of buckets),
// *unordered* predicate buckets. Equality is hashed; everything else lives
// in flat scan state, split by operand type and laid out SoA:
//
//   * scan_ops / scan_bounds / scan_refs — numeric-operand predicates as
//     parallel arrays. The per-publication sweep compares a double against
//     the contiguous bounds array with plain IEEE operators, which implement
//     the content-based numeric semantics exactly (NaN on either side
//     satisfies only kNe) — no Value dispatch in the inner loop, and the
//     band-predicate compare vectorises.
//   * scan_str — string-operand ordered/!= predicates (rare), AoS.
//
// NaN-keyed equality predicates are routed to the numeric scan arrays
// instead of the eq_num hash map: NaN != NaN under std::equal_to<double>,
// so a NaN key could be inserted but never found again — removals would
// leak the entry, and the stale back-reference could later patch a recycled
// slot's location table. On the scan path `pub == NaN` is uniformly false,
// which is the exact semantics of an unsatisfiable equality.
//
// Every indexed entry carries a back-reference into its subscription's
// location table, so removal is a swap-erase plus one index patch-up for the
// displaced entry — O(1) per predicate regardless of the resident
// population. Matching scans the buckets of the publication's attributes and
// counts satisfied predicates per subscription in an epoch-stamped dense
// counter array (shared scheme with CountingMatcher) — linear in the
// per-attribute predicate population, like LEES's scan, but with no sorted
// structure maintenance and no per-match allocation.
//
// Compare with CountingMatcher: its paged interval indexes give cheaper
// matching at O(log n) insert/remove; this matcher trades a linear-ish match
// for strictly O(1) maintenance. The micro benchmarks (micro_matcher) and
// the VES ablation (ablation_matcher) quantify the trade.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/attribute_table.hpp"
#include "matching/matcher.hpp"

namespace evps {

class ChurnMatcher final : public Matcher {
 public:
  using Matcher::match;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  [[nodiscard]] bool contains(SubscriptionId id) const override { return slot_of_.contains(id); }
  [[nodiscard]] std::size_t size() const override { return slot_of_.size(); }
  void collect_ids(std::vector<SubscriptionId>& out) const override {
    for (const auto& [id, slot] : slot_of_) out.push_back(id);
  }

  [[nodiscard]] std::size_t predicate_count() const noexcept { return predicate_count_; }

  /// Physical entries across every attribute bucket (diagnostics/leak
  /// tests); must drain to 0 when every subscription is removed.
  [[nodiscard]] std::size_t indexed_entry_count() const noexcept;

 private:
  /// Dense per-matcher subscription slot (index into slots_ / counters).
  using SubSlot = std::uint32_t;
  /// Index of the predicate within its subscription: identifies the
  /// location-table slot an indexed entry must patch on swap-erase.
  using RefSlot = std::uint32_t;

  struct EqEntry {
    SubSlot sub;
    RefSlot ref;
  };
  struct StrScanEntry {
    RelOp op;
    std::string operand;
    SubSlot sub;
    RefSlot ref;
  };

  struct AttributeBucket {
    std::unordered_map<double, std::vector<EqEntry>> eq_num;
    std::unordered_map<std::string, std::vector<EqEntry>> eq_str;
    // Numeric-operand scan predicates, SoA (parallel arrays).
    std::vector<RelOp> scan_ops;
    std::vector<double> scan_bounds;
    std::vector<EqEntry> scan_refs;
    // String-operand ordered/!= predicates.
    std::vector<StrScanEntry> scan_str;

    [[nodiscard]] bool empty() const noexcept {
      return eq_num.empty() && eq_str.empty() && scan_ops.empty() && scan_str.empty();
    }
  };

  /// Where one predicate of one subscription currently lives.
  struct Location {
    enum class Kind : std::uint8_t { kEqNum, kEqStr, kScanNum, kScanStr };
    AttrId attr = kInvalidAttrId;
    Kind kind = Kind::kScanNum;
    double num_key = 0;
    std::string str_key;
    std::size_t index = 0;  // position in the eq list / scan arrays
  };

  struct SlotState {
    SubscriptionId id;               // invalid while the slot is free
    std::vector<Predicate> preds;
    std::vector<Location> locations;  // one per predicate
  };

  void index_predicate(SubSlot sub, RefSlot slot, const Predicate& p, SlotState& state);
  void unindex(const Location& loc);

  /// Per-attribute buckets keyed by interned AttrId. Never shrinks; empty
  /// buckets are skipped during matching.
  std::vector<AttributeBucket> buckets_;

  std::vector<SlotState> slots_;
  std::vector<SubSlot> free_slots_;
  std::unordered_map<SubscriptionId, SubSlot> slot_of_;
  std::size_t predicate_count_ = 0;

  // Epoch-stamped match scratch (see CountingMatcher for the scheme).
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<std::uint32_t> counts_;
  mutable std::vector<SubSlot> touched_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace evps
