
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/message/advertisement.cpp" "src/message/CMakeFiles/evps_message.dir/advertisement.cpp.o" "gcc" "src/message/CMakeFiles/evps_message.dir/advertisement.cpp.o.d"
  "/root/repo/src/message/codec.cpp" "src/message/CMakeFiles/evps_message.dir/codec.cpp.o" "gcc" "src/message/CMakeFiles/evps_message.dir/codec.cpp.o.d"
  "/root/repo/src/message/predicate.cpp" "src/message/CMakeFiles/evps_message.dir/predicate.cpp.o" "gcc" "src/message/CMakeFiles/evps_message.dir/predicate.cpp.o.d"
  "/root/repo/src/message/publication.cpp" "src/message/CMakeFiles/evps_message.dir/publication.cpp.o" "gcc" "src/message/CMakeFiles/evps_message.dir/publication.cpp.o.d"
  "/root/repo/src/message/subscription.cpp" "src/message/CMakeFiles/evps_message.dir/subscription.cpp.o" "gcc" "src/message/CMakeFiles/evps_message.dir/subscription.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/evps_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
