// Online-game demo (Section VI-C/D): characters roam a world, their areas of
// interest evolve with movement and with the in-game visibility variable,
// and the game server never sees a resubscription.
//
//   $ ./game_demo [engine]        # engine: ves | lees | clees (default)
#include <cstring>
#include <iostream>

#include "workloads/game.hpp"

using namespace evps;

int main(int argc, char** argv) {
  SystemKind system = SystemKind::kClees;
  if (argc > 1) {
    if (std::strcmp(argv[1], "ves") == 0) system = SystemKind::kVes;
    if (std::strcmp(argv[1], "lees") == 0) system = SystemKind::kLees;
  }

  GameConfig cfg;
  cfg.system = system;
  cfg.seed = 2026;
  cfg.characters = 120;
  cfg.clients = 30;
  cfg.pub_rate = 100.0;
  cfg.use_visibility = true;  // fog rolls in halfway through
  cfg.duration = SimTime::from_seconds(60.0);

  std::cout << "Game demo: " << cfg.characters << " characters, " << cfg.clients
            << " clients, engine " << to_string(system) << "\n";
  std::cout << "Visibility drops from 100% to 50% mid-run; subscriptions shrink\n"
               "autonomously via the broker-side variable `v`.\n\n";

  GameExperiment exp(cfg);
  exp.run();

  std::cout << "deliveries per second (each bar = 10 deliveries):\n";
  const auto& series = exp.deliveries_per_second();
  for (std::size_t i = 0; i < series.size(); i += 3) {
    const auto bar = static_cast<std::size_t>(series[i] / 10);
    std::cout << "  t=" << (i < 9 ? " " : "") << i + 1 << "s  v="
              << static_cast<int>(exp.visibility_at(SimTime::from_seconds(
                     static_cast<double>(i))) * 100)
              << "%  " << std::string(bar, '#') << " " << series[i] << "\n";
  }

  const auto& costs = exp.engine_costs();
  std::cout << "\nengine costs over " << cfg.duration.seconds() << "s:\n";
  std::cout << "  version evolutions:    " << costs.evolutions << "\n";
  std::cout << "  lazy evaluations:      " << costs.lazy_evaluations << "\n";
  std::cout << "  cache hits/misses:     " << costs.cache_hits << "/" << costs.cache_misses
            << "\n";
  std::cout << "  maintenance time:      " << costs.maintenance.sum() * 1000 << " ms\n";
  std::cout << "  lazy-evaluation time:  " << costs.lazy_eval.sum() * 1000 << " ms\n";
  std::cout << "  matcher time:          " << costs.match.sum() * 1000 << " ms\n";
  std::cout << "  subscription messages: " << exp.subscription_msgs() << " (one per character "
            << "per 10s movement epoch; a resubscribing client would send ~10x more)\n";
  return 0;
}
