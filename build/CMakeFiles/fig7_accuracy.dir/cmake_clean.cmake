file(REMOVE_RECURSE
  "CMakeFiles/fig7_accuracy.dir/bench/fig7_accuracy.cpp.o"
  "CMakeFiles/fig7_accuracy.dir/bench/fig7_accuracy.cpp.o.d"
  "bench/fig7_accuracy"
  "bench/fig7_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
