// System-monitoring demo (Section III-C): evolving subscriptions whose
// selectivity switches with an operating-mode variable — without any
// resubscription when the mode changes.
//
// A monitoring node subscribes once with a severity threshold expressed
// over the broker-side `mode` variable (0 = standard, 1 = diagnosis,
// 2 = critical):
//
//   standard  -> threshold 1000 (match nothing)
//   diagnosis -> threshold 8    (sample: only the most severe events)
//   critical  -> threshold 0    (match everything)
//
//   $ ./monitoring_demo
#include <iostream>

#include "broker/overlay.hpp"

using namespace evps;

int main() {
  Simulator sim;
  Overlay overlay{sim};

  BrokerConfig config;
  config.engine.kind = EngineKind::kLees;  // exact, instant reaction to mode flips
  Broker& broker = overlay.add_broker("monitor-broker", config);

  PubSubClient& monitor = overlay.add_client("monitor");
  PubSubClient& service = overlay.add_client("service");
  monitor.connect(broker, Duration::millis(1));
  service.connect(broker, Duration::millis(1));

  // Piecewise threshold over the mode variable, built from step():
  //   mode < 0.5          -> 1000
  //   0.5 <= mode < 1.5   -> 8
  //   mode >= 1.5         -> 0
  monitor.subscribe(
      "sev >= 1000 * step(0.5 - mode) + 8 * step(1.5 - mode) * step(mode - 0.5)");
  broker.set_variable("mode", 0.0);

  monitor.on_delivery = [&](const Publication& pub, SimTime when) {
    std::cout << "    [" << when.seconds() << "s] alert: " << pub.to_string() << "\n";
  };

  // The service emits one event of each severity 0..10 every second.
  sim.every(SimTime::from_seconds(0.5), Duration::seconds(1.0), SimTime::from_seconds(9),
            [&](SimTime) {
              for (int sev = 0; sev <= 10; sev += 5) {
                Publication event;
                event.set("sev", sev);
                event.set("service", "db");
                service.publish(std::move(event));
              }
            });

  const auto set_mode = [&](double seconds, double mode, const char* label) {
    sim.at(SimTime::from_seconds(seconds), [&broker, mode, label] {
      std::cout << "  -- mode := " << label << " (no resubscription sent)\n";
      broker.set_variable("mode", mode);
    });
  };
  std::cout << "mode = standard: nothing matches\n";
  set_mode(3, 1.0, "diagnosis (sev >= 8 sampled)");
  set_mode(6, 2.0, "critical (everything matches)");

  sim.run_until(SimTime::from_seconds(9));

  std::cout << "total alerts: " << monitor.deliveries().size()
            << " (3 epochs x 3 events/s: 0 standard + 3 diagnosis + 9 critical)\n";
  return 0;
}
