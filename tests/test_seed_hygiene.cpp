// Seed hygiene for the workload generators and the sweep's per-replica seed
// derivation: distinct seeds must produce distinct publication/delivery
// streams, a fixed seed must be bit-stable, and the splitmix-derived replica
// seed stream must never collide within a sweep-sized index range.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "metrics/accuracy.hpp"
#include "workloads/game.hpp"
#include "workloads/hft.hpp"
#include "workloads/sweep.hpp"

namespace evps {
namespace {

TEST(SeedDerivation, TenThousandReplicasNeverCollide) {
  for (const std::uint64_t root : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{42},
                                   ~std::uint64_t{0}}) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(10000);
    for (std::size_t i = 0; i < 10000; ++i) {
      EXPECT_TRUE(seen.insert(derive_replica_seed(root, i)).second)
          << "collision at root=" << root << " index=" << i;
    }
  }
}

TEST(SeedDerivation, IsDeterministic) {
  EXPECT_EQ(derive_replica_seed(7, 3), derive_replica_seed(7, 3));
  EXPECT_NE(derive_replica_seed(7, 3), derive_replica_seed(7, 4));
  EXPECT_NE(derive_replica_seed(7, 3), derive_replica_seed(8, 3));
}

/// Condensed delivery stream of a game run: (client, message, micros).
std::multiset<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> game_stream(
    std::uint64_t seed) {
  GameConfig cfg;
  cfg.seed = seed;
  cfg.characters = 24;
  cfg.clients = 6;
  cfg.pub_rate = 40.0;
  cfg.duration = SimTime::from_seconds(10.0);
  GameExperiment exp(cfg);
  exp.run();
  std::multiset<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> out;
  for (const auto& client : exp.overlay().clients()) {
    for (const auto& d : client->deliveries()) {
      out.insert({client->id().value(), d.pub.id().value(), d.when.micros()});
    }
  }
  return out;
}

TEST(SeedHygiene, GameDistinctSeedsDistinctStreams) {
  const auto a = game_stream(1);
  const auto b = game_stream(2);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a, b);
}

TEST(SeedHygiene, GameFixedSeedIsBitStable) {
  EXPECT_EQ(game_stream(5), game_stream(5));
}

/// First publications of an HFT run condensed to a comparable set.
std::multiset<std::string> hft_stream(std::uint64_t seed) {
  HftConfig cfg;
  cfg.seed = seed;
  cfg.clients = 6;
  cfg.stocks = 20;
  cfg.stocks_per_client = 3;
  cfg.pub_rate = 5.0;
  cfg.duration = SimTime::from_seconds(10.0);
  HftExperiment exp(cfg);
  exp.run();
  std::multiset<std::string> out;
  for (const auto& client : exp.overlay().clients()) {
    for (const auto& d : client->deliveries()) {
      out.insert(std::to_string(client->id().value()) + "@" + std::to_string(d.when.micros()) +
                 ":" + std::to_string(d.pub.id().value()));
    }
  }
  return out;
}

TEST(SeedHygiene, HftDistinctSeedsDistinctStreams) {
  const auto a = hft_stream(1);
  const auto b = hft_stream(2);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a, b);
}

TEST(SeedHygiene, HftFixedSeedIsBitStable) {
  EXPECT_EQ(hft_stream(9), hft_stream(9));
}

/// Replica fingerprints: the sweep-level view of the same property, across
/// every scenario including the rotated-zone generator.
TEST(SeedHygiene, ReplicaFingerprintsSeparateSeeds) {
  for (const SweepScenario scenario :
       {SweepScenario::kGame, SweepScenario::kHft, SweepScenario::kGameRotated}) {
    SweepOptions o;
    o.scenario = scenario;
    o.scale = 0.5;
    const ReplicaMetrics a = run_replica(o, derive_replica_seed(1, 0));
    const ReplicaMetrics b = run_replica(o, derive_replica_seed(1, 1));
    EXPECT_NE(a.fingerprint, b.fingerprint) << to_string(scenario);
    EXPECT_NE(a.seed, b.seed) << to_string(scenario);
  }
}

}  // namespace
}  // namespace evps
