# Empty compiler generated dependencies file for test_realtime.
# This may be replaced when dependencies are built.
