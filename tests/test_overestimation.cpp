// VES overestimation extension (Section IV-A): versions installed for
// broker next-hops are widened over the MEI window so forwarding never
// drops a publication the exact function would accept later in the window.
#include <gtest/gtest.h>

#include "broker/overlay.hpp"
#include "evolving/ves_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct OverestimationTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg{.kind = EngineKind::kVes, .overestimate_forwarding = true};
  VesEngine engine{cfg};
};

TEST_F(OverestimationTest, BrokerDestVersionCoversTheMeiWindow) {
  // x <= 2*t with MEI 1 s, installed at t=0 for a broker hop: the widened
  // version is x <= 2 (the bound at the end of the window) instead of 0.
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host, /*dest_is_broker=*/true);
  EXPECT_EQ(match(engine, host, parse_publication("x = 1.5")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 2.5")).empty());
}

TEST_F(OverestimationTest, ClientDestStaysExact) {
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host, /*dest_is_broker=*/false);
  // Exact version at t=0: x <= 0 — the staleness false negative remains for
  // the final hop, which the exact semantics require.
  EXPECT_TRUE(match(engine, host, parse_publication("x = 1.5")).empty());
}

TEST_F(OverestimationTest, LowerBoundsWidenDownwards) {
  // x >= 5 - t: over the window [0,1] the loosest lower bound is 4.
  engine.add(make_sub(1, "[mei=1] x >= 5 - t"), NodeId{1}, host, /*dest_is_broker=*/true);
  EXPECT_EQ(match(engine, host, parse_publication("x = 4.2")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 3.8")).empty());
}

TEST_F(OverestimationTest, DisabledConfigKeepsExactVersions) {
  EngineConfig exact_cfg{.kind = EngineKind::kVes};
  VesEngine exact{exact_cfg};
  exact.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host, /*dest_is_broker=*/true);
  EXPECT_TRUE(match(exact, host, parse_publication("x = 1.5")).empty());
}

TEST_F(OverestimationTest, NonMonotoneWindowCoveredBySampling) {
  // Bound 10*sin(t) peaks inside the window [0, 2] near t = pi/2 ~ 1.57;
  // the midpoint sample (t=1) catches most of the rise.
  engine.add(make_sub(1, "[mei=2] x <= 10 * sin(t)"), NodeId{1}, host,
             /*dest_is_broker=*/true);
  // Samples at t=0,1,2: 0, 8.41, 9.09 -> widened bound 9.09.
  EXPECT_EQ(match(engine, host, parse_publication("x = 9.0")).size(), 1u);
}

TEST_F(OverestimationTest, StaticAndEqualityPredicatesUntouched) {
  engine.add(make_sub(1, "[mei=1] symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host,
             /*dest_is_broker=*/true);
  // Widened: price <= 11; equality untouched.
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 10.5")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'MSFT'; price = 10.5")).empty());
}

TEST_F(OverestimationTest, EvolvedVersionsStayWidened) {
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host, /*dest_is_broker=*/true);
  sim.run_until(sec(3.01));  // last evolution at t=3: widened bound 2*(3+1)=8
  EXPECT_EQ(match(engine, host, parse_publication("x = 7.5")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 8.5")).empty());
}

TEST(OverestimationOverlay, EliminatesForwardingFalseNegatives) {
  // Deployment where inner (forwarding) brokers evolve coarsely to save
  // maintenance (default MEI 2 s) while the subscriber's edge broker stays
  // fine-grained (default MEI 0.25 s). A publication inside the edge's
  // nearly-exact window but outside the inner broker's stale version is
  // dropped upstream — unless the inner version is overestimated.
  const auto run = [](bool overestimate) {
    Simulator sim;
    Overlay overlay{sim};
    BrokerConfig edge_cfg;
    edge_cfg.engine.kind = EngineKind::kVes;
    edge_cfg.engine.default_mei = Duration::seconds(0.25);
    edge_cfg.engine.overestimate_forwarding = overestimate;
    BrokerConfig inner_cfg = edge_cfg;
    inner_cfg.engine.default_mei = Duration::seconds(2.0);

    Broker& edge = overlay.add_broker("edge", edge_cfg);
    Broker& inner = overlay.add_broker("inner", inner_cfg);
    overlay.connect(edge, inner, Duration::millis(1));
    auto& sub = overlay.add_client("sub");
    auto& feed = overlay.add_client("feed");
    sub.connect(edge, Duration::zero());
    feed.connect(inner, Duration::zero());

    // Window [t-0.5, t+0.5]; mei=0 defers to each broker's default MEI.
    Subscription s = parse_subscription("[mei=0] x >= t - 0.5; x <= t + 0.5");
    s.set_id(SubscriptionId{1});
    sub.subscribe(s);
    sim.run_until(SimTime::from_seconds(2.5));
    // Exact window at t=2.5 is [2.0, 3.0]. The edge version (evolved at
    // t=2.5) matches x=2.9; the inner broker's last exact version (t=2.0)
    // says [1.5, 2.5] and would drop it.
    feed.publish("x = 2.9");
    sim.run_until(SimTime::from_seconds(4));
    return sub.deliveries().size();
  };
  EXPECT_EQ(run(false), 0u);  // dropped at the stale forwarding version
  EXPECT_EQ(run(true), 1u);   // widened inner version forwards; edge delivers
}

}  // namespace
}  // namespace evps
