// Whole-overlay static auditor (DESIGN.md §15).
//
// The OverlayAuditor verifies global routing-state invariants over a
// quiesced OverlaySnapshot by abstract interpretation in the ValueSet /
// interval domain (analysis/covering.hpp) — the same machinery the brokers
// used to justify their covering suppressions, re-run as an independent
// proof over the final state:
//
//   1. delivery completeness — for every admitted subscription S and every
//      broker E where a publication satisfying S could enter (every broker
//      under flooding; advertisement origins whose advert intersects S under
//      advertisement routing), a forwarding path E → home(S) → subscriber
//      exists: at every hop some installed subscription points at the next
//      hop and either IS S or provably covers() it. The per-hop coverers
//      form the violation's witness chain.
//   2. forest well-formedness — the covering forest is a depth-≤1 acyclic
//      forest consistent with the engine's installed set, every parent
//      edge re-proves covers(parent, child), and demotion/promotion
//      bookkeeping matches the engine-side DedupTable refcounts (canonical
//      members installed, non-canonical suppressed, groups re-derivable
//      from the installed table).
//   3. quiescence — no stranded matcher-batch buffer and no stranded
//      link-batcher slot past a barrier.
//   4. no ghost state — every matcher slot, lazy-storage entry and covering
//      node traces back to a live installed subscription, and conversely
//      every installed subscription has exactly the physical footprint its
//      engine's install rules mandate.
//
// Soundness of the covering re-proof: kCovers verdicts are monotone in the
// registry (declared ranges are fixed, histories append-only), so any
// suppression a broker justified earlier must still be provable from the
// final variable state — failure to re-prove is a genuine violation, never
// staleness of the audit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/audit/snapshot.hpp"

namespace evps::audit {

enum class Invariant : std::uint8_t {
  kDeliveryCompleteness,  ///< a matching publication cannot reach a subscriber
  kForest,                ///< covering forest malformed or out of sync
  kQuiescence,            ///< stranded batch buffer past a barrier
  kGhostState,            ///< physical state with no live owner (or missing)
  kTopology,              ///< overlay graph inconsistent (asymmetric/cyclic)
};

[[nodiscard]] const char* to_string(Invariant inv) noexcept;

struct Violation {
  Invariant invariant = Invariant::kDeliveryCompleteness;
  std::string broker;  ///< broker name ("" for overlay-level findings)
  SubscriptionId sub = SubscriptionId::invalid();
  std::string message;
  /// Hop-by-hop justification verified before the failure (delivery) or the
  /// evidence trail of the finding (forest/ghost), lint-style.
  std::vector<std::string> witness;
};

struct AuditReport {
  std::vector<Violation> violations;
  std::size_t brokers_audited = 0;
  std::size_t subscriptions_audited = 0;
  std::size_t paths_checked = 0;
  std::size_t witnesses_checked = 0;

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  [[nodiscard]] bool has(Invariant inv) const noexcept;
  [[nodiscard]] std::size_t count(Invariant inv) const noexcept;

  /// Lint-style text: one "broker: invariant: message" block per violation
  /// with its witness chain indented, then a summary line.
  [[nodiscard]] std::string format() const;
  /// Machine-readable report (the evps-audit --json schema).
  void to_json(std::ostream& os) const;
};

struct AuditOptions {
  /// Check invariant 3. Disable to audit mid-run snapshots where buffered
  /// publications are legitimate (no barrier has been reached).
  bool check_quiescence = true;
  /// Re-prove covers() on every forest parent edge and every suppressed
  /// forwarding hop. Disable for a fast structural-only pass.
  bool check_covering_proofs = true;
};

class OverlayAuditor {
 public:
  explicit OverlayAuditor(AuditOptions options = {}) : options_(options) {}

  /// Audit `snap`. The snapshot does not need to be normalized.
  [[nodiscard]] AuditReport audit(const OverlaySnapshot& snap) const;

 private:
  AuditOptions options_;
};

}  // namespace evps::audit
