#include "evolving/lees_engine.hpp"

#include <algorithm>
#include <unordered_set>

namespace evps {

void LeesEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->add(sub.id(), sub.predicates());
    return;
  }
  auto static_part = sub.static_predicates();
  EvolvingPart part;
  part.id = sub.id();
  part.sub = entry.sub;
  part.evolving_preds = sub.evolving_predicates();
  part.has_static_part = !static_part.empty();
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  leme_[entry.dest].push_back(std::move(part));
  ++evolving_count_;
}

void LeesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->remove(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  const auto it = leme_.find(entry.dest);
  if (it != leme_.end()) {
    auto& parts = it->second;
    const auto pos = std::find_if(parts.begin(), parts.end(),
                                  [&](const EvolvingPart& p) { return p.id == sub.id(); });
    if (pos != parts.end()) {
      parts.erase(pos);
      --evolving_count_;
    }
    if (parts.empty()) leme_.erase(it);
  }
}

bool LeesEngine::evolving_part_matches(const EvolvingPart& part, const Publication& pub,
                                       const Env& scope) {
  for (const auto& p : part.evolving_preds) {
    const Value* v = pub.get(p.attribute());
    if (v == nullptr || !p.matches(*v, scope)) return false;
  }
  return true;
}

void LeesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                          EngineHost& host, std::vector<NodeId>& destinations) {
  // M1: standard matcher over static parts and purely-static subscriptions.
  std::vector<SubscriptionId> m1;
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1);
  }
  std::unordered_set<SubscriptionId> m1_set(m1.begin(), m1.end());

  // Destinations already satisfied by purely-static subscriptions.
  std::unordered_set<NodeId> done;
  for (const auto id : m1) {
    const auto& entry = installed().at(id);
    if (!entry.sub->is_evolving()) {
      destinations.push_back(entry.dest);
      done.insert(entry.dest);
    }
  }

  // M2: on-demand evaluation of evolving parts, per destination, with early
  // exit once the destination is known to need the publication.
  const ScopedTimer timer(costs_.lazy_eval);
  const auto& registry = host.variables();
  for (const auto& [dest, parts] : leme_) {
    if (done.contains(dest)) continue;
    for (const auto& part : parts) {
      if (part.has_static_part && !m1_set.contains(part.id)) continue;
      ++costs_.lazy_evaluations;
      const EvalScope scope =
          make_scope(*part.sub, host.now(), snapshot, registry, pub.entry_time());
      if (evolving_part_matches(part, pub, scope)) {
        destinations.push_back(dest);
        break;  // early exit: this destination is settled
      }
    }
  }
}

}  // namespace evps
