// Property suite for the sweep statistics layer (src/stats): OnlineStats
// partition/order invariance against a single-stream oracle, the
// Greenwald-Khanna sketch's documented rank-error bound against an exact
// sorted oracle, and the batch-means confidence-interval edge-case contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "stats/confidence.hpp"
#include "stats/online_stats.hpp"
#include "stats/quantile_sketch.hpp"

namespace evps {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- OnlineStats -----------------------------------------------------------

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);  // undefined below two samples; reported as 0
}

TEST(OnlineStats, RejectsNonFinite) {
  OnlineStats s;
  s.add(1.0);
  s.add(kNaN);
  s.add(kInf);
  s.add(-kInf);
  s.add(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.rejected(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(OnlineStats, CombinePropagatesRejected) {
  OnlineStats a, b;
  a.add(kNaN);
  b.add(kInf);
  b.add(1.0);
  a.combine(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.rejected(), 2u);
}

/// 1000+ random partitions of a random stream, each side order-shuffled at
/// the partition level, must reproduce the single-stream oracle: exactly for
/// count/min/max/rejected, to tight relative tolerance for mean/variance.
TEST(OnlineStats, CombineIsPartitionInvariant) {
  Rng rng{20260809};
  for (int round = 0; round < 1000; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 199));
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(-1e3, 1e3);
    // A few non-finite pollutants in some rounds.
    const std::size_t pollute = static_cast<std::size_t>(rng.uniform_int(0, 2));
    for (std::size_t p = 0; p < pollute && p < n; ++p) xs[p] = (p % 2) != 0u ? kNaN : kInf;

    OnlineStats oracle;
    for (const double x : xs) oracle.add(x);

    // Random partition into up to 5 chunks (possibly empty), combined in a
    // random order.
    const std::size_t chunks = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<OnlineStats> parts(chunks);
    for (const double x : xs) {
      parts[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(chunks) - 1))]
          .add(x);
    }
    std::vector<std::size_t> order(chunks);
    for (std::size_t i = 0; i < chunks; ++i) order[i] = i;
    for (std::size_t i = chunks; i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
    OnlineStats merged;
    for (const std::size_t i : order) merged.combine(parts[i]);

    EXPECT_EQ(merged.count(), oracle.count());
    EXPECT_EQ(merged.rejected(), oracle.rejected());
    EXPECT_EQ(merged.min(), oracle.min());
    EXPECT_EQ(merged.max(), oracle.max());
    EXPECT_NEAR(merged.mean(), oracle.mean(), 1e-9 * (1.0 + std::fabs(oracle.mean())));
    EXPECT_NEAR(merged.variance(), oracle.variance(), 1e-6 * (1.0 + oracle.variance()));
  }
}

TEST(OnlineStats, CombineWithEmptyAndSingleSampleSides) {
  OnlineStats filled;
  for (int i = 1; i <= 10; ++i) filled.add(i);
  const double mean = filled.mean();
  const double var = filled.variance();

  OnlineStats empty;
  filled.combine(empty);  // no-op
  EXPECT_EQ(filled.count(), 10u);
  EXPECT_DOUBLE_EQ(filled.mean(), mean);
  EXPECT_DOUBLE_EQ(filled.variance(), var);

  OnlineStats other;
  other.combine(filled);  // empty target takes the source verbatim
  EXPECT_EQ(other.count(), 10u);
  EXPECT_DOUBLE_EQ(other.mean(), mean);
  EXPECT_DOUBLE_EQ(other.variance(), var);

  OnlineStats single;
  single.add(100.0);
  other.combine(single);
  OnlineStats oracle;
  for (int i = 1; i <= 10; ++i) oracle.add(i);
  oracle.add(100.0);
  EXPECT_EQ(other.count(), oracle.count());
  EXPECT_NEAR(other.mean(), oracle.mean(), 1e-12);
  EXPECT_NEAR(other.variance(), oracle.variance(), 1e-9);
}

// --- QuantileSketch --------------------------------------------------------

/// The returned value must be a stream value whose rank range in the sorted
/// oracle intersects [r - e, r + e] with r = max(1, ceil(q*n)) and
/// e = error_budget() + 1 (the documented ceiling slack).
void expect_within_rank_bound(const std::vector<double>& sorted, const QuantileSketch& sk,
                              double q) {
  ASSERT_EQ(sk.count(), sorted.size());
  const double v = sk.quantile(q);
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), v);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), v);
  ASSERT_NE(lo, hi) << "sketch returned a value not in the stream: " << v;
  const double rank_lo = static_cast<double>(lo - sorted.begin()) + 1.0;
  const double rank_hi = static_cast<double>(hi - sorted.begin());
  const double r = std::max(1.0, std::ceil(q * static_cast<double>(sorted.size())));
  const double e = sk.error_budget() + 1.0;
  EXPECT_LE(rank_lo, r + e) << "q=" << q << " v=" << v;
  EXPECT_GE(rank_hi, r - e) << "q=" << q << " v=" << v;
}

std::vector<double> make_stream(int shape, std::size_t n, Rng& rng) {
  std::vector<double> xs(n);
  switch (shape) {
    case 0:  // uniform
      for (double& x : xs) x = rng.uniform(0.0, 1.0);
      break;
    case 1:  // heavy right tail
      for (double& x : xs) x = std::exp(rng.uniform(0.0, 10.0));
      break;
    case 2:  // constant with duplicates
      for (double& x : xs) x = rng.bernoulli(0.5) ? 1.0 : 2.0;
      break;
    case 3:  // sorted ascending
      for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i);
      break;
    default:  // sorted descending
      for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(n - i);
      break;
  }
  return xs;
}

TEST(QuantileSketch, RankErrorWithinDocumentedBound) {
  Rng rng{7};
  const double quantiles[] = {0.01, 0.25, 0.5, 0.9, 0.99};
  for (const std::size_t n : {std::size_t{1}, std::size_t{10}, std::size_t{100},
                              std::size_t{1000}, std::size_t{5000}}) {
    for (int shape = 0; shape < 5; ++shape) {
      std::vector<double> xs = make_stream(shape, n, rng);
      QuantileSketch sk{0.01};
      for (const double x : xs) sk.add(x);
      std::sort(xs.begin(), xs.end());
      EXPECT_DOUBLE_EQ(sk.min(), xs.front());
      EXPECT_DOUBLE_EQ(sk.max(), xs.back());
      for (const double q : quantiles) expect_within_rank_bound(xs, sk, q);
    }
  }
}

TEST(QuantileSketch, CombineAddsBudgets) {
  Rng rng{11};
  QuantileSketch a{0.01};
  QuantileSketch b{0.01};
  std::vector<double> all;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    (i % 2 == 0 ? a : b).add(x);
    all.push_back(x);
  }
  const double budget_before = a.error_budget() + b.error_budget();
  a.combine(b);
  EXPECT_EQ(a.count(), all.size());
  EXPECT_NEAR(a.error_budget(), budget_before, 1e-9);
  std::sort(all.begin(), all.end());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) expect_within_rank_bound(all, a, q);
}

TEST(QuantileSketch, CombineRequiresEqualEpsAndHandlesEmpty) {
  QuantileSketch a{0.01};
  QuantileSketch b{0.02};
  EXPECT_THROW(a.combine(b), std::invalid_argument);

  QuantileSketch c{0.01};
  c.add(1.0);
  QuantileSketch empty{0.01};
  c.combine(empty);
  EXPECT_EQ(c.count(), 1u);
  empty.combine(c);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 1.0);
}

TEST(QuantileSketch, FixedMemoryBudget) {
  const double eps = 0.005;
  QuantileSketch sk{eps};
  Rng rng{3};
  const std::size_t n = 50000;
  for (std::size_t i = 0; i < n; ++i) sk.add(rng.uniform(0.0, 1.0));
  // O((1/eps) * log(eps * n)) with a generous constant; far below the stream.
  const double bound = (3.0 / eps) * std::log2(2.0 * eps * static_cast<double>(n)) + 32.0;
  EXPECT_LT(static_cast<double>(sk.tuple_count()), bound);
  EXPECT_LT(sk.tuple_count(), n / 10);
}

TEST(QuantileSketch, RejectsNonFiniteAndClampsQ) {
  QuantileSketch sk{0.01};
  sk.add(kNaN);
  sk.add(kInf);
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.rejected(), 2u);
  EXPECT_EQ(sk.quantile(0.5), 0.0);  // empty sketch
  sk.add(5.0);
  EXPECT_DOUBLE_EQ(sk.quantile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(sk.quantile(2.0), 5.0);
  EXPECT_THROW(QuantileSketch{0.0}, std::invalid_argument);
  EXPECT_THROW(QuantileSketch{0.5}, std::invalid_argument);
}

// --- batch-means confidence intervals --------------------------------------

TEST(BatchMeansCi, EdgeCaseContract) {
  // Empty: undefined, mean 0.
  const ConfidenceInterval empty = batch_means_ci({});
  EXPECT_FALSE(empty.defined);
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.samples, 0u);

  // Single sample: mean set, CI suppressed.
  const double one[] = {42.0};
  const ConfidenceInterval single = batch_means_ci(one);
  EXPECT_FALSE(single.defined);
  EXPECT_DOUBLE_EQ(single.mean, 42.0);
  EXPECT_EQ(single.samples, 1u);

  // Non-finite samples are rejected, not poisoning.
  const double mixed[] = {1.0, kNaN, 3.0, kInf, 2.0};
  const ConfidenceInterval guarded = batch_means_ci(mixed);
  EXPECT_TRUE(guarded.defined);
  EXPECT_EQ(guarded.samples, 3u);
  EXPECT_EQ(guarded.rejected, 2u);
  EXPECT_DOUBLE_EQ(guarded.mean, 2.0);
  EXPECT_TRUE(std::isfinite(guarded.half_width));

  // All-NaN series degrades to the empty contract.
  const double junk[] = {kNaN, kInf};
  const ConfidenceInterval none = batch_means_ci(junk);
  EXPECT_FALSE(none.defined);
  EXPECT_EQ(none.samples, 0u);
  EXPECT_EQ(none.rejected, 2u);

  // Constant series: defined with zero width.
  const std::vector<double> flat(50, 7.0);
  const ConfidenceInterval constant = batch_means_ci(flat);
  EXPECT_TRUE(constant.defined);
  EXPECT_DOUBLE_EQ(constant.mean, 7.0);
  EXPECT_DOUBLE_EQ(constant.half_width, 0.0);
  EXPECT_EQ(constant.batches, 20u);
}

TEST(BatchMeansCi, BatchCountClampingAndGrandMean) {
  std::vector<double> xs(7);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  // Requests below 2 and above n are clamped into [2, n].
  EXPECT_EQ(batch_means_ci(xs, 1).batches, 2u);
  EXPECT_EQ(batch_means_ci(xs, 100).batches, 7u);
  // Near-equal contiguous batches keep the grand mean exact for every B.
  for (std::size_t b = 2; b <= 7; ++b) {
    EXPECT_DOUBLE_EQ(batch_means_ci(xs, b).mean, 3.0) << "B=" << b;
  }
}

TEST(BatchMeansCi, CoverageIsRoughly95Percent) {
  // Uniform(0, 1) has mean 0.5; over many deterministic experiments the CI
  // must cover it about 95% of the time (wide sanity band, not a sharp
  // statistical test — batching only loses degrees of freedom).
  Rng rng{123};
  int covered = 0;
  const int experiments = 300;
  for (int e = 0; e < experiments; ++e) {
    std::vector<double> xs(60);
    for (double& x : xs) x = rng.uniform(0.0, 1.0);
    const ConfidenceInterval ci = batch_means_ci(xs);
    ASSERT_TRUE(ci.defined);
    if (std::fabs(ci.mean - 0.5) <= ci.half_width) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(experiments * 0.85));
  EXPECT_LE(covered, experiments);
}

TEST(StudentT, TableIsMonotonicAndConservative) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-9);
  EXPECT_NEAR(student_t_975(19), 2.093, 1e-9);
  for (std::size_t df = 1; df < 200; ++df) {
    EXPECT_GE(student_t_975(df), student_t_975(df + 1)) << "df=" << df;
    EXPECT_GE(student_t_975(df), 1.96);
  }
  EXPECT_DOUBLE_EQ(student_t_975(100000), 1.96);
}

}  // namespace
}  // namespace evps
