// Overlay-level snapshot/audit glue (DESIGN.md §15).
//
// snapshot_overlay() exports every broker of an Overlay into a normalized
// OverlaySnapshot; audit_overlay() runs the OverlayAuditor over it. The
// SimAuditHook is the opt-in for existing simulation suites: construct one
// over an Overlay and call check() at every quiesce point (typically after
// run_until / run_all settles) — it throws AuditFailure carrying the full
// report when any invariant is violated, so a scenario that corrupts
// routing state fails loudly at the point of corruption instead of as a
// missing delivery three asserts later.
#pragma once

#include <stdexcept>
#include <string>

#include "analysis/audit/auditor.hpp"
#include "broker/overlay.hpp"

namespace evps::audit {

/// Export every broker of `overlay` and normalize the result.
[[nodiscard]] OverlaySnapshot snapshot_overlay(const Overlay& overlay);

/// Snapshot + audit in one step.
[[nodiscard]] AuditReport audit_overlay(const Overlay& overlay, AuditOptions options = {});

/// Thrown by SimAuditHook::check on a non-clean report.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(AuditReport report)
      : std::runtime_error("overlay audit failed:\n" + report.format()),
        report_(std::move(report)) {}

  [[nodiscard]] const AuditReport& report() const noexcept { return report_; }

 private:
  AuditReport report_;
};

/// End-state auditing for simulation test suites: every check() verifies the
/// whole overlay and throws AuditFailure on the first violation.
class SimAuditHook {
 public:
  explicit SimAuditHook(const Overlay& overlay, AuditOptions options = {})
      : overlay_(overlay), options_(options) {}

  /// Audit the overlay's current state; throws AuditFailure if not clean.
  /// Returns the (clean) report so callers can assert on its counters.
  AuditReport check() const {
    AuditReport report = audit_overlay(overlay_, options_);
    if (!report.clean()) throw AuditFailure(std::move(report));
    return report;
  }

 private:
  const Overlay& overlay_;
  AuditOptions options_;
};

}  // namespace evps::audit
