// Shared entry point for the fuzz harnesses (EVPS_FUZZ preset).
//
// Each harness defines the standard libFuzzer hook
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// Under Clang the harness is linked against libFuzzer (-fsanitize=fuzzer,
// EVPS_LIBFUZZER defined) and this header contributes nothing. Under other
// toolchains (the CI image ships gcc only) this header provides a fallback
// main(): it replays every corpus input verbatim, then keeps exercising the
// hook with deterministic xorshift mutations of the corpus — flips, splices,
// truncations, insertions — honouring the same `-runs=N` and
// `-max_total_time=S` flags libFuzzer uses, so scripts/check.sh invokes both
// drivers identically. Coverage guidance is lost, crash detection and the
// time-boxed smoke stage are not.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

#if !defined(EVPS_LIBFUZZER)

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace evps_fuzz {

/// xorshift64* — deterministic across platforms, seeded per run index so a
/// failure reproduces with the same corpus and `-runs=` value.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  std::size_t below(std::size_t n) { return n == 0 ? 0 : static_cast<std::size_t>(next() % n); }

 private:
  std::uint64_t state_;
};

inline void mutate(std::string& input, Rng& rng) {
  const std::size_t edits = 1 + rng.below(4);
  for (std::size_t e = 0; e < edits; ++e) {
    switch (rng.below(5)) {
      case 0:  // flip a byte
        if (!input.empty()) input[rng.below(input.size())] ^= static_cast<char>(1 << rng.below(8));
        break;
      case 1:  // truncate
        if (!input.empty()) input.resize(rng.below(input.size()));
        break;
      case 2:  // insert a random byte
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(rng.below(input.size() + 1)),
                     static_cast<char>(rng.next() & 0xff));
        break;
      case 3: {  // duplicate a chunk
        if (input.empty()) break;
        const std::size_t start = rng.below(input.size());
        const std::size_t len = 1 + rng.below(input.size() - start);
        input.insert(rng.below(input.size() + 1), input.substr(start, len));
        break;
      }
      case 4:  // overwrite with an interesting value
        if (!input.empty()) {
          static constexpr char kInteresting[] = {'\0', '\n', ' ', '=', ';', '9', '-', '\xff'};
          input[rng.below(input.size())] = kInteresting[rng.below(sizeof(kInteresting))];
        }
        break;
    }
    if (input.size() > (1u << 20)) input.resize(1u << 20);  // keep the smoke stage fast
  }
}

inline void collect_corpus(const std::filesystem::path& path, std::vector<std::string>& corpus) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) collect_corpus(entry.path(), corpus);
    }
    return;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "fuzz: cannot open corpus input " << path << "\n";
    std::exit(2);
  }
  corpus.emplace_back(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
}

inline int run(int argc, char** argv) {
  long long runs = 1000;
  long long max_seconds = 0;  // 0 = no time limit
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::stoll(arg.substr(6));
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_seconds = std::stoll(arg.substr(16));
    } else if (!arg.empty() && arg.front() == '-') {
      // Ignore other libFuzzer flags so invocations stay interchangeable.
    } else {
      collect_corpus(arg, corpus);
    }
  }
  if (corpus.empty()) corpus.emplace_back();  // always at least the empty input

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  long long executed = 0;
  for (const std::string& seed : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(seed.data()), seed.size());
    ++executed;
  }
  for (long long i = 0; executed < runs; ++i, ++executed) {
    if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    Rng rng(0x853c49e6748fea9bULL + static_cast<std::uint64_t>(i));
    std::string input = corpus[rng.below(corpus.size())];
    mutate(input, rng);
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
  }
  std::cout << "fuzz: executed " << executed << " input(s) over " << corpus.size()
            << " corpus seed(s)\n";
  return 0;
}

}  // namespace evps_fuzz

int main(int argc, char** argv) { return evps_fuzz::run(argc, argv); }

#endif  // !EVPS_LIBFUZZER
