#include "message/codec.hpp"

#include <charconv>

#include "common/string_util.hpp"
#include "expr/parser.hpp"

namespace evps {
namespace {

/// Try to interpret `text` as a literal constant (number or quoted string).
std::optional<Value> parse_literal(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text.front() == '\'') {
    if (text.size() < 2 || text.back() != '\'') {
      throw CodecError("unterminated string literal: " + std::string(text));
    }
    return Value{std::string(text.substr(1, text.size() - 2))};
  }
  {
    std::int64_t i = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), i);
    if (ec == std::errc{} && p == text.data() + text.size()) return Value{i};
  }
  {
    double d = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
    if (ec == std::errc{} && p == text.data() + text.size()) return Value{d};
  }
  return std::nullopt;
}

/// Find the relational operator in a predicate string; returns
/// (attribute, op, operand-text).
std::tuple<std::string_view, RelOp, std::string_view> split_predicate(std::string_view text) {
  // Scan for the first of <=, >=, !=, <>, <, >, =, == outside quotes.
  bool in_quote = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\'') in_quote = !in_quote;
    if (in_quote) continue;
    std::string_view op_text;
    if (c == '<' || c == '>' || c == '!' || c == '=') {
      if (i + 1 < text.size() && (text[i + 1] == '=' || (c == '<' && text[i + 1] == '>'))) {
        op_text = text.substr(i, 2);
      } else {
        op_text = text.substr(i, 1);
      }
      const auto op = parse_rel_op(op_text);
      if (!op.has_value()) throw CodecError("bad operator in predicate: " + std::string(text));
      const auto attr = trim(text.substr(0, i));
      const auto rest = trim(text.substr(i + op_text.size()));
      if (attr.empty()) throw CodecError("missing attribute in predicate: " + std::string(text));
      if (rest.empty()) throw CodecError("missing operand in predicate: " + std::string(text));
      return {attr, *op, rest};
    }
  }
  throw CodecError("no relational operator in predicate: " + std::string(text));
}

double parse_seconds(std::string_view text, std::string_view what) {
  double d = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    throw CodecError("bad " + std::string(what) + " value: " + std::string(text));
  }
  return d;
}

}  // namespace

std::string serialize(const Publication& pub) {
  std::string out;
  for (std::size_t i = 0; i < pub.attributes().size(); ++i) {
    if (i != 0) out += "; ";
    out += pub.attributes()[i].first;
    out += " = ";
    out += pub.attributes()[i].second.to_string();
  }
  return out;
}

Publication parse_publication(std::string_view text) {
  Publication pub;
  if (trim(text).empty()) return pub;
  for (const auto field : split_quoted(text, ';')) {
    const auto trimmed = trim(field);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw CodecError("publication attribute must be name = value: " + std::string(trimmed));
    }
    const auto name = trim(trimmed.substr(0, eq));
    const auto value_text = trim(trimmed.substr(eq + 1));
    if (name.empty()) throw CodecError("empty attribute name in: " + std::string(trimmed));
    pub.set(name, Value::parse(value_text));
  }
  return pub;
}

std::string serialize(const Predicate& pred) { return pred.to_string(); }

Predicate parse_predicate(std::string_view text) {
  const auto [attr, op, operand] = split_predicate(trim(text));
  if (const auto literal = parse_literal(operand)) {
    return Predicate{std::string(attr), op, *literal};
  }
  try {
    return Predicate{std::string(attr), op, parse_expr(operand)};
  } catch (const ParseError& e) {
    // Rebase the expression-relative offset onto this predicate's text
    // (operand is a view into it), keeping the offending token, so callers
    // can point a caret at the exact source column.
    const auto base = static_cast<std::size_t>(operand.data() - text.data());
    throw CodecError("bad predicate operand '" + std::string(operand) + "': " + e.what(),
                     base + e.offset(), e.token());
  }
}

std::string serialize(const Subscription& sub) {
  std::string out;
  const Subscription defaults;
  if (sub.mei() != defaults.mei()) {
    out += "[mei=" + std::to_string(sub.mei().count_seconds()) + "]";
  }
  if (sub.tt() != defaults.tt()) {
    out += "[tt=" + std::to_string(sub.tt().count_seconds()) + "]";
  }
  if (sub.validity() != defaults.validity()) {
    out += "[validity=" + std::to_string(sub.validity().count_seconds()) + "]";
  }
  if (!out.empty()) out += " ";
  for (std::size_t i = 0; i < sub.predicates().size(); ++i) {
    if (i != 0) out += "; ";
    out += sub.predicates()[i].to_string();
  }
  return out;
}

Subscription parse_subscription(std::string_view text) {
  Subscription sub;
  auto rest = trim(text);
  while (!rest.empty() && rest.front() == '[') {
    const auto close = rest.find(']');
    if (close == std::string_view::npos) throw CodecError("unterminated option bracket");
    const auto body = rest.substr(1, close - 1);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      throw CodecError("option must be key=value: " + std::string(body));
    }
    const auto key = trim(body.substr(0, eq));
    const auto value = trim(body.substr(eq + 1));
    if (key == "mei") {
      sub.set_mei(Duration::seconds(parse_seconds(value, key)));
    } else if (key == "tt") {
      sub.set_tt(Duration::seconds(parse_seconds(value, key)));
    } else if (key == "validity") {
      sub.set_validity(Duration::seconds(parse_seconds(value, key)));
    } else {
      throw CodecError("unknown subscription option: " + std::string(key));
    }
    rest = trim(rest.substr(close + 1));
  }
  if (rest.empty()) throw CodecError("subscription has no predicates");
  for (const auto field : split_quoted(rest, ';')) {
    const auto trimmed = trim(field);
    if (trimmed.empty()) continue;
    try {
      sub.add(parse_predicate(trimmed));
    } catch (const CodecError& e) {
      if (!e.has_location()) throw;
      // Rebase from predicate-relative to subscription-relative offset.
      const auto base = static_cast<std::size_t>(trimmed.data() - text.data());
      throw CodecError(e.what(), base + e.offset(), e.token());
    }
  }
  if (sub.predicates().empty()) throw CodecError("subscription has no predicates");
  return sub;
}

}  // namespace evps
