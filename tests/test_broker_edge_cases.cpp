// Broker robustness: malformed or unexpected message sequences must be
// handled gracefully (ignored or no-op), never corrupt routing state.
#include <gtest/gtest.h>

#include "broker/overlay.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct BrokerEdgeTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  Broker* broker = nullptr;
  PubSubClient* client = nullptr;
  PubSubClient* feed = nullptr;

  void SetUp() override {
    cfg.engine.kind = EngineKind::kClees;
    broker = &overlay.add_broker("b", cfg);
    client = &overlay.add_client("c");
    feed = &overlay.add_client("f");
    client->connect(*broker, Duration::millis(1));
    feed->connect(*broker, Duration::millis(1));
  }
};

TEST_F(BrokerEdgeTest, UnsubscribeUnknownIdIsIgnored) {
  client->unsubscribe(SubscriptionId{424242});
  sim.run_until(sec(1));
  EXPECT_EQ(broker->stats().unsubscribes, 1u);
  EXPECT_EQ(broker->subscription_count(), 0u);
}

TEST_F(BrokerEdgeTest, UpdateUnknownIdIsIgnored) {
  client->update_subscription(SubscriptionId{424242}, {Value{1.0}});
  sim.run_until(sec(1));
  EXPECT_EQ(broker->stats().sub_updates, 1u);
  EXPECT_EQ(broker->subscription_count(), 0u);
}

TEST_F(BrokerEdgeTest, DoubleUnsubscribeIsIdempotent) {
  const auto id = client->subscribe("x > 0");
  sim.run_until(sec(0.1));
  client->unsubscribe(id);
  client->unsubscribe(id);
  sim.run_until(sec(1));
  EXPECT_EQ(broker->subscription_count(), 0u);
  EXPECT_EQ(broker->stats().unsubscribes, 2u);
}

TEST_F(BrokerEdgeTest, PublicationWithNoAttributesMatchesNothing) {
  client->subscribe("x > 0");
  sim.run_until(sec(0.1));
  feed->publish(Publication{});
  sim.run_until(sec(1));
  EXPECT_TRUE(client->deliveries().empty());
  EXPECT_EQ(broker->stats().publications, 1u);
}

TEST_F(BrokerEdgeTest, PublicationBeforeAnySubscription) {
  feed->publish("x = 1");
  sim.run_until(sec(1));
  EXPECT_EQ(broker->stats().publications, 1u);
  EXPECT_EQ(broker->stats().deliveries, 0u);
}

TEST_F(BrokerEdgeTest, UnadvertiseUnknownIdIsIgnored) {
  feed->unadvertise(MessageId{999});
  sim.run_until(sec(1));  // must not throw or corrupt anything
  feed->publish("x = 1");
  sim.run_until(sec(2));
}

TEST_F(BrokerEdgeTest, DuplicateAdvertisementIgnored) {
  // The same advertisement arriving twice (e.g. rebroadcast) is dropped by
  // the cycle guard.
  auto adv = std::make_shared<Advertisement>(MessageId{1}, feed->id(),
                                             std::vector<Predicate>{parse_predicate("x > 0")});
  overlay.network().send(feed->node_id(), broker->node_id(), AdvertiseMsg{adv});
  overlay.network().send(feed->node_id(), broker->node_id(), AdvertiseMsg{adv});
  sim.run_until(sec(1));
  EXPECT_EQ(broker->stats().advertisements, 2u);
}

TEST_F(BrokerEdgeTest, EvolvingSubscriptionOnUnknownVariableFailsClosed) {
  // A subscription referencing a variable the broker has never seen: LEES
  // evaluation throws internally per predicate? No — evaluation of an
  // unbound variable is a subscription-programming error; the engine treats
  // the publication as non-matching for that subscription.
  client->subscribe("x <= 10 * neverSetVariable");
  sim.run_until(sec(0.1));
  // Must not crash; the delivery simply does not happen.
  EXPECT_NO_THROW({
    feed->publish("x = 1");
    sim.run_until(sec(1));
  });
  EXPECT_TRUE(client->deliveries().empty());

  // Once the variable exists (and the CLEES cache window has passed),
  // matching resumes.
  sim.run_until(sec(1.5));
  broker->set_variable("neverSetVariable", 1.0);
  feed->publish("x = 1");
  sim.run_until(sec(3));
  EXPECT_EQ(client->deliveries().size(), 1u);
}

TEST_F(BrokerEdgeTest, VarUpdateForNewVariableCreatesIt) {
  feed->send_var_update("fresh", 3.5);
  sim.run_until(sec(1));
  EXPECT_EQ(broker->variables().get("fresh"), 3.5);
}

TEST_F(BrokerEdgeTest, StatsResetClearsCountersButKeepsState) {
  client->subscribe("x > 0");
  sim.run_until(sec(0.1));
  feed->publish("x = 1");
  sim.run_until(sec(0.2));
  EXPECT_GT(broker->stats().received_total, 0u);
  broker->reset_stats();
  EXPECT_EQ(broker->stats().received_total, 0u);
  EXPECT_EQ(broker->subscription_count(), 1u);  // routing state survives
  feed->publish("x = 2");
  sim.run_until(sec(1));
  EXPECT_EQ(broker->stats().deliveries, 1u);
}

}  // namespace
}  // namespace evps
