// Fuzz-style property test for the parse -> compile -> verify front door:
// thousands of seeded random and truncated token streams must either parse
// into an expression whose compiled program passes verification, or be
// rejected cleanly via ParseError/try_parse_expr — never crash, corrupt
// state, or produce an unverifiable program. Run it under the sanitize
// presets (ASan+UBSan / TSan) to give "cleanly" teeth.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/rng.hpp"
#include "expr/parser.hpp"
#include "expr/program.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

/// Random token soup: mostly grammar tokens (so a fair share parses), with
/// occasional junk bytes.
std::string random_stream(Rng& rng) {
  static const char* const kTokens[] = {
      "1",    "2.5",  "-3",   "t",     "mi_v",  "mi_w", "+",    "-",     "*",
      "/",    "%",    "^",    "(",     ")",     ",",    "min",  "max",   "clamp",
      "step", "abs",  "sqrt", "floor", "ceil",  "sin",  "cos",  "sign",  "1e9",
      "0.0",  "42",   ".5",   "e",     "..",    "1e",   "@",    "$",     "#",
  };
  constexpr int kCount = static_cast<int>(std::size(kTokens));
  std::string out;
  const int n = static_cast<int>(rng.uniform_int(1, 16));
  for (int i = 0; i < n; ++i) {
    if (i != 0 && rng.bernoulli(0.7)) out += ' ';
    out += kTokens[rng.uniform_int(0, kCount - 1)];
  }
  return out;
}

/// A valid expression with a random prefix chopped off mid-token — the
/// truncation shapes deserializers actually see.
std::string truncated_stream(Rng& rng) {
  static const char* const kValid[] = {
      "min(1, 2 + t, clamp(mi_v, 0, 10))",
      "-3 + 2 * step(t - 5)",
      "sqrt(abs(mi_v)) ^ 2 % 7",
      "max(1e3, floor(t / 60), ceil(0.5))",
      "sign(sin(t) * cos(mi_w)) + 1",
  };
  const std::string full = kValid[rng.uniform_int(0, std::size(kValid) - 1)];
  return full.substr(0, rng.uniform_int(0, full.size()));
}

TEST(MalformedInput, ParserCompilerVerifierRejectCleanly) {
  std::uint64_t parsed = 0;
  std::uint64_t rejected = 0;
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    Rng rng{seed};
    const std::string text = rng.bernoulli(0.5) ? random_stream(rng) : truncated_stream(rng);

    std::string error;
    const auto expr = try_parse_expr(text, &error);
    if (!expr.has_value()) {
      ++rejected;
      EXPECT_FALSE(error.empty()) << "seed " << seed << ": '" << text << "'";
      continue;
    }
    ++parsed;
    const ExprProgram prog = ExprProgram::compile(**expr);
    const auto r = verify_program(prog);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": '" << text << "' parsed but compiled to an "
                      << "unverifiable program: " << r.message;
  }
  // The stream generators must exercise both outcomes heavily.
  EXPECT_GT(parsed, 200u);
  EXPECT_GT(rejected, 500u);
}

/// A well-formed batch frame to mutate: three stamped publications with
/// string, negative and multi-attribute payloads.
std::string valid_batch_frame() {
  std::vector<Publication> pubs;
  const char* payloads[] = {"x = 4; y = 3.5; action = 'pickup'", "note = 'a;b'; x = -1",
                            "price = 15.27; symbol = 'IBM'; volume = 100"};
  for (std::size_t i = 0; i < std::size(payloads); ++i) {
    Publication pub = parse_publication(payloads[i]);
    pub.set_id(MessageId{100 + i});
    pub.set_publisher(ClientId{7});
    pub.set_entry_time(SimTime::from_micros(static_cast<std::int64_t>(1000 * i)));
    pubs.push_back(std::move(pub));
  }
  return serialize_batch(std::span<const Publication>(pubs));
}

TEST(MalformedInput, BatchTruncationsRejectWithOffsets) {
  // Every proper prefix of a valid frame must be rejected via CodecError
  // whose offset lands inside the prefix — never crash, never return a
  // partial batch.
  const std::string frame = valid_batch_frame();
  ASSERT_EQ(parse_publication_batch(frame).size(), 3u);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    try {
      (void)parse_publication_batch(frame.substr(0, cut));
      FAIL() << "prefix of length " << cut << " parsed";
    } catch (const CodecError& e) {
      EXPECT_TRUE(e.has_location()) << "cut " << cut;
      EXPECT_LE(e.offset(), cut) << "cut " << cut;
    }
  }
}

TEST(MalformedInput, BatchMutationsNeverCrashNeverPartiallyApply) {
  // Seeded single-byte mutations and splices over a valid frame: the parser
  // must either fully succeed or throw an offset-carrying CodecError.
  // (parse_publication_batch returns by value, so a throw IS "not applied" —
  // this drives the property through every validation path under the
  // sanitizer presets.)
  const std::string frame = valid_batch_frame();
  const auto idx = [](Rng& rng, std::size_t lo, std::size_t hi) {
    return static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
  };
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    Rng rng{seed};
    std::string text = frame;
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip one byte to a random printable (or NUL) character
        text[idx(rng, 0, text.size() - 1)] = static_cast<char>(rng.uniform_int(0, 126));
        break;
      case 1:  // duplicate a random slice in place (duplicate-id shapes)
      {
        const std::size_t a = idx(rng, 0, text.size() - 1);
        const std::size_t b = idx(rng, a, text.size() - 1);
        text.insert(idx(rng, 0, text.size()), text.substr(a, b - a + 1));
        break;
      }
      case 2:  // delete a random slice (truncation mid-frame)
      {
        const std::size_t a = idx(rng, 0, text.size() - 1);
        const std::size_t b = idx(rng, a, text.size() - 1);
        text.erase(a, b - a + 1);
        break;
      }
      default:  // corrupt the declared count
        text = "pubs n=" + std::to_string(rng.uniform_int(0, 1 << 20)) +
               text.substr(text.find('\n'));
        break;
    }
    try {
      (void)parse_publication_batch(text);
      ++accepted;
    } catch (const CodecError& e) {
      ++rejected;
      EXPECT_TRUE(e.has_location()) << "seed " << seed;
      EXPECT_LE(e.offset(), text.size()) << "seed " << seed;
      if (!e.token().empty()) {
        EXPECT_EQ(text.compare(e.offset(), e.token().size(), e.token()), 0)
            << "seed " << seed << " offset " << e.offset() << " token '" << e.token() << "'";
      }
    }
  }
  // The mutator must exercise both outcomes: most mutations break framing,
  // but byte flips inside payloads stay parseable.
  EXPECT_GT(rejected, 1000u);
  EXPECT_GT(accepted, 20u);
}

TEST(MalformedInput, BatchStructuredCorruptions) {
  const std::string frame = valid_batch_frame();
  // Count larger than records present: truncated record header.
  {
    std::string text = frame;
    text.replace(text.find("n=3"), 3, "n=9");
    EXPECT_THROW((void)parse_publication_batch(text), CodecError);
  }
  // Count exceeding the hard limit.
  EXPECT_THROW((void)parse_publication_batch("pubs n=999999999\n"), CodecError);
  // Oversized per-record length prefix (>= kMaxBatchRecordBytes).
  {
    std::string text = frame;
    const std::size_t rec = text.find('\n') + 1;
    text.replace(rec, 8, "ffffffff");
    try {
      (void)parse_publication_batch(text);
      FAIL() << "oversized record length accepted";
    } catch (const CodecError& e) {
      EXPECT_EQ(e.offset(), rec);
    }
  }
  // Duplicate valid id: copy record 1's id into record 2.
  {
    std::string text = frame;
    const std::size_t second = text.find("id=101");
    ASSERT_NE(second, std::string::npos);
    text.replace(second, 6, "id=100");
    EXPECT_THROW((void)parse_publication_batch(text), CodecError);
  }
  // Trailing bytes after the declared records.
  EXPECT_THROW((void)parse_publication_batch(frame + "extra"), CodecError);
  // Payload parse error inside a record carries a frame-relative offset.
  {
    std::string text = frame;
    const std::size_t bad = text.find("x = 4");
    text.replace(bad, 5, "xxxxx");  // same length, attribute without '='
    try {
      (void)parse_publication_batch(text);
      FAIL() << "malformed payload accepted";
    } catch (const CodecError& e) {
      // The payload parser reports no offset of its own, so the rebased
      // location is the start of the record's payload line.
      EXPECT_TRUE(e.has_location());
      EXPECT_GE(e.offset(), text.rfind('\n', bad) + 1);
      EXPECT_LT(e.offset(), text.size());
    }
  }
}

TEST(MalformedInput, ThrowingParserAgreesWithTryVariant) {
  // Same streams through parse_expr: the thrown ParseError must carry an
  // offset inside the text (or == size for end-of-input) and a token that
  // actually occurs at that offset.
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng{seed};
    const std::string text = rng.bernoulli(0.5) ? random_stream(rng) : truncated_stream(rng);
    try {
      (void)parse_expr(text);
    } catch (const ParseError& e) {
      ASSERT_LE(e.offset(), text.size()) << "seed " << seed << ": '" << text << "'";
      if (!e.token().empty()) {
        ASSERT_EQ(text.compare(e.offset(), e.token().size(), e.token()), 0)
            << "seed " << seed << ": '" << text << "' offset " << e.offset() << " token '"
            << e.token() << "'";
      }
    }
  }
}

}  // namespace
}  // namespace evps
