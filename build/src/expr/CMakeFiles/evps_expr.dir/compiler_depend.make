# Empty compiler generated dependencies file for evps_expr.
# This may be replaced when dependencies are built.
