// Octagon abstract domain: conjunctions of constraints ±x_i ± x_j <= c.
//
// The relational covering/unsatisfiability analysis (analysis/relational.hpp)
// needs to reason about *correlations* between quantities — a publication
// attribute and the evolution variable its bound tracks, or two attributes
// whose bounds share a variable — that the per-attribute interval planes
// (analysis/interval.hpp) quantify away. The octagon domain is the classic
// middle ground: it closes under exactly the difference/sum constraints a
// transfer pass over linear predicate bounds produces, and entailment and
// emptiness reduce to shortest paths.
//
// Representation (Miné's DBM encoding): each abstract variable x_i owns two
// DBM nodes, 2i ("+x_i") and 2i+1 ("-x_i"); the matrix entry m[u][v] bounds
// val(v) - val(u). A unary bound x_i <= c is the arc -x_i -> +x_i with
// weight 2c. Every bound carries a strictness flag so `x < v && x > v` can
// be recognised as empty even though the non-strict system is satisfiable.
//
// Soundness contract (both directions are used):
//   * close() only ever derives consequences: path sums are rounded UPWARD
//     (weaker bounds), so a derived bound is implied by the input system in
//     real arithmetic.
//   * unsatisfiable() reports true only for genuinely infeasible systems:
//     a negative — or zero-but-strict — cycle of up-rounded sums implies the
//     exact real cycle sum is negative (or zero with a strict edge), which
//     no assignment can satisfy.
//   * entails() answers true only when every point satisfying the (closed)
//     system satisfies the queried constraint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace evps {

/// One octagon bound: value <= c (or < c when strict). The default is the
/// vacuous bound +inf.
struct OctBound {
  double c = std::numeric_limits<double>::infinity();
  bool strict = false;

  /// Lattice order: is this bound at least as tight as `other`?
  [[nodiscard]] bool le(const OctBound& other) const noexcept {
    return c < other.c || (c == other.c && (strict || !other.strict));
  }
};

class Octagon {
 public:
  /// `num_vars` abstract variables, all initially unconstrained.
  explicit Octagon(std::size_t num_vars);

  [[nodiscard]] std::size_t num_vars() const noexcept { return n_; }

  // --- constraint entry (pre-close) ----------------------------------------
  /// si*x_i + sj*x_j <= c (strict: <). si/sj in {+1, -1}; i != j.
  void add_pair(std::size_t i, int si, std::size_t j, int sj, double c, bool strict);
  /// x_i <= c (strict: <).
  void add_upper(std::size_t i, double c, bool strict);
  /// x_i >= c (strict: >).
  void add_lower(std::size_t i, double c, bool strict);

  /// Shortest-path closure (Floyd-Warshall) followed by octagon
  /// strengthening, with upward rounding on every derived sum. Idempotent in
  /// effect; call once after the last add_*.
  void close();

  /// No assignment satisfies the system (negative or zero-with-strict
  /// cycle). Only meaningful after close().
  [[nodiscard]] bool unsatisfiable() const noexcept { return empty_; }

  // --- entailment queries (post-close) -------------------------------------
  /// Every satisfying assignment has si*x_i + sj*x_j <= c (strict: <)?
  /// Answers true for any query when the system is unsatisfiable.
  [[nodiscard]] bool entails_pair(std::size_t i, int si, std::size_t j, int sj, double c,
                                  bool strict) const;
  /// Every satisfying assignment has x_i <= c (strict: <)?
  [[nodiscard]] bool entails_upper(std::size_t i, double c, bool strict) const;
  /// Every satisfying assignment has x_i >= c (strict: >)?
  [[nodiscard]] bool entails_lower(std::size_t i, double c, bool strict) const;

  /// Tightest derived bound on si*x_i + sj*x_j (post-close); for tests.
  [[nodiscard]] OctBound bound_pair(std::size_t i, int si, std::size_t j, int sj) const;
  [[nodiscard]] OctBound bound_upper(std::size_t i) const;

 private:
  [[nodiscard]] OctBound& at(std::size_t u, std::size_t v) noexcept { return m_[u * 2 * n_ + v]; }
  [[nodiscard]] const OctBound& at(std::size_t u, std::size_t v) const noexcept {
    return m_[u * 2 * n_ + v];
  }
  void tighten(std::size_t u, std::size_t v, const OctBound& b) noexcept {
    if (b.le(at(u, v))) at(u, v) = b;
  }

  std::size_t n_ = 0;
  /// Row-major (2n x 2n); m[u][v] bounds val(v) - val(u).
  std::vector<OctBound> m_;
  bool empty_ = false;
};

}  // namespace evps
