file(REMOVE_RECURSE
  "CMakeFiles/evps_workloads.dir/game.cpp.o"
  "CMakeFiles/evps_workloads.dir/game.cpp.o.d"
  "CMakeFiles/evps_workloads.dir/hft.cpp.o"
  "CMakeFiles/evps_workloads.dir/hft.cpp.o.d"
  "libevps_workloads.a"
  "libevps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
