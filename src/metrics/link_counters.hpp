// Per-broker link-batching counters (DESIGN.md §14).
//
// Header-only for the same reason as shard_counters.hpp: the counters are
// embedded in Broker's LinkBatcher (src/broker), which evps_metrics links
// against — a .cpp here would close a library cycle. The overlay-wide
// aggregation and report formatter live in traffic.cpp (harness-side code).
#pragma once

#include <cstdint>

#include "sim/stats.hpp"

namespace evps {

/// What one broker's LinkBatcher put on the wire. The central invariant:
/// `events` counts publications carried (invariant under batching), while
/// `messages()` counts envelopes actually sent — the batching win is the gap
/// between the two.
struct LinkBatchCounters {
  std::uint64_t batch_messages = 0;    ///< PublishBatchMsg/DeliveryBatchMsg sent
  std::uint64_t single_messages = 0;   ///< scalar PublishMsg/DeliveryMsg sent
  std::uint64_t events = 0;            ///< publications carried across all of them
  std::uint64_t size_flushes = 0;      ///< flushes triggered by link_batch_size
  std::uint64_t deadline_flushes = 0;  ///< flushes triggered by link_flush_deadline
  std::uint64_t barrier_flushes = 0;   ///< flushes forced by an unbatchable send
  std::uint64_t bytes = 0;             ///< codec bytes (only when measure_link_bytes)
  /// Events per flushed batch message (scalar sends are not recorded: the
  /// histogram answers "how full are the batches we do form").
  Histogram fill{{2, 4, 8, 16, 32, 64, 128, 256}};

  [[nodiscard]] std::uint64_t messages() const noexcept {
    return batch_messages + single_messages;
  }

  /// Mean publications per overlay message — the amortisation factor.
  [[nodiscard]] double events_per_message() const noexcept {
    const auto msgs = messages();
    return msgs == 0 ? 0.0 : static_cast<double>(events) / static_cast<double>(msgs);
  }

  void merge(const LinkBatchCounters& other) {
    batch_messages += other.batch_messages;
    single_messages += other.single_messages;
    events += other.events;
    size_flushes += other.size_flushes;
    deadline_flushes += other.deadline_flushes;
    barrier_flushes += other.barrier_flushes;
    bytes += other.bytes;
    fill.merge(other.fill);
  }

  void reset() { *this = LinkBatchCounters{}; }
};

}  // namespace evps
