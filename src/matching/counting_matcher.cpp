#include "matching/counting_matcher.hpp"

#include <algorithm>
#include <cmath>

#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"

namespace evps {

namespace {

/// Identity (not equivalence) match for static predicates, safe under NaN:
/// Predicate::operator== compares constants through Value::compare, which
/// makes a NaN-constant predicate unequal to ITSELF — the historical reason
/// stale NaN entries could not be unindexed. Numeric operands compare as
/// doubles with NaN==NaN allowed; -0.0 == 0.0 is deliberate (such operand
/// pairs are deduplicated as equal predicates and never coexist per slot).
bool same_static_predicate(const Predicate& a, const Predicate& b) noexcept {
  if (a.op() != b.op() || a.attr_id() != b.attr_id()) return false;
  const Value& ca = a.constant();
  const Value& cb = b.constant();
  if (ca.is_string() != cb.is_string()) return false;
  if (ca.is_string()) return ca.as_string() == cb.as_string();
  const double na = *ca.numeric();
  const double nb = *cb.numeric();
  return na == nb || (std::isnan(na) && std::isnan(nb));
}

}  // namespace

CountingMatcher::SubSlot CountingMatcher::claim_slot(SubscriptionId id,
                                                     const std::vector<Predicate>& preds) {
  require_static(preds);
  if (slot_of_.contains(id)) throw std::invalid_argument("duplicate subscription id " + id.str());

  // Deduplicate identical predicates: conjunctively redundant, and indexing
  // copies would leave stale entries on remove (each index list stores one
  // occurrence per unique (attr, op, operand) triple per subscription).
  std::vector<Predicate> unique;
  unique.reserve(preds.size());
  for (const auto& p : preds) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) unique.push_back(p);
  }

  SubSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<SubSlot>(slots_.size());
    slots_.emplace_back();
    stamp_.push_back(0);
    counts_.push_back(0);
  }
  slot_of_.emplace(id, slot);
  slots_[slot].id = id;
  slots_[slot].preds = std::move(unique);
  predicate_count_ += slots_[slot].preds.size();
  return slot;
}

void CountingMatcher::add(SubscriptionId id, const std::vector<Predicate>& preds) {
  const SubSlot slot = claim_slot(id, preds);
  for (const auto& p : slots_[slot].preds) index_predicate(slot, p, nullptr);
}

void CountingMatcher::add_batch(std::vector<MatcherBatchEntry> batch) {
  // Stage every ordered numeric bound, index everything else point-wise
  // (those structures are O(1) per entry anyway), then merge each touched
  // (attr, op) bound list once.
  std::vector<StagedBound> staged;
  for (const auto& entry : batch) {
    const SubSlot slot = claim_slot(entry.id, entry.preds);
    for (const auto& p : slots_[slot].preds) index_predicate(slot, p, &staged);
  }
  if (staged.empty()) return;
  std::sort(staged.begin(), staged.end(), [](const StagedBound& a, const StagedBound& b) {
    if (a.attr != b.attr) return a.attr < b.attr;
    return a.op < b.op;
  });
  std::vector<PagedBoundIndex::Entry> run;
  for (std::size_t i = 0; i < staged.size();) {
    std::size_t j = i;
    run.clear();
    while (j < staged.size() && staged[j].attr == staged[i].attr &&
           staged[j].op == staged[i].op) {
      run.push_back(PagedBoundIndex::Entry{staged[j].bound, staged[j].slot});
      ++j;
    }
    bound_list(index_[staged[i].attr], staged[i].op).insert_batch(std::move(run));
    i = j;
  }
}

bool CountingMatcher::remove(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  const SubSlot slot = it->second;
  auto& state = slots_[slot];
  for (const auto& p : state.preds) unindex_predicate(slot, p);
  predicate_count_ -= state.preds.size();
  state.id = SubscriptionId::invalid();
  state.preds.clear();
  state.preds.shrink_to_fit();
  free_slots_.push_back(slot);
  slot_of_.erase(it);
  return true;
}

PagedBoundIndex& CountingMatcher::bound_list(AttributeIndex& idx, RelOp op) noexcept {
  switch (op) {
    case RelOp::kLt: return idx.lt;
    case RelOp::kLe: return idx.le;
    case RelOp::kGt: return idx.gt;
    default: return idx.ge;  // kGe; kEq/kNe never reach the bound lists
  }
}

void CountingMatcher::index_predicate(SubSlot slot, const Predicate& p,
                                      std::vector<StagedBound>* staged) {
  const AttrId attr = AttributeTable::instance().intern(p.attribute());
  if (attr >= index_.size()) index_.resize(attr + 1);
  auto& idx = index_[attr];
  const Value& c = p.constant();
  if (p.op() == RelOp::kNe) {
    if (c.is_string()) {
      idx.ne_str.emplace_back(c.as_string(), slot);
    } else {
      // NaN operands included: `pub != NaN` is true for every pub, which is
      // exactly the content-based semantics (incomparable => kNe holds).
      idx.ne_bounds.push_back(*c.numeric());
      idx.ne_slots.push_back(slot);
    }
    return;
  }
  if (c.is_string()) {
    if (p.op() == RelOp::kEq) {
      idx.eq_str[c.as_string()].push_back(slot);
    } else {
      idx.misc.emplace_back(p, slot);  // ordered string comparison: scan
    }
    return;
  }
  const double bound = *c.numeric();
  if (std::isnan(bound)) {
    // Quarantine: NaN breaks both the hash-equality keying of eq_num
    // (find(NaN) never succeeds, so removes leak) and the strict weak
    // ordering of a sorted structure. A NaN-constant ordered/equality
    // predicate can never be satisfied; the misc scan evaluates it to false.
    idx.misc.emplace_back(p, slot);
    return;
  }
  if (p.op() == RelOp::kEq) {
    idx.eq_num[bound].push_back(slot);
    return;
  }
  if (staged != nullptr) {
    staged->push_back(StagedBound{attr, p.op(), bound, slot});
  } else {
    bound_list(idx, p.op()).insert(bound, slot);
  }
}

void CountingMatcher::unindex_predicate(SubSlot slot, const Predicate& p) {
  AttributeIndex* idx_ptr = find_index(AttributeTable::instance().find(p.attribute()));
  if (idx_ptr == nullptr) return;
  auto& idx = *idx_ptr;
  const Value& c = p.constant();

  auto erase_from_map = [&](auto& map, const auto& key) {
    const auto it = map.find(key);
    if (it == map.end()) return;
    auto& v = it->second;
    const auto pos = std::find(v.begin(), v.end(), slot);
    if (pos != v.end()) v.erase(pos);
    if (v.empty()) map.erase(it);
  };

  if (p.op() == RelOp::kNe) {
    if (c.is_string()) {
      const auto pos =
          std::find_if(idx.ne_str.begin(), idx.ne_str.end(), [&](const auto& e) {
            return e.second == slot && e.first == c.as_string();
          });
      if (pos != idx.ne_str.end()) idx.ne_str.erase(pos);
    } else {
      // NaN-safe (bit-class) match, mirroring same_static_predicate.
      const double bound = *c.numeric();
      for (std::size_t i = 0; i < idx.ne_bounds.size(); ++i) {
        const double b = idx.ne_bounds[i];
        if (idx.ne_slots[i] == slot &&
            (b == bound || (std::isnan(b) && std::isnan(bound)))) {
          idx.ne_bounds.erase(idx.ne_bounds.begin() + static_cast<std::ptrdiff_t>(i));
          idx.ne_slots.erase(idx.ne_slots.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    return;
  }
  if (c.is_string()) {
    if (p.op() == RelOp::kEq) {
      erase_from_map(idx.eq_str, c.as_string());
    } else {
      const auto pos = std::find_if(idx.misc.begin(), idx.misc.end(), [&](const auto& e) {
        return e.second == slot && same_static_predicate(e.first, p);
      });
      if (pos != idx.misc.end()) idx.misc.erase(pos);
    }
    return;
  }
  const double bound = *c.numeric();
  if (std::isnan(bound)) {
    const auto pos = std::find_if(idx.misc.begin(), idx.misc.end(), [&](const auto& e) {
      return e.second == slot && same_static_predicate(e.first, p);
    });
    if (pos != idx.misc.end()) idx.misc.erase(pos);
    return;
  }
  if (p.op() == RelOp::kEq) {
    erase_from_map(idx.eq_num, bound);
    return;
  }
  bound_list(idx, p.op()).erase(bound, slot);
}

std::size_t CountingMatcher::indexed_entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& idx : index_) {
    n += idx.lt.size() + idx.le.size() + idx.gt.size() + idx.ge.size();
    for (const auto& [key, slots] : idx.eq_num) n += slots.size();
    for (const auto& [key, slots] : idx.eq_str) n += slots.size();
    n += idx.ne_bounds.size() + idx.ne_str.size() + idx.misc.size();
  }
  return n;
}

void CountingMatcher::match(const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (slot_of_.empty() || pub.empty()) return;

  // Open a new counting epoch; stale counters from previous matches are
  // invalidated by their stamp, never cleared. On the (rare) epoch wrap every
  // stamp is reset so no old stamp can alias the new epoch.
  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  touched_.clear();

  const std::uint32_t epoch = epoch_;
  auto* const stamp = stamp_.data();
  auto* const counts = counts_.data();
  const auto hit = [&](SubSlot slot) {
    if (stamp[slot] != epoch) {
      stamp[slot] = epoch;
      counts[slot] = 1;
      touched_.push_back(slot);
    } else {
      ++counts[slot];
    }
  };

  const auto& ids = pub.attribute_ids();
  const auto& attrs = pub.attributes();
  for (std::size_t a = 0; a < ids.size(); ++a) {
    if (ids[a] >= index_.size()) continue;
    const auto& idx = index_[ids[a]];
    const Value& value = attrs[a].second;

    if (const auto num = value.numeric()) {
      const double v = *num;
      if (!std::isnan(v)) {
        idx.lt.visit_above(v, /*inclusive=*/false, hit);  // pub <  bound: bounds > v
        idx.le.visit_above(v, /*inclusive=*/true, hit);   // pub <= bound: bounds >= v
        idx.gt.visit_below(v, /*inclusive=*/false, hit);  // pub >  bound: bounds < v
        idx.ge.visit_below(v, /*inclusive=*/true, hit);   // pub >= bound: bounds <= v
        if (const auto eq = idx.eq_num.find(v); eq != idx.eq_num.end()) {
          for (const auto slot : eq->second) hit(slot);
        }
      }
      // else: a NaN publication value is incomparable — it satisfies no
      // ordered or equality predicate, only the kNe scans below.

      // Numeric != sweep (SoA, vectorisable). IEEE `v != b` is the exact
      // kNe semantics: true when the values differ AND when either is NaN
      // (incomparable values satisfy only kNe).
      const double* const ne_bounds = idx.ne_bounds.data();
      const SubSlot* const ne_slots = idx.ne_slots.data();
      const std::size_t ne_n = idx.ne_bounds.size();
      for (std::size_t i = 0; i < ne_n; ++i) {
        if (v != ne_bounds[i]) hit(ne_slots[i]);
      }
      // String != operands: incomparable with any numeric value => satisfied.
      for (const auto& [operand, slot] : idx.ne_str) hit(slot);
    } else {
      if (const auto eq = idx.eq_str.find(value.as_string()); eq != idx.eq_str.end()) {
        for (const auto slot : eq->second) hit(slot);
      }
      // Numeric != operands: incomparable with any string value => satisfied.
      for (const auto slot : idx.ne_slots) hit(slot);
      for (const auto& [operand, slot] : idx.ne_str) {
        if (value.as_string() != operand) hit(slot);
      }
    }
    for (const auto& [pred, slot] : idx.misc) {
      if (pred.matches(value)) hit(slot);
    }
  }

  const std::size_t first_new = out.size();
  for (const auto slot : touched_) {
    const auto& state = slots_[slot];
    if (counts[slot] == state.preds.size()) out.push_back(state.id);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end());
}

MatcherPtr make_matcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kBruteForce: return std::make_unique<BruteForceMatcher>();
    case MatcherKind::kCounting: return std::make_unique<CountingMatcher>();
    case MatcherKind::kChurn: return std::make_unique<ChurnMatcher>();
  }
  throw std::invalid_argument("unknown matcher kind");
}

}  // namespace evps
