# Empty dependencies file for evps_workloads.
# This may be replaced when dependencies are built.
