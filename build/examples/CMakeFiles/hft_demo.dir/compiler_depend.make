# Empty compiler generated dependencies file for hft_demo.
# This may be replaced when dependencies are built.
