#include "metrics/shard_counters.hpp"

#include <numeric>
#include <sstream>

namespace evps {

std::string format_shard_report(const std::vector<std::size_t>& occupancy,
                                const BatchCounters& batches) {
  std::ostringstream os;
  const std::size_t total = std::accumulate(occupancy.begin(), occupancy.end(), std::size_t{0});
  os << "matcher shards: " << occupancy.size() << " (" << total << " subscriptions)\n";
  for (std::size_t s = 0; s < occupancy.size(); ++s) {
    const double share = total == 0 ? 0.0
                                    : 100.0 * static_cast<double>(occupancy[s]) /
                                          static_cast<double>(total);
    os << "  shard " << s << ": " << occupancy[s] << " (" << share << "%)\n";
  }
  os << "batches: " << batches.batches << " (" << batches.batched_publications
     << " publications, mean " << batches.mean_batch() << "/batch, max " << batches.max_batch
     << ")\n";
  if (batches.batch_seconds.count() > 0) {
    os << "batch latency: mean " << batches.batch_seconds.mean() * 1e6 << "us, max "
       << batches.batch_seconds.max() * 1e6 << "us\n";
  }
  return os.str();
}

}  // namespace evps
