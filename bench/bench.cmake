# Experiment drivers (one per paper figure/table) plus google-benchmark
# micro-benchmarks. Included from the top-level CMakeLists so the binaries
# land alone in ${CMAKE_BINARY_DIR}/bench.
function(evps_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    evps_workloads evps_metrics evps_broker evps_evolving
    evps_matching evps_message evps_expr evps_sim evps_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# Google-benchmark micro benches; each defines its own main() (see
# bench/gbench_main.hpp) so results are dumped to BENCH_*.json by default.
function(evps_gbench name)
  evps_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

evps_bench(fig6_traffic)
evps_bench(fig7_accuracy)
evps_bench(fig8_processing)
evps_bench(fig9_evolution_volume)
evps_bench(fig10ab_throughput)
evps_bench(fig10c_visibility)
evps_bench(table1_summary)
evps_bench(ablation_hybrid)
evps_bench(ablation_matcher)
evps_gbench(micro_expr)
evps_gbench(micro_matcher)
evps_gbench(micro_engines)
