file(REMOVE_RECURSE
  "libevps_evolving.a"
)
