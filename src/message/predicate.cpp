#include "message/predicate.hpp"

#include <cmath>

namespace evps {

std::string_view to_string(RelOp op) noexcept {
  switch (op) {
    case RelOp::kLt: return "<";
    case RelOp::kLe: return "<=";
    case RelOp::kGt: return ">";
    case RelOp::kGe: return ">=";
    case RelOp::kEq: return "=";
    case RelOp::kNe: return "!=";
  }
  return "?";
}

std::optional<RelOp> parse_rel_op(std::string_view text) noexcept {
  if (text == "<") return RelOp::kLt;
  if (text == "<=") return RelOp::kLe;
  if (text == ">") return RelOp::kGt;
  if (text == ">=") return RelOp::kGe;
  if (text == "=" || text == "==") return RelOp::kEq;
  if (text == "!=" || text == "<>") return RelOp::kNe;
  return std::nullopt;
}

bool apply_rel_op(RelOp op, const Value& lhs, const Value& rhs) noexcept {
  const auto cmp = lhs.compare(rhs);
  if (!cmp.has_value()) return op == RelOp::kNe;  // incomparable: only "not equal" holds
  switch (op) {
    case RelOp::kLt: return *cmp < 0;
    case RelOp::kLe: return *cmp <= 0;
    case RelOp::kGt: return *cmp > 0;
    case RelOp::kGe: return *cmp >= 0;
    case RelOp::kEq: return *cmp == 0;
    case RelOp::kNe: return *cmp != 0;
  }
  return false;
}

Predicate::Predicate(std::string attribute, RelOp op, Value constant)
    : attribute_(std::move(attribute)),
      attr_id_(AttributeTable::instance().intern(attribute_)),
      op_(op),
      operand_(std::move(constant)) {}

Predicate::Predicate(std::string attribute, RelOp op, ExprPtr fun)
    : attribute_(std::move(attribute)),
      attr_id_(AttributeTable::instance().intern(attribute_)),
      op_(op),
      operand_(std::move(fun)) {
  const auto& f = std::get<ExprPtr>(operand_);
  if (!f) throw std::invalid_argument("evolving predicate function must not be null");
  // Constant functions degenerate to static predicates; fold eagerly so the
  // rest of the system treats them as non-evolving. Non-finite constants are
  // kept as (never-matching) expressions: a NaN Value would not round-trip
  // through the codec.
  if (f->is_constant()) {
    const MapEnv empty;
    const double value = f->eval(empty);
    if (std::isfinite(value)) operand_ = Value{value};
  }
}

bool Predicate::matches(const Value& pub_value, const Env& env) const {
  if (!is_evolving()) return matches(pub_value);
  try {
    return apply_rel_op(op_, pub_value, Value{fun()->eval(env)});
  } catch (const UnboundVariableError&) {
    // Fail closed: a variable the broker has not (yet) learned about makes
    // the predicate unsatisfiable rather than crashing message processing.
    return false;
  }
}

bool Predicate::matches(const Value& pub_value) const {
  return apply_rel_op(op_, pub_value, constant());
}

Predicate Predicate::materialize(const Env& env) const {
  if (!is_evolving()) return *this;
  try {
    return Predicate{attribute_, op_, Value{fun()->eval(env)}};
  } catch (const UnboundVariableError&) {
    // Fail closed: materialise a version that can never be satisfied (NaN is
    // incomparable, and the kLt operator never matches incomparable values).
    return Predicate{attribute_, RelOp::kLt, Value{std::nan("")}};
  }
}

std::set<std::string> Predicate::variables() const {
  if (!is_evolving()) return {};
  return fun()->variables();
}

std::string Predicate::to_string() const {
  std::string out = attribute_;
  out += " ";
  out += evps::to_string(op_);
  out += " ";
  out += is_evolving() ? fun()->to_string() : constant().to_string();
  return out;
}

CompiledPredicate::CompiledPredicate(const Predicate& pred)
    : attr_(pred.attr_id()), op_(pred.op()) {
  if (!pred.is_evolving()) {
    throw std::invalid_argument("CompiledPredicate requires an evolving predicate");
  }
  prog_ = ExprProgram::compile(*pred.fun());
}

double CompiledPredicate::bound(const EvalScope& scope, std::vector<double>& stack,
                                bool& unbound) const {
  try {
    unbound = false;
    return prog_.eval(scope, stack);
  } catch (const UnboundVariableError&) {
    // Fail closed, mirroring Predicate::materialize: callers must treat an
    // unbound bound as never-matching regardless of the operator.
    unbound = true;
    return std::nan("");
  }
}

bool CompiledPredicate::matches(const Value& pub_value, const EvalScope& scope,
                                std::vector<double>& stack) const {
  try {
    return apply_rel_op(op_, pub_value, Value{prog_.eval(scope, stack)});
  } catch (const UnboundVariableError&) {
    // Fail closed like Predicate::matches: a variable the broker has not
    // (yet) learned about makes the predicate unsatisfiable.
    return false;
  }
}

bool Predicate::operator==(const Predicate& other) const noexcept {
  if (attribute_ != other.attribute_ || op_ != other.op_) return false;
  if (is_evolving() != other.is_evolving()) return false;
  if (is_evolving()) return fun()->equals(*other.fun());
  return constant() == other.constant() && constant().is_string() == other.constant().is_string();
}

}  // namespace evps
