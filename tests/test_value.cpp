#include "common/value.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

TEST(Value, DefaultIsIntZero) {
  const Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 0);
}

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value{3}.is_int());
  EXPECT_TRUE(Value{3.5}.is_double());
  EXPECT_TRUE(Value{"abc"}.is_string());
  EXPECT_TRUE(Value{3}.is_numeric());
  EXPECT_TRUE(Value{3.5}.is_numeric());
  EXPECT_FALSE(Value{"abc"}.is_numeric());
}

TEST(Value, NumericView) {
  EXPECT_EQ(Value{3}.numeric(), 3.0);
  EXPECT_EQ(Value{2.5}.numeric(), 2.5);
  EXPECT_FALSE(Value{"x"}.numeric().has_value());
}

TEST(Value, IntDoubleCrossComparison) {
  EXPECT_EQ(Value{2}, Value{2.0});
  EXPECT_EQ(*Value{2}.compare(Value{2.5}), -1);
  EXPECT_EQ(*Value{3.0}.compare(Value{2}), 1);
}

TEST(Value, IntIntComparisonIsExactForLargeValues) {
  const std::int64_t big = (std::int64_t{1} << 62) + 1;
  EXPECT_EQ(*Value{big}.compare(Value{big - 1}), 1);
  EXPECT_EQ(*Value{big}.compare(Value{big}), 0);
}

TEST(Value, StringComparison) {
  EXPECT_EQ(*Value{"apple"}.compare(Value{"banana"}), -1);
  EXPECT_EQ(*Value{"pear"}.compare(Value{"pear"}), 0);
  EXPECT_EQ(*Value{"zebra"}.compare(Value{"ant"}), 1);
}

TEST(Value, StringNumericIncomparable) {
  EXPECT_FALSE(Value{"2"}.compare(Value{2}).has_value());
  EXPECT_FALSE(Value{2}.compare(Value{"2"}).has_value());
  EXPECT_FALSE(Value{"2"} == Value{2});
}

TEST(Value, NanIncomparable) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Value{nan}.compare(Value{1.0}).has_value());
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value{42}.to_string(), "42");
  EXPECT_EQ(Value{-3}.to_string(), "-3");
  EXPECT_EQ(Value{2.5}.to_string(), "2.5");
  EXPECT_EQ(Value{2.0}.to_string(), "2.0");  // doubles keep a marker
  EXPECT_EQ(Value{"hi"}.to_string(), "'hi'");
}

TEST(Value, ParseInt) {
  const Value v = Value::parse("123");
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 123);
}

TEST(Value, ParseNegativeInt) {
  const Value v = Value::parse("-7");
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -7);
}

TEST(Value, ParseDouble) {
  const Value v = Value::parse("2.75");
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.75);
}

TEST(Value, ParseQuotedString) {
  const Value v = Value::parse("'hello world'");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello world");
}

TEST(Value, ParseBareStringFallback) {
  const Value v = Value::parse("IBM");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "IBM");
}

TEST(Value, ParseRoundTrip) {
  for (const Value& original : {Value{17}, Value{-4}, Value{3.25}, Value{2.0}, Value{"sym"}}) {
    const Value reparsed = Value::parse(original.to_string());
    EXPECT_EQ(reparsed, original) << original.to_string();
    EXPECT_EQ(reparsed.is_string(), original.is_string());
  }
}

}  // namespace
}  // namespace evps
