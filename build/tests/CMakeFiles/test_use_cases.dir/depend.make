# Empty dependencies file for test_use_cases.
# This may be replaced when dependencies are built.
