# Empty dependencies file for test_routing_property.
# This may be replaced when dependencies are built.
