// Cached Lazy Evaluation Evolving Subscriptions (CLEES) — Sections IV-C, V-C.
//
// Like LEES, subscriptions are split into a static part (standard matcher)
// and an evolving part held in the Lazy Evolution Storage. On the first
// publication that probes a subscription, the evolving part is materialised
// into a concrete version which is cached for the subscription's time
// threshold (TT); until it expires, subsequent publications match against
// the cached version with plain predicate tests (cache hit). After expiry
// the next probe triggers re-materialisation (cache miss).
//
// The cache is kept separate from the standard matcher: inserting versions
// into the matcher would leverage its index but raise contention on the
// shared structure (Section V-C) — and would re-introduce VES's maintenance
// scaling, which CLEES exists to avoid.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "evolving/engine.hpp"

namespace evps {

class CleesEngine final : public BrokerEngine {
 public:
  explicit CleesEngine(const EngineConfig& config) : BrokerEngine(config) {}

  [[nodiscard]] std::size_t storage_size() const noexcept { return evolving_count_; }

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;

 private:
  struct CachedVersion {
    std::vector<Predicate> preds;  // materialised (static) evolving part
    SimTime expires = SimTime::zero();
  };

  struct EvolvingPart {
    SubscriptionId id;
    SubscriptionPtr sub;
    std::vector<Predicate> evolving_preds;
    bool has_static_part = false;
    CachedVersion cache;
  };

  static bool static_preds_match(const std::vector<Predicate>& preds, const Publication& pub);

  // Lazy Evolution Storage: evolving parts grouped per destination.
  std::map<NodeId, std::vector<EvolvingPart>> storage_;
  std::size_t evolving_count_ = 0;
};

}  // namespace evps
