#include "expr/parser.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace evps {
namespace {

enum class TokKind { kNumber, kIdent, kOp, kLParen, kRParen, kComma, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string_view text;
  double number = 0;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    current_.offset = pos_;
    if (pos_ >= text_.size()) {
      current_ = Token{TokKind::kEnd, {}, 0, pos_};
      return;
    }
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      lex_number();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) != 0 || text_[end] == '_')) {
        ++end;
      }
      current_ = Token{TokKind::kIdent, text_.substr(pos_, end - pos_), 0, pos_};
      pos_ = end;
      return;
    }
    switch (c) {
      case '(': current_ = Token{TokKind::kLParen, text_.substr(pos_, 1), 0, pos_}; break;
      case ')': current_ = Token{TokKind::kRParen, text_.substr(pos_, 1), 0, pos_}; break;
      case ',': current_ = Token{TokKind::kComma, text_.substr(pos_, 1), 0, pos_}; break;
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '^': current_ = Token{TokKind::kOp, text_.substr(pos_, 1), 0, pos_}; break;
      default:
        throw ParseError("unexpected character '" + std::string(1, c) + "'", pos_,
                         std::string(1, c));
    }
    ++pos_;
  }

  void lex_number() {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double value = 0;
    auto [p, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{}) {
      throw ParseError("malformed number", pos_, std::string(1, text_[pos_]));
    }
    current_ = Token{TokKind::kNumber, text_.substr(pos_, static_cast<std::size_t>(p - begin)),
                     value, pos_};
    pos_ += static_cast<std::size_t>(p - begin);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

/// Fold constant subtrees so repeated evaluation is cheap. Non-finite
/// results are left unfolded: "nan"/"inf" literals would not reparse.
ExprPtr fold(ExprPtr e) {
  if (e->is_constant()) {
    // Already a literal? Keep as-is to avoid churning.
    if (std::holds_alternative<Expr::Const>(e->node())) return e;
    const MapEnv empty;
    const double value = e->eval(empty);
    if (!std::isfinite(value)) return e;
    return Expr::constant(value);
  }
  return e;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  ExprPtr parse() {
    ExprPtr e = parse_sum();
    const Token& t = lexer_.peek();
    if (t.kind != TokKind::kEnd) {
      throw ParseError("unexpected trailing input '" + std::string(t.text) + "'", t.offset,
                       std::string(t.text));
    }
    return e;
  }

 private:
  ExprPtr parse_sum() {
    ExprPtr lhs = parse_term();
    while (lexer_.peek().kind == TokKind::kOp &&
           (lexer_.peek().text == "+" || lexer_.peek().text == "-")) {
      const Token op = lexer_.take();
      ExprPtr rhs = parse_term();
      lhs = fold(Expr::binary(op.text == "+" ? BinaryOp::kAdd : BinaryOp::kSub, std::move(lhs),
                              std::move(rhs)));
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    while (lexer_.peek().kind == TokKind::kOp &&
           (lexer_.peek().text == "*" || lexer_.peek().text == "/" ||
            lexer_.peek().text == "%")) {
      const Token op = lexer_.take();
      ExprPtr rhs = parse_factor();
      const BinaryOp bop = op.text == "*"   ? BinaryOp::kMul
                           : op.text == "/" ? BinaryOp::kDiv
                                            : BinaryOp::kMod;
      lhs = fold(Expr::binary(bop, std::move(lhs), std::move(rhs)));
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    if (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "-") {
      lexer_.take();
      return fold(Expr::unary(UnaryOp::kNeg, parse_factor()));
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_primary();
    if (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "^") {
      lexer_.take();
      // Right-associative: a^b^c == a^(b^c).
      ExprPtr exp = parse_factor();
      return fold(Expr::binary(BinaryOp::kPow, std::move(base), std::move(exp)));
    }
    return base;
  }

  ExprPtr parse_primary() {
    const Token t = lexer_.take();
    switch (t.kind) {
      case TokKind::kNumber: return Expr::constant(t.number);
      case TokKind::kLParen: {
        ExprPtr e = parse_sum();
        expect(TokKind::kRParen, ")");
        return e;
      }
      case TokKind::kIdent: {
        if (lexer_.peek().kind == TokKind::kLParen) return parse_call(t);
        return Expr::variable(std::string(t.text));
      }
      default:
        throw ParseError("expected a number, variable, function call or '('", t.offset,
                         std::string(t.text));
    }
  }

  ExprPtr parse_call(const Token& name) {
    lexer_.take();  // consume '('
    std::vector<ExprPtr> args;
    if (lexer_.peek().kind != TokKind::kRParen) {
      args.push_back(parse_sum());
      while (lexer_.peek().kind == TokKind::kComma) {
        lexer_.take();
        args.push_back(parse_sum());
      }
    }
    expect(TokKind::kRParen, ")");

    const auto unary_fn = [&](UnaryOp op) {
      if (args.size() != 1) {
        throw ParseError(std::string(name.text) + " expects 1 argument", name.offset,
                         std::string(name.text));
      }
      return fold(Expr::unary(op, std::move(args[0])));
    };
    const auto nary_fn = [&](CallFn fn) {
      try {
        return fold(Expr::call(fn, std::move(args)));
      } catch (const std::invalid_argument& e) {
        throw ParseError(e.what(), name.offset, std::string(name.text));
      }
    };

    if (name.text == "abs") return unary_fn(UnaryOp::kAbs);
    if (name.text == "floor") return unary_fn(UnaryOp::kFloor);
    if (name.text == "ceil") return unary_fn(UnaryOp::kCeil);
    if (name.text == "sqrt") return unary_fn(UnaryOp::kSqrt);
    if (name.text == "sin") return unary_fn(UnaryOp::kSin);
    if (name.text == "cos") return unary_fn(UnaryOp::kCos);
    if (name.text == "sign") return unary_fn(UnaryOp::kSign);
    if (name.text == "min") return nary_fn(CallFn::kMin);
    if (name.text == "max") return nary_fn(CallFn::kMax);
    if (name.text == "clamp") return nary_fn(CallFn::kClamp);
    if (name.text == "step") return nary_fn(CallFn::kStep);
    throw ParseError("unknown function '" + std::string(name.text) + "'", name.offset,
                     std::string(name.text));
  }

  void expect(TokKind kind, std::string_view what) {
    const Token t = lexer_.take();
    if (t.kind != kind) {
      throw ParseError("expected '" + std::string(what) + "'", t.offset, std::string(t.text));
    }
  }

  Lexer lexer_;
};

}  // namespace

ExprPtr parse_expr(std::string_view text) { return Parser(text).parse(); }

std::optional<ExprPtr> try_parse_expr(std::string_view text, std::string* error) {
  try {
    return parse_expr(text);
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace evps
