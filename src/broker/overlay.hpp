// Overlay: owns the brokers and clients of one simulated deployment and
// provides topology-building helpers. The broker graph must be acyclic
// (tree), as in PADRES-style deployments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "broker/client.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace evps {

class Overlay {
 public:
  explicit Overlay(Simulator& sim) : net_(sim) {}

  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  Broker& add_broker(std::string name, const BrokerConfig& config) {
    brokers_.push_back(std::make_unique<Broker>(std::move(name), net_, config));
    return *brokers_.back();
  }

  /// Create a client with the next sequential ClientId.
  PubSubClient& add_client(std::string name) {
    const ClientId id{next_client_id_++};
    clients_.push_back(std::make_unique<PubSubClient>(id, std::move(name), net_));
    return *clients_.back();
  }

  void connect(Broker& a, Broker& b, Duration latency) { Broker::connect(a, b, latency); }
  void connect(PubSubClient& c, Broker& b, Duration latency) { c.connect(b, latency); }

  /// Build `n` brokers in a line (b0 - b1 - ... - b(n-1)).
  std::vector<Broker*> build_line(std::size_t n, const BrokerConfig& config, Duration latency,
                                  const std::string& prefix = "broker");

  /// Build a star: one core broker plus `leaves` edge brokers.
  std::vector<Broker*> build_star(std::size_t leaves, const BrokerConfig& config,
                                  Duration latency, const std::string& prefix = "broker");

  [[nodiscard]] Network& network() noexcept { return net_; }
  [[nodiscard]] Simulator& simulator() noexcept { return net_.simulator(); }

  [[nodiscard]] const std::vector<std::unique_ptr<Broker>>& brokers() const noexcept {
    return brokers_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<PubSubClient>>& clients() const noexcept {
    return clients_;
  }

  /// Sum of subscription-related messages received across all brokers
  /// (the paper's traffic metric numerator).
  [[nodiscard]] std::uint64_t total_subscription_msgs() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : brokers_) total += b->stats().subscription_msgs;
    return total;
  }

  /// Aggregate engine processing time (seconds) across all brokers.
  [[nodiscard]] double total_engine_seconds() const noexcept {
    double total = 0;
    for (const auto& b : brokers_) total += b->engine().costs().total_seconds();
    return total;
  }

  void reset_stats() {
    for (const auto& b : brokers_) {
      b->reset_stats();
      b->engine().reset_costs();
    }
  }

 private:
  Network net_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::unique_ptr<PubSubClient>> clients_;
  std::uint64_t next_client_id_ = 1;
};

}  // namespace evps
