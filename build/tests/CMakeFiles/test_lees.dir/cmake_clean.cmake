file(REMOVE_RECURSE
  "CMakeFiles/test_lees.dir/test_lees.cpp.o"
  "CMakeFiles/test_lees.dir/test_lees.cpp.o.d"
  "test_lees"
  "test_lees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
