#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(sec(3), [&] { order.push_back(3); });
  sim.at(sec(1), [&] { order.push_back(1); });
  sim.at(sec(2), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), sec(3));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(sec(1), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.at(sec(5), [&] {
    sim.after(Duration::seconds(2), [&] { fired = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired, sec(7));
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.at(sec(5), [] {});
  sim.run_all();
  EXPECT_THROW(sim.at(sec(4), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.at(sec(6), Simulator::Action{}), std::invalid_argument);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(sec(10)), 0u);
  EXPECT_EQ(sim.now(), sec(10));
}

TEST(Simulator, RunUntilExecutesOnlyDueEvents) {
  Simulator sim;
  int count = 0;
  sim.at(sec(1), [&] { ++count; });
  sim.at(sec(2), [&] { ++count; });
  sim.at(sec(5), [&] { ++count; });
  EXPECT_EQ(sim.run_until(sec(3)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), sec(3));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.at(sec(1), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EveryFiresPeriodically) {
  Simulator sim;
  std::vector<double> fires;
  sim.every(sec(1), Duration::seconds(2), sec(10), [&](SimTime t) {
    fires.push_back(t.seconds());
  });
  sim.run_all();
  EXPECT_EQ(fires, (std::vector<double>{1, 3, 5, 7, 9}));
}

TEST(Simulator, EveryUntilIsExclusive) {
  Simulator sim;
  int count = 0;
  sim.every(sec(2), Duration::seconds(2), sec(6), [&](SimTime) { ++count; });
  sim.run_all();
  EXPECT_EQ(count, 2);  // fires at 2 and 4; 6 excluded
}

TEST(Simulator, EveryRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.every(sec(0), Duration::zero(), sec(10), [](SimTime) {}),
               std::invalid_argument);
}

TEST(Simulator, EveryCancelStopsFutureFirings) {
  Simulator sim;
  int count = 0;
  auto handle = sim.every(sec(1), Duration::seconds(1), sec(100), [&](SimTime) { ++count; });
  EXPECT_TRUE(handle.active());
  sim.run_until(sec(3.5));
  EXPECT_EQ(count, 3);
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run_all();
  EXPECT_EQ(count, 3);  // the queued occurrence became a no-op
}

TEST(Simulator, EveryHandleExpiresAtUntil) {
  Simulator sim;
  auto handle = sim.every(sec(1), Duration::seconds(1), sec(3), [](SimTime) {});
  EXPECT_TRUE(handle.active());
  sim.run_all();
  EXPECT_FALSE(handle.active());
  // A handle for an already-empty window is born inactive.
  EXPECT_FALSE(sim.every(sec(5), Duration::seconds(1), sec(5), [](SimTime) {}).active());
}

TEST(Simulator, EveryCallbackMayCancelItself) {
  Simulator sim;
  TimerHandle handle;
  int count = 0;
  handle = sim.every(sec(1), Duration::seconds(1), sec(100), [&](SimTime) {
    if (++count == 2) handle.cancel();
  });
  sim.run_all();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ReentrantSchedulingDuringEvent) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) sim.after(Duration::seconds(1), next);
  };
  sim.at(sec(0), next);
  sim.run_all();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now(), sec(4));
}

TEST(Simulator, RunAllBackstop) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.after(Duration::seconds(1), forever); };
  sim.at(sec(0), forever);
  EXPECT_EQ(sim.run_all(100), 100u);
  EXPECT_FALSE(sim.empty());
}

}  // namespace
}  // namespace evps
